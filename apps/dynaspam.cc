/**
 * @file
 * The `dynaspam` command-line driver.
 *
 * Front-end to the runner subsystem: executes single experiment points
 * or whole figure/table sweeps in parallel, with result caching and
 * JSON reporting (schema documented in EXPERIMENTS.md).
 *
 *   dynaspam run --workload bfs --mode accel-spec [--trace-length 32]
 *                [--fabrics 1] [--scale 1] [--out point.json]
 *   dynaspam sweep --figure 8 [--jobs N] [--out fig8.json] [--scale 1]
 *   dynaspam sweep --table 5 --jobs 4
 *   dynaspam trace bfs --mode accel-spec --cycles 1000:5000 --out t.json
 *   dynaspam serve --port 8080 --jobs 4 --cache-max-mb 256
 *   dynaspam list
 *
 * Caching defaults to .dynaspam-cache/ in the working directory; a
 * second run of the same sweep performs zero simulations. Disable with
 * --no-cache, redirect with --cache DIR, and bound the directory's size
 * with --cache-max-mb N (LRU eviction plus stale-epoch GC after the
 * run). SIGINT/SIGTERM mid-run unlink any half-written cache entry and
 * exit with the conventional 128+signal code.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fault_inject.hh"
#include "cluster/coordinator.hh"
#include "cluster/worker.hh"
#include "common/interrupt.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "explore/engine.hh"
#include "explore/space.hh"
#include "runner/runner.hh"
#include "serve/server.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  run    simulate one experiment point\n"
        "           --workload NAME      (required; see `dynaspam list`)\n"
        "           --mode MODE          (default accel-spec)\n"
        "           --trace-length N     (default 32)\n"
        "           --fabrics N          (default 1)\n"
        "           --scale N            (default 1)\n"
        "           --warmup-insts N     detailed warmup prefix "
        "(default 0)\n"
        "           --fidelity F         full | sampled (default full)\n"
        "           --out FILE           write a JSON report\n"
        "  sweep  run a whole figure/table sweep in parallel\n"
        "           --figure {7,8,9} | --table 5 | --ablation mapper\n"
        "           --jobs N             worker threads (default: cores)\n"
        "           --out FILE           (default <sweep>.json)\n"
        "           --scale N            (default 1)\n"
        "           --workloads a,b,c    subset of workloads\n"
        "           --warmup-insts N     shared warmup prefix; jobs that\n"
        "                                agree on it fork from one warmed\n"
        "                                snapshot (default 0 = off)\n"
        "           --fidelity F         full | sampled (default full)\n"
        "           --no-fork            force straight-through runs\n"
        "  explore\n"
        "         design-space search: scout cheap, promote only\n"
        "         frontier-adjacent survivors to full fidelity, report\n"
        "         the Pareto frontier (see EXPERIMENTS.md "
        "\"Exploration\")\n"
        "           --space FILE         space + objective spec JSON\n"
        "                                (- reads stdin); streams NDJSON\n"
        "                                progress on stdout\n"
        "           --jobs N             worker threads (default: cores)\n"
        "           --out FILE           write the final frontier "
        "report\n"
        "  trace  simulate one point with event tracing and write a\n"
        "         Chrome trace-event JSON (Perfetto) plus a Konata\n"
        "         pipeline log (<out>.kanata); always uncached\n"
        "           <workload> | --workload NAME   (required)\n"
        "           --mode MODE          (default accel-spec)\n"
        "           --trace-length N     (default 32)\n"
        "           --fabrics N          (default 1)\n"
        "           --scale N            (default 1)\n"
        "           --cycles A:B         only events in cycles [A, B]\n"
        "           --out FILE           (default trace.json)\n"
        "  serve  run the HTTP/JSON simulation service (see\n"
        "         EXPERIMENTS.md \"Serving\"); drains gracefully on\n"
        "         SIGTERM/SIGINT\n"
        "           --port N             TCP port (default 8080; 0 = any)\n"
        "           --bind ADDR          bind address (default 127.0.0.1)\n"
        "           --jobs N             worker threads (default: cores)\n"
        "           --queue-capacity N   queued-job bound -> 429 "
        "(default 64)\n"
        "           --timeout-ms N       per-request deadline "
        "(default 120000)\n"
        "           --warmup-insts N     default warmup for job specs\n"
        "                                that set none (default 0)\n"
        "           --cluster            delegate to `coordinator` "
        "(below)\n"
        "  coordinator\n"
        "         run the cluster front end: epoll HTTP server that\n"
        "         shards sweeps across connected workers (see\n"
        "         EXPERIMENTS.md \"Cluster serving\")\n"
        "           --port N             client HTTP port (default 8080)\n"
        "           --worker-port N      worker wire port (default 9090)\n"
        "           --bind ADDR          bind address (default 127.0.0.1)\n"
        "           --workers N          shard slots (default 4)\n"
        "           --queue-capacity N   outstanding-job bound -> 429 "
        "(default 256)\n"
        "           --timeout-ms N       per-request deadline "
        "(default 120000)\n"
        "           --cluster-token T    require T in each worker Hello\n"
        "                                (or env DYNASPAM_CLUSTER_TOKEN)\n"
        "           --coordinator-memo N\n"
        "                                LRU memo of N rendered entries;\n"
        "                                repeats skip the workers "
        "(default 0)\n"
        "  worker run one shard worker; dials the coordinator and\n"
        "         executes the job batches routed to its hash slot\n"
        "           --connect HOST:PORT  coordinator worker port\n"
        "                                (default 127.0.0.1:9090)\n"
        "           --cluster-token T    enrollment token to send\n"
        "                                (or env DYNASPAM_CLUSTER_TOKEN)\n"
        "  list   print workload tags and mode names\n"
        "  check-selftest\n"
        "         fault-inject every simulator invariant auditor and\n"
        "         verify each one catches its seeded violation\n"
        "\n"
        "common options:\n"
        "  --cache DIR       result-cache directory "
        "(default .dynaspam-cache)\n"
        "  --no-cache        disable the result cache\n"
        "  --cache-max-mb N  LRU-evict the cache down to N MiB "
        "(default: unbounded)\n"
        "  --snapshot-cache DIR\n"
        "                    persist warmed fork-group snapshots so\n"
        "                    repeat sweeps skip the warm pass entirely\n"
        "                    (run/sweep/serve/worker; default: off)\n"
        "  --snapshot-cache-max-mb N\n"
        "                    LRU-evict the snapshot cache down to N MiB\n",
        argv0);
    return 1;
}

/** Simple argv cursor with typed accessors. */
class Args
{
  public:
    Args(int count, char **vec) : argc(count), argv(vec) {}

    bool
    next(std::string &flag)
    {
        if (pos >= argc)
            return false;
        flag = argv[pos++];
        return true;
    }

    std::string
    value(const std::string &flag)
    {
        if (pos >= argc)
            fatal("missing value for ", flag);
        return argv[pos++];
    }

    unsigned
    uvalue(const std::string &flag)
    {
        std::string v = value(flag);
        char *end = nullptr;
        long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end || n < 0)
            fatal("bad value for ", flag, ": ", v);
        return unsigned(n);
    }

  private:
    int argc;
    char **argv;
    int pos = 0;
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct CommonOptions
{
    std::string cacheDir = ".dynaspam-cache";
    unsigned jobs = 0;          ///< 0 = ThreadPool::defaultWorkers()
    unsigned scale = 1;
    unsigned cacheMaxMb = 0;    ///< 0 = no LRU size budget
    std::string snapshotDir;    ///< empty = snapshot cache off
    unsigned snapshotMaxMb = 0; ///< 0 = no LRU size budget
    std::string out;
};

/**
 * Post-run cache maintenance for run/sweep: GC stale epochs and apply
 * the --cache-max-mb LRU budget when one was given.
 */
void
maintainCache(const std::string &cache_dir, unsigned cache_max_mb)
{
    if (cache_dir.empty() || !cache_max_mb)
        return;
    runner::ResultCache cache(cache_dir);
    runner::CacheGcStats stats =
        cache.gc(std::uint64_t(cache_max_mb) * 1024 * 1024);
    if (stats.staleEvicted || stats.lruEvicted || stats.tmpRemoved)
        std::printf("cache gc: %llu stale, %llu lru-evicted, %llu temp "
                    "files removed (%llu -> %llu bytes)\n",
                    static_cast<unsigned long long>(stats.staleEvicted),
                    static_cast<unsigned long long>(stats.lruEvicted),
                    static_cast<unsigned long long>(stats.tmpRemoved),
                    static_cast<unsigned long long>(stats.bytesBefore),
                    static_cast<unsigned long long>(stats.bytesAfter));
}

/** Same maintenance for the snapshot cache (--snapshot-cache-max-mb). */
void
maintainSnapshotCache(const std::string &dir, unsigned max_mb)
{
    if (dir.empty() || !max_mb)
        return;
    runner::SnapshotCache cache(dir);
    runner::CacheGcStats stats =
        cache.gc(std::uint64_t(max_mb) * 1024 * 1024);
    if (stats.staleEvicted || stats.lruEvicted || stats.tmpRemoved)
        std::printf("snapshot gc: %llu stale, %llu lru-evicted, %llu "
                    "temp files removed (%llu -> %llu bytes)\n",
                    static_cast<unsigned long long>(stats.staleEvicted),
                    static_cast<unsigned long long>(stats.lruEvicted),
                    static_cast<unsigned long long>(stats.tmpRemoved),
                    static_cast<unsigned long long>(stats.bytesBefore),
                    static_cast<unsigned long long>(stats.bytesAfter));
}

int
cmdRun(Args &args)
{
    Job job;
    job.mode = SystemMode::AccelSpec;
    CommonOptions common;
    bool use_cache = true;

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--workload")
            job.workload = args.value(flag);
        else if (flag == "--mode")
            job.mode = runner::parseMode(args.value(flag));
        else if (flag == "--trace-length")
            job.traceLength = args.uvalue(flag);
        else if (flag == "--fabrics")
            job.numFabrics = args.uvalue(flag);
        else if (flag == "--scale")
            job.scale = args.uvalue(flag);
        else if (flag == "--warmup-insts")
            job.warmupInsts = args.uvalue(flag);
        else if (flag == "--fidelity")
            job.fidelity = runner::parseFidelity(args.value(flag));
        else if (flag == "--out")
            common.out = args.value(flag);
        else if (flag == "--cache")
            common.cacheDir = args.value(flag);
        else if (flag == "--no-cache")
            use_cache = false;
        else if (flag == "--cache-max-mb")
            common.cacheMaxMb = args.uvalue(flag);
        else if (flag == "--snapshot-cache")
            common.snapshotDir = args.value(flag);
        else if (flag == "--snapshot-cache-max-mb")
            common.snapshotMaxMb = args.uvalue(flag);
        else
            fatal("unknown option ", flag);
    }
    if (job.workload.empty())
        fatal("run: --workload is required");

    // A SIGINT mid-simulation unlinks any half-written cache entry and
    // exits 128+SIGINT instead of stranding a temp file.
    interrupt::installCleanupSignalHandlers();

    runner::RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheDir = use_cache ? common.cacheDir : "";
    opts.snapshotCacheDir = common.snapshotDir;
    runner::Runner r(opts);
    auto outcomes = r.runAll({job});
    maintainCache(opts.cacheDir, common.cacheMaxMb);
    maintainSnapshotCache(common.snapshotDir, common.snapshotMaxMb);
    const runner::JobOutcome &outcome = outcomes.at(0);
    const sim::RunResult &res = outcome.result;

    std::printf("%s @ %s (trace %u, %u fabric%s, scale %u)%s\n",
                job.workload.c_str(), sim::modeName(job.mode),
                job.traceLength, job.numFabrics,
                job.numFabrics == 1 ? "" : "s", job.scale,
                outcome.fromCache ? "  [cached]" : "");
    std::printf("  cycles              %llu\n",
                static_cast<unsigned long long>(res.cycles));
    std::printf("  ipc                 %.3f\n", res.ipc());
    std::printf("  insts total         %llu (host %llu, mapping %llu, "
                "fabric %llu)\n",
                static_cast<unsigned long long>(res.instsTotal),
                static_cast<unsigned long long>(res.instsHost),
                static_cast<unsigned long long>(res.instsMapping),
                static_cast<unsigned long long>(res.instsFabric));
    std::printf("  energy total        %.1f pJ\n", res.energyTotal());
    std::printf("  mapped/offloaded    %llu / %llu traces\n",
                static_cast<unsigned long long>(
                    res.dynaspam.distinctMappedTraces),
                static_cast<unsigned long long>(
                    res.dynaspam.distinctOffloadedTraces));
    if (res.sampled)
        std::printf("  fidelity            sampled (%llu insts / %llu "
                    "cycles detailed, total extrapolated)\n",
                    static_cast<unsigned long long>(res.sampledInsts),
                    static_cast<unsigned long long>(res.sampledCycles));
    std::printf("  functionally correct %s\n",
                res.functionallyCorrect ? "yes" : "NO");

    if (!common.out.empty()) {
        std::ofstream os(common.out);
        if (!os)
            fatal("cannot write ", common.out);
        runner::writeSweepReport(os, "run", outcomes, &r.stats());
        std::printf("report written to %s\n", common.out.c_str());
    }
    return 0;
}

int
cmdSweep(Args &args)
{
    CommonOptions common;
    bool use_cache = true;
    bool fork_sweeps = true;
    std::string sweep;
    unsigned trace_length = 32;
    unsigned warmup_insts = 0;
    runner::Fidelity fidelity = runner::Fidelity::Full;
    std::vector<std::string> names = workloads::allWorkloadNames();

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--figure")
            sweep = "fig" + args.value(flag);
        else if (flag == "--table")
            sweep = "table" + args.value(flag);
        else if (flag == "--ablation")
            sweep = "ablation-" + args.value(flag);
        else if (flag == "--jobs")
            common.jobs = args.uvalue(flag);
        else if (flag == "--out")
            common.out = args.value(flag);
        else if (flag == "--scale")
            common.scale = args.uvalue(flag);
        else if (flag == "--trace-length")
            trace_length = args.uvalue(flag);
        else if (flag == "--warmup-insts")
            warmup_insts = args.uvalue(flag);
        else if (flag == "--fidelity")
            fidelity = runner::parseFidelity(args.value(flag));
        else if (flag == "--no-fork")
            fork_sweeps = false;
        else if (flag == "--workloads")
            names = splitCommas(args.value(flag));
        else if (flag == "--cache")
            common.cacheDir = args.value(flag);
        else if (flag == "--no-cache")
            use_cache = false;
        else if (flag == "--cache-max-mb")
            common.cacheMaxMb = args.uvalue(flag);
        else if (flag == "--snapshot-cache")
            common.snapshotDir = args.value(flag);
        else if (flag == "--snapshot-cache-max-mb")
            common.snapshotMaxMb = args.uvalue(flag);
        else
            fatal("unknown option ", flag);
    }
    if (sweep.empty())
        fatal("sweep: one of --figure, --table or --ablation is required");
    if (names.empty())
        fatal("sweep: empty workload list");
    if (common.out.empty())
        common.out = sweep + ".json";

    std::vector<Job> jobs =
        runner::sweepJobs(sweep, names, common.scale, trace_length);
    for (Job &job : jobs) {
        job.warmupInsts = warmup_insts;
        job.fidelity = fidelity;
    }

    interrupt::installCleanupSignalHandlers();

    runner::RunnerOptions opts;
    opts.jobs = common.jobs;
    opts.cacheDir = use_cache ? common.cacheDir : "";
    opts.forkSweeps = fork_sweeps;
    opts.snapshotCacheDir = common.snapshotDir;
    runner::Runner r(opts);
    auto outcomes = r.runAll(jobs);
    maintainCache(opts.cacheDir, common.cacheMaxMb);
    maintainSnapshotCache(common.snapshotDir, common.snapshotMaxMb);

    std::ofstream os(common.out);
    if (!os)
        fatal("cannot write ", common.out);
    runner::writeSweepReport(os, sweep, outcomes, &r.stats());

    std::printf("%s: %zu jobs on %u worker%s, %llu simulated, "
                "%llu from cache -> %s\n",
                sweep.c_str(), jobs.size(), r.workers(),
                r.workers() == 1 ? "" : "s",
                static_cast<unsigned long long>(
                    r.stats().get("runner.jobs_executed")),
                static_cast<unsigned long long>(
                    r.stats().get("runner.cache_hits")),
                common.out.c_str());
    return 0;
}

int
cmdExplore(Args &args)
{
    CommonOptions common;
    bool use_cache = true;
    std::string spaceFile;

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--space")
            spaceFile = args.value(flag);
        else if (flag == "--jobs")
            common.jobs = args.uvalue(flag);
        else if (flag == "--out")
            common.out = args.value(flag);
        else if (flag == "--cache")
            common.cacheDir = args.value(flag);
        else if (flag == "--no-cache")
            use_cache = false;
        else if (flag == "--cache-max-mb")
            common.cacheMaxMb = args.uvalue(flag);
        else if (flag == "--snapshot-cache")
            common.snapshotDir = args.value(flag);
        else if (flag == "--snapshot-cache-max-mb")
            common.snapshotMaxMb = args.uvalue(flag);
        else
            fatal("unknown option ", flag);
    }
    if (spaceFile.empty())
        fatal("explore: --space FILE is required");

    std::string text;
    if (spaceFile == "-") {
        std::stringstream buf;
        buf << std::cin.rdbuf();
        text = buf.str();
    } else {
        std::ifstream is(spaceFile);
        if (!is)
            fatal("cannot read ", spaceFile);
        std::stringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }
    explore::Space space =
        explore::Space::fromJson(json::Value::parse(text));

    interrupt::installCleanupSignalHandlers();

    runner::RunnerOptions opts;
    opts.jobs = common.jobs;
    opts.cacheDir = use_cache ? common.cacheDir : "";
    opts.snapshotCacheDir = common.snapshotDir;
    runner::Runner r(opts);

    // stdout carries ONLY the engine's NDJSON lines — byte-identical
    // to the body a POST /explore stream delivers, so the two can be
    // diffed directly. Everything human-facing goes to stderr.
    explore::Engine engine(std::move(space));
    auto emit = [](const std::vector<std::string> &lines) {
        for (const std::string &line : lines) {
            std::fputs(line.c_str(), stdout);
            std::fputc('\n', stdout);
        }
        std::fflush(stdout);
    };
    emit(engine.start());
    while (!engine.done()) {
        const std::vector<Job> &batch = engine.nextBatch();
        emit(engine.feed(r.runAll(batch)));
    }
    maintainCache(opts.cacheDir, common.cacheMaxMb);
    maintainSnapshotCache(common.snapshotDir, common.snapshotMaxMb);

    if (!common.out.empty()) {
        std::ofstream os(common.out);
        if (!os)
            fatal("cannot write ", common.out);
        engine.finalReport().write(os, 2);
        os << "\n";
        std::fprintf(stderr, "frontier report written to %s\n",
                     common.out.c_str());
    }
    std::fprintf(stderr,
                 "explore: %zu candidates, %.1f cost units "
                 "(exhaustive grid: %.1f)\n",
                 engine.candidateCount(), engine.costUnits(),
                 engine.gridCostUnits());
    return 0;
}

int
cmdTrace(Args &args)
{
    Job job;
    job.mode = SystemMode::AccelSpec;
    trace::TraceSink::Options sink_opts;
    std::string out = "trace.json";

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--workload")
            job.workload = args.value(flag);
        else if (flag == "--mode")
            job.mode = runner::parseMode(args.value(flag));
        else if (flag == "--trace-length")
            job.traceLength = args.uvalue(flag);
        else if (flag == "--fabrics")
            job.numFabrics = args.uvalue(flag);
        else if (flag == "--scale")
            job.scale = args.uvalue(flag);
        else if (flag == "--cycles") {
            const std::string range = args.value(flag);
            const auto colon = range.find(':');
            if (colon == std::string::npos)
                fatal("--cycles expects A:B, got ", range);
            char *end = nullptr;
            sink_opts.beginCycle =
                std::strtoull(range.c_str(), &end, 10);
            if (!end || *end != ':')
                fatal("bad --cycles begin in ", range);
            sink_opts.endCycle =
                std::strtoull(range.c_str() + colon + 1, &end, 10);
            if (!end || *end)
                fatal("bad --cycles end in ", range);
            if (sink_opts.endCycle < sink_opts.beginCycle)
                fatal("--cycles range is backwards: ", range);
        } else if (flag == "--out") {
            out = args.value(flag);
        } else if (job.workload.empty() && !flag.empty() &&
                   flag[0] != '-') {
            job.workload = flag;    // positional workload
        } else {
            fatal("unknown option ", flag);
        }
    }
    if (job.workload.empty())
        fatal("trace: a workload is required (positional or --workload)");
    if (!trace::compiledIn()) {
        fatal("this build has tracing compiled out "
              "(-DDYNASPAM_TRACE=OFF); rebuild with -DDYNASPAM_TRACE=ON");
    }

    // Trace runs are always uncached: a cache hit would skip the
    // simulation and record nothing.
    trace::TraceSink sink(sink_opts);
    sim::RunResult res = runner::execute(job, &sink);
    sink.writeFiles(out);

    // Self-validate: the emitted Chrome JSON must round-trip through
    // the project's own strict JSON parser.
    {
        std::ifstream is(out);
        std::stringstream buf;
        buf << is.rdbuf();
        const json::Value parsed = json::Value::parse(buf.str());
        const auto &events = parsed.at("traceEvents").asArray();
        std::printf("%s @ %s: %llu cycles, %zu instruction events, "
                    "%zu lifecycle marks (%zu JSON events)\n",
                    job.workload.c_str(), sim::modeName(job.mode),
                    static_cast<unsigned long long>(res.cycles),
                    sink.instCount(), sink.markCount(), events.size());
    }
    std::printf("chrome trace written to %s (load in Perfetto or "
                "chrome://tracing)\n", out.c_str());
    std::printf("konata log written to %s.kanata\n", out.c_str());
    return 0;
}

/** --cluster-token fallback: the environment, so the secret need not
 *  appear in process listings. */
std::string
envClusterToken()
{
    const char *env = std::getenv("DYNASPAM_CLUSTER_TOKEN");
    return env ? std::string(env) : std::string();
}

int
cmdCoordinator(Args &args)
{
    cluster::CoordinatorOptions opts;
    opts.clusterToken = envClusterToken();

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--port")
            opts.httpPort = args.uvalue(flag);
        else if (flag == "--worker-port")
            opts.workerPort = args.uvalue(flag);
        else if (flag == "--bind")
            opts.bindAddress = args.value(flag);
        else if (flag == "--workers")
            opts.workerSlots = args.uvalue(flag);
        else if (flag == "--queue-capacity")
            opts.queueCapacity = args.uvalue(flag);
        else if (flag == "--timeout-ms")
            opts.requestTimeoutMs = args.uvalue(flag);
        else if (flag == "--cluster-token")
            opts.clusterToken = args.value(flag);
        else if (flag == "--coordinator-memo")
            opts.memoCapacity = args.uvalue(flag);
        else
            fatal("unknown option ", flag);
    }
    if (opts.httpPort > 65535 || opts.workerPort > 65535)
        fatal("coordinator: ports must be <= 65535");
    if (opts.workerSlots == 0)
        fatal("coordinator: --workers must be >= 1");

    cluster::Coordinator coordinator(std::move(opts));
    return coordinator.serveForever();
}

int
cmdWorker(Args &args)
{
    cluster::WorkerOptions opts;
    opts.cacheDir = ".dynaspam-cache";
    opts.clusterToken = envClusterToken();
    bool use_cache = true;
    unsigned cache_max_mb = 0;

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--cluster-token") {
            opts.clusterToken = args.value(flag);
        } else if (flag == "--connect") {
            const std::string endpoint = args.value(flag);
            const auto colon = endpoint.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= endpoint.size())
                fatal("--connect expects HOST:PORT, got ", endpoint);
            opts.connectHost = endpoint.substr(0, colon);
            char *end = nullptr;
            long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
            if (!end || *end || port <= 0 || port > 65535)
                fatal("bad port in --connect ", endpoint);
            opts.connectPort = unsigned(port);
        } else if (flag == "--cache") {
            opts.cacheDir = args.value(flag);
        } else if (flag == "--no-cache") {
            use_cache = false;
        } else if (flag == "--cache-max-mb") {
            cache_max_mb = args.uvalue(flag);
        } else if (flag == "--snapshot-cache") {
            opts.snapshotCacheDir = args.value(flag);
        } else if (flag == "--snapshot-cache-max-mb") {
            opts.snapshotCacheMaxBytes =
                std::uint64_t(args.uvalue(flag)) * 1024 * 1024;
        } else {
            fatal("unknown option ", flag);
        }
    }
    if (!use_cache)
        opts.cacheDir.clear();
    opts.cacheMaxBytes = std::uint64_t(cache_max_mb) * 1024 * 1024;

    cluster::Worker worker(std::move(opts));
    return worker.run();
}

int
cmdServe(Args &args)
{
    serve::ServerOptions opts;
    opts.cacheDir = ".dynaspam-cache";
    bool use_cache = true;
    bool clusterMode = false;
    unsigned cache_max_mb = 0;
    std::string clusterToken = envClusterToken();
    unsigned memoCapacity = 0;

    std::string flag;
    while (args.next(flag)) {
        if (flag == "--cluster-token")
            clusterToken = args.value(flag);
        else if (flag == "--coordinator-memo")
            memoCapacity = args.uvalue(flag);
        else if (flag == "--port")
            opts.port = args.uvalue(flag);
        else if (flag == "--bind")
            opts.bindAddress = args.value(flag);
        else if (flag == "--jobs")
            opts.jobs = args.uvalue(flag);
        else if (flag == "--queue-capacity")
            opts.queueCapacity = args.uvalue(flag);
        else if (flag == "--timeout-ms")
            opts.requestTimeoutMs = args.uvalue(flag);
        else if (flag == "--cache")
            opts.cacheDir = args.value(flag);
        else if (flag == "--no-cache")
            use_cache = false;
        else if (flag == "--cache-max-mb")
            cache_max_mb = args.uvalue(flag);
        else if (flag == "--snapshot-cache")
            opts.snapshotCacheDir = args.value(flag);
        else if (flag == "--snapshot-cache-max-mb")
            opts.snapshotCacheMaxBytes =
                std::uint64_t(args.uvalue(flag)) * 1024 * 1024;
        else if (flag == "--warmup-insts")
            opts.defaultWarmupInsts = args.uvalue(flag);
        else if (flag == "--cluster")
            clusterMode = true;
        else
            fatal("unknown option ", flag);
    }
    if (clusterMode) {
        // serve --cluster == the coordinator with serve's knobs.
        cluster::CoordinatorOptions copts;
        copts.httpPort = opts.port;
        copts.bindAddress = opts.bindAddress;
        copts.queueCapacity = opts.queueCapacity;
        copts.requestTimeoutMs = opts.requestTimeoutMs;
        copts.clusterToken = clusterToken;
        copts.memoCapacity = memoCapacity;
        cluster::Coordinator coordinator(std::move(copts));
        return coordinator.serveForever();
    }
    if (!use_cache)
        opts.cacheDir.clear();
    opts.cacheMaxBytes = std::uint64_t(cache_max_mb) * 1024 * 1024;
    if (opts.port > 65535)
        fatal("serve: --port must be <= 65535");

    serve::Server server(std::move(opts));
    return server.serveForever();
}

int
cmdCheckSelftest()
{
    return check::runSelfTest(std::cout) ? 0 : 1;
}

int
cmdList()
{
    std::printf("workloads:");
    for (const std::string &name : workloads::allWorkloadNames())
        std::printf(" %s", name.c_str());
    std::printf("\nmodes:     ");
    for (SystemMode mode :
         {SystemMode::BaselineOoo, SystemMode::MappingOnly,
          SystemMode::AccelNoSpec, SystemMode::AccelSpec,
          SystemMode::AccelNaive})
        std::printf(" %s", sim::modeName(mode));
    std::printf("\nsweeps:     --figure 7 | --figure 8 | --figure 9 | "
                "--table 5 | --ablation mapper\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string command = argv[1];
    Args args(argc - 2, argv + 2);
    try {
        if (command == "run")
            return cmdRun(args);
        if (command == "sweep")
            return cmdSweep(args);
        if (command == "explore")
            return cmdExplore(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "coordinator")
            return cmdCoordinator(args);
        if (command == "worker")
            return cmdWorker(args);
        if (command == "list")
            return cmdList();
        if (command == "check-selftest")
            return cmdCheckSelftest();
        if (command == "--help" || command == "-h" || command == "help")
            return usage(argv[0]);
        std::fprintf(stderr, "unknown command \"%s\"\n", command.c_str());
        return usage(argv[0]);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }
}
