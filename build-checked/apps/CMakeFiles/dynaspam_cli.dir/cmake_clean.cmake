file(REMOVE_RECURSE
  "CMakeFiles/dynaspam_cli.dir/dynaspam.cc.o"
  "CMakeFiles/dynaspam_cli.dir/dynaspam.cc.o.d"
  "dynaspam"
  "dynaspam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaspam_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
