# Empty dependencies file for dynaspam_cli.
# This may be replaced when dependencies are built.
