# Empty dependencies file for test_ooo.
# This may be replaced when dependencies are built.
