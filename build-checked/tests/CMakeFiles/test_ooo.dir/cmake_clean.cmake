file(REMOVE_RECURSE
  "CMakeFiles/test_ooo.dir/test_ooo.cc.o"
  "CMakeFiles/test_ooo.dir/test_ooo.cc.o.d"
  "test_ooo"
  "test_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
