# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-checked/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build-checked/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build-checked/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build-checked/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bpred "/root/repo/build-checked/tests/test_bpred")
set_tests_properties(test_bpred PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ooo "/root/repo/build-checked/tests/test_ooo")
set_tests_properties(test_ooo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-checked/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build-checked/tests/test_system")
set_tests_properties(test_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build-checked/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fabric "/root/repo/build-checked/tests/test_fabric")
set_tests_properties(test_fabric PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_energy "/root/repo/build-checked/tests/test_energy")
set_tests_properties(test_energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-checked/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runner "/root/repo/build-checked/tests/test_runner")
set_tests_properties(test_runner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_check "/root/repo/build-checked/tests/test_check")
set_tests_properties(test_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stress "/root/repo/build-checked/tests/test_stress")
set_tests_properties(test_stress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;dynaspam_add_test;/root/repo/tests/CMakeLists.txt;0;")
