file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_lifetime.dir/bench_table5_lifetime.cc.o"
  "CMakeFiles/bench_table5_lifetime.dir/bench_table5_lifetime.cc.o.d"
  "bench_table5_lifetime"
  "bench_table5_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
