# Empty dependencies file for bench_table6_area.
# This may be replaced when dependencies are built.
