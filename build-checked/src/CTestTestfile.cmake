# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-checked/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("check")
subdirs("common")
subdirs("isa")
subdirs("memory")
subdirs("ooo")
subdirs("fabric")
subdirs("core")
subdirs("energy")
subdirs("workloads")
subdirs("sim")
subdirs("runner")
