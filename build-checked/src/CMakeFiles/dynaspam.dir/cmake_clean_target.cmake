file(REMOVE_RECURSE
  "libdynaspam.a"
)
