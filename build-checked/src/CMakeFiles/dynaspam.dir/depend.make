# Empty dependencies file for dynaspam.
# This may be replaced when dependencies are built.
