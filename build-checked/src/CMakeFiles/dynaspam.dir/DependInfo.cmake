
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/auditors.cc" "src/CMakeFiles/dynaspam.dir/check/auditors.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/check/auditors.cc.o.d"
  "/root/repo/src/check/check.cc" "src/CMakeFiles/dynaspam.dir/check/check.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/check/check.cc.o.d"
  "/root/repo/src/check/fault_inject.cc" "src/CMakeFiles/dynaspam.dir/check/fault_inject.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/check/fault_inject.cc.o.d"
  "/root/repo/src/check/golden.cc" "src/CMakeFiles/dynaspam.dir/check/golden.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/check/golden.cc.o.d"
  "/root/repo/src/check/verifier.cc" "src/CMakeFiles/dynaspam.dir/check/verifier.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/check/verifier.cc.o.d"
  "/root/repo/src/common/common.cc" "src/CMakeFiles/dynaspam.dir/common/common.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/common/common.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/dynaspam.dir/common/json.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/common/json.cc.o.d"
  "/root/repo/src/core/configcache.cc" "src/CMakeFiles/dynaspam.dir/core/configcache.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/core/configcache.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/dynaspam.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/core/controller.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/dynaspam.dir/core/session.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/core/session.cc.o.d"
  "/root/repo/src/core/tcache.cc" "src/CMakeFiles/dynaspam.dir/core/tcache.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/core/tcache.cc.o.d"
  "/root/repo/src/core/walker.cc" "src/CMakeFiles/dynaspam.dir/core/walker.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/core/walker.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/dynaspam.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/energy/energy.cc.o.d"
  "/root/repo/src/fabric/fabric.cc" "src/CMakeFiles/dynaspam.dir/fabric/fabric.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/fabric/fabric.cc.o.d"
  "/root/repo/src/isa/executor.cc" "src/CMakeFiles/dynaspam.dir/isa/executor.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/isa/executor.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/CMakeFiles/dynaspam.dir/isa/opcodes.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/isa/opcodes.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/dynaspam.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/isa/program.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/dynaspam.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/memory/cache.cc.o.d"
  "/root/repo/src/ooo/bpred.cc" "src/CMakeFiles/dynaspam.dir/ooo/bpred.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/ooo/bpred.cc.o.d"
  "/root/repo/src/ooo/cpu.cc" "src/CMakeFiles/dynaspam.dir/ooo/cpu.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/ooo/cpu.cc.o.d"
  "/root/repo/src/ooo/storesets.cc" "src/CMakeFiles/dynaspam.dir/ooo/storesets.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/ooo/storesets.cc.o.d"
  "/root/repo/src/runner/job.cc" "src/CMakeFiles/dynaspam.dir/runner/job.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/runner/job.cc.o.d"
  "/root/repo/src/runner/report.cc" "src/CMakeFiles/dynaspam.dir/runner/report.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/runner/report.cc.o.d"
  "/root/repo/src/runner/result_cache.cc" "src/CMakeFiles/dynaspam.dir/runner/result_cache.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/runner/result_cache.cc.o.d"
  "/root/repo/src/runner/runner.cc" "src/CMakeFiles/dynaspam.dir/runner/runner.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/runner/runner.cc.o.d"
  "/root/repo/src/runner/thread_pool.cc" "src/CMakeFiles/dynaspam.dir/runner/thread_pool.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/runner/thread_pool.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/dynaspam.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/sim/system.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/dynaspam.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bp.cc" "src/CMakeFiles/dynaspam.dir/workloads/bp.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/bp.cc.o.d"
  "/root/repo/src/workloads/bt.cc" "src/CMakeFiles/dynaspam.dir/workloads/bt.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/bt.cc.o.d"
  "/root/repo/src/workloads/hs.cc" "src/CMakeFiles/dynaspam.dir/workloads/hs.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/hs.cc.o.d"
  "/root/repo/src/workloads/km.cc" "src/CMakeFiles/dynaspam.dir/workloads/km.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/km.cc.o.d"
  "/root/repo/src/workloads/knn.cc" "src/CMakeFiles/dynaspam.dir/workloads/knn.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/knn.cc.o.d"
  "/root/repo/src/workloads/ld.cc" "src/CMakeFiles/dynaspam.dir/workloads/ld.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/ld.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/CMakeFiles/dynaspam.dir/workloads/nw.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/nw.cc.o.d"
  "/root/repo/src/workloads/pf.cc" "src/CMakeFiles/dynaspam.dir/workloads/pf.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/pf.cc.o.d"
  "/root/repo/src/workloads/ptf.cc" "src/CMakeFiles/dynaspam.dir/workloads/ptf.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/ptf.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/dynaspam.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/CMakeFiles/dynaspam.dir/workloads/srad.cc.o" "gcc" "src/CMakeFiles/dynaspam.dir/workloads/srad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
