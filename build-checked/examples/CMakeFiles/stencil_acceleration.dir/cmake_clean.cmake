file(REMOVE_RECURSE
  "CMakeFiles/stencil_acceleration.dir/stencil_acceleration.cpp.o"
  "CMakeFiles/stencil_acceleration.dir/stencil_acceleration.cpp.o.d"
  "stencil_acceleration"
  "stencil_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
