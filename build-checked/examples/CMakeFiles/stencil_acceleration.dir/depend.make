# Empty dependencies file for stencil_acceleration.
# This may be replaced when dependencies are built.
