# Empty dependencies file for multi_fabric.
# This may be replaced when dependencies are built.
