file(REMOVE_RECURSE
  "CMakeFiles/multi_fabric.dir/multi_fabric.cpp.o"
  "CMakeFiles/multi_fabric.dir/multi_fabric.cpp.o.d"
  "multi_fabric"
  "multi_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
