/**
 * @file
 * Figure 8 — Performance comparison vs the host OOO pipeline.
 *
 * For each of the 11 Rodinia-mirroring benchmarks, reports the speedup of
 * three DynaSpAM configurations over the 8-issue OOO baseline:
 *   - mapping only (isolates mapping overhead; paper: < 3% slowdown)
 *   - mapping + acceleration w/o memory speculation
 *     (paper: 1.23x geomean, slowdowns on NW and SRAD)
 *   - mapping + acceleration w/ memory speculation
 *     (paper: 1.42x geomean, no slowdowns)
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace dynaspam;
using namespace dynaspam::bench;
using sim::SystemMode;

int
main()
{
    std::printf("Figure 8: speedup vs host OOO pipeline "
                "(trace length 32, 1 fabric)\n");
    std::printf("%-6s %12s %12s %12s %12s\n", "bench", "base(cyc)",
                "mapping", "accel-nosp", "accel-spec");
    rule(5);

    // All 44 simulation points up front, executed in parallel by the
    // runner; results come back in enqueue order (4 modes per workload).
    const SystemMode modes[] = {
        SystemMode::BaselineOoo, SystemMode::MappingOnly,
        SystemMode::AccelNoSpec, SystemMode::AccelSpec};
    std::vector<runner::Job> jobs;
    for (const auto &name : workloads::allWorkloadNames())
        for (SystemMode mode : modes)
            jobs.push_back(runner::Job{name, mode, 32, 1, 1});
    const auto results = runJobs(jobs);

    std::vector<double> sp_map, sp_nospec, sp_spec;
    std::size_t row = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        const auto &base = results[row * 4 + 0];
        const auto &mapo = results[row * 4 + 1];
        const auto &nosp = results[row * 4 + 2];
        const auto &spec = results[row * 4 + 3];
        row++;

        double s_map = double(base.cycles) / double(mapo.cycles);
        double s_nosp = double(base.cycles) / double(nosp.cycles);
        double s_spec = double(base.cycles) / double(spec.cycles);
        sp_map.push_back(s_map);
        sp_nospec.push_back(s_nosp);
        sp_spec.push_back(s_spec);

        std::printf("%-6s %12llu %11.3fx %11.3fx %11.3fx\n", name.c_str(),
                    static_cast<unsigned long long>(base.cycles), s_map,
                    s_nosp, s_spec);
    }

    rule(5);
    std::printf("%-6s %12s %11.3fx %11.3fx %11.3fx\n", "geo", "",
                geomean(sp_map), geomean(sp_nospec), geomean(sp_spec));
    std::printf("\npaper reference: mapping ~1.0x (<3%% overhead), "
                "w/o spec 1.23x geomean (NW, SRAD slow down),\n"
                "w/ spec 1.42x geomean with no slowdowns\n");
    return 0;
}
