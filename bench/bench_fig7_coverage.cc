/**
 * @file
 * Figure 7 — Dynamic instruction coverage by execution engine, swept
 * over the preset trace length (16, 24, 32, 40 instructions).
 *
 * For each benchmark and trace length, reports the percentage of dynamic
 * instructions that execute on the host OOO pipeline, during the mapping
 * phase, and on the spatial fabric. The paper observes a small mapping
 * fraction everywhere, generally higher fabric coverage with longer
 * traces, and coverage *drops* when the longer trace window spills into
 * a new block (the NW/SRAD effect discussed in Section 5.2).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace dynaspam;
using namespace dynaspam::bench;
using sim::SystemMode;

int
main()
{
    const unsigned lengths[] = {16, 24, 32, 40};

    std::printf("Figure 7: dynamic instruction distribution "
                "(host / mapping / fabric %%)\n");
    std::printf("%-6s", "bench");
    for (unsigned len : lengths)
        std::printf("        len=%-2u        ", len);
    std::printf("\n");
    rule(8);

    // 11 workloads x 4 trace lengths, executed in parallel.
    std::vector<runner::Job> jobs;
    for (const auto &name : workloads::allWorkloadNames())
        for (unsigned len : lengths)
            jobs.push_back(
                runner::Job{name, SystemMode::AccelSpec, len, 1, 1});
    const auto results = runJobs(jobs);

    std::size_t idx = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        std::printf("%-6s", name.c_str());
        for (unsigned len : lengths) {
            (void)len;
            const auto &r = results[idx++];
            double total = double(r.instsTotal);
            std::printf("  %5.1f /%5.2f /%5.1f ",
                        100.0 * double(r.instsHost) / total,
                        100.0 * double(r.instsMapping) / total,
                        100.0 * double(r.instsFabric) / total);
        }
        std::printf("\n");
    }
    std::printf("\npaper reference: mapping fraction is small for all "
                "programs; longer traces generally raise\nfabric coverage, "
                "except where the window crosses into a new block "
                "(e.g. NW at 24, SRAD at 40)\n");
    return 0;
}
