/**
 * @file
 * Exploration-autopilot benchmark: the adaptive search (sampled scouts
 * + successive halving + frontier-margin promotion) must recover the
 * *exact* Pareto frontier of a fig8-shaped grid — the four comparison
 * modes crossed with trace lengths {8,16,32} and fabric pools {1,2,4}
 * — at a fraction of exhaustive full-fidelity cost.
 *
 *   bench_explore [--workload W] [--scale N] [--seed N]
 *                 [--max-cost-ratio F] [--out FILE]
 *                 [--baseline FILE] [--tolerance FRAC]
 *
 * Both engines run real simulations through a parallel Runner (no
 * result cache). Cost is measured in the engine's deterministic
 * full-fidelity job equivalents (a sampled scout costs its detailed
 * instruction fraction), so the headline ratio is byte-stable across
 * machines and thread counts; wall-clock seconds are reported as
 * corroboration only.
 *
 * The bench hard-fails (exit 1) when the adaptive frontier differs
 * from the exhaustive one in any point — cheap must not mean wrong —
 * or when cost_ratio exceeds --max-cost-ratio (default 0.5). With
 * --baseline, cost_ratio must additionally stay within --tolerance
 * (default 0.25) of the checked-in value.
 *
 * The default workload is pf at scale 32: a single hot trace makes the
 * sampled window's CPI extrapolation accurate enough for exact
 * frontier recovery at default margins. Workloads with phase-dependent
 * behaviour (e.g. km) need wider promotion margins to stay exact —
 * that trade is exactly what the margins are for, and the default
 * bench pins the regime where scouting is provably free of error.
 *
 * Report schema: see EXPERIMENTS.md ("Exploration").
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "explore/engine.hh"
#include "explore/space.hh"
#include "runner/runner.hh"

using namespace dynaspam;

namespace
{

using Clock = std::chrono::steady_clock;

struct DriveOutcome
{
    double costUnits = 0.0;
    double gridCostUnits = 0.0;
    double seconds = 0.0;
    std::size_t candidates = 0;
    /** (workload/scale, job hash) of every final-frontier point. */
    std::set<std::pair<std::string, std::string>> frontier;
};

/** Run @p space to completion on a fresh parallel Runner. */
DriveOutcome
drive(explore::Space space)
{
    runner::RunnerOptions opts;
    opts.jobs = 0;    // hardware concurrency
    runner::Runner runner(opts);
    explore::Engine engine(std::move(space));

    const Clock::time_point begin = Clock::now();
    engine.start();
    while (!engine.done())
        engine.feed(runner.runAll(engine.nextBatch()));
    const Clock::time_point end = Clock::now();

    DriveOutcome outcome;
    outcome.costUnits = engine.costUnits();
    outcome.gridCostUnits = engine.gridCostUnits();
    outcome.candidates = engine.candidateCount();
    outcome.seconds =
        std::chrono::duration<double>(end - begin).count();
    const json::Value &report = engine.finalReport();
    for (const json::Value &problem : report.at("problems").asArray()) {
        const std::string label =
            problem.at("workload").asString() + "/" +
            std::to_string(problem.at("scale").asUint());
        for (const json::Value &entry :
             problem.at("frontier").asArray()) {
            outcome.frontier.emplace(
                label, entry.at("job").at("hash").asString());
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "pf";
    unsigned scale = 32;
    std::uint64_t seed = 1;
    double max_cost_ratio = 0.5;
    std::string out = "BENCH_explore.json";
    std::string baseline;
    double tolerance = 0.25;

    for (int i = 1; i < argc; i++) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                fatal(flag, " requires a value");
            return argv[i];
        };
        if (flag == "--workload")
            workload = value();
        else if (flag == "--scale")
            scale = unsigned(std::stoul(value()));
        else if (flag == "--seed")
            seed = std::stoull(value());
        else if (flag == "--max-cost-ratio")
            max_cost_ratio = std::stod(value());
        else if (flag == "--out")
            out = value();
        else if (flag == "--baseline")
            baseline = value();
        else if (flag == "--tolerance")
            tolerance = std::stod(value());
        else
            fatal("unknown option ", flag);
    }

    // Built through fromJson so the bench space carries the exact
    // defaults (fig8 mode axis, margins) a CLI or HTTP caller gets.
    std::ostringstream spec;
    spec << "{\"name\": \"explore-bench\", \"workloads\": [\""
         << workload << "\"], \"scales\": [" << scale
         << "], \"trace_lengths\": [8, 16, 32],"
            " \"num_fabrics\": [1, 2, 4],"
            " \"objectives\": [\"speedup\", \"energy\"], \"seed\": "
         << seed << "}";
    explore::Space space =
        explore::Space::fromJson(json::Value::parse(spec.str()));

    std::printf("bench_explore: %s scale %u, %zu-point fig8 grid\n",
                workload.c_str(), scale,
                std::size_t(1 + 3 * 3 * 3));

    explore::Space exhaustive = space;
    exhaustive.exhaustive = true;
    const DriveOutcome exact = drive(std::move(exhaustive));
    const DriveOutcome adaptive = drive(std::move(space));

    const double cost_ratio =
        adaptive.gridCostUnits > 0.0
            ? adaptive.costUnits / adaptive.gridCostUnits
            : 1.0;
    const double wall_speedup =
        adaptive.seconds > 0.0 ? exact.seconds / adaptive.seconds : 0.0;

    std::printf("%-12s %8.2f cost units   %8.2f s\n", "exhaustive",
                exact.costUnits, exact.seconds);
    std::printf("%-12s %8.2f cost units   %8.2f s\n", "adaptive",
                adaptive.costUnits, adaptive.seconds);
    std::printf("%-12s %8.3f              %8.2fx wall\n", "cost ratio",
                cost_ratio, wall_speedup);
    std::printf("%-12s %zu points (exhaustive %zu)\n", "frontier",
                adaptive.frontier.size(), exact.frontier.size());

    json::Object report_obj;
    report_obj["schema_version"] = 1u;
    report_obj["name"] = "explore";
    report_obj["workload"] = workload;
    report_obj["scale"] = scale;
    report_obj["seed"] = seed;
    report_obj["candidates"] = std::uint64_t(adaptive.candidates);
    report_obj["frontier_points"] =
        std::uint64_t(adaptive.frontier.size());
    report_obj["adaptive_cost_units"] = adaptive.costUnits;
    report_obj["grid_cost_units"] = adaptive.gridCostUnits;
    report_obj["cost_ratio"] = cost_ratio;
    report_obj["exhaustive_seconds"] = exact.seconds;
    report_obj["adaptive_seconds"] = adaptive.seconds;
    report_obj["wall_speedup"] = wall_speedup;
    const json::Value report{std::move(report_obj)};

    {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write ", out);
        report.write(os, 2);
        os << "\n";
    }
    std::printf("report written to %s\n", out.c_str());

    int failed = 0;
    {
        const bool ok = adaptive.frontier == exact.frontier;
        std::printf("gate: frontier exact                           %s\n",
                    ok ? "ok" : "MISMATCH");
        if (!ok)
            failed = 1;
    }
    {
        const bool ok = cost_ratio <= max_cost_ratio;
        std::printf("gate: cost ratio %5.3f vs allowed %5.3f        %s\n",
                    cost_ratio, max_cost_ratio, ok ? "ok" : "TOO COSTLY");
        if (!ok)
            failed = 1;
    }

    if (baseline.empty())
        return failed;

    // --- Regression gate against the checked-in baseline ---
    std::ifstream is(baseline);
    if (!is)
        fatal("cannot read baseline ", baseline);
    std::stringstream buf;
    buf << is.rdbuf();
    const json::Value base = json::Value::parse(buf.str());
    const double base_ratio = base.at("cost_ratio").asDouble();
    if (!(base_ratio > 0.0))
        fatal("baseline ", baseline, " has non-positive cost_ratio ",
              base_ratio, " — regenerate it");
    // Lower is better: the measured ratio may not creep above the
    // recorded one by more than the tolerance.
    const double ceiling = base_ratio * (1.0 + tolerance);
    const bool ok = cost_ratio <= ceiling;
    std::printf("gate: cost ratio %5.3f vs baseline %5.3f "
                "(ceiling %5.3f, tol %.0f%%)  %s\n",
                cost_ratio, base_ratio, ceiling, tolerance * 100.0,
                ok ? "ok" : "REGRESSION");
    if (!ok)
        failed = 1;
    return failed;
}
