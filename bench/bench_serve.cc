/**
 * @file
 * Serving-path benchmark: sustained RPS and latency percentiles of the
 * HTTP simulation service under mixed cached/uncached traffic, for the
 * single-process daemon (serve::Server) and the coordinator/worker
 * cluster (src/cluster) side by side.
 *
 *   bench_serve [--requests N] [--connections C] [--workers W]
 *               [--cached-pct P] [--out FILE] [--baseline FILE]
 *               [--tolerance FRAC]
 *
 * Traffic: a deterministic schedule of N requests, P% of which are a
 * repeated POST /sweep (fig8/bfs, trace 16 — 4 jobs, warm after one
 * priming pass) and the rest unique POST /run specs that must simulate.
 * C client threads each hold one keep-alive connection and pull the
 * next request index from a shared counter, so both modes face the
 * same concurrency and the TCP handshake is paid once per connection,
 * not per request. Latency is wall time from first request byte to
 * last response byte; RPS counts the whole timed phase.
 *
 * Both modes run in-process on ephemeral ports with fresh cache
 * directories, so neither inherits a warm disk cache. The cluster mode
 * starts one coordinator and W worker threads (the same code paths as
 * `dynaspam coordinator` / `dynaspam worker`, minus the process
 * boundary).
 *
 * With --baseline, the run fails (exit 1) if either mode's RPS drops
 * more than --tolerance (default 0.25) below the checked-in report —
 * the serving-path analogue of bench_simspeed's KIPS gate.
 *
 * Report schema: see EXPERIMENTS.md ("Serving-path benchmark").
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/coordinator.hh"
#include "cluster/worker.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "serve/server.hh"

using namespace dynaspam;

namespace fs = std::filesystem;

namespace
{

/** The repeated (cached-after-priming) sweep body: 4 cheap jobs. */
const char *kCachedBody =
    "{\"sweep\": \"fig8\", \"workloads\": [\"bfs\"],"
    " \"trace_length\": 16}";

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<unsigned> next{0};
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-bench-serve-" + tag + "-" +
                  std::to_string(getpid()) + "-" +
                  std::to_string(next++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

int
connectTo(unsigned port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAllBytes(int fd, const std::string &wire)
{
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        sent += std::size_t(n);
    }
    return true;
}

/**
 * Read exactly one HTTP response (headers + Content-Length body)
 * without waiting for EOF, so it works on keep-alive connections.
 * @return the status code, or 0 on a broken connection
 */
int
readStatus(int fd)
{
    std::string raw;
    char chunk[8192];
    std::size_t head_end = std::string::npos;
    while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return 0;
        raw.append(chunk, std::size_t(n));
    }
    int status = 0;
    std::sscanf(raw.c_str(), "HTTP/1.1 %d", &status);

    std::size_t body_len = 0;
    const std::string headers = raw.substr(0, head_end);
    std::size_t cl = headers.find("Content-Length:");
    if (cl != std::string::npos)
        body_len = std::stoul(headers.substr(cl + 15));
    std::size_t have = raw.size() - head_end - 4;
    while (have < body_len) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return 0;
        have += std::size_t(n);
    }
    return status;
}

std::string
requestWire(const std::string &method, const std::string &target,
            const std::string &body)
{
    std::ostringstream os;
    os << method << ' ' << target << " HTTP/1.1\r\n"
       << "Host: 127.0.0.1\r\n"
       << "Connection: keep-alive\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    return os.str();
}

/** A unique /run spec: num_fabrics varies the FNV-1a hash, not the
 *  baseline-ooo simulation cost, so every miss costs about the same. */
std::string
uncachedWire(unsigned seq)
{
    std::ostringstream body;
    body << "{\"workload\": \"bfs\", \"mode\": \"baseline-ooo\","
         << " \"trace_length\": " << 16 + seq / 64
         << ", \"num_fabrics\": " << 1 + seq % 64 << "}";
    return requestWire("POST", "/run", body.str());
}

/** Outcome of one timed load phase. */
struct LoadResult
{
    double wallSeconds = 0.0;
    std::vector<double> latencyMs;    ///< per request, unsorted
    unsigned non200 = 0;

    double rps() const
    {
        return wallSeconds > 0.0 ? double(latencyMs.size()) / wallSeconds
                                 : 0.0;
    }
};

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = std::size_t(q * double(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
}

/**
 * Drive @p schedule against @p port from @p connections keep-alive
 * client threads. Each thread owns one connection and pulls the next
 * request from a shared counter until the schedule is exhausted.
 */
LoadResult
runLoad(unsigned port, const std::vector<std::string> &schedule,
        unsigned connections)
{
    LoadResult result;
    result.latencyMs.assign(schedule.size(), 0.0);
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> non200{0};

    auto client = [&] {
        int fd = connectTo(port);
        std::size_t i;
        while ((i = next.fetch_add(1)) < schedule.size()) {
            if (fd < 0)
                fd = connectTo(port);
            if (fd < 0) {
                non200++;
                continue;
            }
            const auto t0 = std::chrono::steady_clock::now();
            int status =
                sendAllBytes(fd, schedule[i]) ? readStatus(fd) : 0;
            const auto t1 = std::chrono::steady_clock::now();
            result.latencyMs[i] =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (status != 200) {
                non200++;
                ::close(fd);   // resync: reconnect before the next one
                fd = -1;
            }
        }
        if (fd >= 0)
            ::close(fd);
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < connections; c++)
        threads.emplace_back(client);
    for (std::thread &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();
    result.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    result.non200 = non200.load();
    return result;
}

/** Prime the caches: one /sweep pass so kCachedBody is warm. */
bool
prime(unsigned port)
{
    int fd = connectTo(port);
    if (fd < 0)
        return false;
    bool ok = sendAllBytes(
                  fd, requestWire("POST", "/sweep", kCachedBody)) &&
              readStatus(fd) == 200;
    ::close(fd);
    return ok;
}

/** The mixed schedule: every k-th request is a unique uncached /run. */
std::vector<std::string>
buildSchedule(unsigned requests, unsigned cached_pct)
{
    std::vector<std::string> schedule;
    schedule.reserve(requests);
    const std::string cached =
        requestWire("POST", "/sweep", kCachedBody);
    unsigned misses = 0;
    for (unsigned i = 0; i < requests; i++) {
        // i * miss_rate crosses an integer boundary -> schedule a miss.
        const unsigned miss_pct = 100 - cached_pct;
        if ((i * miss_pct) / 100 != ((i + 1) * miss_pct) / 100)
            schedule.push_back(uncachedWire(misses++));
        else
            schedule.push_back(cached);
    }
    return schedule;
}

json::Value
loadToJson(const LoadResult &load)
{
    std::vector<double> sorted = load.latencyMs;
    std::sort(sorted.begin(), sorted.end());
    json::Object o;
    o["requests"] = std::uint64_t(load.latencyMs.size());
    o["seconds"] = load.wallSeconds;
    o["rps"] = load.rps();
    o["p50_ms"] = percentile(sorted, 0.50);
    o["p99_ms"] = percentile(sorted, 0.99);
    o["p999_ms"] = percentile(sorted, 0.999);
    o["non_200"] = std::uint64_t(load.non200);
    return o;
}

void
printRow(const char *name, const json::Value &row)
{
    std::printf("%-8s %8.1f rps %9.2f p50 %9.2f p99 %9.2f p999 %6llu "
                "non-200\n",
                name, row.at("rps").asDouble(),
                row.at("p50_ms").asDouble(), row.at("p99_ms").asDouble(),
                row.at("p999_ms").asDouble(),
                static_cast<unsigned long long>(
                    row.at("non_200").asUint()));
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_serve [--requests N] [--connections C]\n"
        "                   [--workers W] [--cached-pct P]\n"
        "                   [--out FILE] [--baseline FILE]\n"
        "                   [--tolerance FRAC]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned requests = 400;
    unsigned connections = 4;
    unsigned workers = 4;
    unsigned cached_pct = 90;
    double tolerance = 0.25;
    std::string out = "BENCH_serve.json";
    std::string baseline;

    for (int i = 1; i < argc; i++) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for ", flag);
            return argv[i];
        };
        if (flag == "--requests")
            requests = unsigned(std::stoul(value()));
        else if (flag == "--connections")
            connections = unsigned(std::stoul(value()));
        else if (flag == "--workers")
            workers = unsigned(std::stoul(value()));
        else if (flag == "--cached-pct")
            cached_pct = unsigned(std::stoul(value()));
        else if (flag == "--out")
            out = value();
        else if (flag == "--baseline")
            baseline = value();
        else if (flag == "--tolerance")
            tolerance = std::stod(value());
        else
            return usage();
    }
    if (requests == 0 || connections == 0 || workers == 0 ||
        cached_pct > 100)
        return usage();

    const std::vector<std::string> schedule =
        buildSchedule(requests, cached_pct);
    std::printf("serve: %u requests (%u%% cached), %u connections, "
                "%u-worker cluster\n",
                requests, cached_pct, connections, workers);

    // --- Single-process daemon -----------------------------------------
    json::Value single_row;
    {
        TempDir cache("single");
        serve::ServerOptions opts;
        opts.port = 0;
        opts.cacheDir = cache.path();
        opts.verbose = false;
        serve::Server server(opts);
        server.start();
        if (!prime(server.port()))
            fatal("single-process priming request failed");
        single_row = loadToJson(
            runLoad(server.port(), schedule, connections));
        server.beginDrain();
        server.waitUntilDrained();
    }
    printRow("single", single_row);

    // --- Coordinator + W workers ---------------------------------------
    json::Value cluster_row;
    {
        TempDir cache("cluster");
        cluster::CoordinatorOptions copts;
        copts.httpPort = 0;
        copts.workerPort = 0;
        copts.workerSlots = workers;
        copts.verbose = false;
        cluster::Coordinator coordinator(copts);
        coordinator.start();

        std::vector<std::unique_ptr<cluster::Worker>> fleet;
        std::vector<std::thread> fleet_threads;
        for (unsigned w = 0; w < workers; w++) {
            cluster::WorkerOptions wopts;
            wopts.connectPort = coordinator.workerPort();
            wopts.cacheDir = cache.path() + "/worker-" +
                             std::to_string(w);
            wopts.verbose = false;
            fleet.push_back(
                std::make_unique<cluster::Worker>(wopts));
            fleet_threads.emplace_back(
                [&fleet, w] { fleet[w]->run(); });
        }
        for (unsigned waited = 0; waited < 10000; waited++) {
            if (coordinator.metrics().value(
                    "dynaspam_cluster_workers_connected") == workers)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }

        if (!prime(coordinator.httpPort()))
            fatal("cluster priming request failed");
        cluster_row = loadToJson(
            runLoad(coordinator.httpPort(), schedule, connections));
        coordinator.beginDrain();
        coordinator.waitUntilDrained();
        for (std::thread &t : fleet_threads)
            t.join();
    }
    printRow("cluster", cluster_row);

    const double ratio =
        single_row.at("rps").asDouble() > 0.0
            ? cluster_row.at("rps").asDouble() /
                  single_row.at("rps").asDouble()
            : 0.0;
    std::printf("cluster/single RPS ratio: %.2fx\n", ratio);

    json::Object report_obj;
    report_obj["schema_version"] = 1u;
    report_obj["name"] = "serve";
    report_obj["requests"] = requests;
    report_obj["connections"] = connections;
    report_obj["workers"] = workers;
    report_obj["cached_pct"] = cached_pct;
    json::Object configs;
    configs["single"] = std::move(single_row);
    configs["cluster"] = std::move(cluster_row);
    report_obj["configs"] = std::move(configs);
    report_obj["cluster_vs_single_rps"] = ratio;
    const json::Value report{std::move(report_obj)};

    {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write ", out);
        report.write(os, 2);
        os << "\n";
    }
    std::printf("report written to %s\n", out.c_str());

    if (baseline.empty())
        return 0;

    // --- Regression gate against the checked-in baseline ---------------
    std::ifstream is(baseline);
    if (!is)
        fatal("cannot read baseline ", baseline);
    std::stringstream buf;
    buf << is.rdbuf();
    const json::Value base = json::Value::parse(buf.str());

    int failed = 0;
    for (const char *config : {"single", "cluster"}) {
        const double base_rps =
            base.at("configs").at(config).at("rps").asDouble();
        // A non-positive baseline would gate against nothing; fail
        // loudly instead (same policy as bench_simspeed).
        if (!(base_rps > 0.0))
            fatal("baseline ", baseline, " has non-positive ", config,
                  " rps ", base_rps, " — regenerate it");
        const double cur_rps =
            report.at("configs").at(config).at("rps").asDouble();
        const double floor = base_rps * (1.0 - tolerance);
        const bool ok = cur_rps >= floor;
        std::printf("gate: %-8s %8.1f rps vs baseline %8.1f "
                    "(floor %8.1f, tol %.0f%%)  %s\n",
                    config, cur_rps, base_rps, floor, tolerance * 100.0,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            failed = 1;
    }
    return failed;
}
