/**
 * @file
 * Figure 9 — Energy consumption breakdown, DynaSpAM vs baseline.
 *
 * For each benchmark, reports the per-component energy of the baseline
 * OOO pipeline and the accelerated (mapping + speculation) system,
 * normalized to the baseline total, plus the overall reduction. The
 * paper's observations: Fetch, Rename, InstSchedule and Datapath energy
 * all shrink; Memory grows slightly; the fabric's own energy is greater
 * than the baseline's Execution component alone but smaller than
 * Execution + Datapath + InstSchedule; total reduction 2.5%-36.9%,
 * geomean 23.9%.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace dynaspam;
using namespace dynaspam::bench;
using sim::SystemMode;

namespace
{

const char *components[] = {
    "Fetch", "Rename", "InstSchedule", "Datapath", "ROB",
    "Execution", "Memory", "Fabric", "ConfigCache", "Leakage",
};

} // namespace

int
main()
{
    std::printf("Figure 9: per-component energy, accel-spec vs baseline "
                "(%% of baseline total)\n\n");

    // One baseline + one accelerated run per workload, in parallel.
    std::vector<runner::Job> jobs;
    for (const auto &name : workloads::allWorkloadNames()) {
        jobs.push_back(
            runner::Job{name, SystemMode::BaselineOoo, 32, 1, 1});
        jobs.push_back(runner::Job{name, SystemMode::AccelSpec, 32, 1, 1});
    }
    const auto results = runJobs(jobs);

    std::vector<double> reductions;
    std::size_t row = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        const auto &base = results[row * 2 + 0];
        const auto &accel = results[row * 2 + 1];
        row++;
        const double base_total = base.energy.total();

        std::printf("%-5s %-13s %10s %10s\n", name.c_str(), "component",
                    "baseline", "dynaspam");
        for (const char *comp : components) {
            double b = 0.0, a = 0.0;
            auto itb = base.energy.component.find(comp);
            if (itb != base.energy.component.end())
                b = itb->second;
            auto ita = accel.energy.component.find(comp);
            if (ita != accel.energy.component.end())
                a = ita->second;
            std::printf("%-5s %-13s %9.2f%% %9.2f%%\n", "", comp,
                        100.0 * b / base_total, 100.0 * a / base_total);
        }
        double reduction =
            100.0 * (1.0 - accel.energy.total() / base_total);
        reductions.push_back(1.0 - accel.energy.total() / base_total);
        std::printf("%-5s %-13s %10s %8.2f%%  (energy reduction)\n\n", "",
                    "TOTAL", "100.00%", reduction);
    }

    std::vector<double> ratios;
    for (double r : reductions)
        ratios.push_back(1.0 - r);      // remaining-energy ratios
    double geo_reduction = 100.0 * (1.0 - geomean(ratios));
    std::printf("geomean energy reduction: %.1f%%\n", geo_reduction);
    std::printf("\npaper reference: reductions of 2.5%%-36.9%% with a "
                "23.9%% geomean; Fetch/Rename/InstSchedule/\nDatapath "
                "shrink, Memory grows slightly, Fabric < Execution + "
                "Datapath + InstSchedule\n");
    return 0;
}
