/**
 * @file
 * Snapshot/fork sweep benchmark: wall-clock speedup of the forked
 * runner path (warm the shared prefix once, fork every configuration
 * from the warmed snapshot) over straight-through execution, on a
 * fig8-style group of points that share a warmup prefix.
 *
 *   bench_snapshot [--workload W] [--scale N] [--points N] [--repeat N]
 *                  [--warmup-frac F] [--min-speedup X] [--out FILE]
 *                  [--baseline FILE] [--tolerance FRAC]
 *
 * The group is accel-spec x fabric pools {1..points} on one workload
 * (default pf, whose single hot trace keeps the fork-group WarmupGuard
 * quiet for the whole prefix). The warmup length is --warmup-frac
 * (default 0.75) of the workload's committed instruction count, probed
 * with one untimed run. Both paths execute on a single worker thread
 * with the result cache disabled, so the comparison is pure serial
 * wall time; each path is timed --repeat times (default 5) and the
 * fastest run is kept.
 *
 * The bench hard-fails (exit 1) if any merged report entry differs
 * between the two paths — the forked sweep must be byte-identical at
 * full fidelity, not just faster.
 *
 * Gates: the measured speedup must reach --min-speedup (default 2.0),
 * and with --baseline it must additionally stay within --tolerance
 * (default 0.25) of the checked-in baseline's speedup.
 *
 * Report schema: see EXPERIMENTS.md ("Forked sweeps & sampled
 * fidelity").
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/runner.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace
{

/** Serial wall time of one sweep execution plus its report bytes. */
struct Timed
{
    double seconds = 0.0;
    std::vector<std::string> entries;
};

Timed
timeSweep(const std::vector<Job> &jobs, bool fork, unsigned repeat)
{
    Timed best;
    for (unsigned i = 0; i < repeat; i++) {
        runner::RunnerOptions opts;
        opts.jobs = 1;          // serial: compare work, not parallelism
        opts.forkSweeps = fork; // cache stays disabled (no cacheDir)
        runner::Runner r(opts);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<runner::JobOutcome> outcomes = r.runAll(jobs);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        std::vector<std::string> entries;
        entries.reserve(outcomes.size());
        for (const runner::JobOutcome &outcome : outcomes)
            entries.push_back(runner::sweepEntryJson(outcome).dump());
        if (i == 0 || secs < best.seconds)
            best.seconds = secs;
        if (i == 0)
            best.entries = std::move(entries);
        else if (entries != best.entries)
            fatal("sweep reports differ between repeats (fork=", fork,
                  ") — the simulator is nondeterministic");
    }
    return best;
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_snapshot [--workload W] [--scale N] [--points N]\n"
        "                      [--repeat N] [--warmup-frac F]\n"
        "                      [--min-speedup X] [--out FILE]\n"
        "                      [--baseline FILE] [--tolerance FRAC]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "pf";
    unsigned scale = 1;
    unsigned points = 8;
    unsigned repeat = 5;
    double warmup_frac = 0.75;
    double min_speedup = 2.0;
    double tolerance = 0.25;
    std::string out = "BENCH_snapshot.json";
    std::string baseline;

    for (int i = 1; i < argc; i++) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for ", flag);
            return argv[i];
        };
        if (flag == "--workload")
            workload = workloads::canonicalWorkloadName(value());
        else if (flag == "--scale")
            scale = unsigned(std::stoul(value()));
        else if (flag == "--points")
            points = unsigned(std::stoul(value()));
        else if (flag == "--repeat")
            repeat = unsigned(std::stoul(value()));
        else if (flag == "--warmup-frac")
            warmup_frac = std::stod(value());
        else if (flag == "--min-speedup")
            min_speedup = std::stod(value());
        else if (flag == "--out")
            out = value();
        else if (flag == "--baseline")
            baseline = value();
        else if (flag == "--tolerance")
            tolerance = std::stod(value());
        else
            return usage();
    }
    if (repeat == 0 || points < 2 || warmup_frac <= 0.0 ||
        warmup_frac >= 1.0)
        return usage();

    // Probe the workload's length (untimed) to size the shared prefix.
    const sim::RunResult probe = runner::execute(
        Job{workload, SystemMode::AccelSpec, 32, 1, scale});
    const std::uint64_t warmup =
        std::uint64_t(double(probe.instsTotal) * warmup_frac);

    std::vector<Job> jobs;
    for (unsigned f = 1; f <= points; f++) {
        Job job{workload, SystemMode::AccelSpec, 32, f, scale};
        job.warmupInsts = warmup;
        jobs.push_back(job);
    }

    std::printf("snapshot: %s scale %u, %u points (accel-spec x fabrics "
                "1..%u),\n          warmup %llu/%llu insts, best of %u "
                "run%s per path\n",
                workload.c_str(), scale, points, points,
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(probe.instsTotal), repeat,
                repeat == 1 ? "" : "s");

    const Timed straight = timeSweep(jobs, false, repeat);
    const Timed forked = timeSweep(jobs, true, repeat);

    // Byte-identity is the contract, not a statistic: any drift between
    // the two execution strategies invalidates every forked figure.
    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (forked.entries[i] != straight.entries[i])
            fatal("forked report diverges from straight-through for ",
                  jobs[i].key());
    }

    const double speedup =
        forked.seconds > 0.0 ? straight.seconds / forked.seconds : 0.0;
    std::printf("%-10s %10.4f s\n", "straight", straight.seconds);
    std::printf("%-10s %10.4f s\n", "forked", forked.seconds);
    std::printf("%-10s %10.2fx   (reports byte-identical)\n", "speedup",
                speedup);

    json::Object report_obj;
    report_obj["schema_version"] = 1u;
    report_obj["name"] = "snapshot";
    report_obj["workload"] = workload;
    report_obj["scale"] = scale;
    report_obj["points"] = points;
    report_obj["repeat"] = repeat;
    report_obj["warmup_insts"] = warmup;
    report_obj["insts_total"] = probe.instsTotal;
    report_obj["straight_seconds"] = straight.seconds;
    report_obj["forked_seconds"] = forked.seconds;
    report_obj["speedup"] = speedup;
    const json::Value report{std::move(report_obj)};

    {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write ", out);
        report.write(os, 2);
        os << "\n";
    }
    std::printf("report written to %s\n", out.c_str());

    int failed = 0;
    {
        const bool ok = speedup >= min_speedup;
        std::printf("gate: speedup %6.2fx vs required %6.2fx            "
                    "%s\n",
                    speedup, min_speedup, ok ? "ok" : "TOO SLOW");
        if (!ok)
            failed = 1;
    }

    if (baseline.empty())
        return failed;

    // --- Regression gate against the checked-in baseline ---
    std::ifstream is(baseline);
    if (!is)
        fatal("cannot read baseline ", baseline);
    std::stringstream buf;
    buf << is.rdbuf();
    const json::Value base = json::Value::parse(buf.str());
    const double base_speedup = base.at("speedup").asDouble();
    // A non-positive baseline would make the floor 0 and wave every
    // regression through; fail loudly instead of gating against nothing.
    if (!(base_speedup > 0.0)) {
        fatal("baseline ", baseline, " has non-positive speedup ",
              base_speedup, " — regenerate it");
    }
    const double floor = base_speedup * (1.0 - tolerance);
    const bool ok = speedup >= floor;
    std::printf("gate: speedup %6.2fx vs baseline %6.2fx (floor %6.2fx, "
                "tol %.0f%%)  %s\n",
                speedup, base_speedup, floor, tolerance * 100.0,
                ok ? "ok" : "REGRESSION");
    if (!ok)
        failed = 1;
    return failed;
}
