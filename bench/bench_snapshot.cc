/**
 * @file
 * Snapshot/fork sweep benchmark: wall-clock speedup of the forked
 * runner path (warm the shared prefix once, fork every configuration
 * from the warmed snapshot) over straight-through execution, plus the
 * cluster-sharded variant (2 workers, fork-group sharding, warm
 * on-disk SnapshotCache).
 *
 *   bench_snapshot [--workload W] [--scale N]
 *                  [--points N] [--repeat N] [--warmup-frac F]
 *                  [--min-speedup X] [--min-cluster-gain X]
 *                  [--out FILE] [--baseline FILE] [--tolerance FRAC]
 *
 * The job set is accel-spec x fabric pools {1..points} on one workload
 * (default pf, whose single hot trace keeps the fork-group WarmupGuard
 * quiet for the whole prefix), twice: once with a warmup prefix of
 * --warmup-frac (default 0.92) of the workload's committed instruction
 * count (probed with one untimed run) and once with 7/8 of that — two
 * distinct fork groups, nudged by a few warmup instructions so their
 * group hashes shard to different owner slots in a 2-worker cluster.
 * The straight and forked paths execute on a single worker thread with
 * the result cache disabled, so that comparison is pure serial wall
 * time; each path is timed --repeat times (default 5) and the fastest
 * run is kept.
 *
 * The cluster variant starts an in-process coordinator plus two
 * workers that share nothing but a snapshot-cache directory: one
 * untimed pass warms and persists both groups' prefixes, then the
 * timed passes re-execute every job (no result cache) with the warmed
 * state loading from disk and the two groups forking on their owner
 * shards in parallel. Its merged report must be byte-identical to the
 * single-process --no-fork report.
 *
 * The bench hard-fails (exit 1) if any report entry differs between
 * paths — forked and cluster sweeps must be byte-identical at full
 * fidelity, not just faster.
 *
 * Gates: the forked speedup must reach --min-speedup (default 2.0);
 * the warm cluster sweep must beat the in-process forked path by
 * --min-cluster-gain (default 1.0, i.e. at least parity); and with
 * --baseline both speedups must additionally stay within --tolerance
 * (default 0.25) of the checked-in baseline.
 *
 * Report schema: see EXPERIMENTS.md ("Forked sweeps & sampled
 * fidelity").
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.hh"
#include "cluster/coordinator.hh"
#include "cluster/worker.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/runner.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace
{

namespace fs = std::filesystem;

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-bench-" + tag + "-" + std::to_string(getpid())))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

int
connectTo(unsigned port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAllBytes(int fd, const std::string &wire)
{
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        sent += std::size_t(n);
    }
    return true;
}

/** Read one full HTTP response body (Content-Length framed). */
std::string
readBody(int fd)
{
    std::string raw;
    char chunk[8192];
    std::size_t head_end = std::string::npos;
    while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return "";
        raw.append(chunk, std::size_t(n));
    }
    std::size_t body_len = 0;
    const std::string headers = raw.substr(0, head_end);
    std::size_t cl = headers.find("Content-Length:");
    if (cl != std::string::npos)
        body_len = std::stoul(headers.substr(cl + 15));
    std::string body = raw.substr(head_end + 4);
    while (body.size() < body_len) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        body.append(chunk, std::size_t(n));
    }
    return body;
}

/** {"jobs": [...]} sweep body for @p jobs (coordinator spec format). */
std::string
sweepBodyFor(const std::vector<Job> &jobs)
{
    std::ostringstream os;
    os << "{\"jobs\": [";
    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (i)
            os << ", ";
        os << "{\"workload\": \"" << jobs[i].workload << "\","
           << " \"mode\": \"" << sim::modeName(jobs[i].mode) << "\","
           << " \"trace_length\": " << jobs[i].traceLength << ","
           << " \"num_fabrics\": " << jobs[i].numFabrics << ","
           << " \"scale\": " << jobs[i].scale << ","
           << " \"warmup_insts\": " << jobs[i].warmupInsts << "}";
    }
    os << "]}";
    return os.str();
}

/** Serial wall time of one sweep execution plus its report bytes. */
struct Timed
{
    double seconds = 0.0;
    std::vector<std::string> entries;
};

Timed
timeSweep(const std::vector<Job> &jobs, bool fork, unsigned repeat)
{
    Timed best;
    for (unsigned i = 0; i < repeat; i++) {
        runner::RunnerOptions opts;
        opts.jobs = 1;          // serial: compare work, not parallelism
        opts.forkSweeps = fork; // cache stays disabled (no cacheDir)
        runner::Runner r(opts);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<runner::JobOutcome> outcomes = r.runAll(jobs);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        std::vector<std::string> entries;
        entries.reserve(outcomes.size());
        for (const runner::JobOutcome &outcome : outcomes)
            entries.push_back(runner::sweepEntryJson(outcome).dump());
        if (i == 0 || secs < best.seconds)
            best.seconds = secs;
        if (i == 0)
            best.entries = std::move(entries);
        else if (entries != best.entries)
            fatal("sweep reports differ between repeats (fork=", fork,
                  ") — the simulator is nondeterministic");
    }
    return best;
}

/**
 * Time the group-sharded cluster path: coordinator + 2 workers sharing
 * a snapshot-cache directory, one untimed pass to warm and persist the
 * fork-group prefixes, then @p repeat timed sweeps re-executing every
 * job from the on-disk snapshots. Every response body must equal
 * @p expected (the single-process --no-fork report).
 * @return fastest timed-sweep wall seconds
 */
double
timeClusterSweep(const std::vector<Job> &jobs, unsigned repeat,
                 const std::string &expected)
{
    TempDir snaps("snapshot");
    cluster::CoordinatorOptions copts;
    copts.httpPort = 0;
    copts.workerPort = 0;
    copts.workerSlots = 2;
    copts.verbose = false;
    cluster::Coordinator coordinator(copts);
    coordinator.start();

    std::vector<std::unique_ptr<cluster::Worker>> workers;
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < 2; i++) {
        cluster::WorkerOptions wopts;
        wopts.connectPort = coordinator.workerPort();
        wopts.snapshotCacheDir = snaps.path();
        // No result cache and no memo: every timed pass re-executes all
        // jobs, so the snapshot cache is the only thing being measured.
        wopts.memoCapacity = 0;
        wopts.verbose = false;
        workers.push_back(std::make_unique<cluster::Worker>(wopts));
        threads.emplace_back([&workers, i] { workers[i]->run(); });
    }
    for (unsigned waited = 0; waited < 10000; waited++) {
        if (coordinator.metrics().value(
                "dynaspam_cluster_workers_connected") == 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const std::string wire = [&] {
        const std::string body = sweepBodyFor(jobs);
        std::ostringstream os;
        os << "POST /sweep HTTP/1.1\r\nHost: 127.0.0.1\r\n"
           << "Connection: keep-alive\r\n"
           << "Content-Length: " << body.size() << "\r\n\r\n" << body;
        return os.str();
    }();

    // One keep-alive connection: untimed warm pass populates the
    // snapshot files, then the timed passes load them.
    const int fd = connectTo(coordinator.httpPort());
    if (fd < 0)
        fatal("cannot reach the in-process coordinator");
    double best = 0.0;
    for (unsigned i = 0; i <= repeat; i++) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!sendAllBytes(fd, wire))
            fatal("cluster sweep request failed");
        const std::string body = readBody(fd);
        const auto t1 = std::chrono::steady_clock::now();
        if (body != expected)
            fatal("cluster sweep report diverges from the "
                  "single-process --no-fork report (pass ", i, ")");
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        if (std::getenv("BENCH_DEBUG"))
            std::printf("  cluster pass %u: %.4f s (warmups w0=%g w1=%g)\n",
                        i, secs,
                        coordinator.metrics().value(
                            "dynaspam_cluster_worker_warmups",
                            "worker=\"0\""),
                        coordinator.metrics().value(
                            "dynaspam_cluster_worker_warmups",
                            "worker=\"1\""));
        if (i == 1 || (i > 1 && secs < best))
            best = secs;    // pass 0 is the untimed warm pass
    }
    ::close(fd);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    for (std::thread &t : threads)
        t.join();
    return best;
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_snapshot [--workload W]\n"
        "                      [--scale N] [--points N]\n"
        "                      [--repeat N] [--warmup-frac F]\n"
        "                      [--min-speedup X] [--min-cluster-gain X]\n"
        "                      [--out FILE]\n"
        "                      [--baseline FILE] [--tolerance FRAC]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "pf";
    unsigned scale = 2;
    unsigned points = 8;
    unsigned repeat = 5;
    // High warm fractions make the shared prefix the dominant cost, so
    // both the fork win (vs straight) and the snapshot-cache win (vs
    // re-warming) are measured where they matter.
    double warmup_frac = 0.92;
    double min_speedup = 2.0;
    double min_cluster_gain = 1.0;
    double tolerance = 0.25;
    std::string out = "BENCH_snapshot.json";
    std::string baseline;

    for (int i = 1; i < argc; i++) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for ", flag);
            return argv[i];
        };
        if (flag == "--workload")
            workload = workloads::canonicalWorkloadName(value());
        else if (flag == "--scale")
            scale = unsigned(std::stoul(value()));
        else if (flag == "--points")
            points = unsigned(std::stoul(value()));
        else if (flag == "--repeat")
            repeat = unsigned(std::stoul(value()));
        else if (flag == "--warmup-frac")
            warmup_frac = std::stod(value());
        else if (flag == "--min-speedup")
            min_speedup = std::stod(value());
        else if (flag == "--min-cluster-gain")
            min_cluster_gain = std::stod(value());
        else if (flag == "--out")
            out = value();
        else if (flag == "--baseline")
            baseline = value();
        else if (flag == "--tolerance")
            tolerance = std::stod(value());
        else
            return usage();
    }
    if (repeat == 0 || points < 2 || warmup_frac <= 0.0 ||
        warmup_frac >= 1.0)
        return usage();

    // Probe the workload's length (untimed) to size the shared prefixes.
    const sim::RunResult probe = runner::execute(
        Job{workload, SystemMode::AccelSpec, 32, 1, scale});
    const std::uint64_t insts_total = probe.instsTotal;
    const std::uint64_t warmup =
        std::uint64_t(double(insts_total) * warmup_frac);
    std::uint64_t warmup2 =
        std::uint64_t(double(insts_total) * warmup_frac * 7.0 / 8.0);
    // Nudge the second group's warmup until the two fork groups hash to
    // different owner slots, so a 2-worker cluster genuinely shards.
    {
        Job a{workload, SystemMode::AccelSpec, 32, 1, scale};
        a.warmupInsts = warmup;
        const unsigned slotA =
            cluster::ownerSlot(runner::forkGroupHash(a), 2);
        Job b = a;
        b.warmupInsts = warmup2;
        while (cluster::ownerSlot(runner::forkGroupHash(b), 2) == slotA &&
               b.warmupInsts + 1 < warmup)
            b.warmupInsts++;
        warmup2 = b.warmupInsts;
    }

    std::vector<Job> jobs;
    for (std::uint64_t group_warmup : {warmup, warmup2}) {
        for (unsigned f = 1; f <= points; f++) {
            Job job{workload, SystemMode::AccelSpec, 32, f, scale};
            job.warmupInsts = group_warmup;
            jobs.push_back(job);
        }
    }

    std::printf("snapshot: %s scale %u, 2 groups x %u points (accel-spec "
                "x fabrics 1..%u),\n          warmups %llu+%llu/%llu "
                "insts, best of %u run%s per path\n",
                workload.c_str(), scale, points, points,
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(warmup2),
                static_cast<unsigned long long>(insts_total), repeat,
                repeat == 1 ? "" : "s");

    const Timed straight = timeSweep(jobs, false, repeat);
    const Timed forked = timeSweep(jobs, true, repeat);

    // Byte-identity is the contract, not a statistic: any drift between
    // the two execution strategies invalidates every forked figure.
    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (forked.entries[i] != straight.entries[i])
            fatal("forked report diverges from straight-through for ",
                  jobs[i].key());
    }

    // The exact single-process --no-fork report the cluster must emit.
    const std::string expected = [&] {
        runner::RunnerOptions opts;
        opts.jobs = 1;
        opts.forkSweeps = false;
        runner::Runner r(opts);
        std::vector<runner::JobOutcome> outcomes = r.runAll(jobs);
        std::ostringstream os;
        runner::writeSweepReport(os, "custom", outcomes, &r.stats());
        return os.str();
    }();
    const double cluster_seconds =
        timeClusterSweep(jobs, repeat, expected);

    const double speedup =
        forked.seconds > 0.0 ? straight.seconds / forked.seconds : 0.0;
    const double cluster_speedup =
        cluster_seconds > 0.0 ? straight.seconds / cluster_seconds : 0.0;
    const double cluster_gain =
        cluster_seconds > 0.0 ? forked.seconds / cluster_seconds : 0.0;
    std::printf("%-10s %10.4f s\n", "straight", straight.seconds);
    std::printf("%-10s %10.4f s\n", "forked", forked.seconds);
    std::printf("%-10s %10.4f s   (2 workers, warm snapshot cache)\n",
                "cluster", cluster_seconds);
    std::printf("%-10s %10.2fx   (reports byte-identical)\n", "speedup",
                speedup);
    std::printf("%-10s %10.2fx   over the in-process forked path\n",
                "clustergain", cluster_gain);

    json::Object report_obj;
    report_obj["schema_version"] = 2u;
    report_obj["name"] = "snapshot";
    report_obj["workload"] = workload;
    report_obj["scale"] = scale;
    report_obj["points"] = points;
    report_obj["repeat"] = repeat;
    report_obj["warmup_insts"] = warmup;
    report_obj["warmup2_insts"] = warmup2;
    report_obj["insts_total"] = insts_total;
    report_obj["straight_seconds"] = straight.seconds;
    report_obj["forked_seconds"] = forked.seconds;
    report_obj["cluster_seconds"] = cluster_seconds;
    report_obj["speedup"] = speedup;
    report_obj["cluster_speedup"] = cluster_speedup;
    report_obj["cluster_gain"] = cluster_gain;
    const json::Value report{std::move(report_obj)};

    {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write ", out);
        report.write(os, 2);
        os << "\n";
    }
    std::printf("report written to %s\n", out.c_str());

    int failed = 0;
    {
        const bool ok = speedup >= min_speedup;
        std::printf("gate: speedup %6.2fx vs required %6.2fx            "
                    "%s\n",
                    speedup, min_speedup, ok ? "ok" : "TOO SLOW");
        if (!ok)
            failed = 1;
    }
    {
        const bool ok = cluster_gain >= min_cluster_gain;
        std::printf("gate: cluster gain %6.2fx vs required %6.2fx       "
                    "%s\n",
                    cluster_gain, min_cluster_gain, ok ? "ok" : "TOO SLOW");
        if (!ok)
            failed = 1;
    }

    if (baseline.empty())
        return failed;

    // --- Regression gate against the checked-in baseline ---
    std::ifstream is(baseline);
    if (!is)
        fatal("cannot read baseline ", baseline);
    std::stringstream buf;
    buf << is.rdbuf();
    const json::Value base = json::Value::parse(buf.str());
    auto gateAgainst = [&](const char *key, double measured) {
        const json::Value *field = base.find(key);
        if (!field)
            return;    // pre-cluster baselines lack the new keys
        const double base_speedup = field->asDouble();
        // A non-positive baseline would make the floor 0 and wave every
        // regression through; fail loudly instead of gating on nothing.
        if (!(base_speedup > 0.0)) {
            fatal("baseline ", baseline, " has non-positive ", key, " ",
                  base_speedup, " — regenerate it");
        }
        const double floor = base_speedup * (1.0 - tolerance);
        const bool ok = measured >= floor;
        std::printf("gate: %s %6.2fx vs baseline %6.2fx (floor %6.2fx, "
                    "tol %.0f%%)  %s\n",
                    key, measured, base_speedup, floor, tolerance * 100.0,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            failed = 1;
    };
    gateAgainst("speedup", speedup);
    gateAgainst("cluster_speedup", cluster_speedup);
    return failed;
}
