/**
 * @file
 * Ablation B — does perturbing the issue priority hurt the host?
 *
 * Section 4.1 claims that replacing the host's oldest-first priority
 * rule with the mapper's resource-aware scores "does not cause a
 * significant performance change" (citing Butler & Patt). This ablation
 * measures it directly: the host pipeline runs each benchmark with the
 * default oldest-first select and with a deliberately perturbed policy
 * (pseudo-random tie ordering), and reports the cycle deltas.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "isa/executor.hh"
#include "ooo/cpu.hh"
#include "ooo/policy.hh"
#include "runner/thread_pool.hh"

using namespace dynaspam;
using namespace dynaspam::bench;

namespace
{

/** Scores candidates by a hash of their sequence number: a stand-in for
 *  "any reasonable but different priority rule". */
class HashedPriorityPolicy : public ooo::SelectPolicy
{
  public:
    int
    score(unsigned fu_index, const ooo::DynInst &inst) override
    {
        (void)fu_index;
        // Small positive scores; ties still break oldest-first.
        return int((inst.seq * 2654435761u) >> 29);
    }

    void selected(unsigned, const ooo::DynInst &) override {}
};

} // namespace

int
main()
{
    std::printf("Ablation: issue-priority perturbation on the host "
                "pipeline\n");
    std::printf("%-6s %12s %12s %9s\n", "bench", "oldest-1st",
                "perturbed", "delta");
    rule(4);

    // These runs use a custom SelectPolicy, which a runner::Job cannot
    // express, so they go through the work-stealing pool directly: one
    // task per workload, results stored by index.
    const auto &names = workloads::allWorkloadNames();
    std::vector<std::pair<Cycle, Cycle>> cycles(names.size());
    runner::ThreadPool pool(runner::ThreadPool::defaultWorkers());
    pool.parallelFor(names.size(), [&](std::size_t i) {
        workloads::Workload wl = workloads::makeWorkload(names[i]);

        mem::FunctionalMemory m1 = wl.initialMemory;
        isa::DynamicTrace trace(wl.program);
        isa::Executor::run(wl.program, m1, &trace);

        mem::MemoryHierarchy h1;
        ooo::OooCpu cpu1(ooo::OooParams{}, trace, h1);
        Cycle base = cpu1.run();

        mem::MemoryHierarchy h2;
        ooo::OooCpu cpu2(ooo::OooParams{}, trace, h2);
        HashedPriorityPolicy perturbed;
        cpu2.setSelectPolicyForTesting(&perturbed);
        Cycle alt = cpu2.run();

        cycles[i] = {base, alt};
    });

    std::vector<double> deltas;
    for (std::size_t i = 0; i < names.size(); i++) {
        auto [base, alt] = cycles[i];
        double delta = 100.0 * (double(alt) - double(base)) / double(base);
        deltas.push_back(delta);
        std::printf("%-6s %12llu %12llu %8.2f%%\n", names[i].c_str(),
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(alt), delta);
    }
    rule(4);
    double worst = 0;
    for (double d : deltas)
        worst = std::max(worst, std::abs(d));
    std::printf("max |delta|: %.2f%%\n", worst);
    std::printf("\npaper reference: Section 4.1 — changing the select "
                "priority is expected to cause no\nsignificant "
                "performance change on the host pipeline\n");
    return 0;
}
