/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Each bench binary reproduces one table or figure from the paper's
 * evaluation section: it runs the 11 workloads through the relevant
 * system configurations and prints the same rows/series the paper
 * reports. Absolute numbers differ from the paper (the substrate is this
 * repository's simulator, not the authors' gem5 testbed); the *shape* —
 * who wins, by roughly what factor, where the crossovers fall — is the
 * reproduction target. See EXPERIMENTS.md.
 *
 * Since the runner subsystem landed, benches are two-phase: build the
 * full job list up front, execute it through runner::Runner (parallel
 * across worker threads, optionally cached), then print rows from the
 * in-order result vector. Knobs, via environment variables so the
 * binaries stay argument-free:
 *
 *   DYNASPAM_JOBS=N     worker threads (default: hardware concurrency)
 *   DYNASPAM_CACHE=DIR  enable the on-disk result cache at DIR
 */

#ifndef DYNASPAM_BENCH_UTIL_HH
#define DYNASPAM_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "runner/runner.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace dynaspam::bench
{

/** Runner options honoring the bench environment knobs. */
inline runner::RunnerOptions
benchRunnerOptions()
{
    runner::RunnerOptions opts;
    opts.jobs = 0;      // DYNASPAM_JOBS / hardware concurrency
    if (const char *dir = std::getenv("DYNASPAM_CACHE"))
        opts.cacheDir = dir;
    return opts;
}

/**
 * Execute @p jobs through a fresh Runner and return the results in job
 * order. Results are independent of the worker count.
 */
inline std::vector<sim::RunResult>
runJobs(const std::vector<runner::Job> &jobs)
{
    runner::Runner r(benchRunnerOptions());
    std::vector<runner::JobOutcome> outcomes = r.runAll(jobs);
    std::vector<sim::RunResult> results;
    results.reserve(outcomes.size());
    for (runner::JobOutcome &outcome : outcomes)
        results.push_back(std::move(outcome.result));
    return results;
}

/** Run one workload under one configuration (one-off; sweeps should
 *  batch through runJobs instead). */
inline sim::RunResult
runWorkload(const std::string &name, sim::SystemMode mode,
            unsigned trace_length = 32, unsigned num_fabrics = 1,
            unsigned scale = 1)
{
    return runner::execute(
        runner::Job{name, mode, trace_length, num_fabrics, scale});
}

/** Print a horizontal rule sized for @p width columns of 10 chars. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width * 10 + 14; i++)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace dynaspam::bench

#endif // DYNASPAM_BENCH_UTIL_HH
