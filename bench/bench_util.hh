/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Each bench binary reproduces one table or figure from the paper's
 * evaluation section: it runs the 11 workloads through the relevant
 * system configurations and prints the same rows/series the paper
 * reports. Absolute numbers differ from the paper (the substrate is this
 * repository's simulator, not the authors' gem5 testbed); the *shape* —
 * who wins, by roughly what factor, where the crossovers fall — is the
 * reproduction target. See EXPERIMENTS.md.
 */

#ifndef DYNASPAM_BENCH_UTIL_HH
#define DYNASPAM_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace dynaspam::bench
{

/** Run one workload under one configuration. */
inline sim::RunResult
runWorkload(const std::string &name, sim::SystemMode mode,
            unsigned trace_length = 32, unsigned num_fabrics = 1,
            unsigned scale = 1)
{
    workloads::Workload wl = workloads::makeWorkload(name, scale);
    sim::System system(
        sim::SystemConfig::make(mode, trace_length, num_fabrics));
    return system.run(wl.program, wl.initialMemory);
}

/** Print a horizontal rule sized for @p width columns of 10 chars. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width * 10 + 14; i++)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace dynaspam::bench

#endif // DYNASPAM_BENCH_UTIL_HH
