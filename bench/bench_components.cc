/**
 * @file
 * Component microbenchmarks (google-benchmark): raw throughput of the
 * simulator's building blocks — cache accesses, branch prediction,
 * store-set lookups, functional execution, mapping-session scoring and
 * full-pipeline simulation. Useful for tracking simulator performance
 * regressions; not part of the paper's evaluation.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "core/session.hh"
#include "isa/executor.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/bpred.hh"
#include "ooo/cpu.hh"
#include "ooo/storesets.hh"
#include "runner/thread_pool.hh"
#include "workloads/workload.hh"

using namespace dynaspam;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    mem::MemoryHierarchy hierarchy;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hierarchy.dataAccess(addr, false));
        addr = (addr + 64) % (1 << 22);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    ooo::BranchPredictor bp;
    isa::StaticInst br;
    br.op = isa::Opcode::BNE;
    br.src1 = isa::intReg(1);
    br.src2 = isa::intReg(2);
    br.imm = 42;
    InstAddr pc = 0;
    for (auto _ : state) {
        auto pred = bp.predict(pc, br);
        bp.update(pc, br, !pred.taken, 42, true);
        pc = (pc + 7) % 4096;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_StoreSetLookup(benchmark::State &state)
{
    ooo::StoreSetPredictor ssp;
    for (InstAddr pc = 0; pc < 128; pc += 2)
        ssp.recordViolation(pc, pc + 1);
    InstAddr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ssp.lookupDependence(pc));
        pc = (pc + 3) % 1024;
    }
}
BENCHMARK(BM_StoreSetLookup);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workloads::Workload wl = workloads::makeKm();
    for (auto _ : state) {
        mem::FunctionalMemory memory = wl.initialMemory;
        auto result = isa::Executor::run(wl.program, memory);
        benchmark::DoNotOptimize(result.instCount);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_FunctionalExecution);

void
BM_PipelineSimulation(benchmark::State &state)
{
    workloads::Workload wl = workloads::makeKm();
    mem::FunctionalMemory memory = wl.initialMemory;
    isa::DynamicTrace trace(wl.program);
    isa::Executor::run(wl.program, memory, &trace);
    for (auto _ : state) {
        mem::MemoryHierarchy hierarchy;
        ooo::OooCpu cpu(ooo::OooParams{}, trace, hierarchy);
        benchmark::DoNotOptimize(cpu.run());
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations() * trace.size()));
}
BENCHMARK(BM_PipelineSimulation);

void
BM_MappingSessionScore(benchmark::State &state)
{
    fabric::FabricParams params;
    core::MappingSession session(params, 0, 32, 1);
    isa::StaticInst add;
    add.op = isa::Opcode::ADD;
    add.dest = isa::intReg(3);
    add.src1 = isa::intReg(1);
    add.src2 = isa::intReg(2);
    ooo::DynInst d;
    d.inst = &add;
    d.src1Phys = 100;
    d.src2Phys = 101;
    d.destPhys = 102;
    d.mappingInst = true;
    unsigned pe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(session.priorityScore(pe, d));
        pe = (pe + 1) % params.pesPerStripe();
    }
}
BENCHMARK(BM_MappingSessionScore);

void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    // Scheduling overhead of the runner's work-stealing pool: how fast
    // can a batch of trivial tasks be dealt, stolen and retired.
    runner::ThreadPool pool(unsigned(state.range(0)));
    const std::size_t tasks = 256;
    for (auto _ : state) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(tasks, [&](std::size_t i) { sum += i; });
        benchmark::DoNotOptimize(sum.load());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations() * tasks));
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
