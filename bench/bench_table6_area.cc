/**
 * @file
 * Table 6 — Area comparison for the fabric's components.
 *
 * Prints the module areas the fabric is composed from (OpenSparc T1
 * functional units plus the synthesized datapath block and FIFO at
 * 32 nm, as published in the paper's Table 6) and composes the full
 * fabric area per the Table 4 geometry. The paper quotes ~2.9 mm^2 for
 * an 8-stripe fabric and 0.003 mm^2 for the configuration cache.
 */

#include <cstdio>

#include "energy/area.hh"
#include "fabric/params.hh"

using namespace dynaspam;

int
main()
{
    energy::AreaParams areas;
    fabric::FabricParams geometry;

    std::printf("Table 6: module areas (um^2, 32 nm)\n");
    std::printf("  %-16s %8.0f    %-16s %8.0f\n", "sparc_exu_alu",
                areas.sparcExuAlu, "fpu_add", areas.fpuAdd);
    std::printf("  %-16s %8.0f    %-16s %8.0f\n", "sparc_mul_top",
                areas.sparcMulTop, "fpu_mul", areas.fpuMul);
    std::printf("  %-16s %8.0f    %-16s %8.0f\n", "sparc_exu_div",
                areas.sparcExuDiv, "fpu_div", areas.fpuDiv);
    std::printf("  %-16s %8.0f    %-16s %8.0f\n", "data_path",
                areas.dataPath, "fifo", areas.fifo);

    std::printf("\nfabric composition (per Table 4 geometry: %u PEs per "
                "stripe, %u live-in + %u live-out FIFOs):\n",
                geometry.pesPerStripe(), geometry.liveInFifos,
                geometry.liveOutFifos);
    for (unsigned stripes : {8u, 16u}) {
        auto report = energy::computeFabricArea(areas, geometry, stripes);
        std::printf("  %2u stripes: per-stripe %.3f mm^2, fabric total "
                    "%.2f mm^2 (+ FIFOs %.3f mm^2)\n",
                    stripes, report.perStripeUm2 / 1e6,
                    report.totalMm2(), report.fifosUm2 / 1e6);
    }
    std::printf("  configuration cache (CACTI): %.3f mm^2\n",
                energy::AreaParams{}.configCacheMm2);
    std::printf("\npaper reference: datapath block is almost as large as "
                "an integer ALU; FIFOs are much\nsmaller; the 8-stripe "
                "fabric totals ~2.9 mm^2; config cache 0.003 mm^2\n");
    return 0;
}
