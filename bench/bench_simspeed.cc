/**
 * @file
 * Simulator-throughput benchmark: committed kilo-instructions per
 * second (KIPS) of host wall time, per workload, host-only
 * (baseline-ooo) and fabric-enabled (accel-spec).
 *
 * This is the repo's first *simulator speed* trajectory (all other
 * benches report simulated cycles, which are wall-time independent).
 * It exists so cycle-engine optimizations have a measurable target and
 * so CI can gate on throughput regressions.
 *
 *   bench_simspeed [--scale N] [--repeat N] [--workloads a,b,c]
 *                  [--out FILE] [--baseline FILE] [--tolerance FRAC]
 *
 * Each (workload, mode) point is simulated --repeat times (default 3)
 * with the result cache disabled; the fastest run is reported, which
 * suppresses scheduler noise. KIPS counts *committed program
 * instructions* (result.instsTotal) against the wall time of the whole
 * runner::execute call (functional pass + timing pass), timed with
 * steady_clock.
 *
 * With --baseline, the emitted report is compared against a previously
 * checked-in report: the run fails (exit 1) if the geomean KIPS of
 * either mode drops more than --tolerance (default 0.25) below the
 * baseline. Per-workload deltas are printed but do not gate, since
 * single-point timings on shared CI hosts are noisy.
 *
 * Report schema: see EXPERIMENTS.md ("Simulator-throughput benchmark").
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "runner/job.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace
{

/** One timed simulation point. */
struct Point
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;

    double kips() const
    {
        return seconds > 0.0 ? double(insts) / 1e3 / seconds : 0.0;
    }
};

Point
timePoint(const Job &job, unsigned repeat)
{
    Point best;
    for (unsigned i = 0; i < repeat; i++) {
        const auto t0 = std::chrono::steady_clock::now();
        sim::RunResult res = runner::execute(job);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        if (i == 0 || secs < best.seconds) {
            best.insts = res.instsTotal;
            best.cycles = res.cycles;
            best.seconds = secs;
        }
    }
    return best;
}

json::Value
pointToJson(const Point &p)
{
    json::Object o;
    o["insts"] = p.insts;
    o["cycles"] = p.cycles;
    o["seconds"] = p.seconds;
    o["kips"] = p.kips();
    return o;
}

double
geomeanKips(const json::Value &report, const char *mode)
{
    std::vector<double> vals;
    for (const auto &[name, modes] : report.at("workloads").asObject())
        vals.push_back(modes.at(mode).at("kips").asDouble());
    return geomean(vals);
}

int
usage()
{
    std::fprintf(stderr,
        "usage: bench_simspeed [--scale N] [--repeat N]\n"
        "                      [--workloads a,b,c] [--out FILE]\n"
        "                      [--baseline FILE] [--tolerance FRAC]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned scale = 1;
    unsigned repeat = 3;
    double tolerance = 0.25;
    std::string out = "BENCH_simspeed.json";
    std::string baseline;
    std::vector<std::string> names = workloads::allWorkloadNames();

    for (int i = 1; i < argc; i++) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (++i >= argc)
                fatal("missing value for ", flag);
            return argv[i];
        };
        if (flag == "--scale")
            scale = unsigned(std::stoul(value()));
        else if (flag == "--repeat")
            repeat = unsigned(std::stoul(value()));
        else if (flag == "--out")
            out = value();
        else if (flag == "--baseline")
            baseline = value();
        else if (flag == "--tolerance")
            tolerance = std::stod(value());
        else if (flag == "--workloads") {
            names.clear();
            std::stringstream ss(value());
            std::string item;
            while (std::getline(ss, item, ','))
                if (!item.empty())
                    names.push_back(
                        workloads::canonicalWorkloadName(item));
        } else {
            return usage();
        }
    }
    if (repeat == 0 || names.empty())
        return usage();

    std::printf("simspeed: scale %u, best of %u run%s per point\n", scale,
                repeat, repeat == 1 ? "" : "s");
    std::printf("%-6s %14s %12s %14s %12s\n", "bench", "host insts",
                "host KIPS", "fabric insts", "fabric KIPS");
    bench::rule(6);

    json::Object workloads_json;
    std::vector<double> host_kips, fabric_kips;
    for (const std::string &name : names) {
        const Point host =
            timePoint(Job{name, SystemMode::BaselineOoo, 32, 1, scale},
                      repeat);
        const Point fabric =
            timePoint(Job{name, SystemMode::AccelSpec, 32, 1, scale},
                      repeat);
        host_kips.push_back(host.kips());
        fabric_kips.push_back(fabric.kips());

        json::Object modes;
        modes["host"] = pointToJson(host);
        modes["fabric"] = pointToJson(fabric);
        workloads_json[name] = std::move(modes);

        std::printf("%-6s %14llu %12.1f %14llu %12.1f\n", name.c_str(),
                    static_cast<unsigned long long>(host.insts),
                    host.kips(),
                    static_cast<unsigned long long>(fabric.insts),
                    fabric.kips());
    }
    bench::rule(6);

    json::Object report_obj;
    report_obj["schema_version"] = 1u;
    report_obj["name"] = "simspeed";
    report_obj["scale"] = scale;
    report_obj["repeat"] = repeat;
    report_obj["workloads"] = std::move(workloads_json);
    json::Object geo;
    geo["host_kips"] = geomean(host_kips);
    geo["fabric_kips"] = geomean(fabric_kips);
    report_obj["geomean"] = std::move(geo);
    const json::Value report{std::move(report_obj)};

    std::printf("%-6s %14s %12.1f %14s %12.1f   (geomean)\n", "geo", "",
                geomean(host_kips), "", geomean(fabric_kips));

    {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write ", out);
        report.write(os, 2);
        os << "\n";
    }
    std::printf("report written to %s\n", out.c_str());

    if (baseline.empty())
        return 0;

    // --- Regression gate against the checked-in baseline ---
    std::ifstream is(baseline);
    if (!is)
        fatal("cannot read baseline ", baseline);
    std::stringstream buf;
    buf << is.rdbuf();
    const json::Value base = json::Value::parse(buf.str());

    int failed = 0;
    for (const char *mode : {"host", "fabric"}) {
        const double base_geo = geomeanKips(base, mode);
        // A non-positive baseline would make the floor 0 (or NaN) and
        // wave every regression through; a baseline file like that is
        // corrupt, so fail loudly instead of gating against nothing.
        if (!(base_geo > 0.0)) {
            fatal("baseline ", baseline, " has non-positive ", mode,
                  " geomean ", base_geo, " — regenerate it");
        }
        const double cur_geo = geomeanKips(report, mode);
        const double floor = base_geo * (1.0 - tolerance);
        const bool ok = cur_geo >= floor;
        std::printf("gate: %-6s geomean %10.1f KIPS vs baseline %10.1f "
                    "(floor %10.1f, tol %.0f%%)  %s\n",
                    mode, cur_geo, base_geo, floor, tolerance * 100.0,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            failed = 1;
    }
    return failed;
}
