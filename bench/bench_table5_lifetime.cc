/**
 * @file
 * Table 5 — Detected traces and average configuration lifetime.
 *
 * For each benchmark: the number of traces mapped successfully, the
 * number actually offloaded, and the average configuration lifetime (in
 * invocations between reconfigurations) with 1, 2, 4 and 8 on-chip
 * fabrics managed LRU. The paper's headline observations: lifetimes are
 * long (hundreds to tens of thousands of invocations) for most programs,
 * BFS's unbiased branches give it very short lifetimes with one fabric,
 * and adding fabrics multiplies BFS's lifetime (6.4 -> 63.9 at 4
 * fabrics, ~2045 at 8).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace dynaspam;
using namespace dynaspam::bench;
using sim::SystemMode;

int
main()
{
    const unsigned fabric_counts[] = {1, 2, 4, 8};

    std::printf("Table 5: mapped/offloaded traces and average "
                "configuration lifetime (invocations)\n");
    std::printf("%-6s %8s %10s %12s %12s %12s %12s\n", "bench", "mapped",
                "offloaded", "1 fabric", "2 fabrics", "4 fabrics",
                "8 fabrics");
    rule(8);

    // 11 workloads x 4 fabric counts, executed in parallel.
    std::vector<runner::Job> jobs;
    for (const auto &name : workloads::allWorkloadNames())
        for (unsigned fabrics : fabric_counts)
            jobs.push_back(
                runner::Job{name, SystemMode::AccelSpec, 32, fabrics, 1});
    const auto results = runJobs(jobs);

    std::size_t row = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        std::uint64_t mapped = 0, offloaded = 0;
        double lifetime[4] = {};
        for (unsigned fi = 0; fi < 4; fi++) {
            const auto &r = results[row * 4 + fi];
            lifetime[fi] = r.dynaspam.avgConfigLifetime();
            if (fi == 0) {
                mapped = r.dynaspam.distinctMappedTraces;
                offloaded = r.dynaspam.distinctOffloadedTraces;
            }
        }
        row++;
        std::printf("%-6s %8llu %10llu %12.1f %12.1f %12.1f %12.1f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(mapped),
                    static_cast<unsigned long long>(offloaded),
                    lifetime[0], lifetime[1], lifetime[2], lifetime[3]);
    }
    std::printf("\npaper reference: most programs sustain hundreds to "
                "tens of thousands of invocations per\nconfiguration; BFS "
                "is the outlier (6.4 with 1 fabric) and recovers with "
                "more fabrics\n");
    return 0;
}
