/**
 * @file
 * Ablation A — resource-aware vs naive in-order mapping.
 *
 * The paper's Section 2.2 argues that naive single-instruction-scope
 * mapping (DIF/CCA style) produces infeasible or inefficient schedules
 * (Figure 2). This ablation runs the full system with both mappers and
 * reports mapping success rates, routing quality and end-to-end cycles.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace dynaspam;
using namespace dynaspam::bench;
using sim::SystemMode;

int
main()
{
    std::printf("Ablation: resource-aware scheduler vs naive in-order "
                "mapper\n");
    std::printf("%-6s | %9s %9s %9s | %9s %9s %9s | %9s\n", "bench",
                "RA-maps", "RA-fail", "RA-cyc", "NV-maps", "NV-fail",
                "NV-cyc", "NV/RA");
    rule(8);

    // Resource-aware and naive runs for all workloads, in parallel.
    std::vector<runner::Job> jobs;
    for (const auto &name : workloads::allWorkloadNames()) {
        jobs.push_back(runner::Job{name, SystemMode::AccelSpec, 32, 1, 1});
        jobs.push_back(
            runner::Job{name, SystemMode::AccelNaive, 32, 1, 1});
    }
    const auto results = runJobs(jobs);

    std::vector<double> ratios;
    std::size_t row = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        const auto &ra = results[row * 2 + 0];
        const auto &nv = results[row * 2 + 1];
        row++;

        double ratio = double(nv.cycles) / double(ra.cycles);
        ratios.push_back(ratio);
        std::printf("%-6s | %9llu %9llu %9llu | %9llu %9llu %9llu |"
                    " %8.3fx\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        ra.dynaspam.mappingsCompleted),
                    static_cast<unsigned long long>(
                        ra.dynaspam.mappingsDiscarded),
                    static_cast<unsigned long long>(ra.cycles),
                    static_cast<unsigned long long>(
                        nv.dynaspam.mappingsCompleted),
                    static_cast<unsigned long long>(
                        nv.dynaspam.mappingsDiscarded),
                    static_cast<unsigned long long>(nv.cycles), ratio);
    }
    rule(8);
    std::printf("geomean naive/resource-aware cycle ratio: %.3fx "
                "(>1 means the naive mapper is slower)\n",
                geomean(ratios));
    std::printf("\npaper reference: Section 2.2/Figure 2 — naive "
                "in-order mapping fails on traces whose\nlater "
                "instructions need scarce resources (two-live-in PEs) "
                "and wastes routing otherwise\n");
    return 0;
}
