/**
 * @file
 * Unit tests for the spatial fabric: configuration, dataflow timing,
 * routing latencies, back-to-back pipelining, memory ordering in both
 * speculation modes, branch-mismatch squash, and snapshot rollback.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fabric/fabric.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/storesets.hh"

using namespace dynaspam;
using namespace dynaspam::fabric;
using isa::intReg;

namespace
{

/** Test rig bundling the fabric's collaborators. */
struct Rig
{
    mem::MemoryHierarchy hierarchy;
    ooo::StoreSetPredictor storeSets;
    FabricParams params;
    std::unique_ptr<Fabric> fabric;

    explicit Rig(bool speculation = true)
    {
        params.memorySpeculation = speculation;
        fabric =
            std::make_unique<Fabric>(params, hierarchy, storeSets);
    }
};

/**
 * Build a 4-instruction straight-line trace and a matching config:
 *   [0] add r3 <- r1(live-in 0), r2(live-in 1)    stripe 0
 *   [1] add r4 <- r3, r1(live-in 0)               stripe 1 (pass reg)
 *   [2] add r5 <- r4, r4                          stripe 2 (pass reg)
 *   [3] blt (expected taken)                      stripe 3
 */
struct SimpleTrace
{
    isa::Program prog;
    std::unique_ptr<isa::DynamicTrace> trace;
    std::shared_ptr<FabricConfig> config;

    SimpleTrace(bool branch_taken = true)
    {
        isa::ProgramBuilder b("t");
        b.label("head");
        b.add(intReg(3), intReg(1), intReg(2));     // pc 0
        b.add(intReg(4), intReg(3), intReg(1));     // pc 1
        b.add(intReg(5), intReg(4), intReg(4));     // pc 2
        b.blt(intReg(6), intReg(7), "head");        // pc 3
        b.halt();                                   // pc 4
        prog = b.build();

        // Craft a 5-record oracle: one loop body then halt. Use the
        // functional executor with registers preloaded through movi is
        // overkill here; hand-build the records instead.
        trace = std::make_unique<isa::DynamicTrace>(prog);
        for (InstAddr pc = 0; pc < 4; pc++) {
            isa::DynRecord rec;
            rec.pc = pc;
            rec.nextPc = pc + 1;
            if (pc == 3) {
                rec.taken = branch_taken;
                rec.nextPc = branch_taken ? 0 : 4;
            }
            trace->append(rec);
        }

        config = std::make_shared<FabricConfig>();
        config->key = 0x99;
        config->numRecords = 4;
        config->liveIns = {intReg(1), intReg(2)};

        MappedInst m0;
        m0.pc = 0;
        m0.op = isa::Opcode::ADD;
        m0.pe = {0, 0};
        m0.src1 = {OperandRoute::Kind::LiveIn, 0xffff, 0, 0};
        m0.src2 = {OperandRoute::Kind::LiveIn, 0xffff, 1, 0};
        m0.destArch = intReg(3);

        MappedInst m1;
        m1.pc = 1;
        m1.op = isa::Opcode::ADD;
        m1.pe = {1, 0};
        m1.src1 = {OperandRoute::Kind::PassReg, 0, 0, 0};
        m1.src2 = {OperandRoute::Kind::LiveIn, 0xffff, 0, 0};
        m1.destArch = intReg(4);

        MappedInst m2;
        m2.pc = 2;
        m2.op = isa::Opcode::ADD;
        m2.pe = {2, 0};
        m2.src1 = {OperandRoute::Kind::PassReg, 1, 0, 0};
        m2.src2 = {OperandRoute::Kind::PassReg, 1, 0, 0};
        m2.destArch = intReg(5);

        MappedInst m3;
        m3.pc = 3;
        m3.op = isa::Opcode::BLT;
        m3.pe = {3, 0};
        m3.isBranch = true;
        m3.expectedTaken = true;

        config->insts = {m0, m1, m2, m3};
        config->liveOuts = {{intReg(3), 0}, {intReg(4), 1}, {intReg(5), 2}};
        config->stripesUsed = 4;
    }
};

} // namespace

TEST(Fabric, ConfigureChargesPerStripeLatency)
{
    Rig rig;
    SimpleTrace st;
    Cycle ready = rig.fabric->configure(st.config, 100);
    EXPECT_EQ(ready, 100 + 4 * rig.params.configureCyclesPerStripe);
    EXPECT_TRUE(rig.fabric->hasConfig(0x99));
    EXPECT_FALSE(rig.fabric->hasConfig(0x42));
    EXPECT_TRUE(rig.fabric->configured());
}

TEST(Fabric, InvalidConfigIsFatal)
{
    Rig rig;
    auto bad = std::make_shared<FabricConfig>();
    EXPECT_THROW(rig.fabric->configure(bad, 0), FatalError);
}

TEST(Fabric, DataflowChainsThroughPassRegisters)
{
    Rig rig;
    SimpleTrace st;
    rig.fabric->configure(st.config, 0);

    auto r = rig.fabric->execute(*st.trace, 0, {100, 100}, 0, 100);
    ASSERT_FALSE(r.squashed);
    ASSERT_EQ(r.liveOutReady.size(), 3u);
    // Chain: arrival 100+bus, then +1 per dependent add; live-outs come
    // back over the bus, so each later producer is strictly later.
    EXPECT_LT(r.liveOutReady[0], r.liveOutReady[1]);
    EXPECT_LT(r.liveOutReady[1], r.liveOutReady[2]);
    EXPECT_GE(r.completeCycle, r.liveOutReady[2]);
}

TEST(Fabric, RoutedOperandsPayHopLatency)
{
    Rig rig;
    SimpleTrace st;
    // Make inst 2 receive inst 0's value over a 2-hop route instead of
    // the previous stripe's pass registers.
    st.config->insts[2].src1 = {OperandRoute::Kind::Routed, 0, 0, 2};
    st.config->insts[2].src2 = {OperandRoute::Kind::Routed, 0, 0, 2};
    rig.fabric->configure(st.config, 0);
    auto routed = rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);

    Rig rig2;
    SimpleTrace st2;
    rig2.fabric->configure(st2.config, 0);
    auto direct = rig2.fabric->execute(*st2.trace, 0, {0, 0}, 0, 0);

    EXPECT_GT(routed.liveOutReady[2], direct.liveOutReady[2]);
}

TEST(Fabric, BackToBackInvocationsPipeline)
{
    Rig rig;
    SimpleTrace st;
    rig.fabric->configure(st.config, 0);

    auto first = rig.fabric->execute(*st.trace, 0, {50, 50}, 0, 50);
    Cycle first_latency = first.completeCycle - 50;

    // Re-execute back-to-back from the same trace position stream: the
    // second invocation overlaps the first, so its marginal completion
    // delta is below the full latency.
    auto second = rig.fabric->execute(*st.trace, 0, {51, 51}, 0, 51);
    (void)second;
    auto third = rig.fabric->execute(*st.trace, 0, {52, 52}, 0, 52);
    Cycle ii = third.completeCycle - second.completeCycle;
    EXPECT_LT(ii, first_latency);
    EXPECT_EQ(rig.fabric->invocationsSinceConfigure(), 3u);
}

TEST(Fabric, BranchMismatchSquashes)
{
    Rig rig;
    SimpleTrace st(/*branch_taken=*/false);   // oracle says not taken
    rig.fabric->configure(st.config, 0);      // config expects taken

    auto r = rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);
    EXPECT_TRUE(r.squashed);
    EXPECT_EQ(r.cause, FabricExecResult::SquashCause::BranchMismatch);
    EXPECT_TRUE(r.liveOutReady.empty());
    EXPECT_EQ(rig.fabric->stats().squashedInvocations, 1u);
}

TEST(Fabric, StatsCountPeOpsAndBusTransfers)
{
    Rig rig;
    SimpleTrace st;
    rig.fabric->configure(st.config, 0);
    rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);
    const auto &s = rig.fabric->stats();
    EXPECT_EQ(s.invocations, 1u);
    EXPECT_EQ(s.peOps, 4u);
    // 2 live-ins + 3 live-outs + 1 branch result.
    EXPECT_GE(s.busTransfers, 6u);
    EXPECT_EQ(s.activeStripeInvocations, 4u);
}

TEST(Fabric, RollbackRestoresPipeliningState)
{
    Rig rig;
    SimpleTrace st;
    rig.fabric->configure(st.config, 0);

    auto first = rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);
    ASSERT_FALSE(first.squashed);
    EXPECT_EQ(rig.fabric->invocationsSinceConfigure(), 1u);

    // Roll the invocation back: the fabric forgets it ever ran.
    rig.fabric->rollback(0);
    EXPECT_EQ(rig.fabric->invocationsSinceConfigure(), 0u);

    // Re-execution now sees a fresh fabric: identical timing.
    auto replay = rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);
    EXPECT_EQ(replay.completeCycle, first.completeCycle);
}

TEST(Fabric, NoteCommittedDropsSnapshots)
{
    Rig rig;
    SimpleTrace st;
    rig.fabric->configure(st.config, 0);
    rig.fabric->execute(*st.trace, 0, {0, 0}, 0, 0);
    rig.fabric->noteCommitted(0);
    // After commit, rollback of the same invocation must be a no-op.
    rig.fabric->rollback(0);
    EXPECT_EQ(rig.fabric->invocationsSinceConfigure(), 1u);
}

// --- Memory behaviour --------------------------------------------------

namespace
{

/** ld then st to distinct addresses, plus a biased branch. */
struct MemTrace
{
    isa::Program prog;
    std::unique_ptr<isa::DynamicTrace> trace;
    std::shared_ptr<FabricConfig> config;

    /** @param alias make the load read the address the store writes */
    explicit MemTrace(bool alias)
    {
        isa::ProgramBuilder b("m");
        b.label("head");
        b.ld(intReg(3), intReg(1), 0);          // pc 0
        b.st(intReg(2), intReg(3), 0);          // pc 1
        b.blt(intReg(6), intReg(7), "head");    // pc 2
        b.halt();
        prog = b.build();

        trace = std::make_unique<isa::DynamicTrace>(prog);
        for (int inv = 0; inv < 4; inv++) {
            isa::DynRecord ld;
            ld.pc = 0;
            ld.nextPc = 1;
            // With aliasing, invocation k's load reads what invocation
            // k-1 stored.
            ld.effAddr = alias ? 0x1000 : Addr(0x1000 + 0x100 * inv);
            trace->append(ld);
            isa::DynRecord stc;
            stc.pc = 1;
            stc.nextPc = 2;
            stc.effAddr = alias ? 0x1000 : Addr(0x9000 + 0x100 * inv);
            trace->append(stc);
            isa::DynRecord br;
            br.pc = 2;
            br.taken = true;
            br.nextPc = 0;
            trace->append(br);
        }

        config = std::make_shared<FabricConfig>();
        config->key = 0xabcd;
        config->numRecords = 3;
        config->liveIns = {intReg(1), intReg(2)};
        config->hasStores = true;

        MappedInst ld;
        ld.pc = 0;
        ld.op = isa::Opcode::LD;
        ld.pe = {0, 10};
        ld.isLoad = true;
        ld.src1 = {OperandRoute::Kind::LiveIn, 0xffff, 0, 0};
        ld.destArch = intReg(3);

        MappedInst stm;
        stm.pc = 1;
        stm.op = isa::Opcode::ST;
        stm.pe = {1, 10};
        stm.isStore = true;
        stm.src1 = {OperandRoute::Kind::LiveIn, 0xffff, 1, 0};
        stm.src2 = {OperandRoute::Kind::PassReg, 0, 0, 0};

        MappedInst br;
        br.pc = 2;
        br.op = isa::Opcode::BLT;
        br.pe = {2, 0};
        br.isBranch = true;
        br.expectedTaken = true;

        config->insts = {ld, stm, br};
        config->liveOuts = {{intReg(3), 0}};
        config->stripesUsed = 3;
    }
};

} // namespace

TEST(FabricMemory, NoSpecSerializesMemoryOps)
{
    Rig spec(true), nospec(false);
    MemTrace mt(false);

    spec.fabric->configure(mt.config, 0);
    nospec.fabric->configure(mt.config, 0);

    Cycle spec_last = 0, nospec_last = 0;
    for (int inv = 0; inv < 4; inv++) {
        auto rs = spec.fabric->execute(*mt.trace, SeqNum(inv) * 3,
                                       {0, 0}, 0, 0);
        auto rn = nospec.fabric->execute(*mt.trace, SeqNum(inv) * 3,
                                         {0, 0}, 0, 0);
        spec_last = rs.completeCycle;
        nospec_last = rn.completeCycle;
    }
    EXPECT_LT(spec_last, nospec_last)
        << "strict memory ordering must serialize the pipeline";
}

TEST(FabricMemory, CrossInvocationAliasTriggersViolationThenLearns)
{
    Rig rig(true);
    MemTrace mt(true);
    rig.fabric->configure(mt.config, 0);

    bool saw_violation = false;
    for (int inv = 0; inv < 4; inv++) {
        auto r = rig.fabric->execute(*mt.trace, SeqNum(inv) * 3,
                                     {0, 0}, 0, 0);
        if (r.squashed &&
            r.cause == FabricExecResult::SquashCause::MemoryViolation) {
            saw_violation = true;
        }
    }
    EXPECT_TRUE(saw_violation);
    EXPECT_GE(rig.storeSets.violations(), 1u);
    // The predictor must have learned the pair: both PCs now belong to
    // a store set. (The LFST gating itself engages once the next store
    // instance dispatches — exercised by the system-level tests.)
    EXPECT_TRUE(rig.storeSets.hasSet(0));
    EXPECT_TRUE(rig.storeSets.hasSet(1));
}

TEST(FabricMemory, StoreEventsReported)
{
    Rig rig(true);
    MemTrace mt(false);
    rig.fabric->configure(mt.config, 0);
    auto r = rig.fabric->execute(*mt.trace, 0, {0, 0}, 0, 0);
    ASSERT_FALSE(r.squashed);
    ASSERT_EQ(r.storeEvents.size(), 1u);
    EXPECT_EQ(r.storeEvents[0].addr, 0x9000u);
    EXPECT_EQ(r.storeEvents[0].pc, 1u);
}

TEST(FabricMemory, MemSafeDelaysMemoryOps)
{
    Rig rig(true);
    MemTrace mt(false);
    rig.fabric->configure(mt.config, 0);
    auto early = rig.fabric->execute(*mt.trace, 0, {0, 0}, 0, 0);

    Rig rig2(true);
    rig2.fabric->configure(mt.config, 0);
    auto gated = rig2.fabric->execute(*mt.trace, 0, {0, 0}, 500, 0);
    EXPECT_GT(gated.completeCycle, early.completeCycle);
}
