/**
 * @file
 * Tests for the distributed sweep fabric: the length-prefixed wire
 * protocol (round-trip, garbage rejection, incremental decode), the
 * FNV-1a hash-space shard mapping, and the coordinator/worker system
 * end to end — report byte-identity with single-process sweeps, worker
 * death mid-sweep with batch reassignment, protocol-garbage resilience,
 * no-worker 503s, bounded admission, and HTTP keep-alive on the epoll
 * front end.
 *
 * Cluster tests run the coordinator and workers in-process: the
 * coordinator binds ephemeral ports and each worker runs Worker::run on
 * its own thread, dialing the coordinator like the real
 * `dynaspam worker` process would. A gated executeFn turns a worker
 * into a deterministic crash victim.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/coordinator.hh"
#include "cluster/wire.hh"
#include "cluster/worker.hh"
#include "common/logging.hh"
#include "runner/runner.hh"

using namespace dynaspam;
using cluster::Coordinator;
using cluster::CoordinatorOptions;
using cluster::Worker;
using cluster::WorkerOptions;
using runner::Job;
using sim::SystemMode;

namespace fs = std::filesystem;

namespace
{

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<unsigned> next{0};
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-cluster-" + tag + "-" +
                  std::to_string(getpid()) + "-" + std::to_string(next++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** One parsed response from the test HTTP client. */
struct Reply
{
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
};

int
connectTo(unsigned port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Read exactly one HTTP response from @p fd (headers + Content-Length
 * body) WITHOUT waiting for EOF — usable on keep-alive connections.
 */
Reply
readReply(int fd)
{
    Reply reply;
    std::string raw;
    char chunk[4096];
    std::size_t head_end = std::string::npos;
    while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return reply;
        raw.append(chunk, std::size_t(n));
    }

    std::istringstream head(raw.substr(0, head_end));
    std::string version;
    head >> version >> reply.status;
    std::string line;
    std::getline(head, line);
    while (std::getline(head, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string value = line.substr(colon + 1);
        std::size_t b = value.find_first_not_of(' ');
        reply.headers[line.substr(0, colon)] =
            b == std::string::npos ? "" : value.substr(b);
    }

    std::size_t body_len = 0;
    auto it = reply.headers.find("Content-Length");
    if (it != reply.headers.end())
        body_len = std::stoul(it->second);
    reply.body = raw.substr(head_end + 4);
    while (reply.body.size() < body_len) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        reply.body.append(chunk, std::size_t(n));
    }
    return reply;
}

bool
sendRaw(int fd, const std::string &wire)
{
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += std::size_t(n);
    }
    return true;
}

std::string
requestWire(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    std::ostringstream os;
    os << method << ' ' << target << " HTTP/1.1\r\n"
       << "Host: 127.0.0.1\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    return os.str();
}

/** One-shot request on a fresh connection. */
Reply
request(unsigned port, const std::string &method,
        const std::string &target, const std::string &body = "")
{
    int fd = connectTo(port);
    if (fd < 0)
        return Reply{};
    Reply reply;
    if (sendRaw(fd, requestWire(method, target, body)))
        reply = readReply(fd);
    ::close(fd);
    return reply;
}

/** Spin until @p predicate holds (bounded; avoids sleep-based races). */
template <typename Pred>
bool
eventually(Pred predicate, unsigned timeout_ms = 10000)
{
    for (unsigned waited = 0; waited < timeout_ms; waited++) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return predicate();
}

CoordinatorOptions
quietCoordinator(unsigned slots)
{
    CoordinatorOptions opts;
    opts.httpPort = 0;
    opts.workerPort = 0;
    opts.workerSlots = slots;
    opts.retryBackoffMs = 10;    // fast reassignment in tests
    opts.verbose = getenv("DSPAM_TEST_VERBOSE") != nullptr;
    return opts;
}

WorkerOptions
quietWorker(const Coordinator &coordinator, const std::string &cache_dir)
{
    WorkerOptions opts;
    opts.connectPort = coordinator.workerPort();
    opts.cacheDir = cache_dir;
    opts.verbose = getenv("DSPAM_TEST_VERBOSE") != nullptr;
    return opts;
}

/** The fig8/bfs sweep used throughout: 4 cheap, real simulation jobs. */
const char *kSweepBody =
    "{\"sweep\": \"fig8\", \"workloads\": [\"bfs\"],"
    " \"trace_length\": 16}";

std::vector<Job>
sweepJobsUnderTest()
{
    return runner::sweepJobs("fig8", {"bfs"}, 1, 16);
}

/** What `dynaspam sweep` writes for the same jobs and cache dir. */
std::string
cliReport(const std::string &cache_dir)
{
    runner::RunnerOptions opts;
    opts.jobs = 1;
    opts.cacheDir = cache_dir;
    runner::Runner runner(opts);
    auto outcomes = runner.runAll(sweepJobsUnderTest());
    std::ostringstream os;
    runner::writeSweepReport(os, "fig8", outcomes, &runner.stats());
    return os.str();
}

} // namespace

// --- Wire protocol --------------------------------------------------------

TEST(ClusterWire, FrameRoundTrip)
{
    const std::string payload = "{\"id\": 7}";
    std::string wire =
        cluster::encodeFrame(cluster::FrameType::Batch, payload);

    cluster::Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(cluster::decodeFrame(wire, frame, consumed),
              cluster::DecodeOutcome::Ok);
    EXPECT_EQ(frame.type, cluster::FrameType::Batch);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, wire.size());

    // Two concatenated frames decode one at a time.
    std::string two =
        wire + cluster::encodeFrame(cluster::FrameType::Ping, "{}");
    EXPECT_EQ(cluster::decodeFrame(two, frame, consumed),
              cluster::DecodeOutcome::Ok);
    EXPECT_EQ(frame.type, cluster::FrameType::Batch);
    two.erase(0, consumed);
    EXPECT_EQ(cluster::decodeFrame(two, frame, consumed),
              cluster::DecodeOutcome::Ok);
    EXPECT_EQ(frame.type, cluster::FrameType::Ping);
    EXPECT_EQ(frame.payload, "{}");
}

TEST(ClusterWire, TruncatedFramesNeedMore)
{
    std::string wire =
        cluster::encodeFrame(cluster::FrameType::Result, "{\"id\": 1}");
    cluster::Frame frame;
    std::size_t consumed = 0;
    for (std::size_t len = 0; len < wire.size(); len++) {
        EXPECT_EQ(cluster::decodeFrame(wire.substr(0, len), frame,
                                       consumed),
                  cluster::DecodeOutcome::NeedMore)
            << "at prefix length " << len;
    }
}

TEST(ClusterWire, GarbageFramesRejected)
{
    cluster::Frame frame;
    std::size_t consumed = 0;

    // Wrong magic (an HTTP request aimed at the worker port).
    EXPECT_EQ(cluster::decodeFrame("GET / HTTP/1.1\r\n\r\n", frame,
                                   consumed),
              cluster::DecodeOutcome::Bad);

    // Wrong version byte.
    std::string wire =
        cluster::encodeFrame(cluster::FrameType::Ping, "{}");
    wire[2] = char(0x7f);
    EXPECT_EQ(cluster::decodeFrame(wire, frame, consumed),
              cluster::DecodeOutcome::Bad);

    // Unknown frame type.
    wire = cluster::encodeFrame(cluster::FrameType::Ping, "{}");
    wire[3] = char(0x42);
    EXPECT_EQ(cluster::decodeFrame(wire, frame, consumed),
              cluster::DecodeOutcome::Bad);

    // Length field past the payload cap: rejected before allocation.
    wire = cluster::encodeFrame(cluster::FrameType::Ping, "{}");
    wire[4] = char(0xff);
    wire[5] = char(0xff);
    wire[6] = char(0xff);
    wire[7] = char(0xff);
    EXPECT_EQ(cluster::decodeFrame(wire, frame, consumed),
              cluster::DecodeOutcome::Bad);
}

TEST(ClusterWire, RetryBackoffDelayClampedAndSafe)
{
    using cluster::retryBackoffDelayMs;
    // Attempt 0 (defensive) and 1 both mean "first retry": base delay.
    EXPECT_EQ(retryBackoffDelayMs(100, 0, 60000), 100u);
    EXPECT_EQ(retryBackoffDelayMs(100, 1, 60000), 100u);
    EXPECT_EQ(retryBackoffDelayMs(100, 2, 60000), 200u);
    EXPECT_EQ(retryBackoffDelayMs(100, 3, 60000), 400u);
    EXPECT_EQ(retryBackoffDelayMs(100, 11, 60000), 60000u);
    // Attempt counts whose naive `base << (attempts - 1)` would shift
    // past 63 bits (UB) or wrap must saturate at the cap instead.
    for (unsigned attempts : {64u, 65u, 1000u, ~0u})
        EXPECT_EQ(retryBackoffDelayMs(100, attempts, 60000), 60000u)
            << attempts << " attempts";
    // A base already above the cap clamps down; a zero base stays zero.
    EXPECT_EQ(retryBackoffDelayMs(100000, 1, 60000), 60000u);
    EXPECT_EQ(retryBackoffDelayMs(0, 50, 60000), 0u);
}

// --- Shard mapping --------------------------------------------------------

TEST(ClusterShard, OwnerSlotIsStableAndInRange)
{
    const std::vector<Job> jobs = sweepJobsUnderTest();
    for (unsigned slots : {1u, 2u, 3u, 4u, 7u}) {
        for (const Job &job : jobs) {
            unsigned slot = cluster::ownerSlot(job.hash(), slots);
            EXPECT_LT(slot, slots);
            // Same hash, same slot count -> same owner, every time.
            EXPECT_EQ(slot, cluster::ownerSlot(job.hash(), slots));
        }
    }
    // With one slot everything maps to it.
    EXPECT_EQ(cluster::ownerSlot(0, 1), 0u);
    EXPECT_EQ(cluster::ownerSlot(~0ull, 1), 0u);
}

TEST(ClusterShard, HashSpacePartitionIsRoughlyBalanced)
{
    // 4096 synthetic hashes over 4 slots: each slot should own a
    // non-trivial share (the multiply-shift map is uniform for uniform
    // hashes; FNV-1a output is well spread).
    constexpr unsigned kSlots = 4;
    std::vector<unsigned> counts(kSlots, 0);
    std::uint64_t hash = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < 4096; i++) {
        hash ^= hash >> 33;
        hash *= 0xff51afd7ed558ccdull;
        hash ^= hash >> 33;
        counts[cluster::ownerSlot(hash, kSlots)]++;
    }
    for (unsigned slot = 0; slot < kSlots; slot++)
        EXPECT_GT(counts[slot], 4096u / kSlots / 2)
            << "slot " << slot << " owns too little of the hash space";
}

// --- Cluster end to end ---------------------------------------------------

TEST(Cluster, SweepReportByteIdenticalToSingleProcess)
{
    TempDir tmp("bytes");
    Coordinator coordinator(quietCoordinator(3));
    coordinator.start();

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < 3; i++) {
        workers.push_back(std::make_unique<Worker>(quietWorker(
            coordinator, tmp.path() + "/worker" + std::to_string(i))));
        threads.emplace_back([&, i] { workers[i]->run(); });
    }
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 3;
    }));

    // Cold: every job simulated on some shard; report must match a cold
    // uncached single-process `dynaspam sweep`.
    Reply cold = request(coordinator.httpPort(), "POST", "/sweep",
                         kSweepBody);
    ASSERT_EQ(cold.status, 200);
    EXPECT_EQ(cold.body, cliReport(""));

    // Warm: all four jobs answered from shard-local caches; report must
    // match a warm single-process sweep (one runner warms, one reads).
    Reply warm = request(coordinator.httpPort(), "POST", "/sweep",
                         kSweepBody);
    ASSERT_EQ(warm.status, 200);
    std::string warm_cache = tmp.path() + "/cli";
    (void)cliReport(warm_cache);
    EXPECT_EQ(warm.body, cliReport(warm_cache));
    EXPECT_EQ(coordinator.metrics().value("dynaspam_cache_hits_total"),
              4);

    // /run of one job behaves like a one-job sweep named "run".
    Reply run = request(coordinator.httpPort(), "POST", "/run",
                        "{\"workload\": \"bfs\", \"trace_length\": 16}");
    EXPECT_EQ(run.status, 200);
    EXPECT_NE(run.body.find("\"sweep\": \"run\""), std::string::npos);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    for (std::thread &t : threads)
        t.join();
}

TEST(Cluster, WorkerKilledMidSweepStillYieldsIdenticalReport)
{
    TempDir tmp("kill");

    // Decide the victim slot up front: the slot owning the first job's
    // hash is guaranteed to receive a batch.
    constexpr unsigned kSlots = 2;
    const std::vector<Job> jobs = sweepJobsUnderTest();
    const unsigned victimSlot =
        cluster::ownerSlot(jobs[0].hash(), kSlots);

    Coordinator coordinator(quietCoordinator(kSlots));
    coordinator.start();

    // The victim's executeFn blocks until released, so the kill happens
    // deterministically mid-batch. Its (fake) results never escape: the
    // link is already shut when the batch would report.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<unsigned> victim_calls{0};
    WorkerOptions victim_opts = quietWorker(coordinator, "");
    victim_opts.executeFn = [&](const Job &) {
        victim_calls++;
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
        return sim::RunResult{};
    };

    WorkerOptions healthy_opts =
        quietWorker(coordinator, tmp.path() + "/healthy");

    // Slots are granted in connection order: dial the victim first when
    // it must own slot 0.
    std::unique_ptr<Worker> first = std::make_unique<Worker>(
        victimSlot == 0 ? victim_opts : healthy_opts);
    std::thread first_thread([&] { first->run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));
    std::unique_ptr<Worker> second = std::make_unique<Worker>(
        victimSlot == 0 ? healthy_opts : victim_opts);
    std::thread second_thread([&] { second->run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 2;
    }));
    Worker &victim_worker = victimSlot == 0 ? *first : *second;
    std::thread &victim_thread = victimSlot == 0 ? first_thread : second_thread;
    std::thread &healthy_thread = victimSlot == 0 ? second_thread : first_thread;

    std::thread client([&] {
        Reply reply = request(coordinator.httpPort(), "POST", "/sweep",
                              kSweepBody);
        EXPECT_EQ(reply.status, 200);
        // Cold cluster, cold CLI: byte-identical despite the crash.
        EXPECT_EQ(reply.body, cliReport(""));
    });

    // Wait until the victim is provably mid-batch, then kill it.
    ASSERT_TRUE(eventually([&] { return victim_calls.load() >= 1; }));
    victim_worker.shutdownNow();

    client.join();

    // The batch was reassigned (and accounted), not dropped.
    std::ostringstream label;
    label << "worker=\"" << victimSlot << "\"";
    EXPECT_GE(coordinator.metrics().value(
                  "dynaspam_cluster_batch_retries_total", label.str()),
              1);
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_workers_connected"),
              1);

    // Release the gated executeFn so the victim thread can exit.
    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    victim_thread.join();

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    healthy_thread.join();
}

TEST(Cluster, WorkerReconnectsAfterCoordinatorCrashAndRestart)
{
    TempDir tmp("reconnect");

    // A stand-in coordinator: accept the worker, complete the
    // Hello/Welcome handshake, then vanish without a Goodbye — the
    // crash case. Its listener closes too, freeing the port for the
    // real coordinator that "restarts" in its place.
    int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)), 0);
    ASSERT_EQ(::listen(listener, 4), 0);
    socklen_t addr_len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr *>(&addr),
                            &addr_len), 0);
    const unsigned port = ntohs(addr.sin_port);

    WorkerOptions wopts;
    wopts.connectPort = port;
    wopts.cacheDir = tmp.path() + "/w";
    wopts.connectRetryMs = 5;    // fast redial waves in the test
    wopts.verbose = getenv("DSPAM_TEST_VERBOSE") != nullptr;
    Worker worker(wopts);
    int exit_code = -1;
    std::thread worker_thread([&] { exit_code = worker.run(); });

    int conn = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    char hello[256];
    ASSERT_GT(::recv(conn, hello, sizeof(hello), 0), 0);
    ASSERT_TRUE(sendRaw(conn,
                        cluster::encodeFrame(cluster::FrameType::Welcome,
                                             "{\"slot\": 0, \"slots\": 1}")));
    ::close(conn);
    ::close(listener);

    // The real coordinator binds the same port; the worker's jittered
    // backoff redial finds it and rejoins without operator help.
    CoordinatorOptions copts = quietCoordinator(1);
    copts.workerPort = port;
    Coordinator coordinator(copts);
    coordinator.start();
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));

    // ...and the rejoined worker serves a real sweep end to end.
    Reply reply = request(coordinator.httpPort(), "POST", "/sweep",
                          kSweepBody);
    EXPECT_EQ(reply.status, 200);
    EXPECT_EQ(reply.body, cliReport(""));

    // An orderly drain says Goodbye: the worker exits 0 instead of
    // treating the close as another crash and redialing forever.
    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    worker_thread.join();
    EXPECT_EQ(exit_code, 0);
}

/** Four bfs jobs with a shared warmup: two fork groups (the baseline
 *  host pipeline warms separately from the DynaSpAM configurations). */
const char *kWarmSweepBody =
    "{\"jobs\": ["
    "{\"workload\": \"bfs\", \"mode\": \"baseline-ooo\","
    " \"warmup_insts\": 20000},"
    "{\"workload\": \"bfs\", \"mode\": \"mapping-only\","
    " \"warmup_insts\": 20000},"
    "{\"workload\": \"bfs\", \"mode\": \"accel-nospec\","
    " \"warmup_insts\": 20000},"
    "{\"workload\": \"bfs\", \"mode\": \"accel-spec\","
    " \"warmup_insts\": 20000}]}";

TEST(Cluster, SnapshotCacheSkipsRewarmAcrossWorkerRestart)
{
    TempDir tmp("snapshot");
    CoordinatorOptions copts = quietCoordinator(1);
    copts.pingIntervalMs = 50;    // fast warmups-gauge propagation
    Coordinator coordinator(copts);
    coordinator.start();

    const std::string snap_dir = tmp.path() + "/snaps";
    auto snapWorker = [&] {
        // No result cache: run 2 must re-execute every job, so the only
        // thing that can spare the warm pass is the snapshot cache.
        WorkerOptions opts = quietWorker(coordinator, "");
        opts.snapshotCacheDir = snap_dir;
        return opts;
    };

    // What a single process answers for the same four jobs.
    std::vector<Job> jobs;
    for (SystemMode mode :
         {SystemMode::BaselineOoo, SystemMode::MappingOnly,
          SystemMode::AccelNoSpec, SystemMode::AccelSpec}) {
        Job job{"bfs", mode, 32, 1, 1};
        job.warmupInsts = 20000;
        jobs.push_back(job);
    }
    runner::RunnerOptions ropts;
    ropts.jobs = 1;
    runner::Runner straight(ropts);
    auto outcomes = straight.runAll(jobs);
    std::ostringstream os;
    runner::writeSweepReport(os, "custom", outcomes, &straight.stats());
    const std::string expected = os.str();

    // Run 1: cold snapshot cache — the worker warms each fork group
    // once and persists the warmed state.
    Worker first(snapWorker());
    std::thread first_thread([&] { first.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));
    Reply cold = request(coordinator.httpPort(), "POST", "/sweep",
                         kWarmSweepBody);
    ASSERT_EQ(cold.status, 200);
    EXPECT_EQ(cold.body, expected);
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_worker_warmups", "worker=\"0\"") == 2;
    }));
    std::size_t snap_files = 0;
    for (const auto &de : fs::directory_iterator(snap_dir))
        snap_files += de.path().extension() == ".snap";
    EXPECT_EQ(snap_files, 2u);

    // Restart: a FRESH worker process sharing only the snapshot dir.
    first.shutdownNow();
    first_thread.join();
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 0;
    }));
    Worker second(snapWorker());
    std::thread second_thread([&] { second.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));

    // Run 2: every job re-executes (no result cache), but the warmed
    // prefixes load from disk — zero warm passes, identical bytes.
    Reply warm = request(coordinator.httpPort(), "POST", "/sweep",
                         kWarmSweepBody);
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.body, expected);
    // Give the gauge a few ping cycles to reflect post-sweep state: it
    // must remain at the fresh worker's zero, proving no re-warm.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_worker_warmups", "worker=\"0\""),
              0);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    second_thread.join();
}

TEST(Cluster, GarbageOnWorkerPortDoesNotDisturbService)
{
    TempDir tmp("garbage");
    Coordinator coordinator(quietCoordinator(2));
    coordinator.start();

    // An HTTP request aimed at the worker port: bad magic, dropped.
    int bad = connectTo(coordinator.workerPort());
    ASSERT_GE(bad, 0);
    sendRaw(bad, "GET / HTTP/1.1\r\nHost: x\r\n\r\n");

    // A truncated-then-abandoned frame: valid header, missing payload.
    int trunc = connectTo(coordinator.workerPort());
    ASSERT_GE(trunc, 0);
    std::string frame =
        cluster::encodeFrame(cluster::FrameType::Hello, "{\"protocol\": 1}");
    sendRaw(trunc, frame.substr(0, frame.size() - 4));

    // The coordinator keeps serving and a real worker can still join.
    EXPECT_EQ(request(coordinator.httpPort(), "GET", "/healthz").status,
              200);
    Worker worker(quietWorker(coordinator, tmp.path() + "/w"));
    std::thread worker_thread([&] { worker.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));
    ::close(bad);
    ::close(trunc);

    Reply sweep = request(coordinator.httpPort(), "POST", "/sweep",
                          kSweepBody);
    EXPECT_EQ(sweep.status, 200);
    EXPECT_EQ(sweep.body, cliReport(""));

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    worker_thread.join();
}

TEST(Cluster, NoWorkersMeans503AndBadBodiesMean400)
{
    Coordinator coordinator(quietCoordinator(2));
    coordinator.start();

    Reply no_workers = request(coordinator.httpPort(), "POST", "/sweep",
                               kSweepBody);
    EXPECT_EQ(no_workers.status, 503);
    EXPECT_NE(no_workers.body.find("no workers connected"),
              std::string::npos);

    EXPECT_EQ(request(coordinator.httpPort(), "POST", "/sweep",
                      "{not json").status, 400);
    EXPECT_EQ(request(coordinator.httpPort(), "POST", "/run",
                      "{\"workload\": \"nope\"}").status, 400);
    EXPECT_EQ(request(coordinator.httpPort(), "GET", "/sweep").status,
              405);
    EXPECT_EQ(request(coordinator.httpPort(), "GET", "/nope").status,
              404);
    EXPECT_EQ(request(coordinator.httpPort(), "GET",
                      "/results/0123").status, 404);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
}

TEST(Cluster, KeepAliveServesManyRequestsOnOneConnection)
{
    Coordinator coordinator(quietCoordinator(1));
    coordinator.start();

    // HTTP/1.1 persistence is the default on the epoll front end: many
    // requests, one connection, one connection-count increment.
    int fd = connectTo(coordinator.httpPort());
    ASSERT_GE(fd, 0);
    for (unsigned i = 0; i < 5; i++) {
        ASSERT_TRUE(sendRaw(fd, requestWire("GET", "/healthz")));
        Reply reply = readReply(fd);
        EXPECT_EQ(reply.status, 200);
        EXPECT_EQ(reply.headers.at("Connection"), "keep-alive");
    }

    // Pipelined back-to-back requests also all get answered.
    ASSERT_TRUE(sendRaw(fd, requestWire("GET", "/healthz") +
                                requestWire("GET", "/metrics")));
    EXPECT_EQ(readReply(fd).status, 200);
    Reply scrape = readReply(fd);
    EXPECT_EQ(scrape.status, 200);
    EXPECT_NE(scrape.body.find("dynaspam_http_connections_total 1\n"),
              std::string::npos);

    // `Connection: close` is honored: response says close, then EOF.
    ASSERT_TRUE(sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n"
                            "Connection: close\r\n\r\n"));
    Reply last = readReply(fd);
    EXPECT_EQ(last.status, 200);
    EXPECT_EQ(last.headers.at("Connection"), "close");
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
}

TEST(Cluster, AdmissionBoundReturns429)
{
    CoordinatorOptions opts = quietCoordinator(1);
    opts.queueCapacity = 2;    // fig8/bfs needs 4 job slots
    Coordinator coordinator(opts);
    coordinator.start();

    // One worker so admission (not worker-absence) is the limiter; the
    // sweep is larger than the queue, so it is refused outright.
    TempDir tmp("admission");
    Worker worker(quietWorker(coordinator, tmp.path() + "/w"));
    std::thread worker_thread([&] { worker.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));

    Reply reply = request(coordinator.httpPort(), "POST", "/sweep",
                          kSweepBody);
    EXPECT_EQ(reply.status, 429);
    EXPECT_EQ(reply.headers.at("Retry-After"), "2");
    EXPECT_NE(reply.body.find("admission queue full"), std::string::npos);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    worker_thread.join();
}

TEST(Cluster, EnrollmentTokenGatesWorkers)
{
    TempDir tmp("token");
    CoordinatorOptions copts = quietCoordinator(2);
    copts.clusterToken = "sekrit-cluster-token";
    Coordinator coordinator(copts);
    coordinator.start();

    // A tokenless worker and a wrong-token worker are both dropped
    // before any Welcome; neither ever counts as connected.
    WorkerOptions bare = quietWorker(coordinator, "");
    bare.reconnect = false;
    Worker tokenless(bare);
    std::thread tokenless_thread([&] { tokenless.run(); });

    WorkerOptions mismatched = bare;
    mismatched.clusterToken = "wrong-token";
    Worker wrong(mismatched);
    std::thread wrong_thread([&] { wrong.run(); });

    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_hello_rejects_total") >= 2;
    }));
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_workers_connected"),
              0);
    tokenless_thread.join();
    wrong_thread.join();

    // The secret must never surface through the metrics endpoint.
    Reply metrics = request(coordinator.httpPort(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_EQ(metrics.body.find("sekrit"), std::string::npos);
    EXPECT_NE(metrics.body.find("dynaspam_cluster_hello_rejects_total 2"),
              std::string::npos);

    // The matching token enrolls normally and the cluster serves work.
    WorkerOptions good = quietWorker(coordinator, tmp.path() + "/w");
    good.clusterToken = "sekrit-cluster-token";
    Worker enrolled(good);
    std::thread enrolled_thread([&] { enrolled.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));
    Reply run = request(coordinator.httpPort(), "POST", "/run",
                        "{\"workload\": \"bfs\", \"trace_length\": 16}");
    EXPECT_EQ(run.status, 200);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    enrolled_thread.join();
}

TEST(Cluster, CoordinatorMemoServesRepeatSweeps)
{
    TempDir tmp("memo");
    CoordinatorOptions copts = quietCoordinator(2);
    copts.memoCapacity = 64;
    Coordinator coordinator(copts);
    coordinator.start();

    Worker worker(quietWorker(coordinator, tmp.path() + "/w"));
    std::thread worker_thread([&] { worker.run(); });
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 1;
    }));

    Reply cold = request(coordinator.httpPort(), "POST", "/sweep",
                         kSweepBody);
    ASSERT_EQ(cold.status, 200);
    EXPECT_EQ(cold.body.find("\"from_cache\": true"), std::string::npos);
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_coordinator_memo_hits"),
              0);

    // The repeat sweep is answered from the coordinator-side memo:
    // every entry is marked from_cache and no worker round-trip adds
    // cache hits beyond the first pass.
    Reply warm = request(coordinator.httpPort(), "POST", "/sweep",
                         kSweepBody);
    ASSERT_EQ(warm.status, 200);
    EXPECT_NE(warm.body.find("\"from_cache\": true"), std::string::npos);
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_coordinator_memo_hits"),
              4);

    // Memo-served requests need no workers at all: kill the only
    // worker and the same sweep still answers 200 entirely from memo.
    worker.shutdownNow();
    worker_thread.join();
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 0;
    }));
    Reply orphan = request(coordinator.httpPort(), "POST", "/sweep",
                           kSweepBody);
    EXPECT_EQ(orphan.status, 200);
    EXPECT_EQ(coordinator.metrics().value(
                  "dynaspam_cluster_coordinator_memo_hits"),
              8);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
}
