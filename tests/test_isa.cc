/**
 * @file
 * Unit tests for the micro-ISA: opcode classification, program builder,
 * functional executor semantics and dynamic trace generation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "isa/executor.hh"
#include "isa/opcodes.hh"
#include "isa/program.hh"
#include "isa/trace.hh"
#include "memory/functional_mem.hh"

using namespace dynaspam;
using namespace dynaspam::isa;

namespace
{

isa::ExecResult
runProgram(Program &prog, mem::FunctionalMemory &memory,
           DynamicTrace *trace = nullptr)
{
    return Executor::run(prog, memory, trace);
}

} // namespace

TEST(Opcodes, ClassificationIsConsistent)
{
    EXPECT_EQ(opClass(Opcode::ADD), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::MUL), OpClass::IntMult);
    EXPECT_EQ(opClass(Opcode::DIV), OpClass::IntDiv);
    EXPECT_EQ(opClass(Opcode::FADD), OpClass::FloatAdd);
    EXPECT_EQ(opClass(Opcode::FMUL), OpClass::FloatMult);
    EXPECT_EQ(opClass(Opcode::FDIV), OpClass::FloatDiv);
    EXPECT_EQ(opClass(Opcode::LD), OpClass::MemRead);
    EXPECT_EQ(opClass(Opcode::FST), OpClass::MemWrite);
    EXPECT_EQ(opClass(Opcode::BEQ), OpClass::Branch);
    EXPECT_EQ(opClass(Opcode::RET), OpClass::Branch);
}

TEST(Opcodes, FuMappingMatchesTable4)
{
    EXPECT_EQ(fuTypeFor(OpClass::IntAlu), FuType::IntAlu);
    EXPECT_EQ(fuTypeFor(OpClass::Branch), FuType::IntAlu);
    EXPECT_EQ(fuTypeFor(OpClass::IntMult), FuType::IntMulDiv);
    EXPECT_EQ(fuTypeFor(OpClass::IntDiv), FuType::IntMulDiv);
    EXPECT_EQ(fuTypeFor(OpClass::FloatAdd), FuType::FpAlu);
    EXPECT_EQ(fuTypeFor(OpClass::FloatMult), FuType::FpMulDiv);
    EXPECT_EQ(fuTypeFor(OpClass::FloatDiv), FuType::FpMulDiv);
    EXPECT_EQ(fuTypeFor(OpClass::MemRead), FuType::Ldst);
    EXPECT_EQ(fuTypeFor(OpClass::MemWrite), FuType::Ldst);
}

TEST(Opcodes, LatenciesAreOrdered)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_GT(opLatency(OpClass::IntMult), opLatency(OpClass::IntAlu));
    EXPECT_GT(opLatency(OpClass::IntDiv), opLatency(OpClass::IntMult));
    EXPECT_GT(opLatency(OpClass::FloatDiv), opLatency(OpClass::FloatMult));
}

TEST(RegisterSpace, IntAndFpRegionsDisjoint)
{
    EXPECT_FALSE(isFpReg(intReg(0)));
    EXPECT_FALSE(isFpReg(intReg(31)));
    EXPECT_TRUE(isFpReg(fpReg(0)));
    EXPECT_TRUE(isFpReg(fpReg(31)));
    EXPECT_EQ(fpReg(0), NUM_INT_REGS);
}

TEST(ProgramBuilder, ForwardAndBackwardLabelsResolve)
{
    ProgramBuilder b("labels");
    b.movi(intReg(1), 0);
    b.label("head");
    b.addi(intReg(1), intReg(1), 1);
    b.movi(intReg(2), 5);
    b.blt(intReg(1), intReg(2), "head");   // backward
    b.jmp("end");                          // forward
    b.movi(intReg(3), 99);                 // skipped
    b.label("end");
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.regs.read(intReg(1)), 5u);
    EXPECT_EQ(result.regs.read(intReg(3)), 0u);  // jmp skipped it
}

TEST(ProgramBuilder, UndefinedLabelIsFatal)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    b.halt();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProgramBuilder, DuplicateLabelIsFatal)
{
    ProgramBuilder b;
    b.label("x");
    EXPECT_THROW(b.label("x"), FatalError);
}

TEST(Executor, IntegerArithmetic)
{
    ProgramBuilder b;
    b.movi(intReg(1), 20);
    b.movi(intReg(2), 3);
    b.add(intReg(3), intReg(1), intReg(2));
    b.sub(intReg(4), intReg(1), intReg(2));
    b.mul(intReg(5), intReg(1), intReg(2));
    b.div(intReg(6), intReg(1), intReg(2));
    b.rem(intReg(7), intReg(1), intReg(2));
    b.slt(intReg(8), intReg(2), intReg(1));
    b.shli(intReg(9), intReg(2), 4);
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_EQ(result.regs.read(intReg(3)), 23u);
    EXPECT_EQ(result.regs.read(intReg(4)), 17u);
    EXPECT_EQ(result.regs.read(intReg(5)), 60u);
    EXPECT_EQ(result.regs.read(intReg(6)), 6u);
    EXPECT_EQ(result.regs.read(intReg(7)), 2u);
    EXPECT_EQ(result.regs.read(intReg(8)), 1u);
    EXPECT_EQ(result.regs.read(intReg(9)), 48u);
}

TEST(Executor, SignedComparisonsAndNegatives)
{
    ProgramBuilder b;
    b.movi(intReg(1), -5);
    b.movi(intReg(2), 3);
    b.slt(intReg(3), intReg(1), intReg(2));   // -5 < 3 -> 1
    b.slti(intReg(4), intReg(1), -10);        // -5 < -10 -> 0
    b.div(intReg(5), intReg(1), intReg(2));   // -5 / 3 = -1
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_EQ(result.regs.read(intReg(3)), 1u);
    EXPECT_EQ(result.regs.read(intReg(4)), 0u);
    EXPECT_EQ(std::int64_t(result.regs.read(intReg(5))), -1);
}

TEST(Executor, DivideByZeroYieldsZero)
{
    ProgramBuilder b;
    b.movi(intReg(1), 7);
    b.movi(intReg(2), 0);
    b.div(intReg(3), intReg(1), intReg(2));
    b.rem(intReg(4), intReg(1), intReg(2));
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_EQ(result.regs.read(intReg(3)), 0u);
    EXPECT_EQ(result.regs.read(intReg(4)), 0u);
}

TEST(Executor, FloatingPointArithmetic)
{
    ProgramBuilder b;
    b.fmovi(fpReg(1), 1.5);
    b.fmovi(fpReg(2), 2.0);
    b.fadd(fpReg(3), fpReg(1), fpReg(2));
    b.fmul(fpReg(4), fpReg(1), fpReg(2));
    b.fdiv(fpReg(5), fpReg(2), fpReg(1));
    b.fsqrt(fpReg(6), fpReg(2));
    b.fclt(intReg(1), fpReg(1), fpReg(2));
    b.cvtfi(intReg(2), fpReg(4));
    b.movi(intReg(3), 7);
    b.cvtif(fpReg(7), intReg(3));
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(3)), 3.5);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(4)), 3.0);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(5)), 2.0 / 1.5);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(6)), std::sqrt(2.0));
    EXPECT_EQ(result.regs.read(intReg(1)), 1u);
    EXPECT_EQ(result.regs.read(intReg(2)), 3u);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(7)), 7.0);
}

TEST(Executor, LoadStoreRoundTrip)
{
    ProgramBuilder b;
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 0xdead);
    b.st(intReg(1), intReg(2), 8);
    b.ld(intReg(3), intReg(1), 8);
    b.fmovi(fpReg(1), 2.75);
    b.fst(intReg(1), fpReg(1), 16);
    b.fld(fpReg(2), intReg(1), 16);
    b.halt();
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_EQ(result.regs.read(intReg(3)), 0xdeadu);
    EXPECT_DOUBLE_EQ(result.regs.readF(fpReg(2)), 2.75);
    EXPECT_EQ(memory.read64(0x1008), 0xdeadu);
    EXPECT_DOUBLE_EQ(memory.readDouble(0x1010), 2.75);
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b;
    b.movi(intReg(1), 1);
    b.call(intReg(31), "func");
    b.addi(intReg(1), intReg(1), 100);  // runs after return
    b.halt();
    b.label("func");
    b.addi(intReg(1), intReg(1), 10);
    b.ret(intReg(31));
    Program p = b.build();

    mem::FunctionalMemory memory;
    auto result = runProgram(p, memory);
    EXPECT_EQ(result.regs.read(intReg(1)), 111u);
}

TEST(Executor, NonHaltingProgramIsFatal)
{
    ProgramBuilder b;
    b.label("spin");
    b.jmp("spin");
    Program p = b.build();

    mem::FunctionalMemory memory;
    EXPECT_THROW(Executor::run(p, memory, nullptr, 1000), FatalError);
}

TEST(DynamicTrace, RecordsBranchOutcomesAndAddresses)
{
    ProgramBuilder b;
    b.movi(intReg(1), 0);        // pc 0
    b.movi(intReg(2), 3);        // pc 1
    b.movi(intReg(3), 0x2000);   // pc 2
    b.label("head");
    b.st(intReg(3), intReg(1), 0);            // pc 3
    b.addi(intReg(3), intReg(3), 8);          // pc 4
    b.addi(intReg(1), intReg(1), 1);          // pc 5
    b.blt(intReg(1), intReg(2), "head");      // pc 6
    b.halt();                                  // pc 7
    Program p = b.build();

    mem::FunctionalMemory memory;
    DynamicTrace trace(p);
    auto result = Executor::run(p, memory, &trace);
    EXPECT_TRUE(result.halted);
    // 3 setup + 3 iterations * 4 + halt = 16 records.
    ASSERT_EQ(trace.size(), 16u);

    // First store effective address is 0x2000; second iteration's is 0x2008.
    EXPECT_EQ(trace[3].effAddr, 0x2000u);
    EXPECT_EQ(trace[7].effAddr, 0x2008u);

    // The loop branch at pc 6: taken twice, then not taken.
    EXPECT_TRUE(trace[6].taken);
    EXPECT_EQ(trace[6].nextPc, 3u);
    EXPECT_TRUE(trace[10].taken);
    EXPECT_FALSE(trace[14].taken);
    EXPECT_EQ(trace[14].nextPc, 7u);

    // Trace next PCs form a connected chain.
    for (SeqNum i = 0; i + 1 < trace.size(); i++)
        EXPECT_EQ(trace[i].nextPc, trace[i + 1].pc);
}

TEST(Disassembly, ProducesReadableListing)
{
    ProgramBuilder b("disasm");
    b.movi(intReg(1), 7);
    b.fmovi(fpReg(0), 1.0);
    b.ld(intReg(2), intReg(1), 16);
    b.beq(intReg(1), intReg(2), "done");
    b.label("done");
    b.halt();
    Program p = b.build();
    std::string text = p.disassemble();
    EXPECT_NE(text.find("movi r1, 7"), std::string::npos);
    EXPECT_NE(text.find("ld r2, 16(r1)"), std::string::npos);
    EXPECT_NE(text.find("beq r1, r2, @4"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}
