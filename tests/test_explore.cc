/**
 * @file
 * Tests for the design-space-exploration engine and its transports:
 * space validation strictness, Pareto-frontier math (ties included),
 * byte-determinism of the NDJSON stream, the successive-halving
 * guarantee that pruning never discards a true frontier point when the
 * scouts are exact, byte-identity across thread counts with the real
 * simulator, and byte-identity of the chunked /explore stream — on the
 * serve daemon and on the cluster coordinator — against an in-process
 * engine drive.
 *
 * Transport tests use the executeFn seam with a hand-shaped,
 * deterministic objective landscape so they are fast and the expected
 * bytes can be produced locally; one engine test runs real simulations.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/coordinator.hh"
#include "cluster/worker.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "explore/engine.hh"
#include "explore/space.hh"
#include "runner/runner.hh"
#include "serve/http.hh"
#include "serve/server.hh"

using namespace dynaspam;
using cluster::Coordinator;
using cluster::CoordinatorOptions;
using cluster::Worker;
using cluster::WorkerOptions;
using runner::Job;
using serve::Server;
using serve::ServerOptions;

namespace
{

/** Self-deleting scratch directory. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        dir = std::filesystem::temp_directory_path() /
              ("dynaspam-explore-" + tag + "-" +
               std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }
    ~TempDir() { std::filesystem::remove_all(dir); }
    std::string path() const { return dir.string(); }

  private:
    std::filesystem::path dir;
};

/** Spin until @p predicate holds (bounded; avoids sleep-based races). */
template <typename Pred>
bool
eventually(Pred predicate, unsigned timeout_ms = 10000)
{
    for (unsigned waited = 0; waited < timeout_ms; waited++) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return predicate();
}

explore::Space
parseSpace(const std::string &text)
{
    return explore::Space::fromJson(json::Value::parse(text));
}

/**
 * Deterministic fake objective landscape. Accelerated modes trade
 * energy for cycles; longer traces and more fabrics buy speed at an
 * energy premium, so two-objective frontiers are non-trivial. Sampled
 * scouts report the exact full-fidelity numbers (perfect scouting) at
 * a tenth of the cost, which makes exhaustive-vs-pruned frontier
 * comparisons sound: any margin-pruned candidate really is dominated.
 */
sim::RunResult
fakeResult(const Job &job)
{
    std::uint64_t cycles = 0;
    double energy = 0.0;
    switch (job.mode) {
    case sim::SystemMode::BaselineOoo:
        cycles = 100000;
        energy = 1000.0;
        break;
    case sim::SystemMode::MappingOnly:
        cycles = 96000;
        energy = 900.0;
        break;
    case sim::SystemMode::AccelNoSpec:
        // Longer traces amortize dispatch energy, so short-trace points
        // are dominated; fabrics trade energy for cycles.
        cycles = 80000 - 200 * job.traceLength - 4000 * job.numFabrics;
        energy = 950.0 + 30.0 * job.numFabrics - job.traceLength;
        break;
    case sim::SystemMode::AccelSpec:
        cycles = 70000 - 250 * job.traceLength - 5000 * job.numFabrics;
        energy = 1050.0 + 45.0 * job.numFabrics - 2.0 * job.traceLength;
        break;
    case sim::SystemMode::AccelNaive:
        cycles = 120000;
        energy = 1400.0;
        break;
    }
    cycles += 1000 * (job.workload.size() % 4) + 500 * job.scale;

    sim::RunResult result;
    result.cycles = cycles;
    result.instsTotal = 200000;
    result.instsHost = 200000;
    result.functionallyCorrect = true;
    result.energy.component["fake"] = energy;
    if (job.fidelity == runner::Fidelity::Sampled) {
        result.sampled = true;
        result.sampledInsts = 2000;
        result.sampledCycles = cycles / 100;
    }
    return result;
}

/** Drive @p engine to completion against fakeResult; all lines. */
std::vector<std::string>
driveEngine(explore::Engine &engine)
{
    std::vector<std::string> lines = engine.start();
    while (!engine.done()) {
        const std::vector<Job> &batch = engine.nextBatch();
        std::vector<runner::JobOutcome> outcomes;
        outcomes.reserve(batch.size());
        for (const Job &job : batch)
            outcomes.push_back(
                runner::JobOutcome{job, fakeResult(job), false});
        std::vector<std::string> fed = engine.feed(outcomes);
        lines.insert(lines.end(), fed.begin(), fed.end());
    }
    return lines;
}

/** The stream body a transport should deliver for the same space. */
std::string
streamBody(const std::vector<std::string> &lines)
{
    std::string body;
    for (const std::string &line : lines)
        body += line + "\n";
    return body;
}

/** (problem, job hash) identity of every final-frontier point. */
std::set<std::string>
frontierKeys(const json::Value &report)
{
    std::set<std::string> keys;
    for (const json::Value &problem : report.at("problems").asArray()) {
        for (const json::Value &entry :
             problem.at("frontier").asArray()) {
            keys.insert(problem.at("workload").asString() + "/" +
                        std::to_string(problem.at("scale").asUint()) +
                        "#" + entry.at("job").at("hash").asString());
        }
    }
    return keys;
}

std::string
lineType(const std::string &line)
{
    return json::Value::parse(line).at("type").asString();
}

// --- raw HTTP client (reads to EOF; suitable for chunked streams) ----

struct Reply
{
    int status = 0;
    std::string head;
    std::string body; ///< raw bytes after the blank line
};

int
connectTo(unsigned port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

Reply
rawRequest(unsigned port, const std::string &wire)
{
    Reply reply;
    int fd = connectTo(port);
    if (fd < 0)
        return reply;
    size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
        if (n <= 0)
            break;
        sent += size_t(n);
    }
    std::string raw;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        raw.append(buf, size_t(n));
    ::close(fd);

    const size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos)
        return reply;
    reply.head = raw.substr(0, split + 4);
    reply.body = raw.substr(split + 4);
    std::sscanf(raw.c_str(), "HTTP/1.1 %d", &reply.status);
    return reply;
}

Reply
request(unsigned port, const std::string &method,
        const std::string &target, const std::string &body = "")
{
    std::ostringstream os;
    os << method << " " << target << " HTTP/1.1\r\n"
       << "Host: test\r\nConnection: close\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    return rawRequest(port, os.str());
}

/** A small fig8-shaped space shared by the transport tests. */
const char *kSpaceBody =
    "{\"name\": \"tspace\", \"workloads\": [\"bfs\", \"km\"],"
    " \"trace_lengths\": [16, 32], \"num_fabrics\": [1, 2],"
    " \"objectives\": [\"speedup\", \"energy\"],"
    " \"generation_size\": 4, \"seed\": 7}";

} // namespace

// --- Space validation ----------------------------------------------------

TEST(ExploreSpace, RejectsMalformedDescriptions)
{
    EXPECT_THROW(parseSpace("{}"), FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": []}"), FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"\"]}"), FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\", \"bfs\"]}"),
                 FatalError);
    EXPECT_THROW(
        parseSpace("{\"workloads\": [\"bfs\"], \"bogus\": 1}"),
        FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"objectives\": []}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"objectives\": [\"speedup\","
                            " \"speedup\"]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"objectives\": [\"speedup\", \"cycles\","
                            " \"energy\", \"edp\"]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"objectives\": [\"watts\"]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"scout_fidelity\": \"half\"}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"trace_lengths\": [0]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"trace_lengths\": [16, 16]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"modes\": [\"warp-drive\"]}"),
                 FatalError);
    EXPECT_THROW(parseSpace("{\"workloads\": [\"bfs\"],"
                            " \"generation_size\": 0}"),
                 FatalError);
}

TEST(ExploreSpace, DefaultsAndJsonRoundTrip)
{
    explore::Space space = parseSpace("{\"workloads\": [\"bfs\"]}");
    EXPECT_EQ(space.modes.size(), 4u);
    EXPECT_EQ(space.objectives.size(), 2u);
    EXPECT_EQ(space.generationSize, 8u);
    EXPECT_FALSE(space.exhaustive);

    // toJson is a fixed point: parsing the canonical echo reproduces
    // the exact same echo.
    explore::Space again = explore::Space::fromJson(space.toJson());
    EXPECT_EQ(space.toJson().dump(2), again.toJson().dump(2));
}

// --- Pareto frontier -----------------------------------------------------

TEST(ExplorePareto, KeepsNonDominatedPointsAndTies)
{
    const std::vector<bool> maxBoth = {true, true};
    // (2,1) and (1,2) trade off; (0,0) is dominated; the duplicate of
    // (2,1) is mutually non-dominated with it and kept.
    EXPECT_EQ(explore::paretoFrontier({{2, 1}, {1, 2}, {0, 0}, {2, 1}},
                                      maxBoth),
              (std::vector<std::size_t>{0, 1, 3}));

    const std::vector<bool> minBoth = {false, false};
    EXPECT_EQ(explore::paretoFrontier({{1, 1}, {2, 2}}, minBoth),
              (std::vector<std::size_t>{0}));

    // Mixed directions: maximize first, minimize second. (4,5) beats
    // both others.
    const std::vector<bool> mixed = {true, false};
    EXPECT_EQ(explore::paretoFrontier({{3, 5}, {4, 6}, {4, 5}}, mixed),
              (std::vector<std::size_t>{2}));

    EXPECT_TRUE(explore::paretoFrontier({}, maxBoth).empty());
}

// --- Engine --------------------------------------------------------------

TEST(ExploreEngine, SyntheticDriveIsByteDeterministic)
{
    explore::Engine a(parseSpace(kSpaceBody));
    explore::Engine b(parseSpace(kSpaceBody));
    const std::vector<std::string> la = driveEngine(a);
    const std::vector<std::string> lb = driveEngine(b);
    EXPECT_EQ(la, lb);
    EXPECT_EQ(a.finalReport().dump(2), b.finalReport().dump(2));

    ASSERT_FALSE(la.empty());
    EXPECT_EQ(lineType(la.front()), "header");
    EXPECT_EQ(lineType(la.back()), "frontier");

    // Every problem reports a non-empty frontier and exact
    // (full-fidelity) numbers.
    const json::Value &report = a.finalReport();
    EXPECT_EQ(report.at("schema_version").asUint(),
              explore::kExploreSchemaVersion);
    ASSERT_EQ(report.at("problems").asArray().size(), 2u);
    for (const json::Value &problem :
         report.at("problems").asArray()) {
        EXPECT_FALSE(problem.at("frontier").asArray().empty());
        for (const json::Value &entry :
             problem.at("frontier").asArray())
            EXPECT_FALSE(entry.at("result").find("sampled"));
    }
}

TEST(ExploreEngine, SeedReordersScoutingButNotTheFrontier)
{
    const std::string other =
        "{\"name\": \"tspace\", \"workloads\": [\"bfs\", \"km\"],"
        " \"trace_lengths\": [16, 32], \"num_fabrics\": [1, 2],"
        " \"objectives\": [\"speedup\", \"energy\"],"
        " \"generation_size\": 4, \"seed\": 8}";
    explore::Engine a(parseSpace(kSpaceBody));
    explore::Engine b(parseSpace(other));
    driveEngine(a);
    driveEngine(b);
    // The landscape is fixed, so whatever order the scouts go out in,
    // the surviving frontier must be the same set of points.
    EXPECT_EQ(frontierKeys(a.finalReport()),
              frontierKeys(b.finalReport()));
}

TEST(ExploreEngine, PruningNeverDropsTrueFrontierPoints)
{
    // fig8-shaped grid: the four comparison modes crossed with trace
    // lengths and fabric counts. Perfect scouts (fakeResult reports
    // identical numbers at both fidelities) mean any candidate the
    // margin logic prunes or declines to promote is genuinely
    // dominated, so the pruned frontier must equal the exhaustive one.
    const std::string base =
        "\"workloads\": [\"bfs\"],"
        " \"trace_lengths\": [8, 16, 32], \"num_fabrics\": [1, 2, 4],"
        " \"objectives\": [\"speedup\", \"energy\"],"
        " \"generation_size\": 4, \"seed\": 3";
    explore::Engine pruned(parseSpace("{" + base + "}"));
    explore::Engine exact(
        parseSpace("{" + base + ", \"exhaustive\": true}"));
    driveEngine(pruned);
    driveEngine(exact);

    EXPECT_EQ(frontierKeys(pruned.finalReport()),
              frontierKeys(exact.finalReport()));

    // The adaptive search must actually be cheaper than the grid it
    // matched (the ≤50% gate on a realistic grid lives in
    // bench/bench_explore.cc; this landscape only proves safety).
    EXPECT_LT(pruned.costUnits(), exact.costUnits());
    EXPECT_EQ(exact.costUnits(), exact.gridCostUnits());
}

TEST(ExploreEngine, FeedValidatesOutcomeShape)
{
    explore::Engine engine(parseSpace("{\"workloads\": [\"bfs\"]}"));
    engine.start();
    const std::vector<Job> &batch = engine.nextBatch();
    ASSERT_FALSE(batch.empty());

    EXPECT_THROW(engine.feed({}), FatalError);

    std::vector<runner::JobOutcome> wrong;
    for (const Job &job : batch) {
        Job twisted = job;
        twisted.traceLength += 1;
        wrong.push_back(
            runner::JobOutcome{twisted, fakeResult(twisted), false});
    }
    EXPECT_THROW(engine.feed(wrong), FatalError);
}

TEST(ExploreEngine, RealRunnerByteIdenticalAcrossThreadCounts)
{
    const char *spaceBody =
        "{\"name\": \"threads\", \"workloads\": [\"bfs\"],"
        " \"trace_lengths\": [16, 32],"
        " \"objectives\": [\"speedup\", \"energy\"],"
        " \"generation_size\": 4, \"seed\": 1}";
    auto drive = [&](unsigned jobs) {
        runner::RunnerOptions opts;
        opts.jobs = jobs;
        runner::Runner runner(opts);
        explore::Engine engine(parseSpace(spaceBody));
        std::vector<std::string> lines = engine.start();
        while (!engine.done()) {
            std::vector<std::string> fed =
                engine.feed(runner.runAll(engine.nextBatch()));
            lines.insert(lines.end(), fed.begin(), fed.end());
        }
        return std::make_pair(streamBody(lines),
                              engine.finalReport().dump(2));
    };
    const auto serial = drive(1);
    const auto parallel = drive(8);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
}

// --- serve transport -----------------------------------------------------

namespace
{

ServerOptions
fakeServeOptions()
{
    ServerOptions opts;
    opts.port = 0;
    opts.verbose = false;
    opts.executeFn = fakeResult;
    return opts;
}

} // namespace

TEST(ExploreServe, StreamIsChunkedAndByteIdenticalToInProcess)
{
    Server server(fakeServeOptions());
    server.start();
    Reply reply = request(server.port(), "POST", "/explore", kSpaceBody);
    ASSERT_EQ(reply.status, 200);
    EXPECT_NE(reply.head.find("Transfer-Encoding: chunked"),
              std::string::npos);
    EXPECT_NE(reply.head.find("application/x-ndjson"),
              std::string::npos);

    std::string body;
    ASSERT_TRUE(serve::decodeChunkedBody(reply.body, body));

    explore::Engine engine(parseSpace(kSpaceBody));
    EXPECT_EQ(body, streamBody(driveEngine(engine)));

    // Every reassembled line is standalone JSON with a type tag.
    std::istringstream is(body);
    std::string line;
    while (std::getline(is, line))
        EXPECT_FALSE(lineType(line).empty());
}

TEST(ExploreServe, RejectsMalformedSpacesAndMethods)
{
    Server server(fakeServeOptions());
    server.start();
    EXPECT_EQ(request(server.port(), "GET", "/explore").status, 405);
    EXPECT_EQ(request(server.port(), "POST", "/explore", "ribbit")
                  .status,
              400);
    EXPECT_EQ(request(server.port(), "POST", "/explore", "{}").status,
              400);
    EXPECT_EQ(request(server.port(), "POST", "/explore",
                      "{\"workloads\": [\"bfs\"], \"bogus\": 1}")
                  .status,
              400);
}

// --- cluster transport ---------------------------------------------------

namespace
{

CoordinatorOptions
quietCoordinator(unsigned slots)
{
    CoordinatorOptions opts;
    opts.httpPort = 0;
    opts.workerPort = 0;
    opts.workerSlots = slots;
    opts.retryBackoffMs = 10;
    opts.verbose = getenv("DSPAM_TEST_VERBOSE") != nullptr;
    return opts;
}

WorkerOptions
quietFakeWorker(const Coordinator &coordinator)
{
    WorkerOptions opts;
    opts.connectPort = coordinator.workerPort();
    opts.executeFn = fakeResult;
    opts.verbose = getenv("DSPAM_TEST_VERBOSE") != nullptr;
    return opts;
}

} // namespace

TEST(ExploreCluster, StreamByteIdenticalToInProcess)
{
    Coordinator coordinator(quietCoordinator(2));
    coordinator.start();

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < 2; i++) {
        workers.push_back(
            std::make_unique<Worker>(quietFakeWorker(coordinator)));
        threads.emplace_back([&, i] { workers[i]->run(); });
    }
    ASSERT_TRUE(eventually([&] {
        return coordinator.metrics().value(
                   "dynaspam_cluster_workers_connected") == 2;
    }));

    Reply reply =
        request(coordinator.httpPort(), "POST", "/explore", kSpaceBody);
    ASSERT_EQ(reply.status, 200);
    EXPECT_NE(reply.head.find("Transfer-Encoding: chunked"),
              std::string::npos);
    std::string body;
    ASSERT_TRUE(serve::decodeChunkedBody(reply.body, body));

    explore::Engine engine(parseSpace(kSpaceBody));
    EXPECT_EQ(body, streamBody(driveEngine(engine)));

    EXPECT_EQ(request(coordinator.httpPort(), "GET", "/explore").status,
              405);
    EXPECT_EQ(request(coordinator.httpPort(), "POST", "/explore", "{}")
                  .status,
              400);

    coordinator.beginDrain();
    coordinator.waitUntilDrained();
    for (std::thread &t : threads)
        t.join();
}
