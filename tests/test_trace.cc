/**
 * @file
 * Tests for the event-tracing layer (src/trace): the zero-cost
 * contract (an unattached or fully-filtered sink buffers nothing and
 * allocates nothing), timing non-perturbation (stat reports are
 * byte-identical with and without a sink), Chrome-JSON validity via
 * the repo's own parser, Konata header/retire structure, and the
 * headline determinism guarantee — env-driven trace files are
 * byte-identical whether the runner used 1 worker or 8.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "runner/runner.hh"
#include "trace/trace.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace fs = std::filesystem;

namespace
{

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<unsigned> next{0};
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-test-" + tag + "-" + std::to_string(getpid()) +
                  "-" + std::to_string(next++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** RAII environment variable: set on construction, restore on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

const std::vector<Job> &
smallSweep()
{
    static const std::vector<Job> jobs = {
        Job{"BP", SystemMode::BaselineOoo, 32, 1, 1},
        Job{"BP", SystemMode::AccelSpec, 32, 1, 1},
        Job{"PF", SystemMode::BaselineOoo, 32, 1, 1},
        Job{"PF", SystemMode::AccelSpec, 32, 1, 1},
    };
    return jobs;
}

} // namespace

// --- Zero-cost contract --------------------------------------------------

TEST(TraceSink, UntouchedSinkHoldsNoHeap)
{
    trace::TraceSink sink;
    EXPECT_EQ(sink.eventCount(), 0u);
    EXPECT_EQ(sink.instCount(), 0u);
    EXPECT_EQ(sink.markCount(), 0u);
    EXPECT_EQ(sink.bufferedBytes(), 0u);
}

TEST(TraceSink, WindowFilterDropsEventsWithoutAllocating)
{
    // A window past the end of the run: every hook still fires, but
    // nothing may be buffered — and since filtering happens before the
    // push, the vectors must never have grown.
    trace::TraceSink::Options window;
    window.beginCycle = std::numeric_limits<Cycle>::max() - 1;
    trace::TraceSink sink(window);

    sim::RunResult res =
        runner::execute(Job{"BP", SystemMode::AccelSpec, 32, 1, 1}, &sink);
    EXPECT_GT(res.instsTotal, 0u);
    EXPECT_EQ(sink.eventCount(), 0u);
    EXPECT_EQ(sink.bufferedBytes(), 0u);
}

TEST(TraceSink, WindowKeepsOnlyOverlappingEvents)
{
    trace::TraceSink::Options window;
    window.beginCycle = 100;
    window.endCycle = 200;
    trace::TraceSink sink(window);

    trace::InstEvent inside;
    inside.fetch = 150;
    inside.retire = 160;
    sink.instRetired(inside);

    trace::InstEvent before;
    before.fetch = 10;
    before.retire = 20;
    sink.instRetired(before);

    trace::InstEvent straddling;
    straddling.fetch = 90;
    straddling.retire = 110;
    sink.instRetired(straddling);

    sink.mark(trace::Mark::TCacheHit, 50);   // outside
    sink.mark(trace::Mark::TCacheHit, 150);  // inside
    sink.span(trace::Mark::Invocation, 190, 250);  // straddles the end

    EXPECT_EQ(sink.instCount(), 2u);
    EXPECT_EQ(sink.markCount(), 2u);
}

// --- Non-perturbation ----------------------------------------------------

TEST(TraceRunner, AttachedSinkDoesNotPerturbResults)
{
    for (SystemMode mode :
         {SystemMode::BaselineOoo, SystemMode::AccelSpec}) {
        const Job job{"BFS", mode, 32, 1, 1};
        const sim::RunResult plain = runner::execute(job, nullptr);
        trace::TraceSink sink;
        const sim::RunResult traced = runner::execute(job, &sink);
        // Byte-identical serialized reports: tracing observed the run
        // without changing a single cycle or statistic.
        EXPECT_EQ(runner::resultToJson(plain).dump(2),
                  runner::resultToJson(traced).dump(2))
            << "tracing perturbed " << job.key();
        if (trace::compiledIn())
            EXPECT_GT(sink.eventCount(), 0u);
    }
}

// --- Rendering -----------------------------------------------------------

TEST(TraceSink, ChromeJsonParsesAndHasPipelineSpans)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "trace hooks compiled out";

    trace::TraceSink sink;
    runner::execute(Job{"BFS", SystemMode::AccelSpec, 32, 1, 1}, &sink);
    ASSERT_GT(sink.instCount(), 0u);
    ASSERT_GT(sink.markCount(), 0u);

    std::ostringstream os;
    sink.writeChromeJson(os);
    const json::Value doc = json::Value::parse(os.str());

    const json::Array &events = doc.at("traceEvents").asArray();
    ASSERT_FALSE(events.empty());

    std::size_t host_spans = 0, invocation_spans = 0, counters = 0;
    for (const json::Value &ev : events) {
        const std::string &ph = ev.at("ph").asString();
        if (ph == "X" && ev.at("pid").asUint() == 0) {
            host_spans++;
            // Every pipeline span carries its program counter.
            EXPECT_NO_THROW(ev.at("args").at("pc").asUint());
        }
        if (ph == "X" && ev.at("pid").asUint() == 1 &&
            ev.at("name").asString() == "invocation") {
            invocation_spans++;
        }
        if (ph == "C")
            counters++;
    }
    EXPECT_GT(host_spans, 0u);
    // accel-spec offloads traces: the control plane must show
    // invocation spans and in-flight FIFO counter samples.
    EXPECT_GT(invocation_spans, 0u);
    EXPECT_GT(counters, 0u);
}

TEST(TraceSink, KonataLogHasHeaderAndRetires)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "trace hooks compiled out";

    trace::TraceSink sink;
    runner::execute(Job{"BP", SystemMode::BaselineOoo, 32, 1, 1}, &sink);

    std::ostringstream os;
    sink.writeKonata(os);
    const std::string log = os.str();
    EXPECT_EQ(log.rfind("Kanata\t0004\n", 0), 0u) << "missing header";
    EXPECT_NE(log.find("\nI\t"), std::string::npos) << "no inst records";
    EXPECT_NE(log.find("\nR\t"), std::string::npos) << "no retirements";
}

// --- Determinism across worker counts ------------------------------------

TEST(TraceRunner, WorkerCountDoesNotChangeTraceBytes)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "trace hooks compiled out";

    TempDir serial_dir("trace-serial");
    TempDir parallel_dir("trace-parallel");
    ScopedEnv on("DYNASPAM_TRACE", "1");

    {
        ScopedEnv dir("DYNASPAM_TRACE_DIR", serial_dir.path().c_str());
        runner::Runner r(runner::RunnerOptions{1, ""});
        r.runAll(smallSweep());
    }
    {
        ScopedEnv dir("DYNASPAM_TRACE_DIR", parallel_dir.path().c_str());
        runner::Runner r(runner::RunnerOptions{8, ""});
        r.runAll(smallSweep());
    }

    for (const Job &job : smallSweep()) {
        const std::string stem = runner::traceFileStem(job);
        for (const char *suffix : {".trace.json", ".trace.json.kanata"}) {
            const std::string name = stem + suffix;
            const std::string a = slurp(serial_dir.path() + "/" + name);
            const std::string b = slurp(parallel_dir.path() + "/" + name);
            EXPECT_FALSE(a.empty()) << name;
            EXPECT_EQ(a, b) << name << " differs across worker counts";
        }
    }
}

TEST(TraceRunner, EnvUntracedRunWritesNoFiles)
{
    TempDir dir("trace-off");
    ScopedEnv off("DYNASPAM_TRACE", nullptr);
    ScopedEnv where("DYNASPAM_TRACE_DIR", dir.path().c_str());

    runner::execute(Job{"BP", SystemMode::BaselineOoo, 32, 1, 1});
    EXPECT_TRUE(fs::is_empty(dir.path()));
}
