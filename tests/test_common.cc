/**
 * @file
 * Unit tests for the common module: stats, histogram, RNG, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

using namespace dynaspam;

TEST(StatCounter, StartsAtZeroAndIncrements)
{
    StatCounter c("c");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAccum, AccumulatesDoubles)
{
    StatAccum a("a");
    a.add(1.5);
    a.add(2.25);
    EXPECT_DOUBLE_EQ(a.value(), 3.75);
}

TEST(StatRegistry, CounterIsSharedByName)
{
    StatRegistry reg;
    reg.counter("x").inc(3);
    reg.counter("x").inc(4);
    EXPECT_EQ(reg.get("x"), 7u);
    EXPECT_EQ(reg.get("missing"), 0u);
}

TEST(StatRegistry, ResetAllClearsEverything)
{
    StatRegistry reg;
    reg.counter("x").inc(3);
    reg.accum("e").add(1.0);
    reg.resetAll();
    EXPECT_EQ(reg.get("x"), 0u);
    EXPECT_DOUBLE_EQ(reg.getAccum("e"), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h("h", 10, 4);   // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(100);             // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35 + 100) / 5.0);
}

TEST(Histogram, RejectsDegenerateGeometry)
{
    EXPECT_THROW(Histogram("h", 0, 4), FatalError);
    EXPECT_THROW(Histogram("h", 10, 0), FatalError);
}

TEST(Histogram, RestoreRoundTripsState)
{
    Histogram h("h", 10, 3);
    h.restore({1, 2, 3}, 4, 10, 250);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 3u);
    EXPECT_EQ(h.overflowCount(), 4u);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
    EXPECT_THROW(h.restore({1, 2}, 0, 0, 0), FatalError);
}

TEST(StatRegistry, HistogramRegistrationAndReset)
{
    StatRegistry reg;
    Histogram &h = reg.histogram("lat", 10, 4);
    h.sample(12);
    // Same name returns the same histogram regardless of geometry args.
    EXPECT_EQ(&reg.histogram("lat", 999, 1), &h);
    EXPECT_EQ(reg.findHistogram("lat"), &h);
    EXPECT_EQ(reg.findHistogram("absent"), nullptr);
    reg.resetAll();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Geomean, MatchesHandComputedValue)
{
    // geomean(2, 8) = 4
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Geomean, SkipsZeroEntries)
{
    // A zero measurement (e.g. a workload that committed nothing) used
    // to drive log() to -inf and the whole mean to 0; it is now skipped.
    EXPECT_NEAR(geomean({0.0, 2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, 0.0, 0.0}), 0.0);
}

TEST(Geomean, RejectsNegativeAndNaN)
{
    // log() of a negative used to return NaN and silently poison every
    // downstream comparison; both now fail loudly at the source.
    EXPECT_THROW(geomean({-1.0}), FatalError);
    EXPECT_THROW(geomean({2.0, -8.0}), FatalError);
    EXPECT_THROW(geomean({2.0, std::nan("")}), FatalError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++) {
        auto v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config value ", 42), FatalError);
    try {
        fatal("x=", 1, " y=", 2);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "x=1 y=2");
    }
}
