/**
 * @file
 * Tests for the verification subsystem (src/check): the golden-model
 * interpreter, the lockstep checker, the invariant auditors via the
 * fault-injection scenarios, and the full verifier attached to an
 * offloading pipeline run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/check.hh"
#include "check/fault_inject.hh"
#include "check/golden.hh"
#include "check/verifier.hh"
#include "core/controller.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/cpu.hh"

using namespace dynaspam;
using isa::intReg;

namespace
{

/** The same hot loop the system tests use: detects, maps, offloads. */
isa::Program
hotLoop(int trips)
{
    isa::ProgramBuilder b("hotloop");
    b.movi(intReg(1), 0);           // i
    b.movi(intReg(2), trips);       // n
    b.movi(intReg(3), 0x10000);     // src array
    b.movi(intReg(4), 0x40000);     // dst array
    b.movi(intReg(7), 0);           // never-equal guard
    b.movi(intReg(8), 0);           // acc
    b.label("head");
    b.beq(intReg(7), intReg(2), "skip1");
    b.ld(intReg(9), intReg(3), 0);
    b.label("skip1");
    b.beq(intReg(7), intReg(2), "skip2");
    b.mul(intReg(10), intReg(9), intReg(9));
    b.add(intReg(8), intReg(8), intReg(10));
    b.st(intReg(4), intReg(8), 0);
    b.label("skip2");
    b.addi(intReg(3), intReg(3), 8);
    b.addi(intReg(4), intReg(4), 8);
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");
    b.halt();
    return b.build();
}

} // namespace

// --- ViolationSink -----------------------------------------------------------

TEST(ViolationSink, CollectModeAccumulates)
{
    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    EXPECT_TRUE(sink.empty());
    sink.report("rob", 7, "first");
    sink.report("rename", 9, "second");
    ASSERT_EQ(sink.violations().size(), 2u);
    EXPECT_TRUE(sink.firedFrom("rob"));
    EXPECT_TRUE(sink.firedFrom("rename"));
    EXPECT_FALSE(sink.firedFrom("lsq"));
    EXPECT_EQ(sink.violations()[0].cycle, 7u);
    sink.clear();
    EXPECT_TRUE(sink.empty());
}

// --- Golden model ------------------------------------------------------------

TEST(GoldenModel, AgreesWithExecutorOnEveryRecord)
{
    // The golden model is an independent implementation of the ISA;
    // step it over a whole program and diff against the oracle trace
    // the functional executor produced.
    isa::Program p = hotLoop(50);
    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    isa::Executor::run(p, memory, &trace);
    ASSERT_GT(trace.size(), 0u);

    mem::FunctionalMemory initial;
    check::GoldenModel golden(p, initial);
    for (SeqNum i = 0; i < trace.size(); i++) {
        const isa::DynRecord &rec = trace[i];
        ASSERT_EQ(golden.pc(), rec.pc) << "record " << i;
        const check::GoldenEffect eff = golden.step();
        EXPECT_EQ(eff.nextPc, rec.nextPc) << "record " << i;
        if (p.inst(rec.pc).isMem()) {
            EXPECT_EQ(eff.effAddr, rec.effAddr) << "record " << i;
        }
        if (p.inst(rec.pc).isControl()) {
            EXPECT_EQ(eff.taken, rec.taken) << "record " << i;
        }
    }
    EXPECT_TRUE(golden.halted());
}

TEST(LockstepChecker, CleanRunReportsNothing)
{
    isa::Program p = hotLoop(20);
    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    isa::Executor::run(p, memory, &trace);

    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    mem::FunctionalMemory initial;
    check::LockstepChecker checker(trace, initial, sink);
    for (SeqNum i = 0; i < trace.size(); i++)
        checker.onCommit(i, 1, false, i);
    checker.finish(trace.size());
    EXPECT_TRUE(sink.empty());
    EXPECT_EQ(checker.commitsChecked(), trace.size());
}

TEST(LockstepChecker, TruncatedRunIsDivergence)
{
    isa::Program p = hotLoop(20);
    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    isa::Executor::run(p, memory, &trace);

    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    mem::FunctionalMemory initial;
    check::LockstepChecker checker(trace, initial, sink);
    checker.onCommit(0, 1, false, 0);
    checker.finish(1);  // run "ended" after a single commit
    EXPECT_TRUE(sink.firedFrom("golden"));
}

TEST(LockstepChecker, DumpWindowListsRecentCommits)
{
    isa::Program p = hotLoop(20);
    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    isa::Executor::run(p, memory, &trace);

    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    mem::FunctionalMemory initial;
    check::LockstepChecker checker(trace, initial, sink);
    for (SeqNum i = 0; i < 10; i++)
        checker.onCommit(i, 1, false, i);
    std::ostringstream os;
    checker.dumpWindow(os);
    EXPECT_NE(os.str().find("[9]"), std::string::npos);
}

// --- Fault injection: every auditor must catch its seeded violation ----------

TEST(FaultInjection, RobAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectRobFault());
}

TEST(FaultInjection, RenameAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectRenameFault());
}

TEST(FaultInjection, LsqAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectLsqFault());
}

TEST(FaultInjection, AtomicityAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectAtomicityFault());
}

TEST(FaultInjection, TCacheAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectTCacheFault());
}

TEST(FaultInjection, ConfigCacheAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectConfigCacheFault());
}

TEST(FaultInjection, FrontierAuditorFires)
{
    EXPECT_TRUE(check::FaultInjector::injectFrontierFault());
}

TEST(FaultInjection, GoldenCheckerFires)
{
    EXPECT_TRUE(check::FaultInjector::injectGoldenFault());
}

TEST(FaultInjection, SelfTestPasses)
{
    std::ostringstream os;
    EXPECT_TRUE(check::runSelfTest(os));
    EXPECT_NE(os.str().find("PASS"), std::string::npos);
    EXPECT_EQ(os.str().find("FAIL  "), std::string::npos);
}

// --- Full verifier over a real offloading run --------------------------------

TEST(Verifier, CleanAcceleratedRunPassesAllChecks)
{
    isa::Program p = hotLoop(2000);

    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    auto func = isa::Executor::run(p, memory, &trace);
    ASSERT_TRUE(func.halted);

    mem::MemoryHierarchy hierarchy{mem::MemoryHierarchy::Params{}};
    ooo::OooCpu cpu(ooo::OooParams{}, trace, hierarchy);
    core::DynaSpamParams dparams;
    core::DynaSpamController controller(dparams, trace,
                                        cpu.branchPredictor(),
                                        cpu.storeSetPredictor(), hierarchy);
    cpu.setHooks(&controller);

    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    mem::FunctionalMemory initial;
    check::Verifier verifier(cpu, trace, initial, &controller, sink);
    cpu.setCommitObserver(&verifier);

    const Cycle cycles = cpu.run();
    verifier.finish(cycles);

    for (const check::Violation &v : sink.violations())
        ADD_FAILURE() << "[" << v.auditor << "] cycle " << v.cycle << ": "
                      << v.message;
    EXPECT_TRUE(sink.empty());
    EXPECT_EQ(verifier.lockstepChecker().commitsChecked(), trace.size());
    EXPECT_GT(verifier.auditPasses(), 0u);
    EXPECT_GT(verifier.structurePasses(), 0u);
    // The run must actually exercise the fabric path for the lockstep
    // equivalence claim to mean anything.
    EXPECT_GT(cpu.stats().invocationsCommitted, 0u);
}

TEST(Verifier, BaselineRunPassesWithoutController)
{
    isa::Program p = hotLoop(300);

    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(p);
    isa::Executor::run(p, memory, &trace);

    mem::MemoryHierarchy hierarchy{mem::MemoryHierarchy::Params{}};
    ooo::OooCpu cpu(ooo::OooParams{}, trace, hierarchy);

    check::ViolationSink sink(check::ViolationSink::Mode::Collect);
    mem::FunctionalMemory initial;
    check::Verifier verifier(cpu, trace, initial, nullptr, sink);
    cpu.setCommitObserver(&verifier);

    const Cycle cycles = cpu.run();
    verifier.finish(cycles);
    EXPECT_TRUE(sink.empty());
    EXPECT_EQ(verifier.lockstepChecker().commitsChecked(), trace.size());
}
