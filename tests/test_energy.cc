/**
 * @file
 * Unit tests for the energy and area models.
 */

#include <gtest/gtest.h>

#include "energy/area.hh"
#include "energy/energy.hh"

using namespace dynaspam;
using namespace dynaspam::energy;

namespace
{

ooo::PipelineStats
somePipelineActivity()
{
    ooo::PipelineStats p;
    p.cycles = 1000;
    p.fetchedInsts = 800;
    p.renamedInsts = 780;
    p.dispatchedInsts = 780;
    p.issuedInsts = 760;
    p.committedInsts = 750;
    p.regReads = 1400;
    p.regWrites = 700;
    p.bypasses = 300;
    p.iqWakeups = 5000;
    p.robWrites = 780;
    p.robReads = 750;
    p.fuOps[unsigned(isa::FuType::IntAlu)] = 400;
    p.fuOps[unsigned(isa::FuType::FpAlu)] = 200;
    p.fuOps[unsigned(isa::FuType::Ldst)] = 160;
    return p;
}

} // namespace

TEST(EnergyModel, AllComponentsPresent)
{
    EnergyModel model;
    MemoryEvents memory;
    memory.l1iAccesses = 100;
    memory.l1dAccesses = 160;
    auto breakdown = model.compute(somePipelineActivity(), memory);
    for (const char *comp :
         {"Fetch", "Rename", "InstSchedule", "Datapath", "ROB",
          "Execution", "Memory", "Fabric", "ConfigCache", "Leakage"}) {
        ASSERT_TRUE(breakdown.component.count(comp)) << comp;
        EXPECT_GE(breakdown.component.at(comp), 0.0) << comp;
    }
    EXPECT_GT(breakdown.total(), 0.0);
}

TEST(EnergyModel, NoFabricEventsMeansNoFabricEnergy)
{
    EnergyModel model;
    auto breakdown =
        model.compute(somePipelineActivity(), MemoryEvents{});
    EXPECT_DOUBLE_EQ(breakdown.component.at("Fabric"), 0.0);
    EXPECT_DOUBLE_EQ(breakdown.component.at("ConfigCache"), 0.0);
}

TEST(EnergyModel, FabricEventsAddFabricEnergy)
{
    EnergyModel model;
    FabricEvents fab;
    fab.peOps = 500;
    fab.hops = 50;
    fab.fifoPushes = 100;
    fab.busTransfers = 120;
    auto with =
        model.compute(somePipelineActivity(), MemoryEvents{}, fab);
    EXPECT_GT(with.component.at("Fabric"), 0.0);
}

TEST(EnergyModel, DramAccessesDominateMemoryEnergy)
{
    EnergyModel model;
    MemoryEvents cheap, pricey;
    cheap.l1dAccesses = 1000;
    pricey.l1dAccesses = 1000;
    pricey.dramAccesses = 100;
    auto a = model.compute(ooo::PipelineStats{}, cheap);
    auto b = model.compute(ooo::PipelineStats{}, pricey);
    EXPECT_GT(b.component.at("Memory"), 2.0 * a.component.at("Memory"));
}

TEST(EnergyModel, FpOpsCostMoreThanIntOps)
{
    EnergyModel model;
    ooo::PipelineStats int_only, fp_only;
    int_only.fuOps[unsigned(isa::FuType::IntAlu)] = 1000;
    fp_only.fuOps[unsigned(isa::FuType::FpMulDiv)] = 1000;
    auto a = model.compute(int_only, MemoryEvents{});
    auto b = model.compute(fp_only, MemoryEvents{});
    EXPECT_GT(b.component.at("Execution"), a.component.at("Execution"));
}

TEST(EnergyModel, LeakageScalesWithCycles)
{
    EnergyModel model;
    ooo::PipelineStats p1, p2;
    p1.cycles = 1000;
    p2.cycles = 2000;
    auto a = model.compute(p1, MemoryEvents{});
    auto b = model.compute(p2, MemoryEvents{});
    EXPECT_DOUBLE_EQ(b.component.at("Leakage"),
                     2.0 * a.component.at("Leakage"));
}

// --- Area ----------------------------------------------------------------

TEST(AreaModel, EightStripeFabricMatchesPaper)
{
    AreaParams areas;
    fabric::FabricParams geometry;
    auto report = computeFabricArea(areas, geometry, 8);
    // The paper quotes ~2.9 mm^2 for the 8-stripe fabric.
    EXPECT_GT(report.totalMm2(), 2.5);
    EXPECT_LT(report.totalMm2(), 3.3);
    EXPECT_DOUBLE_EQ(report.configCacheMm2, 0.003);
}

TEST(AreaModel, AreaScalesWithStripes)
{
    AreaParams areas;
    fabric::FabricParams geometry;
    auto a8 = computeFabricArea(areas, geometry, 8);
    auto a16 = computeFabricArea(areas, geometry, 16);
    EXPECT_NEAR(a16.fabricUm2, 2.0 * a8.fabricUm2, 1.0);
    EXPECT_DOUBLE_EQ(a8.fifosUm2, a16.fifosUm2);   // FIFOs are shared
}

TEST(AreaModel, DatapathBlockComparableToIntAlu)
{
    // The paper's Table 6 observation: the datapath block is almost as
    // large as an OpenSparc integer ALU.
    AreaParams areas;
    EXPECT_NEAR(areas.dataPath, areas.sparcExuAlu, 600.0);
}

TEST(AreaModel, FifoMuchSmallerThanFunctionalUnits)
{
    AreaParams areas;
    EXPECT_LT(areas.fifo * 5, areas.sparcExuAlu);
}
