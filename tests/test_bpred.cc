/**
 * @file
 * Unit tests for the tournament branch predictor and store-set predictor.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "ooo/bpred.hh"
#include "ooo/storesets.hh"

using namespace dynaspam;
using namespace dynaspam::ooo;
using isa::intReg;

namespace
{

isa::StaticInst
makeBranch(isa::Opcode op = isa::Opcode::BNE)
{
    isa::StaticInst inst;
    inst.op = op;
    inst.src1 = intReg(1);
    inst.src2 = intReg(2);
    inst.imm = 42;
    return inst;
}

} // namespace

TEST(BranchPredictor, LearnsAlwaysTakenBranch)
{
    BranchPredictor bp;
    auto br = makeBranch();
    // Train: branch at pc 10, always taken to 42.
    for (int i = 0; i < 20; i++) {
        auto pred = bp.predict(10, br);
        bp.update(10, br, true, 42, !pred.taken);
    }
    auto pred = bp.predict(10, br);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 42u);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    auto br = makeBranch();
    for (int i = 0; i < 20; i++) {
        auto pred = bp.predict(11, br);
        bp.update(11, br, false, 12, pred.taken);
    }
    EXPECT_FALSE(bp.predict(11, br).taken);
}

TEST(BranchPredictor, LearnsAlternatingPatternViaGlobalHistory)
{
    BranchPredictor bp;
    auto br = makeBranch();
    // Alternating T/N/T/N: the gshare component should capture this.
    bool outcome = false;
    int correct_late = 0;
    for (int i = 0; i < 400; i++) {
        outcome = !outcome;
        auto pred = bp.predict(13, br);
        bool correct = pred.taken == outcome;
        bp.update(13, br, outcome, 42, !correct);
        if (i >= 300)
            correct_late += correct;
    }
    // Expect near-perfect accuracy once trained.
    EXPECT_GT(correct_late, 95);
}

TEST(BranchPredictor, DirectJumpsAlwaysPredictCorrectTarget)
{
    BranchPredictor bp;
    isa::StaticInst jmp;
    jmp.op = isa::Opcode::JMP;
    jmp.imm = 77;
    auto pred = bp.predict(5, jmp);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 77u);
}

TEST(BranchPredictor, RasPredictsReturnAddress)
{
    BranchPredictor bp;
    isa::StaticInst call;
    call.op = isa::Opcode::CALL;
    call.dest = intReg(31);
    call.imm = 100;
    isa::StaticInst ret;
    ret.op = isa::Opcode::RET;
    ret.src1 = intReg(31);

    bp.predict(7, call);            // pushes return address 8
    auto pred = bp.predict(105, ret);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 8u);
}

TEST(BranchPredictor, RasNestsLikeAStack)
{
    BranchPredictor bp;
    isa::StaticInst call;
    call.op = isa::Opcode::CALL;
    call.dest = intReg(31);
    isa::StaticInst ret;
    ret.op = isa::Opcode::RET;
    ret.src1 = intReg(31);

    bp.predict(10, call);   // pushes 11
    bp.predict(20, call);   // pushes 21
    EXPECT_EQ(bp.predict(30, ret).target, 21u);
    EXPECT_EQ(bp.predict(31, ret).target, 11u);
}

TEST(BranchPredictor, PeekDoesNotPerturbState)
{
    BranchPredictor bp;
    auto br = makeBranch();
    for (int i = 0; i < 10; i++) {
        auto pred = bp.predict(10, br);
        bp.update(10, br, true, 42, !pred.taken);
    }
    auto before = bp.peek(10, br);
    for (int i = 0; i < 5; i++)
        bp.peek(10, br);
    auto after = bp.peek(10, br);
    EXPECT_EQ(before.taken, after.taken);
    EXPECT_EQ(before.target, after.target);
    EXPECT_EQ(bp.lookups(), 10u);   // peeks are not lookups
}

TEST(BranchPredictor, MispredictCounterTracksUpdates)
{
    BranchPredictor bp;
    auto br = makeBranch();
    bp.update(10, br, true, 42, true);
    bp.update(10, br, true, 42, false);
    bp.update(10, br, true, 42, true);
    EXPECT_EQ(bp.mispredicts(), 2u);
}

// --- Store sets ---

TEST(StoreSets, NoDependenceBeforeViolation)
{
    StoreSetPredictor ssp;
    EXPECT_EQ(ssp.lookupDependence(100), 0u);
    EXPECT_FALSE(ssp.hasSet(100));
}

TEST(StoreSets, ViolationCreatesDependence)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(/*load*/ 100, /*store*/ 50);
    EXPECT_TRUE(ssp.hasSet(100));
    EXPECT_TRUE(ssp.hasSet(50));

    // Dispatch the store, then the load should see it.
    ssp.dispatchStore(50, /*seq*/ 7);
    EXPECT_EQ(ssp.lookupDependence(100), 7u);
}

TEST(StoreSets, RetireClearsLastFetchedStore)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(100, 50);
    ssp.dispatchStore(50, 7);
    ssp.retireStore(50, 7);
    EXPECT_EQ(ssp.lookupDependence(100), 0u);
}

TEST(StoreSets, OlderRetireDoesNotClearYoungerRegistration)
{
    StoreSetPredictor ssp;
    ssp.recordViolation(100, 50);
    ssp.dispatchStore(50, 7);
    ssp.dispatchStore(50, 9);    // younger instance of the same store
    ssp.retireStore(50, 7);      // the older one retires
    EXPECT_EQ(ssp.lookupDependence(100), 9u);
}

TEST(StoreSets, MergeReassignsViolatingPairToOneSet)
{
    // Classic store-set merging: when both PCs already have sets, the
    // violating pair converges on the smaller set id (the other set's
    // remaining members keep their id).
    StoreSetPredictor ssp;
    ssp.recordViolation(100, 50);   // set A: {100, 50}
    ssp.recordViolation(200, 60);   // set B: {200, 60}
    ssp.recordViolation(100, 60);   // 100 and 60 now share one set
    ssp.dispatchStore(60, 11);
    EXPECT_EQ(ssp.lookupDependence(100), 11u)
        << "after the merge, store 60 must gate load 100";
}

TEST(StoreSets, PeriodicClearingForgetsStaleSets)
{
    StoreSetParams params;
    params.clearInterval = 4;
    StoreSetPredictor ssp(params);
    ssp.recordViolation(100, 50);
    for (int i = 0; i < 5; i++)
        ssp.recordViolation(200 + i, 300 + i);
    // The table has been cleared at least once; pc 100 may or may not
    // retain a set, but the predictor must remain functional.
    ssp.dispatchStore(304, 21);
    EXPECT_EQ(ssp.lookupDependence(204), 21u);
    EXPECT_EQ(ssp.violations(), 6u);
}

// --- Return-address stack checkpointing ----------------------------------
//
// Regression tests for the squash-recovery bug: the RAS used to carry
// wrong-path pushes/pops across a squash, so a refetched CALL pushed its
// return address a second time (and a wrong-path RET silently consumed a
// correct-path entry). The fetch stage now snapshots (depth, TOS) per
// instruction and commitStage's squash path restores the oldest squashed
// instruction's checkpoint.

namespace
{

isa::StaticInst
makeCall(InstAddr target)
{
    isa::StaticInst inst;
    inst.op = isa::Opcode::CALL;
    inst.imm = std::int64_t(target);
    return inst;
}

isa::StaticInst
makeRet()
{
    isa::StaticInst inst;
    inst.op = isa::Opcode::RET;
    return inst;
}

} // namespace

TEST(ReturnAddressStack, RestoreUndoesWrongPathPopAndPush)
{
    BranchPredictor bp;

    // Correct path: CALL at pc 5 pushes return address 6.
    bp.predict(5, makeCall(100));
    ASSERT_EQ(bp.peek(200, makeRet()).target, 6u);

    // Fetch checkpoints before each speculative instruction.
    const RasCheckpoint cp = bp.rasCheckpoint();

    // Wrong path: a RET consumes the good entry, then a CALL at pc 50
    // pushes a bogus return address 51.
    bp.predict(7, makeRet());
    bp.predict(50, makeCall(300));
    ASSERT_EQ(bp.peek(200, makeRet()).target, 51u);  // corrupted view

    // Squash recovery. Without restoreRas the next RET would predict 51
    // (the pre-fix behaviour); with it, the original entry is back.
    bp.restoreRas(cp);
    const BPrediction pred = bp.peek(200, makeRet());
    ASSERT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 6u);
}

TEST(ReturnAddressStack, RestoreToEmptyClearsPhantomEntries)
{
    BranchPredictor bp;
    const RasCheckpoint cp = bp.rasCheckpoint();  // empty stack

    // Wrong path pushes two phantom frames.
    bp.predict(5, makeCall(100));
    bp.predict(9, makeCall(200));
    ASSERT_TRUE(bp.peek(300, makeRet()).targetKnown);

    bp.restoreRas(cp);
    // An empty RAS must predict no target (fall-through fetch stall),
    // not a phantom wrong-path return address.
    EXPECT_FALSE(bp.peek(300, makeRet()).targetKnown);
}

TEST(ReturnAddressStack, RestoreRecoversOneLevelUnwindAndRecall)
{
    BranchPredictor bp;
    bp.predict(5, makeCall(100));   // outer frame: return to 6
    bp.predict(9, makeCall(200));   // inner frame: return to 10
    const RasCheckpoint cp = bp.rasCheckpoint();

    // Wrong path pops the inner frame and overwrites its slot with a
    // different call. This is the deepest corruption a (depth, TOS)
    // checkpoint fully recovers from — unwinding *below* the
    // checkpointed top is the documented accepted approximation.
    bp.predict(12, makeRet());
    bp.predict(30, makeCall(400));
    ASSERT_EQ(bp.peek(300, makeRet()).target, 31u);  // corrupted view
    bp.restoreRas(cp);

    // Both frames predict correctly again, in LIFO order.
    EXPECT_EQ(bp.peek(300, makeRet()).target, 10u);
    bp.predict(300, makeRet());
    EXPECT_EQ(bp.peek(301, makeRet()).target, 6u);
}
