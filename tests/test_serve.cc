/**
 * @file
 * Tests for the serve subsystem: the HTTP message layer, the Prometheus
 * metrics registry, and the Server itself — single-flight deduplication
 * under concurrency, bounded-queue 429 backpressure, request-timeout
 * 503s, graceful drain with in-flight work, strict request validation,
 * and byte-identity between a POST /run response and the CLI report for
 * the same job.
 *
 * Servers under test bind port 0 (ephemeral) and most use an injected
 * executeFn — a gated or counting fake — so queue and cancellation
 * states are reached deterministically without multi-second
 * simulations. One end-to-end test runs the real simulator.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "runner/runner.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"

using namespace dynaspam;
using runner::Job;
using serve::Server;
using serve::ServerOptions;
using sim::SystemMode;

namespace fs = std::filesystem;

namespace
{

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<unsigned> next{0};
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-serve-" + tag + "-" + std::to_string(getpid()) +
                  "-" + std::to_string(next++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** One parsed response from the test HTTP client. */
struct Reply
{
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
};

int
connectTo(unsigned port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send raw bytes, read to EOF, parse the status line/headers/body. */
Reply
rawRequest(unsigned port, const std::string &wire)
{
    Reply reply;
    int fd = connectTo(port);
    if (fd < 0)
        return reply;

    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += std::size_t(n);
    }

    std::string raw;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        raw.append(chunk, std::size_t(n));
    }
    ::close(fd);

    std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos)
        return reply;
    std::istringstream head(raw.substr(0, head_end));
    std::string version;
    head >> version >> reply.status;
    std::string line;
    std::getline(head, line);    // rest of the status line
    while (std::getline(head, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string value = line.substr(colon + 1);
        std::size_t b = value.find_first_not_of(' ');
        reply.headers[line.substr(0, colon)] =
            b == std::string::npos ? "" : value.substr(b);
    }
    reply.body = raw.substr(head_end + 4);
    return reply;
}

/** Minimal well-formed HTTP/1.1 client request. */
Reply
request(unsigned port, const std::string &method, const std::string &target,
        const std::string &body = "")
{
    std::ostringstream os;
    os << method << ' ' << target << " HTTP/1.1\r\n"
       << "Host: 127.0.0.1\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    return rawRequest(port, os.str());
}

/**
 * executeFn fake whose calls block until release() — makes Queued /
 * Running states and drain ordering deterministic.
 */
class GatedExecutor
{
  public:
    sim::RunResult
    operator()(const Job &)
    {
        calls++;
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
        sim::RunResult result;
        result.cycles = 1000;
        result.instsTotal = 500;
        result.functionallyCorrect = true;
        return result;
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = true;
        cv.notify_all();
    }

    std::atomic<unsigned> calls{0};

  private:
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
};

/** Spin until @p predicate holds (bounded; avoids sleep-based races). */
template <typename Pred>
bool
eventually(Pred predicate, unsigned timeout_ms = 5000)
{
    for (unsigned waited = 0; waited < timeout_ms; waited++) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return predicate();
}

ServerOptions
fakeOptions(GatedExecutor &gate)
{
    ServerOptions opts;
    opts.port = 0;
    opts.verbose = false;
    opts.executeFn = [&gate](const Job &job) { return gate(job); };
    return opts;
}

std::string
bfsSpec(unsigned trace_length = 16)
{
    std::ostringstream os;
    os << "{\"workload\": \"bfs\", \"mode\": \"accel-spec\", "
          "\"trace_length\": " << trace_length << ", \"scale\": 1}";
    return os.str();
}

} // namespace

// --- HTTP layer ----------------------------------------------------------

TEST(ServeHttp, StatusReasons)
{
    EXPECT_STREQ(serve::httpStatusReason(200), "OK");
    EXPECT_STREQ(serve::httpStatusReason(429), "Too Many Requests");
    EXPECT_STREQ(serve::httpStatusReason(999), "Unknown");
}

TEST(ServeMetrics, RendersAllKindsDeterministically)
{
    serve::Metrics metrics;
    metrics.declareCounter("b_counter", "a counter");
    metrics.declareGauge("a_gauge", "a gauge");
    metrics.declareHistogram("c_hist", "a histogram", {1, 10});
    metrics.inc("b_counter", "k=\"v\"", 2);
    metrics.set("a_gauge", 1.5);
    metrics.observe("c_hist", 0.5);
    metrics.observe("c_hist", 5);
    metrics.observe("c_hist", 50);

    const std::string text = metrics.render();
    // Families render sorted by name; histogram buckets are cumulative.
    EXPECT_LT(text.find("a_gauge"), text.find("b_counter"));
    EXPECT_LT(text.find("b_counter"), text.find("c_hist"));
    EXPECT_NE(text.find("a_gauge 1.5\n"), std::string::npos);
    EXPECT_NE(text.find("b_counter{k=\"v\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("c_hist_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("c_hist_bucket{le=\"10\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("c_hist_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("c_hist_count 3\n"), std::string::npos);
    EXPECT_EQ(metrics.value("b_counter", "k=\"v\""), 2);
    EXPECT_EQ(text, metrics.render());
}

TEST(ServeHttp, SendAllSurvivesPartialWritesAndEagain)
{
    // Regression: a response larger than the socket buffer used to be
    // silently truncated when send() went short or returned EAGAIN.
    // Force both: a tiny SO_SNDBUF, a non-blocking sender, and a reader
    // that only drains after the writer has already filled the buffer.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int sndbuf = 4096;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ASSERT_EQ(::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);

    std::string payload(1 << 20, 'x');
    for (std::size_t i = 0; i < payload.size(); i += 977)
        payload[i] = char('a' + (i % 26));

    std::string received;
    std::thread reader([&] {
        // Give the writer time to hit a full buffer before draining.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        char chunk[8192];
        while (true) {
            ssize_t n = ::recv(fds[1], chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            received.append(chunk, std::size_t(n));
        }
    });

    EXPECT_TRUE(serve::sendAll(fds[0], payload.data(), payload.size()));
    ::close(fds[0]);
    reader.join();
    ::close(fds[1]);

    // Every byte arrived, in order — no silent truncation.
    EXPECT_EQ(received.size(), payload.size());
    EXPECT_EQ(received, payload);
}

TEST(ServeHttp, SendAllReportsVanishedPeer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[1]);
    std::string payload(1 << 16, 'x');
    EXPECT_FALSE(serve::sendAll(fds[0], payload.data(), payload.size()));
    ::close(fds[0]);
}

// --- Keep-alive (opt-in on the blocking server) ---------------------------

TEST(Serve, KeepAliveIsOptInAndServesSequentialRequests)
{
    GatedExecutor gate;
    gate.release();
    Server server(fakeOptions(gate));
    server.start();

    int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);

    auto exchange = [&](const std::string &wire) {
        std::size_t sent = 0;
        while (sent < wire.size()) {
            ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            sent += std::size_t(n);
        }
    };

    // Read one response's headers+body without waiting for EOF.
    auto read_reply = [&]() {
        Reply reply;
        std::string raw;
        char chunk[4096];
        std::size_t head_end;
        while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return reply;
            raw.append(chunk, std::size_t(n));
        }
        std::istringstream head(raw.substr(0, head_end));
        std::string version;
        head >> version >> reply.status;
        std::string line;
        std::getline(head, line);
        while (std::getline(head, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            std::string value = line.substr(colon + 1);
            std::size_t b = value.find_first_not_of(' ');
            reply.headers[line.substr(0, colon)] =
                b == std::string::npos ? "" : value.substr(b);
        }
        reply.body = raw.substr(head_end + 4);
        std::size_t body_len = 0;
        auto it = reply.headers.find("Content-Length");
        if (it != reply.headers.end())
            body_len = std::stoul(it->second);
        while (reply.body.size() < body_len) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            reply.body.append(chunk, std::size_t(n));
        }
        return reply;
    };

    // Three requests on one connection, each asking for keep-alive.
    for (unsigned i = 0; i < 3; i++) {
        std::ostringstream os;
        os << "GET /healthz HTTP/1.1\r\nHost: x\r\n"
           << "Connection: keep-alive\r\n\r\n";
        exchange(os.str());
        Reply reply = read_reply();
        EXPECT_EQ(reply.status, 200);
        EXPECT_EQ(reply.headers.at("Connection"), "keep-alive");
    }

    // Without the opt-in header the server closes after responding —
    // the pre-keep-alive contract existing clients rely on.
    exchange("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    Reply final_reply = read_reply();
    EXPECT_EQ(final_reply.status, 200);
    EXPECT_EQ(final_reply.headers.at("Connection"), "close");
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- Routing and validation ----------------------------------------------

TEST(Serve, HealthzAndRoutingErrors)
{
    GatedExecutor gate;
    Server server(fakeOptions(gate));
    server.start();

    Reply ok = request(server.port(), "GET", "/healthz");
    EXPECT_EQ(ok.status, 200);
    EXPECT_NE(ok.body.find("\"status\": \"ok\""), std::string::npos);

    EXPECT_EQ(request(server.port(), "GET", "/nope").status, 404);
    EXPECT_EQ(request(server.port(), "POST", "/healthz").status, 405);
    EXPECT_EQ(request(server.port(), "GET", "/run").status, 405);

    server.beginDrain();
    server.waitUntilDrained();
}

TEST(Serve, RejectsBadRequestsWithoutExecuting)
{
    GatedExecutor gate;
    ServerOptions opts = fakeOptions(gate);
    opts.maxRequestBytes = 2048;
    Server server(opts);
    server.start();

    struct BadCase
    {
        const char *name;
        std::string body;
    };
    const BadCase cases[] = {
        {"syntax error", "{not json"},
        {"not an object", "[1, 2]"},
        {"missing workload", "{\"mode\": \"accel-spec\"}"},
        {"unknown workload", "{\"workload\": \"nope\"}"},
        {"unknown field", "{\"workload\": \"bfs\", \"frobnicate\": 1}"},
        {"zero scale", "{\"workload\": \"bfs\", \"scale\": 0}"},
        {"unknown mode",
         "{\"workload\": \"bfs\", \"mode\": \"warp-speed\"}"},
        {"duplicate key",
         "{\"workload\": \"bfs\", \"workload\": \"bfs\"}"},
        {"deep nesting",
         std::string(200, '[') + std::string(200, ']')},
    };
    for (const BadCase &c : cases) {
        Reply reply = request(server.port(), "POST", "/run", c.body);
        EXPECT_EQ(reply.status, 400) << c.name << ": " << reply.body;
    }

    // Not HTTP at all, and an oversize body: rejected at the HTTP layer.
    EXPECT_EQ(rawRequest(server.port(), "ribbit\r\n\r\n").status, 400);
    Reply huge = request(server.port(), "POST", "/run",
                         std::string(4096, 'x'));
    EXPECT_EQ(huge.status, 413);

    EXPECT_EQ(gate.calls.load(), 0u);
    server.beginDrain();
    server.waitUntilDrained();
}

// --- Single-flight dedup --------------------------------------------------

TEST(Serve, ConcurrentSameJobRunsOnceAndAnswersAll)
{
    GatedExecutor gate;
    Server server(fakeOptions(gate));
    server.start();

    // The acceptance bar: 64 concurrent clients, none dropped, none
    // answered with different bytes.
    constexpr unsigned kClients = 64;
    std::vector<std::thread> clients;
    std::vector<Reply> replies(kClients);
    for (unsigned i = 0; i < kClients; i++)
        clients.emplace_back([&, i] {
            replies[i] = request(server.port(), "POST", "/run", bfsSpec());
        });

    ASSERT_TRUE(eventually([&] { return gate.calls.load() == 1; }));
    gate.release();
    for (std::thread &t : clients)
        t.join();

    // One simulation; every client got the same 200 bytes.
    EXPECT_EQ(gate.calls.load(), 1u);
    for (const Reply &reply : replies) {
        EXPECT_EQ(reply.status, 200);
        EXPECT_EQ(reply.body, replies[0].body);
    }
    EXPECT_EQ(server.metrics().value("dynaspam_jobs_executed_total"), 1);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- Backpressure ---------------------------------------------------------

TEST(Serve, QueueFullReturns429WithRetryAfter)
{
    GatedExecutor gate;
    ServerOptions opts = fakeOptions(gate);
    opts.jobs = 1;
    opts.queueCapacity = 2;
    Server server(opts);
    server.start();

    // Occupy the single worker, then fill both queue slots.
    std::vector<std::thread> clients;
    clients.emplace_back([&] {
        request(server.port(), "POST", "/run", bfsSpec(16));
    });
    ASSERT_TRUE(eventually([&] {
        return server.metrics().value("dynaspam_jobs_inflight") == 1;
    }));
    clients.emplace_back([&] {
        request(server.port(), "POST", "/run", bfsSpec(24));
    });
    clients.emplace_back([&] {
        request(server.port(), "POST", "/run", bfsSpec(32));
    });
    ASSERT_TRUE(eventually([&] {
        return server.metrics().value("dynaspam_queue_depth") == 2;
    }));

    Reply overflow = request(server.port(), "POST", "/run", bfsSpec(40));
    EXPECT_EQ(overflow.status, 429);
    EXPECT_EQ(overflow.headers.at("Retry-After"), "2");
    EXPECT_NE(overflow.body.find("admission queue full"),
              std::string::npos);

    gate.release();
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(gate.calls.load(), 3u);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- Timeouts and cancellation --------------------------------------------

TEST(Serve, TimeoutCancelsQueuedJobAndReturns503)
{
    GatedExecutor gate;
    ServerOptions opts = fakeOptions(gate);
    opts.jobs = 1;
    opts.requestTimeoutMs = 100;
    Server server(opts);
    server.start();

    // First job occupies the worker; the second stays queued past its
    // deadline and must be cancelled without ever executing.
    std::thread first([&] {
        request(server.port(), "POST", "/run", bfsSpec(16));
    });
    ASSERT_TRUE(eventually([&] {
        return server.metrics().value("dynaspam_jobs_inflight") == 1;
    }));

    Reply queued = request(server.port(), "POST", "/run", bfsSpec(24));
    EXPECT_EQ(queued.status, 503);
    EXPECT_EQ(server.metrics().value("dynaspam_jobs_cancelled_total"), 1);

    gate.release();
    first.join();
    server.beginDrain();
    server.waitUntilDrained();

    // The cancelled job never ran; the running one finished.
    EXPECT_EQ(gate.calls.load(), 1u);
    EXPECT_EQ(server.metrics().value("dynaspam_jobs_executed_total"), 1);
}

TEST(Serve, RunningJobSurvivesClientTimeout)
{
    GatedExecutor gate;
    ServerOptions opts = fakeOptions(gate);
    opts.jobs = 1;
    opts.requestTimeoutMs = 100;
    Server server(opts);
    server.start();

    const std::string hash = Job{"BFS", SystemMode::AccelSpec, 16, 1, 1}
                                 .hashHex();

    // The client gives up at its deadline, but the simulation is
    // already running and must complete for later requests.
    Reply abandoned = request(server.port(), "POST", "/run", bfsSpec(16));
    EXPECT_EQ(abandoned.status, 503);

    Reply pending = request(server.port(), "GET", "/results/" + hash);
    EXPECT_EQ(pending.status, 202);
    EXPECT_NE(pending.body.find("\"status\": \"pending\""),
              std::string::npos);

    gate.release();
    ASSERT_TRUE(eventually([&] {
        return server.metrics().value("dynaspam_jobs_executed_total") == 1;
    }));

    Reply done = request(server.port(), "GET", "/results/" + hash);
    EXPECT_EQ(done.status, 200);
    EXPECT_NE(done.body.find("\"hash\": \"" + hash + "\""),
              std::string::npos);
    EXPECT_EQ(request(server.port(), "GET",
                      "/results/0123456789abcdef").status, 404);
    EXPECT_EQ(request(server.port(), "GET",
                      "/results/not-a-hash").status, 404);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- Sweeps ---------------------------------------------------------------

TEST(Serve, SweepExpandsNamedSweepAndDedupsJobs)
{
    GatedExecutor gate;
    gate.release();    // run immediately
    Server server(fakeOptions(gate));
    server.start();

    Reply sweep = request(server.port(), "POST", "/sweep",
                          "{\"sweep\": \"fig8\", \"workloads\": [\"bfs\"],"
                          " \"trace_length\": 16}");
    EXPECT_EQ(sweep.status, 200);
    EXPECT_NE(sweep.body.find("\"sweep\": \"fig8\""), std::string::npos);
    EXPECT_NE(sweep.body.find("\"num_jobs\": 4"), std::string::npos);
    EXPECT_EQ(gate.calls.load(), 4u);

    // Same sweep again: all four results come from the in-memory table.
    Reply again = request(server.port(), "POST", "/sweep",
                          "{\"sweep\": \"fig8\", \"workloads\": [\"bfs\"],"
                          " \"trace_length\": 16}");
    EXPECT_EQ(again.status, 200);
    EXPECT_EQ(again.body, sweep.body);
    EXPECT_EQ(gate.calls.load(), 4u);

    EXPECT_EQ(request(server.port(), "POST", "/sweep",
                      "{\"sweep\": \"fig99\"}").status, 400);
    EXPECT_EQ(request(server.port(), "POST", "/sweep",
                      "{\"jobs\": []}").status, 400);

    Reply custom = request(server.port(), "POST", "/sweep",
                           "{\"jobs\": [{\"workload\": \"bfs\","
                           " \"trace_length\": 16}]}");
    EXPECT_EQ(custom.status, 200);
    EXPECT_NE(custom.body.find("\"sweep\": \"custom\""),
              std::string::npos);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- Graceful drain -------------------------------------------------------

TEST(Serve, DrainFinishesInFlightWorkThenRefusesConnections)
{
    GatedExecutor gate;
    Server server(fakeOptions(gate));
    server.start();
    const unsigned port = server.port();

    std::thread client([&] {
        Reply reply = request(port, "POST", "/run", bfsSpec());
        EXPECT_EQ(reply.status, 200);
    });
    ASSERT_TRUE(eventually([&] { return gate.calls.load() == 1; }));

    server.beginDrain();
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        gate.release();
    });
    server.waitUntilDrained();
    client.join();
    releaser.join();

    // The in-flight request completed; new connections are refused.
    EXPECT_EQ(server.metrics().value("dynaspam_jobs_executed_total"), 1);
    int fd = connectTo(port);
    if (fd >= 0)
        ::close(fd);
    EXPECT_LT(fd, 0);
}

// --- Metrics reconciliation ----------------------------------------------

TEST(Serve, MetricsReconcileWithServedTraffic)
{
    GatedExecutor gate;
    gate.release();
    Server server(fakeOptions(gate));
    server.start();

    EXPECT_EQ(request(server.port(), "POST", "/run", bfsSpec()).status,
              200);
    EXPECT_EQ(request(server.port(), "POST", "/run", bfsSpec()).status,
              200);
    EXPECT_EQ(request(server.port(), "GET", "/healthz").status, 200);
    EXPECT_EQ(request(server.port(), "GET", "/nope").status, 404);

    Reply scrape = request(server.port(), "GET", "/metrics");
    EXPECT_EQ(scrape.status, 200);
    EXPECT_NE(scrape.headers.at("Content-Type").find("text/plain"),
              std::string::npos);
    const std::string &text = scrape.body;
    EXPECT_NE(text.find("dynaspam_http_requests_total{endpoint=\"/run\","
                        "status=\"200\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("dynaspam_http_requests_total{endpoint=\"/healthz"
                        "\",status=\"200\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("dynaspam_http_requests_total{endpoint=\"other\","
                        "status=\"404\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("dynaspam_jobs_executed_total 1\n"),
              std::string::npos);
    // 4 handled requests + this scrape's connection.
    EXPECT_NE(text.find("dynaspam_http_connections_total 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("dynaspam_sim_kips_count 1\n"),
              std::string::npos);

    server.beginDrain();
    server.waitUntilDrained();
}

// --- End to end: byte-identity with the CLI report ------------------------

TEST(Serve, RunResponseIsByteIdenticalToCliReport)
{
    TempDir cache("cli-bytes");
    ServerOptions opts;
    opts.port = 0;
    opts.verbose = false;
    opts.cacheDir = cache.path() + "/server";
    Server server(opts);    // real executeFn: runs the simulator
    server.start();

    const std::string spec = bfsSpec(16);
    Reply cold = request(server.port(), "POST", "/run", spec);
    ASSERT_EQ(cold.status, 200);
    Reply warm = request(server.port(), "POST", "/run", spec);
    ASSERT_EQ(warm.status, 200);

    // What `dynaspam run --no-cache --out` writes for the same spec.
    Job job{"bfs", SystemMode::AccelSpec, 16, 1, 1};
    runner::RunnerOptions cold_opts;
    cold_opts.jobs = 1;
    runner::Runner cold_runner(cold_opts);
    std::ostringstream cold_cli;
    runner::writeSweepReport(cold_cli, "run", cold_runner.runAll({job}),
                             &cold_runner.stats());
    EXPECT_EQ(cold.body, cold_cli.str());

    // What a warm cached CLI run writes (its own cache dir, pre-warmed
    // by the run above... use a fresh runner against the server's cache).
    runner::RunnerOptions warm_opts;
    warm_opts.jobs = 1;
    warm_opts.cacheDir = opts.cacheDir;
    runner::Runner warm_runner(warm_opts);
    std::ostringstream warm_cli;
    runner::writeSweepReport(warm_cli, "run", warm_runner.runAll({job}),
                             &warm_runner.stats());
    EXPECT_EQ(warm.body, warm_cli.str());

    server.beginDrain();
    server.waitUntilDrained();
}
