/**
 * @file
 * Unit tests for the memory module: functional memory and cache timing.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"

using namespace dynaspam;
using namespace dynaspam::mem;

TEST(FunctionalMemory, UnmappedReadsAsZero)
{
    FunctionalMemory memory;
    EXPECT_EQ(memory.read64(0x123456789000ULL), 0u);
    EXPECT_EQ(memory.numPages(), 0u);
}

TEST(FunctionalMemory, WriteThenReadRoundTrips)
{
    FunctionalMemory memory;
    memory.write64(0x1000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(memory.read64(0x1000), 0xdeadbeefcafef00dULL);
    memory.writeDouble(0x2000, 3.14159);
    EXPECT_DOUBLE_EQ(memory.readDouble(0x2000), 3.14159);
}

TEST(FunctionalMemory, PagesAllocateLazily)
{
    FunctionalMemory memory;
    memory.write64(0x0, 1);
    memory.write64(0x1000, 2);      // second page
    memory.write64(0x1008, 3);      // same page as above
    EXPECT_EQ(memory.numPages(), 2u);
    memory.clear();
    EXPECT_EQ(memory.numPages(), 0u);
    EXPECT_EQ(memory.read64(0x0), 0u);
}

TEST(FunctionalMemory, SparseRegionsAreIndependent)
{
    FunctionalMemory memory;
    memory.write64(0x10000, 42);
    memory.write64(0x9000000, 43);
    EXPECT_EQ(memory.read64(0x10000), 42u);
    EXPECT_EQ(memory.read64(0x9000000), 43u);
    EXPECT_EQ(memory.read64(0x10008), 0u);
}

TEST(Cache, HitAfterMiss)
{
    CacheParams params{"t", 1024, 2, 64, 2};
    Cache cache(params, nullptr, 100);

    auto first = cache.access(0x100, false);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.latency, 102u);   // hitLatency + memory

    auto second = cache.access(0x100, false);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.latency, 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameBlockDifferentWordsHit)
{
    CacheParams params{"t", 1024, 2, 64, 2};
    Cache cache(params, nullptr, 100);
    cache.access(0x100, false);
    EXPECT_TRUE(cache.access(0x138, false).hit);   // same 64B block
    EXPECT_FALSE(cache.access(0x140, false).hit);  // next block
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 64B blocks, 1024B -> 8 sets. Addresses 64*8 apart share a set.
    CacheParams params{"t", 1024, 2, 64, 2};
    Cache cache(params, nullptr, 100);
    const Addr a = 0x0, b = 0x200, c = 0x400;   // all map to set 0

    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);       // touch a so b is LRU
    cache.access(c, false);       // evicts b
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    CacheParams params{"t", 128, 1, 64, 1};   // direct mapped, 2 sets
    Cache cache(params, nullptr, 100);
    cache.access(0x0, true);         // miss, fill dirty
    cache.access(0x80, false);       // same set, evicts dirty line
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    CacheParams params{"t", 1024, 2, 64, 2};
    Cache cache(params, nullptr, 100);
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_EQ(cache.misses(), 0u);   // probe is not an access
    cache.access(0x100, false);
    EXPECT_TRUE(cache.probe(0x100));
}

TEST(Cache, InvalidateAllForcesMisses)
{
    CacheParams params{"t", 1024, 2, 64, 2};
    Cache cache(params, nullptr, 100);
    cache.access(0x100, false);
    cache.invalidateAll();
    EXPECT_FALSE(cache.access(0x100, false).hit);
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheParams params{"t", 100, 3, 64, 2};   // not divisible
    EXPECT_THROW(Cache(params, nullptr, 100), FatalError);
}

TEST(MemoryHierarchy, Table4LatenciesCompose)
{
    MemoryHierarchy hierarchy;

    // Cold access: L1D(2) + L2(20) + memory(100).
    auto cold = hierarchy.dataAccess(0x1000, false);
    EXPECT_FALSE(cold.hit);
    EXPECT_EQ(cold.latency, 2u + 20u + 100u);

    // Warm L1 hit.
    auto warm = hierarchy.dataAccess(0x1000, false);
    EXPECT_TRUE(warm.hit);
    EXPECT_EQ(warm.latency, 2u);
}

TEST(MemoryHierarchy, L2IsSharedBetweenL1s)
{
    MemoryHierarchy hierarchy;
    hierarchy.fetchAccess(0x4000);               // fills L2 via L1I miss
    auto data = hierarchy.dataAccess(0x4000, false);
    EXPECT_FALSE(data.hit);                       // L1D still cold
    EXPECT_EQ(data.latency, 2u + 20u);            // but L2 hits
}

TEST(MemoryHierarchy, L1EvictionStillHitsInL2)
{
    MemoryHierarchy hierarchy;
    // L1D: 64KB 2-way, 64B blocks -> 512 sets; stride 512*64 = 32KB aliases.
    const Addr a = 0x0, b = 0x8000, c = 0x10000;
    hierarchy.dataAccess(a, false);
    hierarchy.dataAccess(b, false);
    hierarchy.dataAccess(c, false);   // evicts a from L1D
    auto again = hierarchy.dataAccess(a, false);
    EXPECT_FALSE(again.hit);
    EXPECT_EQ(again.latency, 2u + 20u);   // L2 hit, no memory trip
}

TEST(MemoryHierarchy, StatsExport)
{
    MemoryHierarchy hierarchy;
    StatRegistry reg;
    hierarchy.dataAccess(0x0, false);
    hierarchy.dataAccess(0x0, false);
    hierarchy.exportStats(reg);
    EXPECT_EQ(reg.get("l1d.hits"), 1u);
    EXPECT_EQ(reg.get("l1d.misses"), 1u);
    EXPECT_EQ(reg.get("l2.misses"), 1u);
}
