/**
 * @file
 * Snapshot/fork correctness: the tentpole invariant is that
 * snapshot -> restore -> run is BYTE-identical to running straight
 * through. These tests pin that for every workload on both the host
 * pipeline and the DynaSpAM-accelerated configuration, at
 * mid-invocation boundaries, across fork divergence (including fabric
 * pools of different sizes), and for the sampled fidelity tier.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "sim/snapshot_io.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dynaspam;

namespace
{

std::shared_ptr<const sim::SimInput>
inputFor(const std::string &workload, unsigned scale = 1)
{
    workloads::Workload wl = workloads::makeWorkload(workload, scale);
    return sim::SimInput::make(wl.program, wl.initialMemory);
}

std::string
resultBytes(sim::RunResult result)
{
    // commitsChecked varies with DYNASPAM_CHECK settings in checked CI
    // configurations; everything else must match bit-for-bit.
    result.commitsChecked = 0;
    return runner::resultToJson(result).dump();
}

std::string
runStraight(const sim::SystemConfig &cfg,
            std::shared_ptr<const sim::SimInput> input)
{
    sim::Simulation simu(cfg, std::move(input));
    simu.runToCompletion();
    return resultBytes(simu.collectResult());
}

/** Run with a snapshot taken mid-flight, restore it into a fresh
 *  simulation, finish both, and return (continued, restored) bytes. */
std::pair<std::string, std::string>
runWithSnapshotAt(const sim::SystemConfig &cfg,
                  std::shared_ptr<const sim::SimInput> input,
                  std::uint64_t snap_insts)
{
    sim::Simulation simu(cfg, input);
    while (!simu.done() && simu.committedInsts() < snap_insts)
        simu.tick();
    sim::Snapshot snap;
    simu.snapshot(snap);

    simu.runToCompletion();
    std::string continued = resultBytes(simu.collectResult());

    sim::Simulation restored(cfg, std::move(input));
    restored.restore(snap);
    restored.runToCompletion();
    std::string forked = resultBytes(restored.collectResult());
    return {continued, forked};
}

} // namespace

TEST(Snapshot, RestoreRunIsByteIdenticalEverywhere)
{
    for (const std::string &workload : workloads::allWorkloadNames()) {
        for (sim::SystemMode mode :
             {sim::SystemMode::BaselineOoo, sim::SystemMode::AccelSpec}) {
            const sim::SystemConfig cfg = sim::SystemConfig::make(mode);
            auto input = inputFor(workload);
            const std::string straight = runStraight(cfg, input);
            const std::uint64_t mid = input->trace().size() / 2;
            auto [continued, forked] =
                runWithSnapshotAt(cfg, input, mid);
            EXPECT_EQ(continued, straight)
                << workload << "/" << sim::modeName(mode)
                << ": taking a snapshot perturbed the run";
            EXPECT_EQ(forked, straight)
                << workload << "/" << sim::modeName(mode)
                << ": snapshot->restore->run diverged";
        }
    }
}

TEST(Snapshot, MidInvocationBoundariesRestoreExactly)
{
    // knn offloads most of its instructions, so snapshots at arbitrary
    // commit counts land inside/around in-flight fabric invocations.
    const sim::SystemConfig cfg =
        sim::SystemConfig::make(sim::SystemMode::AccelSpec);
    auto input = inputFor("knn");
    const std::string straight = runStraight(cfg, input);
    const std::uint64_t total = input->trace().size();
    for (std::uint64_t frac : {1ull, 3ull, 5ull, 7ull}) {
        auto [continued, forked] =
            runWithSnapshotAt(cfg, input, total * frac / 8);
        EXPECT_EQ(continued, straight) << "boundary at " << frac << "/8";
        EXPECT_EQ(forked, straight) << "boundary at " << frac << "/8";
    }
}

TEST(Snapshot, RestoreAcrossInputsIsFatal)
{
    const sim::SystemConfig cfg =
        sim::SystemConfig::make(sim::SystemMode::BaselineOoo);
    auto a = inputFor("bfs");
    auto b = inputFor("bfs");    // same workload, different object
    sim::Simulation source(cfg, a);
    sim::Snapshot snap;
    source.snapshot(snap);
    sim::Simulation other(cfg, b);
    EXPECT_THROW(other.restore(snap), FatalError);
}

TEST(Snapshot, ForkedSweepMatchesStraightThrough)
{
    // A fig8-style group (4 modes, shared warmup) plus a cross-pool
    // pair (1 vs 4 fabrics): the forked runner path must reproduce the
    // straight-through report entries byte-for-byte, including the
    // cache bookkeeping counters.
    std::vector<runner::Job> jobs;
    for (sim::SystemMode mode :
         {sim::SystemMode::BaselineOoo, sim::SystemMode::MappingOnly,
          sim::SystemMode::AccelNoSpec, sim::SystemMode::AccelSpec}) {
        runner::Job job;
        job.workload = "bfs";
        job.mode = mode;
        job.warmupInsts = 60000;
        jobs.push_back(job);
    }
    {
        runner::Job job;
        job.workload = "knn";
        job.mode = sim::SystemMode::AccelSpec;
        job.numFabrics = 4;
        job.warmupInsts = 40000;
        jobs.push_back(job);
        job.numFabrics = 1;
        jobs.push_back(job);
    }

    runner::RunnerOptions forkOpts;
    forkOpts.jobs = 2;
    runner::Runner forked(forkOpts);
    auto forkedOut = forked.runAll(jobs);

    runner::RunnerOptions straightOpts;
    straightOpts.jobs = 2;
    straightOpts.forkSweeps = false;
    runner::Runner straight(straightOpts);
    auto straightOut = straight.runAll(jobs);

    ASSERT_EQ(forkedOut.size(), straightOut.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(runner::sweepEntryJson(forkedOut[i]).dump(),
                  runner::sweepEntryJson(straightOut[i]).dump())
            << jobs[i].key();
    }
    for (const char *counter :
         {"runner.jobs_total", "runner.cache_hits", "runner.cache_misses",
          "runner.jobs_executed"}) {
        EXPECT_EQ(forked.stats().get(counter), straight.stats().get(counter))
            << counter;
    }
}

TEST(SnapshotIo, SerializedForkMatchesInProcessForkEverywhere)
{
    // The on-disk round trip must be invisible: serializing the warmed
    // snapshot, deserializing it against a FRESH SimInput (as a restarted
    // process or a cluster worker would), and forking from the decoded
    // copy has to produce the same bytes as forking from the in-memory
    // snapshot — for every workload, host pipeline and fabric config.
    for (const std::string &workload : workloads::allWorkloadNames()) {
        for (sim::SystemMode mode :
             {sim::SystemMode::BaselineOoo, sim::SystemMode::AccelSpec}) {
            const sim::SystemConfig cfg = sim::SystemConfig::make(mode);
            auto input = inputFor(workload);
            const std::uint64_t mid = input->trace().size() / 2;

            sim::Simulation warm(cfg, input);
            while (!warm.done() && warm.committedInsts() < mid)
                warm.tick();
            sim::Snapshot snap;
            warm.snapshot(snap);

            sim::Simulation direct(cfg, input);
            direct.restore(snap);
            direct.runToCompletion();
            const std::string inProcess = resultBytes(direct.collectResult());

            std::string bytes;
            sim::serializeSnapshot(snap, bytes);
            // A fresh input object, as a restarted process would build.
            auto rebuilt = inputFor(workload);
            ASSERT_EQ(sim::simInputIdentityHash(*input),
                      sim::simInputIdentityHash(*rebuilt));
            sim::Snapshot decoded;
            ASSERT_TRUE(sim::deserializeSnapshot(bytes, rebuilt, decoded))
                << workload << "/" << sim::modeName(mode);

            sim::Simulation fresh(cfg, rebuilt);
            fresh.restore(decoded);
            fresh.runToCompletion();
            EXPECT_EQ(resultBytes(fresh.collectResult()), inProcess)
                << workload << "/" << sim::modeName(mode)
                << ": on-disk snapshot round trip diverged";
        }
    }
}

TEST(SnapshotIo, CorruptBytesFallBackCleanly)
{
    const sim::SystemConfig cfg =
        sim::SystemConfig::make(sim::SystemMode::AccelSpec);
    auto input = inputFor("bfs");
    sim::Simulation warm(cfg, input);
    while (!warm.done() && warm.committedInsts() < 20000)
        warm.tick();
    sim::Snapshot snap;
    warm.snapshot(snap);
    std::string bytes;
    sim::serializeSnapshot(snap, bytes);

    // Pristine bytes decode.
    {
        sim::Snapshot out;
        EXPECT_TRUE(sim::deserializeSnapshot(bytes, input, out));
    }
    // Every truncation point fails soft — returns false, never crashes.
    for (std::size_t len : {std::size_t(0), std::size_t(1),
                            bytes.size() / 4, bytes.size() / 2,
                            bytes.size() - 1}) {
        sim::Snapshot out;
        EXPECT_FALSE(
            sim::deserializeSnapshot(bytes.substr(0, len), input, out))
            << "truncated to " << len << " bytes";
    }
    // Bit flips across the buffer either decode to the same state or
    // fail soft; what they must never do is crash. Flip a spread of
    // bytes including trace indices and container lengths.
    for (std::size_t pos = 0; pos < bytes.size();
         pos += bytes.size() / 64 + 1) {
        std::string corrupt = bytes;
        corrupt[pos] ^= 0xff;
        sim::Snapshot out;
        (void)sim::deserializeSnapshot(corrupt, input, out);
    }
    // Garbage that never was a snapshot.
    {
        sim::Snapshot out;
        EXPECT_FALSE(sim::deserializeSnapshot(
            std::string(1024, '\xee'), input, out));
    }
}

TEST(Snapshot, SampledFidelityIsDeterministicAndMarked)
{
    runner::Job job;
    job.workload = "pf";
    job.mode = sim::SystemMode::AccelSpec;
    job.fidelity = runner::Fidelity::Sampled;
    job.warmupInsts = 20000;

    sim::RunResult first = runner::execute(job);
    sim::RunResult second = runner::execute(job);
    EXPECT_TRUE(first.sampled);
    EXPECT_GT(first.sampledInsts, 0u);
    EXPECT_EQ(resultBytes(first), resultBytes(second));

    // The sampled block round-trips through the cache format, and the
    // full-fidelity serialization is unchanged (no "sampled" key).
    sim::RunResult back = runner::resultFromJson(runner::resultToJson(first));
    EXPECT_TRUE(back.sampled);
    EXPECT_EQ(back.sampledInsts, first.sampledInsts);
    EXPECT_EQ(back.sampledCycles, first.sampledCycles);

    job.fidelity = runner::Fidelity::Full;
    sim::RunResult full = runner::execute(job);
    EXPECT_FALSE(full.sampled);
    EXPECT_EQ(runner::resultToJson(full).find("sampled"), nullptr);

    // A short program sampled to its end is exact, flagged or not.
    EXPECT_EQ(first.instsTotal, full.instsTotal);
}
