/**
 * @file
 * Determinism pin: runs a sample of workload/mode points with the
 * verification layer engaged (golden-model lockstep plus invariant
 * audits) and asserts the serialized results hash to recorded golden
 * values. Any nondeterminism — iteration-order dependence, uninitialized
 * state, platform-dependent arithmetic — or an unintended change to the
 * simulated microarchitecture shows up as a hash mismatch here before it
 * can silently skew the paper's figures.
 *
 * When a simulator change intentionally alters timing, regenerate the
 * table below from this test's failure output (it prints the actual
 * hashes) and justify the new goldens in the commit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/runner.hh"

using namespace dynaspam;

namespace
{

/**
 * Engage the verification layer before check::enabled() caches its
 * runtime knob (a function-local static, first read mid-simulation).
 * The audit interval is raised to keep the per-cycle invariant sweeps
 * affordable at unit-test cadence; lockstep checking still covers every
 * commit.
 */
struct ChecksEnv
{
    ChecksEnv()
    {
        setenv("DYNASPAM_CHECKS", "1", 1);
        setenv("DYNASPAM_CHECK_INTERVAL", "64", 1);
    }
};
const ChecksEnv checksEnv;

std::uint64_t
runHash(const std::string &workload, sim::SystemMode mode)
{
    runner::Job job;
    job.workload = workload;
    job.mode = mode;
    sim::RunResult result = runner::execute(job);
    EXPECT_TRUE(result.functionallyCorrect) << workload;
    EXPECT_GT(result.commitsChecked, 0u)
        << "verifier not engaged for " << workload;
    // The hash pins the simulated machine, not the checking cadence:
    // commitsChecked varies with DYNASPAM_CHECK settings, so zero it
    // before serializing.
    result.commitsChecked = 0;
    const std::string dump = runner::resultToJson(result).dump();
    return bits::fnv1a(dump.data(), dump.size());
}

struct Golden
{
    const char *workload;
    sim::SystemMode mode;
    std::uint64_t hash;
};

} // namespace

TEST(Determinism, RepeatedRunsAreByteIdentical)
{
    EXPECT_EQ(runHash("bfs", sim::SystemMode::AccelSpec),
              runHash("bfs", sim::SystemMode::AccelSpec));
}

TEST(Determinism, MatchesRecordedGoldens)
{
    const Golden goldens[] = {
        {"bfs", sim::SystemMode::BaselineOoo, 0x7b218b3d912d3b5aULL},
        {"bfs", sim::SystemMode::AccelSpec, 0x3878ea5a26cf330cULL},
        {"knn", sim::SystemMode::BaselineOoo, 0x9e115cf74bb846caULL},
        {"knn", sim::SystemMode::AccelSpec, 0xfd016d8847c55127ULL},
        {"pf", sim::SystemMode::BaselineOoo, 0xe4a9b7d1763ebbdcULL},
        {"pf", sim::SystemMode::AccelSpec, 0x40d9abbd7f76c1a8ULL},
    };
    for (const Golden &g : goldens) {
        const std::uint64_t actual = runHash(g.workload, g.mode);
        EXPECT_EQ(actual, g.hash)
            << g.workload << "/" << sim::modeName(g.mode)
            << ": actual hash 0x" << std::hex << actual;
    }
}

TEST(Determinism, ForkedRunMatchesStraightGolden)
{
    // The forked-sweep path (shared warmup, snapshot, per-config fork)
    // must land on the exact same bytes as the straight bfs/accel-spec
    // golden above — with the verification layer engaged, so the
    // snapshot round-trip auditor runs on the restored fork too.
    runner::RunnerOptions opts;
    opts.jobs = 1;
    runner::Runner r(opts);
    std::vector<runner::Job> jobs(2);
    jobs[0].workload = "bfs";
    jobs[0].mode = sim::SystemMode::AccelSpec;
    jobs[0].warmupInsts = 60000;
    jobs[1] = jobs[0];
    jobs[1].numFabrics = 2;     // forces a real fork group of two
    auto outcomes = r.runAll(jobs);

    sim::RunResult result = outcomes.at(0).result;
    EXPECT_TRUE(result.functionallyCorrect);
    EXPECT_GT(result.commitsChecked, 0u) << "verifier not engaged";
    result.commitsChecked = 0;
    const std::string dump = runner::resultToJson(result).dump();
    const std::uint64_t actual = bits::fnv1a(dump.data(), dump.size());
    EXPECT_EQ(actual, 0x3878ea5a26cf330cULL)
        << "forked bfs/accel-spec diverged from the straight golden: "
           "actual hash 0x" << std::hex << actual;
}
