/**
 * @file
 * Tests for the static-safety layer's runtime primitives: common::Fd
 * / common::Pipe ownership semantics and the annotated common::Mutex
 * / MutexLock / CondVar wrappers.
 *
 * The annotations themselves are compile-time (proved by the CI
 * `analyze` job building with -Werror=thread-safety); what is tested
 * here is that the wrappers behave exactly like the raw primitives
 * they replaced — locking excludes, condition waits wake, descriptors
 * close once and only once — so the tree-wide conversion cannot have
 * changed runtime behavior.
 */

#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/fd.hh"
#include "common/mutex.hh"

namespace common = dynaspam::common;

namespace
{

/** @return true while the kernel still considers @p fd open. */
bool
fdIsOpen(int fd)
{
    return ::fcntl(fd, F_GETFD) != -1;
}

/** A raw descriptor to experiment on (one end of a pipe). */
int
rawFd(int &other)
{
    int ends[2] = {-1, -1};
    EXPECT_EQ(::pipe(ends), 0);
    other = ends[1];
    return ends[0];
}

TEST(Fd, DefaultIsInvalid)
{
    common::Fd fd;
    EXPECT_FALSE(fd.valid());
    EXPECT_FALSE(static_cast<bool>(fd));
    EXPECT_EQ(fd.get(), -1);
}

TEST(Fd, ClosesOnDestruction)
{
    int other = -1;
    const int raw = rawFd(other);
    {
        common::Fd fd(raw);
        EXPECT_TRUE(fd.valid());
        EXPECT_EQ(fd.get(), raw);
        EXPECT_TRUE(fdIsOpen(raw));
    }
    EXPECT_FALSE(fdIsOpen(raw));
    ::close(other);
}

TEST(Fd, ReleaseDisownsWithoutClosing)
{
    int other = -1;
    const int raw = rawFd(other);
    {
        common::Fd fd(raw);
        EXPECT_EQ(fd.release(), raw);
        EXPECT_FALSE(fd.valid());
    }
    EXPECT_TRUE(fdIsOpen(raw));
    ::close(raw);
    ::close(other);
}

TEST(Fd, ResetClosesPrevious)
{
    int otherA = -1, otherB = -1;
    const int a = rawFd(otherA);
    const int b = rawFd(otherB);
    common::Fd fd(a);
    fd.reset(b);
    EXPECT_FALSE(fdIsOpen(a));
    EXPECT_TRUE(fdIsOpen(b));
    // Self-reset must not close the held descriptor.
    fd.reset(fd.get());
    EXPECT_TRUE(fdIsOpen(b));
    fd.reset();
    EXPECT_FALSE(fdIsOpen(b));
    EXPECT_FALSE(fd.valid());
    ::close(otherA);
    ::close(otherB);
}

TEST(Fd, MoveTransfersOwnership)
{
    int other = -1;
    const int raw = rawFd(other);
    common::Fd a(raw);
    common::Fd b(std::move(a));
    EXPECT_FALSE(a.valid());    // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(b.get(), raw);

    common::Fd c;
    c = std::move(b);
    EXPECT_FALSE(b.valid());    // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(c.get(), raw);
    EXPECT_TRUE(fdIsOpen(raw));

    // Self-move must not close (via a pointer so -Wself-move stays
    // quiet; the aliasing is the point of the test).
    common::Fd *self = &c;
    c = std::move(*self);
    EXPECT_TRUE(fdIsOpen(raw));
    EXPECT_EQ(c.get(), raw);
    c.reset();
    EXPECT_FALSE(fdIsOpen(raw));
    ::close(other);
}

TEST(Pipe, CreateRoundTrip)
{
    common::Pipe p = common::Pipe::create();
    ASSERT_TRUE(p.valid());
    const char msg[] = "wake";
    ASSERT_EQ(::write(p.writeEnd.get(), msg, sizeof(msg)),
              ssize_t(sizeof(msg)));
    char buf[sizeof(msg)] = {};
    ASSERT_EQ(::read(p.readEnd.get(), buf, sizeof(buf)),
              ssize_t(sizeof(msg)));
    EXPECT_STREQ(buf, msg);

    const int r = p.readEnd.get(), w = p.writeEnd.get();
    { common::Pipe dead = std::move(p); }
    EXPECT_FALSE(fdIsOpen(r));
    EXPECT_FALSE(fdIsOpen(w));
}

TEST(Mutex, MutexLockExcludes)
{
    // GUARDED_BY applies to members/globals only, so the local is
    // annotated by convention: counter is guarded by mutex.
    common::Mutex mutex;
    int counter = 0;

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++)
        threads.emplace_back([&] {
            for (int i = 0; i < 10000; i++) {
                common::MutexLock lock(mutex);
                counter++;
            }
        });
    for (std::thread &th : threads)
        th.join();
    common::MutexLock lock(mutex);
    EXPECT_EQ(counter, 40000);
}

TEST(Mutex, TryLock)
{
    common::Mutex mutex;
    ASSERT_TRUE(mutex.tryLock());
    // A second holder must be refused (from another thread: trying
    // to re-acquire on the same thread is UB for std::mutex).
    bool second = true;
    std::thread probe([&] { second = mutex.tryLock(); });
    probe.join();
    EXPECT_FALSE(second);
    mutex.unlock();
}

TEST(CondVar, WaitWakesOnNotify)
{
    common::Mutex mutex;
    common::CondVar cv;
    bool ready = false;    // guarded by mutex (local: by convention)

    std::thread producer([&] {
        common::MutexLock lock(mutex);
        ready = true;
        cv.notifyOne();
    });

    {
        common::MutexLock lock(mutex);
        while (!ready)
            cv.wait(mutex);
        EXPECT_TRUE(ready);
    }
    producer.join();
}

TEST(CondVar, WaitUntilTimesOut)
{
    common::Mutex mutex;
    common::CondVar cv;
    common::MutexLock lock(mutex);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(20);
    // Nobody notifies: the wait must come back with a timeout (and
    // the lock re-held, which the scoped release below exercises).
    std::cv_status status = std::cv_status::no_timeout;
    while (std::chrono::steady_clock::now() < deadline &&
           status != std::cv_status::timeout)
        status = cv.waitUntil(mutex, deadline);
    EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(ThreadRole, ScopedRoleCompilesAndNests)
{
    // ThreadRole is a pure compile-time capability; at runtime the
    // acquire/release are no-ops. This pins that shape: constructing
    // the scope twice in sequence (loop restart) must be fine.
    common::ThreadRole role;
    for (int i = 0; i < 2; i++) {
        common::ScopedRole scope(role);
    }
    SUCCEED();
}

} // namespace
