/**
 * @file
 * Concurrency stress tests for the experiment runner, intended to be
 * run under ThreadSanitizer (the `tsan` CMake preset builds exactly
 * this target plus the library). The scenarios deliberately maximize
 * cross-thread interleavings: many small parallelFor batches, nested
 * use of a shared ResultCache directory with both distinct and
 * identical jobs racing on the same cache files, and exception
 * propagation out of worker threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/job.hh"
#include "runner/result_cache.hh"
#include "runner/thread_pool.hh"
#include "sim/system.hh"

using namespace dynaspam;
using runner::Job;
using runner::ResultCache;
using runner::ThreadPool;

namespace
{

/** Unique-ish scratch directory under the test's working dir. */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = "stress-cache-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

sim::RunResult
fakeResult(std::uint64_t cycles)
{
    sim::RunResult r;
    r.cycles = cycles;
    r.instsTotal = cycles * 2;
    return r;
}

Job
jobFor(std::size_t i)
{
    Job j;
    j.workload = "wl" + std::to_string(i);
    j.traceLength = unsigned(16 + i % 4);
    j.scale = unsigned(1 + i % 3);
    return j;
}

} // namespace

TEST(ThreadPoolStress, ManySmallBatches)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int batch = 0; batch < 50; batch++) {
        pool.parallelFor(64, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    // 50 * (1 + 2 + ... + 64)
    EXPECT_EQ(sum.load(), 50u * (64u * 65u / 2u));
}

TEST(ThreadPoolStress, IndexedSlotsNeedNoLocking)
{
    // The documented usage contract: each task writes only its own slot,
    // so the result vector needs no synchronization beyond the batch
    // barrier parallelFor provides.
    ThreadPool pool(8);
    std::vector<std::uint64_t> out(2048, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); i++)
        ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPoolStress, ExceptionFromWorkerPropagates)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(32,
                                  [&](std::size_t i) {
                                      ran.fetch_add(1);
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The batch still drains: every task ran exactly once.
    EXPECT_EQ(ran.load(), 32);

    // And the pool is reusable after a failed batch.
    std::atomic<int> again{0};
    pool.parallelFor(16, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 16);
}

TEST(ResultCacheStress, ConcurrentDistinctJobs)
{
    const std::string dir = scratchDir("distinct");
    ResultCache cache(dir);
    ThreadPool pool(8);

    const std::size_t n = 128;
    pool.parallelFor(n, [&](std::size_t i) {
        const Job j = jobFor(i);
        cache.store(j, fakeResult(100 + i));
        const auto back = cache.load(j);
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(back->cycles, 100 + i);
    });

    // Every entry independently reloadable afterwards.
    for (std::size_t i = 0; i < n; i++) {
        const auto back = cache.load(jobFor(i));
        ASSERT_TRUE(back.has_value()) << "job " << i;
        EXPECT_EQ(back->cycles, 100 + i);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheStress, ConcurrentWritersSameJob)
{
    // Many threads hammering the *same* cache file. The atomic
    // temp-file + rename protocol must never expose a torn entry: every
    // load sees either a miss or one of the complete written values.
    const std::string dir = scratchDir("samejob");
    ResultCache cache(dir);
    ThreadPool pool(8);

    Job j;
    j.workload = "contended";

    std::atomic<std::uint64_t> badLoads{0};
    pool.parallelFor(256, [&](std::size_t i) {
        cache.store(j, fakeResult(1000 + i % 7));
        const auto back = cache.load(j);
        if (back.has_value()
            && (back->cycles < 1000 || back->cycles > 1006))
            badLoads.fetch_add(1);
    });
    EXPECT_EQ(badLoads.load(), 0u);

    const auto final_entry = cache.load(j);
    ASSERT_TRUE(final_entry.has_value());
    EXPECT_GE(final_entry->cycles, 1000u);
    EXPECT_LE(final_entry->cycles, 1006u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheStress, MixedLoadStoreAcrossBatches)
{
    // Interleave a warm-up batch, a read-mostly batch and an
    // overwrite batch, reusing the same pool — exercises worker wake /
    // sleep transitions between batches under TSan as well.
    const std::string dir = scratchDir("mixed");
    ResultCache cache(dir);
    ThreadPool pool(4);
    const std::size_t n = 64;

    pool.parallelFor(n, [&](std::size_t i) {
        cache.store(jobFor(i), fakeResult(i));
    });
    std::atomic<std::uint64_t> hits{0};
    pool.parallelFor(n * 4, [&](std::size_t i) {
        if (cache.load(jobFor(i % n)).has_value())
            hits.fetch_add(1);
    });
    EXPECT_EQ(hits.load(), n * 4);
    pool.parallelFor(n, [&](std::size_t i) {
        cache.store(jobFor(i), fakeResult(i + 10000));
    });
    for (std::size_t i = 0; i < n; i++) {
        const auto back = cache.load(jobFor(i));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->cycles, i + 10000);
    }
    std::filesystem::remove_all(dir);
}
