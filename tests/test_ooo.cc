/**
 * @file
 * Integration tests for the out-of-order CPU timing model: basic IPC,
 * dependence stalls, branch misprediction penalties, memory speculation,
 * violation squash/replay, and the hooks interface.
 */

#include <gtest/gtest.h>

#include <memory>

#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/cpu.hh"

using namespace dynaspam;
using namespace dynaspam::ooo;
using isa::fpReg;
using isa::intReg;
using isa::Program;
using isa::ProgramBuilder;

namespace
{

struct SimRun
{
    std::unique_ptr<isa::DynamicTrace> trace;
    std::unique_ptr<mem::MemoryHierarchy> hierarchy;
    std::unique_ptr<OooCpu> cpu;
    Cycle cycles = 0;
};

SimRun
simulate(Program &prog, const OooParams &params = OooParams{},
         TraceHooks *hooks = nullptr)
{
    SimRun run;
    mem::FunctionalMemory memory;
    run.trace = std::make_unique<isa::DynamicTrace>(prog);
    isa::Executor::run(prog, memory, run.trace.get());
    run.hierarchy = std::make_unique<mem::MemoryHierarchy>();
    run.cpu = std::make_unique<OooCpu>(params, *run.trace, *run.hierarchy);
    if (hooks)
        run.cpu->setHooks(hooks);
    run.cycles = run.cpu->run();
    return run;
}

/** Straight-line independent adds: should reach high IPC. */
Program
independentAdds(int n)
{
    ProgramBuilder b("indep");
    for (int i = 0; i < n; i++)
        b.addi(intReg(1 + (i % 8)), intReg(10 + (i % 8)), i);
    b.halt();
    return b.build();
}

/** A serial dependence chain: IPC must be ~1 at best. */
Program
dependentChain(int n)
{
    ProgramBuilder b("chain");
    b.movi(intReg(1), 0);
    for (int i = 0; i < n; i++)
        b.addi(intReg(1), intReg(1), 1);
    b.halt();
    return b.build();
}

} // namespace

TEST(OooCpu, CommitsEveryInstructionExactlyOnce)
{
    Program p = independentAdds(100);
    auto run = simulate(p);
    EXPECT_EQ(run.cpu->stats().committedInsts, 101u);   // adds + halt
    EXPECT_TRUE(run.cpu->done());
}

TEST(OooCpu, IndependentInstsReachSuperscalarIpc)
{
    // Long enough to amortize the one cold I-cache miss at startup.
    Program p = independentAdds(4000);
    auto run = simulate(p);
    double ipc = double(run.cpu->stats().committedInsts) / run.cycles;
    // 8-wide machine with 4 int ALUs: ALU throughput caps IPC at 4.
    EXPECT_GT(ipc, 3.0);
    EXPECT_LE(ipc, 4.5);
}

TEST(OooCpu, DependenceChainLimitsIpcToOne)
{
    Program p = dependentChain(800);
    auto run = simulate(p);
    double ipc = double(run.cpu->stats().committedInsts) / run.cycles;
    EXPECT_LT(ipc, 1.2);
    EXPECT_GT(ipc, 0.7);
}

TEST(OooCpu, ChainRunsSlowerThanIndependent)
{
    Program pi = independentAdds(600);
    Program pc = dependentChain(600);
    auto ri = simulate(pi);
    auto rc = simulate(pc);
    EXPECT_LT(ri.cycles * 2, rc.cycles);
}

TEST(OooCpu, PredictableLoopBranchesMostlyHit)
{
    ProgramBuilder b("loop");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 500);
    b.label("head");
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    const auto &s = run.cpu->stats();
    // 500 executions of the backward branch; after warmup nearly all
    // should predict correctly.
    EXPECT_LT(s.branchMispredicts, 20u);
}

TEST(OooCpu, RandomBranchesMispredictOften)
{
    // Branch on the low bit of a xorshift-ish sequence: unpredictable.
    ProgramBuilder b("rand");
    b.movi(intReg(1), 0);        // i
    b.movi(intReg(2), 400);      // trip count
    b.movi(intReg(3), 123456789);// state
    b.movi(intReg(7), 0);
    b.label("head");
    // state = state * 1103515245 + 12345 (mod 2^64)
    b.movi(intReg(4), 1103515245);
    b.mul(intReg(3), intReg(3), intReg(4));
    b.addi(intReg(3), intReg(3), 12345);
    b.shri(intReg(5), intReg(3), 16);
    b.andi(intReg(5), intReg(5), 1);
    b.beq(intReg(5), intReg(7), "skip");
    b.addi(intReg(6), intReg(6), 1);
    b.label("skip");
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    // ~400 data-dependent branches: expect a sizable misprediction count.
    EXPECT_GT(run.cpu->stats().branchMispredicts, 60u);
}

TEST(OooCpu, MispredictsCostCycles)
{
    // Same loop body; one version uses a highly biased branch, the other
    // an unpredictable one. The unpredictable one must take longer.
    auto makeLoop = [](bool predictable) {
        ProgramBuilder b(predictable ? "pred" : "unpred");
        b.movi(intReg(1), 0);
        b.movi(intReg(2), 300);
        b.movi(intReg(3), 99991);
        b.movi(intReg(7), 0);
        b.label("head");
        b.movi(intReg(4), 6364136223846793005LL);
        b.mul(intReg(3), intReg(3), intReg(4));
        b.addi(intReg(3), intReg(3), 1442695040888963407LL);
        b.shri(intReg(5), intReg(3), 33);
        if (predictable)
            b.andi(intReg(5), intReg(5), 0);   // always 0
        else
            b.andi(intReg(5), intReg(5), 1);   // random 0/1
        b.beq(intReg(5), intReg(7), "skip");
        b.addi(intReg(6), intReg(6), 1);
        b.label("skip");
        b.addi(intReg(1), intReg(1), 1);
        b.blt(intReg(1), intReg(2), "head");
        b.halt();
        return b.build();
    };

    Program pp = makeLoop(true);
    Program pu = makeLoop(false);
    auto rp = simulate(pp);
    auto ru = simulate(pu);
    EXPECT_LT(rp.cycles, ru.cycles);
}

TEST(OooCpu, StoreToLoadForwardingIsFasterThanCache)
{
    // Loop: store then immediately load the same address.
    ProgramBuilder b("fwd");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 0);
    b.movi(intReg(3), 200);
    b.label("head");
    b.st(intReg(1), intReg(2), 0);
    b.ld(intReg(4), intReg(1), 0);
    b.add(intReg(2), intReg(2), intReg(4));
    b.addi(intReg(2), intReg(2), 1);
    b.addi(intReg(5), intReg(5), 1);
    b.blt(intReg(5), intReg(3), "head");
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    EXPECT_GT(run.cpu->stats().loadForwards, 150u);
}

TEST(OooCpu, ForwardingIgnoresSameLineDifferentAddressStores)
{
    // A younger same-cacheline store at a different address must neither
    // forward to the load nor end the reverse search before the older
    // exact-address store is found. Pins the partial-overlap semantics of
    // the line-indexed store scan.
    ProgramBuilder b("overlap");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 7);
    b.movi(intReg(3), 9);
    b.st(intReg(1), intReg(2), 0);   // exact-address producer
    b.st(intReg(1), intReg(3), 8);   // same 64B line, different address
    b.ld(intReg(4), intReg(1), 0);   // must forward the value of the first
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    EXPECT_EQ(run.cpu->stats().loadForwards, 1u);
    EXPECT_EQ(run.cpu->stats().committedInsts, 7u);
}

TEST(OooCpu, NoForwardingFromSameLineDifferentAddress)
{
    // Only a same-line neighbour exists: the load must read the cache,
    // not forward from the overlapping line.
    ProgramBuilder b("noforward");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(3), 9);
    b.st(intReg(1), intReg(3), 8);   // same line as the load, +8 bytes
    b.ld(intReg(4), intReg(1), 0);
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    EXPECT_EQ(run.cpu->stats().loadForwards, 0u);
}

TEST(OooCpu, MemorySpeculationDetectsViolations)
{
    // Pointer-chasing store followed by aliasing load: the store address
    // depends on a long-latency computation while the load's address is
    // ready immediately, so a speculative load can bypass the store.
    ProgramBuilder b("alias");
    b.movi(intReg(1), 0x1000);   // base
    b.movi(intReg(8), 1);        // divisor for delay
    b.movi(intReg(5), 0);        // i
    b.movi(intReg(6), 100);      // trips
    b.label("head");
    // Slow computation of the store address (always base+0).
    b.div(intReg(2), intReg(1), intReg(8));
    b.div(intReg(2), intReg(2), intReg(8));
    b.st(intReg(2), intReg(5), 0);       // store to base
    b.ld(intReg(4), intReg(1), 0);       // aliasing load from base
    b.add(intReg(7), intReg(7), intReg(4));
    b.addi(intReg(5), intReg(5), 1);
    b.blt(intReg(5), intReg(6), "head");
    b.halt();
    Program p = b.build();

    OooParams params;
    params.memorySpeculation = true;
    auto run = simulate(p, params);
    const auto &s = run.cpu->stats();
    // At least one violation must occur before the store-set predictor
    // learns to synchronize the pair.
    EXPECT_GE(s.memOrderViolations, 1u);
    // But the predictor must learn: violations far fewer than trips.
    EXPECT_LT(s.memOrderViolations, 50u);
    EXPECT_GT(s.squashedInsts, 0u);
}

TEST(OooCpu, NoSpeculationMeansNoViolations)
{
    ProgramBuilder b("alias2");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(8), 1);
    b.movi(intReg(5), 0);
    b.movi(intReg(6), 50);
    b.label("head");
    b.div(intReg(2), intReg(1), intReg(8));
    b.st(intReg(2), intReg(5), 0);
    b.ld(intReg(4), intReg(1), 0);
    b.addi(intReg(5), intReg(5), 1);
    b.blt(intReg(5), intReg(6), "head");
    b.halt();
    Program p = b.build();

    OooParams params;
    params.memorySpeculation = false;
    auto run = simulate(p, params);
    EXPECT_EQ(run.cpu->stats().memOrderViolations, 0u);
    EXPECT_EQ(run.cpu->stats().squashedInsts, 0u);
}

TEST(OooCpu, SpeculationHelpsAliasFreeMemoryCode)
{
    // Stores and loads to disjoint addresses, with store addresses
    // computed slowly: speculation lets loads proceed.
    auto makeProg = []() {
        ProgramBuilder b("disjoint");
        b.movi(intReg(1), 0x1000);   // store region
        b.movi(intReg(9), 0x8000);   // load region
        b.movi(intReg(8), 1);
        b.movi(intReg(5), 0);
        b.movi(intReg(6), 150);
        b.label("head");
        b.div(intReg(2), intReg(1), intReg(8));
        b.st(intReg(2), intReg(5), 0);
        b.ld(intReg(4), intReg(9), 0);
        b.add(intReg(7), intReg(7), intReg(4));
        b.addi(intReg(5), intReg(5), 1);
        b.blt(intReg(5), intReg(6), "head");
        b.halt();
        return b.build();
    };

    Program p1 = makeProg();
    OooParams spec;
    spec.memorySpeculation = true;
    auto rs = simulate(p1, spec);

    Program p2 = makeProg();
    OooParams nospec;
    nospec.memorySpeculation = false;
    auto rn = simulate(p2, nospec);

    EXPECT_LT(rs.cycles, rn.cycles);
    EXPECT_EQ(rs.cpu->stats().memOrderViolations, 0u);
}

TEST(OooCpu, LongLatencyDividerSerializes)
{
    ProgramBuilder b("divs");
    b.movi(intReg(1), 1000);
    b.movi(intReg(2), 3);
    for (int i = 0; i < 50; i++)
        b.div(intReg(3 + (i % 4)), intReg(1), intReg(2));
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    // One unpipelined divider with 12-cycle latency: ~600 cycles minimum.
    EXPECT_GT(run.cycles, 550u);
}

TEST(OooCpu, CacheMissesStallLoads)
{
    // Strided loads with 4KB stride: every access is a fresh block and,
    // with 512-set L1D, conflicts recur -> many misses.
    ProgramBuilder b("stride");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(5), 0);
    b.movi(intReg(6), 100);
    b.label("head");
    b.ld(intReg(4), intReg(1), 0);
    b.add(intReg(7), intReg(7), intReg(4));
    b.addi(intReg(1), intReg(1), 4096);
    b.addi(intReg(5), intReg(5), 1);
    b.blt(intReg(5), intReg(6), "head");
    b.halt();
    Program p = b.build();

    auto run = simulate(p);
    EXPECT_GT(run.hierarchy->l1d().misses(), 90u);
}

TEST(OooCpu, StatsExportContainsKeyCounters)
{
    Program p = independentAdds(50);
    auto run = simulate(p);
    StatRegistry reg;
    run.cpu->exportStats(reg);
    EXPECT_EQ(reg.get("ooo.committedInsts"), 51u);
    EXPECT_GT(reg.get("ooo.cycles"), 0u);
    EXPECT_GT(reg.get("ooo.issuedInsts"), 0u);
    EXPECT_GT(reg.get("ooo.regWrites"), 0u);
}

// --- Hooks interface ---

namespace
{

/** Hooks that count fetch consultations and branch commits. */
class CountingHooks : public TraceHooks
{
  public:
    FetchDirective
    beforeFetch(SeqNum, Cycle) override
    {
        fetchCalls++;
        return {};
    }

    void
    onCommitControl(InstAddr pc, bool taken, SeqNum, Cycle) override
    {
        commitCalls++;
        lastPc = pc;
        lastTaken = taken;
    }

    std::uint64_t fetchCalls = 0;
    std::uint64_t commitCalls = 0;
    InstAddr lastPc = 0;
    bool lastTaken = false;
};

} // namespace

TEST(OooCpuHooks, BeforeFetchConsultedPerRecord)
{
    Program p = independentAdds(20);
    CountingHooks hooks;
    auto run = simulate(p, OooParams{}, &hooks);
    // Every record is consulted at least once; fetch retries after an
    // I-cache miss consult the same record again, so >= not ==.
    EXPECT_GE(hooks.fetchCalls, 21u);
    EXPECT_LE(hooks.fetchCalls, 42u);
}

TEST(OooCpuHooks, ControlCommitsReported)
{
    ProgramBuilder b("loop");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 10);
    b.label("head");
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");
    b.halt();
    Program p = b.build();

    CountingHooks hooks;
    auto run = simulate(p, OooParams{}, &hooks);
    EXPECT_EQ(hooks.commitCalls, 10u);      // 10 branch executions
    EXPECT_EQ(hooks.lastPc, 3u);            // the blt (after 2 movi, 1 addi)
    EXPECT_FALSE(hooks.lastTaken);          // final iteration falls through
}
