/**
 * @file
 * Workload tests: every kernel must execute functionally, halt, and
 * validate against its C++ golden model; parameterized across all 11
 * benchmarks plus per-kernel structural checks.
 */

#include <gtest/gtest.h>

#include "isa/executor.hh"
#include "workloads/workload.hh"

using namespace dynaspam;
using namespace dynaspam::workloads;

class WorkloadGolden : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadGolden, FunctionalRunMatchesReference)
{
    Workload wl = makeWorkload(GetParam());
    mem::FunctionalMemory memory = wl.initialMemory;
    isa::DynamicTrace trace(wl.program);
    auto result = isa::Executor::run(wl.program, memory, &trace);
    EXPECT_TRUE(result.halted);
    ASSERT_TRUE(wl.validate) << "workload must install a validator";
    EXPECT_TRUE(wl.validate(memory))
        << wl.name << " output does not match the golden model";
}

TEST_P(WorkloadGolden, ScaleTwoAlsoValidates)
{
    Workload wl = makeWorkload(GetParam(), 2);
    mem::FunctionalMemory memory = wl.initialMemory;
    auto result = isa::Executor::run(wl.program, memory, nullptr);
    EXPECT_TRUE(result.halted);
    EXPECT_TRUE(wl.validate(memory));
}

TEST_P(WorkloadGolden, DynamicLengthIsBenchable)
{
    Workload wl = makeWorkload(GetParam());
    mem::FunctionalMemory memory = wl.initialMemory;
    auto result = isa::Executor::run(wl.program, memory, nullptr);
    // Large enough to exercise trace detection, small enough to sweep.
    EXPECT_GT(result.instCount, 20'000u) << wl.name;
    EXPECT_LT(result.instCount, 5'000'000u) << wl.name;
}

TEST_P(WorkloadGolden, MetadataIsComplete)
{
    Workload wl = makeWorkload(GetParam());
    EXPECT_FALSE(wl.name.empty());
    EXPECT_FALSE(wl.fullName.empty());
    EXPECT_FALSE(wl.kernel.empty());
    EXPECT_FALSE(wl.program.empty());
    EXPECT_EQ(wl.program.name().empty(), false);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadGolden,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &test_info) {
                             return test_info.param;
                         });

TEST(WorkloadRegistry, ListsElevenBenchmarks)
{
    EXPECT_EQ(allWorkloadNames().size(), 11u);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("NOPE"), FatalError);
}

TEST(WorkloadHelpers, PokePeekRoundTrip)
{
    mem::FunctionalMemory memory;
    pokeDoubles(memory, 0x1000, {1.5, -2.25, 0.0});
    pokeInts(memory, 0x2000, {7, -9, 42});
    EXPECT_EQ(peekDoubles(memory, 0x1000, 3),
              (std::vector<double>{1.5, -2.25, 0.0}));
    EXPECT_EQ(peekInts(memory, 0x2000, 3),
              (std::vector<std::int64_t>{7, -9, 42}));
}

TEST(WorkloadHelpers, NearlyEqualTolerates)
{
    EXPECT_TRUE(nearlyEqual({1.0}, {1.0 + 1e-12}));
    EXPECT_FALSE(nearlyEqual({1.0}, {1.1}));
    EXPECT_FALSE(nearlyEqual({1.0, 2.0}, {1.0}));
}

// Structural spot checks that matter for the evaluation's behaviour.

TEST(WorkloadStructure, BfsBranchesAreDataDependent)
{
    Workload wl = makeBfs();
    mem::FunctionalMemory memory = wl.initialMemory;
    isa::DynamicTrace trace(wl.program);
    isa::Executor::run(wl.program, memory, &trace);

    // Count taken/not-taken for the visited check: both sides exercised.
    std::size_t taken = 0, total = 0;
    for (SeqNum i = 0; i < trace.size(); i++) {
        const auto &inst = trace.staticInst(i);
        if (inst.isCondBranch()) {
            total++;
            taken += trace[i].taken;
        }
    }
    ASSERT_GT(total, 0u);
    double ratio = double(taken) / double(total);
    EXPECT_GT(ratio, 0.15);
    EXPECT_LT(ratio, 0.9);
}

TEST(WorkloadStructure, BpIsFpMultiplyAccumulateHeavy)
{
    Workload wl = makeBp();
    mem::FunctionalMemory memory = wl.initialMemory;
    isa::DynamicTrace trace(wl.program);
    isa::Executor::run(wl.program, memory, &trace);
    std::size_t fp = 0;
    for (SeqNum i = 0; i < trace.size(); i++) {
        auto cls = trace.staticInst(i).opClass();
        fp += cls == isa::OpClass::FloatAdd ||
              cls == isa::OpClass::FloatMult ||
              cls == isa::OpClass::FloatDiv;
    }
    EXPECT_GT(double(fp) / double(trace.size()), 0.2);
}

TEST(WorkloadStructure, NwAndSradAreMemoryHeavy)
{
    for (const char *name : {"NW", "SRAD"}) {
        Workload wl = makeWorkload(name);
        mem::FunctionalMemory memory = wl.initialMemory;
        isa::DynamicTrace trace(wl.program);
        isa::Executor::run(wl.program, memory, &trace);
        std::size_t mem_ops = 0;
        for (SeqNum i = 0; i < trace.size(); i++)
            mem_ops += trace.staticInst(i).isMem();
        EXPECT_GT(double(mem_ops) / double(trace.size()), 0.2)
            << name << " should have a large dynamic memory fraction";
    }
}

TEST(WorkloadStructure, BtSearchesChasePointers)
{
    Workload wl = makeBt();
    mem::FunctionalMemory memory = wl.initialMemory;
    isa::DynamicTrace trace(wl.program);
    isa::Executor::run(wl.program, memory, &trace);
    std::size_t loads = 0;
    for (SeqNum i = 0; i < trace.size(); i++)
        loads += trace.staticInst(i).isLoad();
    EXPECT_GT(loads, 1000u);
}
