/**
 * @file
 * Tests for the experiment-runner subsystem: JSON round-trips, the
 * work-stealing thread pool, job hashing, result-cache hit/miss and
 * corruption recovery, and the headline determinism guarantee — a sweep
 * executed on 1 thread and on 8 threads produces byte-identical
 * reports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "common/interrupt.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "runner/runner.hh"

using namespace dynaspam;
using runner::Job;
using sim::SystemMode;

namespace fs = std::filesystem;

namespace
{

/** Fresh unique directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<unsigned> next{0};
        path_ = (fs::temp_directory_path() /
                 ("dynaspam-test-" + tag + "-" + std::to_string(getpid()) +
                  "-" + std::to_string(next++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** The documented 20-point determinism sweep: 5 workloads x 4 modes. */
std::vector<Job>
determinismSweep()
{
    std::vector<Job> jobs;
    for (const char *wl : {"BP", "BFS", "HS", "KM", "PF"})
        for (SystemMode mode :
             {SystemMode::BaselineOoo, SystemMode::MappingOnly,
              SystemMode::AccelNoSpec, SystemMode::AccelSpec})
            jobs.push_back(Job{wl, mode, 32, 1, 1});
    return jobs;
}

std::string
reportFor(const std::vector<runner::JobOutcome> &outcomes,
          const StatRegistry *stats)
{
    std::ostringstream os;
    runner::writeSweepReport(os, "test", outcomes, stats);
    return os.str();
}

} // namespace

// --- JSON ----------------------------------------------------------------

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(json::Value(std::uint64_t(18446744073709551615ULL)).dump(),
              "18446744073709551615");
    EXPECT_EQ(json::Value(std::int64_t(-42)).dump(), "-42");
    EXPECT_EQ(json::Value(true).dump(), "true");
    EXPECT_EQ(json::Value(nullptr).dump(), "null");
    EXPECT_EQ(json::Value("a\"b\n").dump(), "\"a\\\"b\\n\"");
    // Integral doubles keep a visible fraction so they re-parse as
    // doubles.
    EXPECT_EQ(json::Value(2.0).dump(), "2.0");
    EXPECT_EQ(json::Value(0.25).dump(), "0.25");
}

TEST(Json, ParseRoundTrip)
{
    const std::string text =
        R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}})";
    json::Value v = json::Value::parse(text);
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_EQ(v.at("a").asArray()[0].asUint(), 1u);
    EXPECT_DOUBLE_EQ(v.at("a").asArray()[1].asDouble(), 2.5);
    EXPECT_EQ(v.at("a").asArray()[2].asString(), "x");
    EXPECT_TRUE(v.at("b").at("c").asBool());
    EXPECT_TRUE(v.at("b").at("d").isNull());
    // Dump -> parse -> dump is a fixed point.
    EXPECT_EQ(json::Value::parse(v.dump()).dump(), v.dump());
    EXPECT_EQ(json::Value::parse(v.dump(2)).dump(2), v.dump(2));
}

TEST(Json, LargeCountersSurviveExactly)
{
    const std::uint64_t big = (1ULL << 62) + 12345;
    json::Value v = json::Value::parse(json::Value(big).dump());
    EXPECT_EQ(v.asUint(), big);
}

TEST(Json, NonFiniteDoublesRoundTrip)
{
    // Non-finite doubles used to serialize as null, which every numeric
    // reader rejected on the way back in; they now round-trip through
    // the string literals "NaN" / "Infinity" / "-Infinity".
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();

    EXPECT_EQ(json::Value(nan).dump(), "\"NaN\"");
    EXPECT_EQ(json::Value(inf).dump(), "\"Infinity\"");
    EXPECT_EQ(json::Value(-inf).dump(), "\"-Infinity\"");

    EXPECT_TRUE(std::isnan(json::Value::parse("\"NaN\"").asDouble()));
    EXPECT_EQ(json::Value::parse("\"Infinity\"").asDouble(), inf);
    EXPECT_EQ(json::Value::parse("\"-Infinity\"").asDouble(), -inf);

    // Ordinary strings still refuse to read as numbers.
    EXPECT_THROW(json::Value("banana").asDouble(), FatalError);
}

TEST(Json, ParseErrorsThrow)
{
    EXPECT_THROW(json::Value::parse(""), FatalError);
    EXPECT_THROW(json::Value::parse("{"), FatalError);
    EXPECT_THROW(json::Value::parse("{\"a\": }"), FatalError);
    EXPECT_THROW(json::Value::parse("[1,]2"), FatalError);
    EXPECT_THROW(json::Value::parse("truex"), FatalError);
    EXPECT_THROW(json::Value::parse("{} garbage"), FatalError);
}

// --- Stats registry JSON -------------------------------------------------

TEST(StatRegistryJson, DumpsCountersAccumsAndHistograms)
{
    StatRegistry reg;
    reg.counter("alpha").inc(7);
    reg.accum("beta").add(2.5);
    Histogram &h = reg.histogram("gamma", 10, 4);
    h.sample(5);
    h.sample(15);
    h.sample(1000);     // overflow

    std::ostringstream os;
    reg.dumpJson(os);
    json::Value v = json::Value::parse(os.str());
    EXPECT_EQ(v.at("counters").at("alpha").asUint(), 7u);
    EXPECT_DOUBLE_EQ(v.at("accums").at("beta").asDouble(), 2.5);
    const json::Value &hist = v.at("histograms").at("gamma");
    EXPECT_EQ(hist.at("bucket_width").asUint(), 10u);
    EXPECT_EQ(hist.at("buckets").asArray().size(), 4u);
    EXPECT_EQ(hist.at("buckets").asArray()[0].asUint(), 1u);
    EXPECT_EQ(hist.at("buckets").asArray()[1].asUint(), 1u);
    EXPECT_EQ(hist.at("overflow").asUint(), 1u);
    EXPECT_EQ(hist.at("count").asUint(), 3u);
    EXPECT_EQ(hist.at("sum").asUint(), 1020u);
}

// --- Thread pool ---------------------------------------------------------

TEST(ThreadPool, ExecutesEveryIndexOnce)
{
    for (unsigned workers : {1u, 2u, 8u}) {
        runner::ThreadPool pool(workers);
        std::vector<std::atomic<int>> seen(1000);
        pool.parallelFor(seen.size(),
                         [&](std::size_t i) { seen[i]++; });
        for (const auto &count : seen)
            EXPECT_EQ(count.load(), 1);
    }
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    runner::ThreadPool pool(4);
    for (int round = 0; round < 5; round++) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    runner::ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallelFor(50,
                                  [&](std::size_t i) {
                                      if (i == 13)
                                          fatal("boom");
                                      completed++;
                                  }),
                 FatalError);
    // The batch drains even after a failure.
    EXPECT_EQ(completed.load(), 49);
    // ...and the pool remains usable.
    std::atomic<int> after{0};
    pool.parallelFor(10, [&](std::size_t) { after++; });
    EXPECT_EQ(after.load(), 10);
}

// --- Job -----------------------------------------------------------------

TEST(Job, KeyAndHashAreStable)
{
    Job job{"BFS", SystemMode::AccelSpec, 32, 1, 1};
    EXPECT_EQ(job.key(), "BFS|accel-spec|32|1|1|0|full");
    EXPECT_EQ(job.hash(), Job(job).hash());
    EXPECT_EQ(job.hashHex().size(), 16u);

    // Workload tags are canonicalized: same point, same cache entry.
    Job lower{"bfs", SystemMode::AccelSpec, 32, 1, 1};
    EXPECT_EQ(lower.hash(), job.hash());

    Job other = job;
    other.traceLength = 16;
    EXPECT_NE(other.hash(), job.hash());

    // Warmup and fidelity are part of the simulation point identity.
    Job warmed = job;
    warmed.warmupInsts = 10000;
    EXPECT_NE(warmed.hash(), job.hash());
    Job sampled = job;
    sampled.fidelity = runner::Fidelity::Sampled;
    EXPECT_EQ(sampled.key(), "BFS|accel-spec|32|1|1|0|sampled");
    EXPECT_NE(sampled.hash(), job.hash());
}

TEST(Job, ParseModeRejectsUnknown)
{
    EXPECT_EQ(runner::parseMode("accel-spec"), SystemMode::AccelSpec);
    EXPECT_EQ(runner::parseMode("baseline-ooo"), SystemMode::BaselineOoo);
    EXPECT_THROW(runner::parseMode("warp-drive"), FatalError);
}

// --- Result round-trip ---------------------------------------------------

TEST(ResultJson, FullRoundTrip)
{
    sim::RunResult original =
        runner::execute(Job{"BP", SystemMode::AccelSpec, 32, 1, 1});
    json::Value v = runner::resultToJson(original);
    sim::RunResult restored = runner::resultFromJson(v);

    EXPECT_EQ(restored.cycles, original.cycles);
    EXPECT_EQ(restored.instsTotal, original.instsTotal);
    EXPECT_EQ(restored.instsFabric, original.instsFabric);
    EXPECT_EQ(restored.functionallyCorrect, original.functionallyCorrect);
    EXPECT_EQ(restored.pipeline.committedInsts,
              original.pipeline.committedInsts);
    EXPECT_EQ(restored.dynaspam.distinctMappedTraces,
              original.dynaspam.distinctMappedTraces);
    EXPECT_DOUBLE_EQ(restored.energy.total(), original.energy.total());
    // Byte-identical re-serialization proves nothing was lost.
    EXPECT_EQ(runner::resultToJson(restored).dump(2), v.dump(2));
}

// --- Determinism ---------------------------------------------------------

TEST(RunnerDeterminism, OneThreadAndEightThreadsMatchByteForByte)
{
    const std::vector<Job> jobs = determinismSweep();
    ASSERT_EQ(jobs.size(), 20u);

    runner::Runner serial(runner::RunnerOptions{1, ""});
    runner::Runner parallel(runner::RunnerOptions{8, ""});
    auto serial_outcomes = serial.runAll(jobs);
    auto parallel_outcomes = parallel.runAll(jobs);

    ASSERT_EQ(serial_outcomes.size(), parallel_outcomes.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(serial_outcomes[i].result.cycles,
                  parallel_outcomes[i].result.cycles)
            << "cycle mismatch for " << jobs[i].key();
        std::ostringstream serial_stats, parallel_stats;
        serial_outcomes[i].result.stats.dump(serial_stats);
        parallel_outcomes[i].result.stats.dump(parallel_stats);
        EXPECT_EQ(serial_stats.str(), parallel_stats.str())
            << "stat dump mismatch for " << jobs[i].key();
    }

    EXPECT_EQ(reportFor(serial_outcomes, &serial.stats()),
              reportFor(parallel_outcomes, &parallel.stats()));
}

// --- Result cache --------------------------------------------------------

TEST(ResultCache, WarmRerunPerformsZeroSimulations)
{
    TempDir dir("cache");
    std::vector<Job> jobs = {
        Job{"BP", SystemMode::BaselineOoo, 32, 1, 1},
        Job{"BP", SystemMode::AccelSpec, 32, 1, 1},
        Job{"PF", SystemMode::BaselineOoo, 32, 1, 1},
        Job{"PF", SystemMode::AccelSpec, 32, 1, 1},
    };

    runner::Runner cold(runner::RunnerOptions{2, dir.path()});
    auto cold_outcomes = cold.runAll(jobs);
    EXPECT_EQ(cold.stats().get("runner.cache_hits"), 0u);
    EXPECT_EQ(cold.stats().get("runner.cache_misses"), jobs.size());
    EXPECT_EQ(cold.stats().get("runner.jobs_executed"), jobs.size());
    for (const auto &outcome : cold_outcomes)
        EXPECT_FALSE(outcome.fromCache);

    runner::Runner warm(runner::RunnerOptions{2, dir.path()});
    auto warm_outcomes = warm.runAll(jobs);
    EXPECT_EQ(warm.stats().get("runner.cache_hits"), jobs.size());
    EXPECT_EQ(warm.stats().get("runner.jobs_executed"), 0u);
    for (std::size_t i = 0; i < jobs.size(); i++) {
        EXPECT_TRUE(warm_outcomes[i].fromCache);
        EXPECT_EQ(warm_outcomes[i].result.cycles,
                  cold_outcomes[i].result.cycles);
        EXPECT_EQ(runner::resultToJson(warm_outcomes[i].result).dump(),
                  runner::resultToJson(cold_outcomes[i].result).dump());
    }
}

TEST(ResultCache, DistinctJobsGetDistinctEntries)
{
    TempDir dir("cache-distinct");
    runner::ResultCache cache(dir.path());
    Job a{"BP", SystemMode::BaselineOoo, 32, 1, 1};
    Job b{"BP", SystemMode::AccelSpec, 32, 1, 1};
    EXPECT_NE(cache.pathFor(a), cache.pathFor(b));
    EXPECT_FALSE(cache.load(a).has_value());
}

TEST(ResultCache, CorruptEntryFallsBackToSimulation)
{
    TempDir dir("cache-corrupt");
    const Job job{"BP", SystemMode::BaselineOoo, 32, 1, 1};
    const sim::RunResult reference = runner::execute(job);

    runner::ResultCache cache(dir.path());
    const std::string path = cache.pathFor(job);

    // Truncated garbage, invalid JSON, and valid JSON with the wrong
    // shape must all read as a miss, never crash.
    for (const char *content :
         {"", "not json at all {{{", "{\"epoch\": \"dynaspam-sim-1\"",
          "{\"unexpected\": []}", "[1, 2, 3]"}) {
        {
            std::ofstream os(path);
            os << content;
        }
        EXPECT_FALSE(cache.load(job).has_value()) << content;

        runner::Runner r(runner::RunnerOptions{1, dir.path()});
        auto outcomes = r.runAll({job});
        EXPECT_FALSE(outcomes[0].fromCache) << content;
        EXPECT_EQ(outcomes[0].result.cycles, reference.cycles);
        fs::remove(path);
    }
}

TEST(ResultCache, EpochMismatchInvalidates)
{
    TempDir dir("cache-epoch");
    const Job job{"PF", SystemMode::BaselineOoo, 32, 1, 1};
    const sim::RunResult result = runner::execute(job);

    runner::ResultCache old_epoch(dir.path(), "old-epoch");
    old_epoch.store(job, result);
    EXPECT_TRUE(old_epoch.load(job).has_value());

    // A cache reading with the current epoch must treat it as a miss...
    runner::ResultCache current(dir.path());
    EXPECT_FALSE(current.load(job).has_value());

    // ...and a run through the Runner re-simulates and repairs it.
    runner::Runner r(runner::RunnerOptions{1, dir.path()});
    auto outcomes = r.runAll({job});
    EXPECT_FALSE(outcomes[0].fromCache);
    EXPECT_TRUE(current.load(job).has_value());
}

TEST(ResultCache, DisabledCacheNeverStores)
{
    runner::ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    const Job job{"BP", SystemMode::BaselineOoo, 32, 1, 1};
    cache.store(job, sim::RunResult{});
    EXPECT_FALSE(cache.load(job).has_value());
}

TEST(ResultCache, NonFiniteStatsSurviveTheRoundTrip)
{
    // Pre-fix behaviour: a NaN or infinite accumulator serialized as
    // JSON null, the numeric reader rejected it on load, and the whole
    // entry silently degenerated to a permanent cache miss.
    TempDir dir("cache-nonfinite");
    const Job job{"BP", SystemMode::BaselineOoo, 32, 1, 1};
    sim::RunResult result = runner::execute(job);
    result.stats.accum("test.poisoned")
        .add(std::numeric_limits<double>::quiet_NaN());
    result.stats.accum("test.hot")
        .add(std::numeric_limits<double>::infinity());

    runner::ResultCache cache(dir.path());
    cache.store(job, result);

    auto loaded = cache.load(job);
    ASSERT_TRUE(loaded.has_value()) << "non-finite stat corrupted entry";
    EXPECT_TRUE(std::isnan(loaded->stats.getAccum("test.poisoned")));
    EXPECT_EQ(loaded->stats.getAccum("test.hot"),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(loaded->cycles, result.cycles);
}

// --- JSON hardening (network-boundary strictness) -------------------------

TEST(Json, RejectsMalformedInputTable)
{
    struct BadCase
    {
        const char *name;
        std::string text;
    };
    const BadCase cases[] = {
        {"duplicate object key", "{\"a\": 1, \"a\": 2}"},
        {"nested duplicate key", "{\"o\": {\"x\": 1, \"x\": 1}}"},
        {"truncated escape", "\"ab\\"},
        {"bad escape letter", "\"\\q\""},
        {"truncated unicode escape", "\"\\u12\""},
        {"unescaped control char", std::string("\"a\tb\"")},
        {"unterminated string", "\"never ends"},
        {"bare minus", "[-]"},
        {"leading plus", "+1"},
        {"lonely surrogate text", "{\"k\": tru}"},
        {"array depth bomb",
         std::string(json::kMaxParseDepth + 1, '[') +
             std::string(json::kMaxParseDepth + 1, ']')},
        {"object depth bomb",
         [] {
             std::string s;
             for (unsigned i = 0; i <= json::kMaxParseDepth; i++)
                 s += "{\"k\":";
             s += "1";
             for (unsigned i = 0; i <= json::kMaxParseDepth; i++)
                 s += "}";
             return s;
         }()},
    };
    for (const BadCase &c : cases)
        EXPECT_THROW(json::Value::parse(c.text), FatalError) << c.name;
}

TEST(Json, AcceptsInputAtTheDepthLimit)
{
    const std::string ok = std::string(json::kMaxParseDepth, '[') +
                           std::string(json::kMaxParseDepth, ']');
    EXPECT_NO_THROW(json::Value::parse(ok));
}

TEST(Json, ParseErrorsReportLineAndColumn)
{
    try {
        json::Value::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
        FAIL() << "duplicate key accepted";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    }
}

// --- Thread pool: persistent submit() front end ---------------------------

TEST(ThreadPool, SubmitRunsEveryTaskExactlyOnce)
{
    std::atomic<int> ran{0};
    {
        runner::ThreadPool pool(4);
        for (int i = 0; i < 200; i++)
            pool.submit([&ran] { ran++; });
        // Destructor drains: every submitted task runs before join.
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SubmitAndParallelForShareTheWorkers)
{
    runner::ThreadPool pool(4);
    std::atomic<int> submitted{0}, batched{0};
    for (int i = 0; i < 50; i++)
        pool.submit([&submitted] { submitted++; });
    pool.parallelFor(50, [&batched](std::size_t) { batched++; });
    EXPECT_EQ(batched.load(), 50);
    // parallelFor returning does not imply the submits finished; the
    // destructor drain does.
    while (submitted.load() < 50)
        std::this_thread::yield();
    EXPECT_EQ(submitted.load(), 50);
}

// --- Shared sweep expansion ----------------------------------------------

TEST(SweepJobs, ExpandsNamedSweepsAndRejectsUnknown)
{
    const std::vector<std::string> wl = {"BFS", "PF"};
    EXPECT_EQ(runner::sweepJobs("fig7", wl, 1, 32).size(), 8u);
    EXPECT_EQ(runner::sweepJobs("fig8", wl, 1, 32).size(), 8u);
    EXPECT_EQ(runner::sweepJobs("fig9", wl, 1, 32).size(), 4u);
    EXPECT_EQ(runner::sweepJobs("table5", wl, 1, 32).size(), 8u);
    EXPECT_EQ(runner::sweepJobs("ablation-mapper", wl, 1, 32).size(), 4u);
    EXPECT_THROW(runner::sweepJobs("fig99", wl, 1, 32), FatalError);

    // fig7 sweeps trace length, so the given length is not used there.
    auto fig8 = runner::sweepJobs("fig8", {"BFS"}, 2, 24);
    ASSERT_EQ(fig8.size(), 4u);
    for (const Job &job : fig8) {
        EXPECT_EQ(job.traceLength, 24u);
        EXPECT_EQ(job.scale, 2u);
    }
}

// --- Result cache: hash lookup and growth control ------------------------

TEST(ResultCache, LoadByHashRoundTripsJobAndResult)
{
    TempDir dir("cache-byhash");
    runner::ResultCache cache(dir.path());
    const Job job{"BFS", SystemMode::AccelSpec, 16, 1, 1};
    sim::RunResult result;
    result.cycles = 4242;
    result.instsTotal = 999;
    cache.store(job, result);

    auto hit = cache.loadByHash(job.hashHex());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->first, job);
    EXPECT_EQ(hit->second.cycles, 4242u);

    EXPECT_FALSE(cache.loadByHash("0123456789abcdef").has_value());
    EXPECT_FALSE(cache.loadByHash("not-a-hash").has_value());
    EXPECT_FALSE(cache.loadByHash("../../etc/passwd").has_value());
}

TEST(ResultCache, GcRemovesStaleEpochsAndTempLitter)
{
    TempDir dir("cache-gc-stale");
    const Job fresh{"BFS", SystemMode::AccelSpec, 16, 1, 1};
    const Job stale{"PF", SystemMode::AccelSpec, 16, 1, 1};

    runner::ResultCache current(dir.path());
    current.store(fresh, sim::RunResult{});
    runner::ResultCache old_epoch(dir.path(), "ancient-epoch");
    old_epoch.store(stale, sim::RunResult{});
    const std::string litter_path =
        dir.path() + "/deadbeef.json.tmp.1234";
    {
        std::ofstream litter(litter_path);
        litter << "half-written";
    }
    // Orphaned litter is reaped only once it is older than the grace
    // window (a crashed writer's leavings), so backdate its mtime.
    fs::last_write_time(
        litter_path,
        fs::file_time_type::clock::now() -
            std::chrono::seconds(runner::kCacheTmpGraceSeconds + 5));

    runner::CacheGcStats stats = current.gc();
    EXPECT_EQ(stats.staleEvicted, 1u);
    EXPECT_EQ(stats.tmpRemoved, 1u);
    EXPECT_EQ(stats.lruEvicted, 0u);
    EXPECT_TRUE(current.load(fresh).has_value());
    EXPECT_FALSE(old_epoch.load(stale).has_value());
}

TEST(ResultCache, GcSparesFreshTempFiles)
{
    // A temp file younger than the grace window belongs to a live
    // writer racing the gc pass: reaping it would yank a half-written
    // entry out from under the rename. Regression test — gc used to
    // remove ALL temp litter unconditionally.
    TempDir dir("cache-gc-fresh-tmp");
    runner::ResultCache cache(dir.path());
    const std::string fresh_tmp =
        dir.path() + "/cafecafe.json.tmp.9999";
    {
        std::ofstream litter(fresh_tmp);
        litter << "being-written-right-now";
    }

    runner::CacheGcStats stats = cache.gc();
    EXPECT_EQ(stats.tmpRemoved, 0u);
    EXPECT_TRUE(fs::exists(fresh_tmp));
}

TEST(SnapshotCache, DisabledCacheIsInert)
{
    runner::SnapshotCache cache("");
    EXPECT_FALSE(cache.enabled());
    cache.store("group", 1, "body");
    bool rejected = true;
    EXPECT_FALSE(cache.load("group", 1, &rejected).has_value());
    EXPECT_FALSE(rejected);
    EXPECT_EQ(cache.gc().scanned, 0u);
}

TEST(SnapshotCache, StoreLoadRoundTrip)
{
    TempDir dir("snap-roundtrip");
    runner::SnapshotCache cache(dir.path());
    const std::string body("warmed-simulator-state\0with-nul", 31);

    bool rejected = true;
    EXPECT_FALSE(cache.load("groupA", 42, &rejected).has_value());
    EXPECT_FALSE(rejected) << "absent file is a plain miss";

    cache.store("groupA", 42, body);
    std::optional<std::string> loaded = cache.load("groupA", 42, &rejected);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, body);
    EXPECT_FALSE(rejected);

    // Same key, different input identity: the frame exists but must not
    // bind warmed state to the wrong input — a reject, not a hit.
    EXPECT_FALSE(cache.load("groupA", 43, &rejected).has_value());
    EXPECT_TRUE(rejected);

    // Different key hashes to a different file: plain miss.
    EXPECT_FALSE(cache.load("groupB", 42, &rejected).has_value());
    EXPECT_FALSE(rejected);

    // Overwrites replace atomically.
    cache.store("groupA", 42, "second-body");
    loaded = cache.load("groupA", 42);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, "second-body");
}

TEST(SnapshotCache, RejectsTamperedFrames)
{
    TempDir dir("snap-tamper");
    runner::SnapshotCache cache(dir.path());
    cache.store("group", 7, "snapshot-body-bytes");
    const std::string path = cache.pathFor("group");
    ASSERT_TRUE(fs::exists(path));

    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string pristine = buf.str();
    in.close();

    const auto rewrite = [&](const std::string &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), std::streamsize(bytes.size()));
    };
    bool rejected = false;

    // Truncated mid-frame.
    rewrite(pristine.substr(0, pristine.size() / 2));
    EXPECT_FALSE(cache.load("group", 7, &rejected).has_value());
    EXPECT_TRUE(rejected);

    // Flipped body byte: checksum mismatch.
    std::string corrupt = pristine;
    corrupt.back() ^= 0x5a;
    rewrite(corrupt);
    EXPECT_FALSE(cache.load("group", 7, &rejected).has_value());
    EXPECT_TRUE(rejected);

    // Wrong magic.
    corrupt = pristine;
    corrupt[0] = 'X';
    rewrite(corrupt);
    EXPECT_FALSE(cache.load("group", 7, &rejected).has_value());
    EXPECT_TRUE(rejected);

    // A file written under a different epoch (old binary's cache) is
    // rejected by the current epoch and vice versa.
    runner::SnapshotCache old_epoch(dir.path(), "ancient-epoch");
    old_epoch.store("group", 7, "snapshot-body-bytes");
    EXPECT_FALSE(cache.load("group", 7, &rejected).has_value());
    EXPECT_TRUE(rejected);

    // Restore a valid frame: loads again.
    rewrite(pristine);
    EXPECT_TRUE(cache.load("group", 7, &rejected).has_value());
    EXPECT_FALSE(rejected);
}

TEST(SnapshotCache, GcReapsInvalidEntriesAndAppliesLruBudget)
{
    TempDir dir("snap-gc");
    runner::SnapshotCache cache(dir.path());
    cache.store("keep-me", 1, std::string(64, 'a'));
    // An entry from a previous epoch fails frame validation -> evicted.
    runner::SnapshotCache old_epoch(dir.path(), "ancient-epoch");
    old_epoch.store("stale-entry", 2, std::string(64, 'b'));
    {
        std::ofstream junk(dir.path() + "/feedface.snap",
                           std::ios::binary);
        junk << "not a snapshot frame";
    }

    runner::CacheGcStats stats = cache.gc();
    EXPECT_EQ(stats.scanned, 3u);
    EXPECT_EQ(stats.staleEvicted, 2u);
    EXPECT_EQ(stats.lruEvicted, 0u);
    EXPECT_TRUE(cache.load("keep-me", 1).has_value());

    // LRU budget: store several entries, age the older ones, then gc to
    // a budget that only fits the newest.
    for (int i = 0; i < 4; i++) {
        const std::string key = "entry-" + std::to_string(i);
        cache.store(key, 1, std::string(512, char('a' + i)));
        if (i < 3)
            fs::last_write_time(cache.pathFor(key),
                                fs::file_time_type::clock::now() -
                                    std::chrono::seconds(100 - i));
    }
    stats = cache.gc(1024);
    EXPECT_GE(stats.lruEvicted, 1u);
    EXPECT_LE(stats.bytesAfter, 1024u);
    EXPECT_TRUE(cache.load("entry-3", 1).has_value())
        << "most recently written entry survives the LRU pass";
}

TEST(ResultCache, GcEnforcesLruSizeBudget)
{
    TempDir dir("cache-gc-lru");
    runner::ResultCache cache(dir.path());

    std::vector<Job> jobs;
    for (unsigned len : {8u, 16u, 24u, 32u})
        jobs.push_back(Job{"BFS", SystemMode::AccelSpec, len, 1, 1});
    for (const Job &job : jobs)
        cache.store(job, sim::RunResult{});

    // Entries are near-identical in size; budget for roughly one.
    const std::uint64_t one_entry =
        fs::file_size(cache.pathFor(jobs[0]));

    // Touch the first-stored entry so it is the most recently used.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cache.load(jobs[0]).has_value());

    runner::CacheGcStats stats = cache.gc(one_entry + one_entry / 2);
    EXPECT_EQ(stats.lruEvicted, 3u);
    EXPECT_LE(stats.bytesAfter, one_entry + one_entry / 2);
    EXPECT_TRUE(cache.load(jobs[0]).has_value())
        << "LRU evicted the most recently used entry";
    EXPECT_FALSE(cache.load(jobs[1]).has_value());
    EXPECT_FALSE(cache.load(jobs[2]).has_value());
    EXPECT_FALSE(cache.load(jobs[3]).has_value());

    // Unlimited budget (0) never LRU-evicts.
    cache.store(jobs[1], sim::RunResult{});
    EXPECT_EQ(cache.gc(0).lruEvicted, 0u);
    EXPECT_TRUE(cache.load(jobs[1]).has_value());
}

// --- Interrupt cleanup registry ------------------------------------------

TEST(Interrupt, RegistryUnlinksActiveSlotsOnly)
{
    TempDir dir("interrupt-reg");
    const std::string keep = dir.path() + "/keep.tmp";
    const std::string drop = dir.path() + "/drop.tmp";
    std::ofstream(keep) << "keep";
    std::ofstream(drop) << "drop";

    int keep_slot = interrupt::registerCleanupFile(keep.c_str());
    int drop_slot = interrupt::registerCleanupFile(drop.c_str());
    ASSERT_GE(keep_slot, 0);
    ASSERT_GE(drop_slot, 0);
    interrupt::unregisterCleanupFile(keep_slot);

    EXPECT_EQ(interrupt::cleanupRegisteredFiles(), 1u);
    EXPECT_TRUE(fs::exists(keep));
    EXPECT_FALSE(fs::exists(drop));
    interrupt::unregisterCleanupFile(drop_slot);

    // Oversized paths are rejected, not truncated.
    const std::string huge(interrupt::kMaxCleanupPath + 10, 'x');
    EXPECT_LT(interrupt::registerCleanupFile(huge.c_str()), 0);
    EXPECT_EQ(interrupt::exitCodeFor(SIGINT), 130);
    EXPECT_EQ(interrupt::exitCodeFor(SIGTERM), 143);
}

TEST(Interrupt, SignalHandlerUnlinksAndExitsWithSignalCode)
{
    TempDir dir("interrupt-sig");
    const std::string victim = dir.path() + "/halfwritten.tmp";
    std::ofstream(victim) << "partial cache entry";

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm the handler exactly as cmdRun/cmdSweep do, then
        // deliver the signal to ourselves.
        interrupt::installCleanupSignalHandlers();
        interrupt::registerCleanupFile(victim.c_str());
        raise(SIGINT);
        _exit(99);    // not reached: the handler _exits first
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);
    EXPECT_FALSE(fs::exists(victim));
}

TEST(Runner, ForkGroupSnapshotKeyIgnoresJobListOrder)
{
    // The warmed-snapshot cache key is derived from the fork group's
    // representative job, which used to be whichever group member the
    // caller listed first — so reordering a job list silently turned
    // cache hits into fresh warmups. Misses are now partitioned in
    // canonical (hash-sorted) order, so a reversed job list must reuse
    // the snapshot the original order persisted.
    TempDir tmp("orderkey");
    std::vector<Job> jobs = {
        {"bfs", SystemMode::MappingOnly, 16, 1, 1, 3000},
        {"bfs", SystemMode::AccelNoSpec, 16, 1, 1, 3000},
        {"bfs", SystemMode::AccelSpec, 16, 1, 1, 3000},
    };

    runner::RunnerOptions opts;
    opts.jobs = 1;
    opts.snapshotCacheDir = tmp.path();

    runner::Runner first(opts);
    first.runAll(jobs);
    EXPECT_EQ(first.forkStats().warmups.load(), 1u);
    EXPECT_EQ(first.forkStats().snapshotMisses.load(), 1u);

    std::reverse(jobs.begin(), jobs.end());
    runner::Runner second(opts);
    const auto outcomes = second.runAll(jobs);
    EXPECT_EQ(second.forkStats().snapshotHits.load(), 1u);
    EXPECT_EQ(second.forkStats().warmups.load(), 0u);
    for (const auto &outcome : outcomes)
        EXPECT_TRUE(outcome.result.functionallyCorrect);
}
