/**
 * @file
 * Unit tests for the DynaSpAM core: T-Cache, configuration cache,
 * predicted-path walker and mapping session.
 */

#include <gtest/gtest.h>

#include "core/configcache.hh"
#include "core/session.hh"
#include "core/tcache.hh"
#include "core/walker.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/functional_mem.hh"
#include "ooo/bpred.hh"

using namespace dynaspam;
using namespace dynaspam::core;
using isa::intReg;

// --- T-Cache ---------------------------------------------------------------

TEST(TCache, ColdTracesAreNotHot)
{
    TCache tc;
    EXPECT_FALSE(tc.isHot(makeTraceKey(10, true, true, false)));
}

TEST(TCache, RepeatedTripleBecomesHot)
{
    TCacheParams params;
    params.hotThreshold = 4;
    TCache tc(params);

    // Same three branches committing repeatedly (a loop with 3 branches).
    for (int i = 0; i < 10; i++) {
        tc.commitBranch(10, true);
        tc.commitBranch(20, false);
        tc.commitBranch(30, true);
    }
    // Sliding window: one of the trained keys is (10, T, F, T).
    EXPECT_TRUE(tc.isHot(makeTraceKey(10, true, false, true)));
}

TEST(TCache, DifferentOutcomesAreDifferentTraces)
{
    TCacheParams params;
    params.hotThreshold = 4;
    TCache tc(params);
    for (int i = 0; i < 10; i++) {
        tc.commitBranch(10, true);
        tc.commitBranch(20, false);
        tc.commitBranch(30, true);
    }
    EXPECT_FALSE(tc.isHot(makeTraceKey(10, false, false, true)));
    EXPECT_FALSE(tc.isHot(makeTraceKey(10, true, true, true)));
}

TEST(TCache, PeriodicClearingResetsHotness)
{
    TCacheParams params;
    params.hotThreshold = 4;
    params.clearInterval = 50;
    TCache tc(params);
    for (int i = 0; i < 10; i++) {
        tc.commitBranch(10, true);
        tc.commitBranch(20, false);
        tc.commitBranch(30, true);
    }
    ASSERT_TRUE(tc.isHot(makeTraceKey(10, true, false, true)));
    // Push enough unrelated commits to cross the clear interval.
    for (int i = 0; i < 60; i++)
        tc.commitBranch(100 + i, i % 2 == 0);
    EXPECT_FALSE(tc.isHot(makeTraceKey(10, true, false, true)));
    EXPECT_GE(tc.clears(), 1u);
}

TEST(TCache, BadThresholdIsFatal)
{
    TCacheParams params;
    params.counterBits = 2;
    params.hotThreshold = 10;   // > 2-bit max
    EXPECT_THROW(TCache{params}, FatalError);
}

// --- Configuration cache ----------------------------------------------------

namespace
{

fabric::FabricConfig
dummyConfig(std::uint64_t key)
{
    fabric::FabricConfig config;
    config.key = key;
    config.numRecords = 4;
    fabric::MappedInst mi;
    mi.pc = 1;
    config.insts.push_back(mi);
    config.stripesUsed = 1;
    return config;
}

} // namespace

TEST(ConfigCache, InsertAndFind)
{
    ConfigCache cc;
    EXPECT_EQ(cc.find(42), nullptr);
    cc.insert(42, dummyConfig(42));
    ASSERT_NE(cc.find(42), nullptr);
    EXPECT_EQ(cc.find(42)->key, 42u);
}

TEST(ConfigCache, CounterGatesOffload)
{
    ConfigCacheParams params;
    params.offloadThreshold = 4;
    ConfigCache cc(params);
    cc.insert(42, dummyConfig(42));
    EXPECT_FALSE(cc.readyToOffload(42));
    EXPECT_FALSE(cc.recordPrediction(42));  // 1
    EXPECT_FALSE(cc.recordPrediction(42));  // 2
    EXPECT_FALSE(cc.recordPrediction(42));  // 3
    EXPECT_TRUE(cc.recordPrediction(42));   // 4 -> threshold
    EXPECT_TRUE(cc.readyToOffload(42));
}

TEST(ConfigCache, DirectMappedEviction)
{
    ConfigCacheParams params;
    params.entries = 4;
    ConfigCache cc(params);
    cc.insert(1, dummyConfig(1));
    // A colliding key evicts: with 4 entries, keys mapping to the same
    // index collide. Find one.
    std::uint64_t other = 1;
    for (std::uint64_t k = 2; k < 200; k++) {
        cc.insert(k, dummyConfig(k));
        if (cc.find(1) == nullptr) {
            other = k;
            break;
        }
    }
    ASSERT_NE(other, 1u) << "expected some key to collide with key 1";
    EXPECT_NE(cc.find(other), nullptr);
    EXPECT_GE(cc.evictions(), 1u);
}

TEST(ConfigCache, PredictionOnMissingKeyIsFalse)
{
    ConfigCache cc;
    EXPECT_FALSE(cc.recordPrediction(999));
}

// --- Walker -----------------------------------------------------------------

namespace
{

/** Loop with 3 conditional branches per iteration. */
isa::Program
threeBranchLoop()
{
    isa::ProgramBuilder b("walk3");
    b.movi(intReg(1), 0);        // i
    b.movi(intReg(2), 100);      // trips
    b.movi(intReg(7), 0);        // zero
    b.label("head");
    b.addi(intReg(3), intReg(1), 0);
    b.beq(intReg(7), intReg(2), "head2");   // never taken (r7=0,r2=100)
    b.addi(intReg(4), intReg(3), 1);
    b.label("head2");
    b.beq(intReg(7), intReg(2), "head3");   // never taken
    b.addi(intReg(5), intReg(4), 1);
    b.label("head3");
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");    // taken until the end
    b.halt();
    return b.build();
}

/** Train the predictor so that the loop path predicts correctly. */
void
trainPredictor(const isa::Program &prog, ooo::BranchPredictor &bp,
               int iterations = 50)
{
    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(prog);
    isa::Executor::run(prog, memory, &trace);
    int seen = 0;
    for (SeqNum i = 0; i < trace.size() && seen < iterations * 3; i++) {
        const auto &rec = trace[i];
        const auto &inst = prog.inst(rec.pc);
        if (inst.isCondBranch()) {
            auto pred = bp.predict(rec.pc, inst);
            bool wrong = pred.taken != rec.taken;
            bp.update(rec.pc, inst, rec.taken, rec.nextPc, wrong);
            seen++;
        }
    }
}

} // namespace

TEST(Walker, FollowsTrainedLoopPath)
{
    isa::Program prog = threeBranchLoop();
    ooo::BranchPredictor bp;
    trainPredictor(prog, bp);

    // Anchor at the first branch of the loop body (pc 4: the first beq).
    TraceWalk walk = walkPredictedPath(prog, bp, 4, 32);
    ASSERT_TRUE(walk.valid);
    EXPECT_EQ(walk.pcs.front(), 4u);
    EXPECT_EQ(walk.numCondBranches, 3u);
    // Extent: branch1(4), add(5), branch2(6), add(7), addi(8), blt(9),
    // then next iteration up to (not including) the 4th branch at pc 4:
    // addi(3) ... wait, next iteration starts at head (pc 3).
    // The 4th conditional branch ends the extent.
    for (std::size_t i = 1; i < walk.pcs.size(); i++)
        EXPECT_NE(walk.pcs[i], walk.pcs.front())
            << "extent must stop before the anchor branch repeats";
    // Key encodes predicted outcomes (not-taken, not-taken, taken).
    EXPECT_EQ(walk.key, makeTraceKey(4, false, false, true));
}

TEST(Walker, InvalidAnchorsRejected)
{
    isa::Program prog = threeBranchLoop();
    ooo::BranchPredictor bp;
    EXPECT_FALSE(walkPredictedPath(prog, bp, 0, 32).valid);   // movi
    EXPECT_FALSE(walkPredictedPath(prog, bp, 9999, 32).valid);
}

TEST(Walker, HaltInsidePathInvalidatesTrace)
{
    isa::ProgramBuilder b("halts");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 10);
    b.label("head");
    b.blt(intReg(1), intReg(2), "head2");  // cond branch anchor
    b.label("head2");
    b.halt();
    isa::Program prog = b.build();
    ooo::BranchPredictor bp;
    EXPECT_FALSE(walkPredictedPath(prog, bp, 2, 32).valid);
}

TEST(Walker, RespectsLengthCap)
{
    // Loop body much longer than the cap.
    isa::ProgramBuilder b("long");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 50);
    b.label("head");
    b.beq(intReg(1), intReg(2), "out");     // branch 1 (not taken)
    for (int i = 0; i < 60; i++)
        b.addi(intReg(3 + (i % 8)), intReg(3 + ((i + 1) % 8)), 1);
    b.beq(intReg(1), intReg(2), "out");     // branch 2
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");    // branch 3
    b.label("out");
    b.halt();
    isa::Program prog = b.build();

    ooo::BranchPredictor bp;
    trainPredictor(prog, bp, 30);
    TraceWalk walk = walkPredictedPath(prog, bp, 2, 32);
    if (walk.valid) {
        EXPECT_LE(walk.pcs.size(), 32u);
    }
}

// --- Mapping session ---------------------------------------------------------

namespace
{

/** Make a DynInst sufficient for session calls. */
ooo::DynInst
makeDyn(SeqNum trace_idx, const isa::StaticInst *inst, RegIndex s1p,
        RegIndex s2p, RegIndex dp)
{
    ooo::DynInst d;
    d.traceIdx = trace_idx;
    d.inst = inst;
    d.pc = 0;
    d.src1Phys = s1p;
    d.src2Phys = s2p;
    d.destPhys = dp;
    d.mappingInst = true;
    return d;
}

} // namespace

class MappingSessionTest : public ::testing::Test
{
  protected:
    MappingSessionTest() : session(params, 100, 4, 0xabc)
    {
        // Static insts for the session to inspect (arch regs).
        add1.op = isa::Opcode::ADD;
        add1.dest = intReg(3);
        add1.src1 = intReg(1);
        add1.src2 = intReg(2);
        add2 = add1;
        add2.dest = intReg(4);
        add2.src1 = intReg(3);
        add2.src2 = intReg(1);
    }

    fabric::FabricParams params;
    MappingSession session;
    isa::StaticInst add1, add2;
};

TEST_F(MappingSessionTest, TwoLiveInsScoreThreeOnFirstStripe)
{
    auto d = makeDyn(100, &add1, 200, 201, 210);
    EXPECT_EQ(session.priorityScore(0, d), 3);
}

TEST_F(MappingSessionTest, TwoLiveInsInfeasibleBeyondFirstStripe)
{
    auto d0 = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, d0, 100);
    session.advanceFrontier();  // frontier now stripe 1
    auto d1 = makeDyn(101, &add2, 202, 203, 211);
    EXPECT_EQ(session.priorityScore(1, d1), -1)
        << "two live-ins need two input ports, only stripe 0 has them";
}

TEST_F(MappingSessionTest, ReuseFromPassRegistersScoresTwo)
{
    // Producer on stripe 0 writes phys 210; after advance, a consumer
    // reading phys 210 twice gets full reuse (priority 2).
    auto producer = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, producer, 100);
    session.advanceFrontier();

    isa::StaticInst use;
    use.op = isa::Opcode::ADD;
    use.dest = intReg(5);
    use.src1 = intReg(3);
    use.src2 = intReg(3);
    auto consumer = makeDyn(101, &use, 210, 210, 211);
    EXPECT_EQ(session.priorityScore(0, consumer), 2);
}

TEST_F(MappingSessionTest, MixedReuseAndLiveInScoresOne)
{
    auto producer = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, producer, 100);
    session.advanceFrontier();

    // One operand from pass regs (210), one live-in (299).
    auto consumer = makeDyn(101, &add2, 210, 299, 211);
    EXPECT_EQ(session.priorityScore(0, consumer), 1);
}

TEST_F(MappingSessionTest, AllocatedPeIsVetoed)
{
    auto d = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, d, 100);
    auto d2 = makeDyn(101, &add2, 202, 203, 211);
    EXPECT_EQ(session.priorityScore(0, d2), -1);
    EXPECT_GE(session.priorityScore(1, d2), 0);
}

TEST_F(MappingSessionTest, SameStripeProducerIsInfeasible)
{
    auto producer = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, producer, 100);
    // Consumer of phys 210 while frontier is still stripe 0.
    auto consumer = makeDyn(101, &add2, 210, 200, 211);
    EXPECT_EQ(session.priorityScore(1, consumer), -1)
        << "intra-stripe communication is not possible";
}

TEST_F(MappingSessionTest, FrontierOverrunFailsSchedule)
{
    for (unsigned i = 0; i <= params.numStripes; i++)
        session.advanceFrontier();
    EXPECT_TRUE(session.failed());
    // After failure the session scores everything neutrally.
    auto d = makeDyn(100, &add1, 200, 201, 210);
    EXPECT_EQ(session.priorityScore(0, d), 0);
}

TEST_F(MappingSessionTest, BuildConfigRequiresAllPlacements)
{
    mem::FunctionalMemory memory;
    isa::ProgramBuilder b;
    b.movi(intReg(1), 1);
    b.halt();
    isa::Program prog = b.build();
    isa::DynamicTrace trace(prog);
    isa::Executor::run(prog, memory, &trace);

    // Only 1 of 4 records placed: no config.
    auto d = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, d, 100);
    EXPECT_FALSE(session.buildConfig(trace).has_value());
}

TEST_F(MappingSessionTest, RoutedOperandCountsHops)
{
    // Producer at stripe 0; consumer at stripe 3 after value propagation
    // stops covering it... Force routing by killing propagation: values
    // propagate automatically, so route distance shows as reuse instead.
    // Here we verify the hop statistic stays zero under pure reuse.
    auto producer = makeDyn(100, &add1, 200, 201, 210);
    session.recordSelection(0, producer, 100);
    session.advanceFrontier();
    isa::StaticInst use = add2;
    auto consumer = makeDyn(101, &use, 210, 299, 211);
    session.recordSelection(0, consumer, 100);
    EXPECT_EQ(session.totalHops(), 0u);
    EXPECT_GE(session.reuseHits(), 1u);
}
