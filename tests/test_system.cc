/**
 * @file
 * End-to-end tests of the full DynaSpAM system: trace detection, mapping
 * and offloading on hot loops, across the named configurations.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "sim/system.hh"

using namespace dynaspam;
using namespace dynaspam::sim;
using isa::fpReg;
using isa::intReg;

namespace
{

/**
 * A hot, well-predicted loop with three conditional branches per
 * iteration (the shape DynaSpAM's 3-branch traces are built for) and a
 * dataflow body: a multiply-accumulate over memory.
 */
isa::Program
hotLoop(int trips = 2000)
{
    isa::ProgramBuilder b("hotloop");
    b.movi(intReg(1), 0);           // i
    b.movi(intReg(2), trips);       // n
    b.movi(intReg(3), 0x10000);     // src array
    b.movi(intReg(4), 0x40000);     // dst array
    b.movi(intReg(7), 0);           // never-equal guard
    b.movi(intReg(8), 0);           // acc
    b.label("head");
    b.beq(intReg(7), intReg(2), "skip1");    // branch 1, never taken
    b.ld(intReg(9), intReg(3), 0);           // load a[i]
    b.label("skip1");
    b.beq(intReg(7), intReg(2), "skip2");    // branch 2, never taken
    b.mul(intReg(10), intReg(9), intReg(9));
    b.add(intReg(8), intReg(8), intReg(10));
    b.st(intReg(4), intReg(8), 0);           // store acc
    b.label("skip2");
    b.addi(intReg(3), intReg(3), 8);
    b.addi(intReg(4), intReg(4), 8);
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");     // branch 3, taken
    b.halt();
    return b.build();
}

/**
 * A wide-bodied hot loop: ~20 instructions per iteration with several
 * independent FP chains. The host pipeline is fetch/issue bound here
 * (taken branch each iteration, 8-wide front end), while the fabric
 * pipelines invocations at the short induction-variable II — the
 * scenario DynaSpAM accelerates.
 */
isa::Program
wideLoop(int trips = 2000)
{
    isa::ProgramBuilder b("wideloop");
    b.movi(intReg(1), 0);           // i
    b.movi(intReg(2), trips);
    b.movi(intReg(3), 0x10000);     // a[]
    b.movi(intReg(4), 0x80000);     // b[]
    b.movi(intReg(5), 0x100000);    // out[]
    b.movi(intReg(7), 0);
    b.label("head");
    b.beq(intReg(7), intReg(2), "s1");       // branch 1, never taken
    b.fld(fpReg(1), intReg(3), 0);
    b.fld(fpReg(2), intReg(4), 0);
    b.fmul(fpReg(3), fpReg(1), fpReg(2));
    b.label("s1");
    b.beq(intReg(7), intReg(2), "s2");       // branch 2, never taken
    b.fld(fpReg(4), intReg(3), 8);
    b.fld(fpReg(5), intReg(4), 8);
    b.fmul(fpReg(6), fpReg(4), fpReg(5));
    b.fadd(fpReg(7), fpReg(3), fpReg(6));
    b.fst(intReg(5), fpReg(7), 0);
    b.label("s2");
    b.addi(intReg(10), intReg(1), 7);
    b.shli(intReg(11), intReg(10), 1);
    b.xor_(intReg(12), intReg(11), intReg(10));
    b.addi(intReg(3), intReg(3), 16);
    b.addi(intReg(4), intReg(4), 16);
    b.addi(intReg(5), intReg(5), 8);
    b.addi(intReg(1), intReg(1), 1);
    b.blt(intReg(1), intReg(2), "head");     // branch 3, taken
    b.halt();
    return b.build();
}

} // namespace

TEST(SystemBaseline, RunsToCompletion)
{
    isa::Program p = hotLoop(500);
    System sys(SystemConfig::make(SystemMode::BaselineOoo));
    auto r = sys.run(p);
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.instsFabric, 0u);
    EXPECT_EQ(r.instsMapping, 0u);
    EXPECT_EQ(r.instsHost, r.instsTotal);
}

TEST(SystemDetection, HotLoopGetsDetectedAndMapped)
{
    isa::Program p = hotLoop(2000);
    System sys(SystemConfig::make(SystemMode::MappingOnly));
    auto r = sys.run(p);
    EXPECT_GE(r.dynaspam.mappingsStarted, 1u);
    EXPECT_GE(r.dynaspam.mappingsCompleted, 1u);
    EXPECT_GE(r.dynaspam.distinctMappedTraces, 1u);
    // Mapping-only never offloads.
    EXPECT_EQ(r.instsFabric, 0u);
    EXPECT_GT(r.instsMapping, 0u);
}

TEST(SystemDetection, MappingOverheadIsSmall)
{
    isa::Program p = hotLoop(2000);
    System base(SystemConfig::make(SystemMode::BaselineOoo));
    System mapo(SystemConfig::make(SystemMode::MappingOnly));
    auto rb = base.run(p);
    auto rm = mapo.run(p);
    // Paper: mapping overhead below 3%; allow a bit of slack here.
    EXPECT_LT(double(rm.cycles), double(rb.cycles) * 1.06)
        << "mapping-only should cost only a few percent over baseline";
}

TEST(SystemOffload, HotLoopExecutesOnFabric)
{
    isa::Program p = hotLoop(2000);
    System sys(SystemConfig::make(SystemMode::AccelSpec));
    auto r = sys.run(p);
    EXPECT_GE(r.dynaspam.invocationsCommitted, 10u);
    EXPECT_GT(r.instsFabric, r.instsTotal / 4)
        << "the hot loop should mostly run on the fabric";
    EXPECT_TRUE(r.functionallyCorrect);
}

TEST(SystemOffload, WideBodyLoopAccelerates)
{
    isa::Program p = wideLoop(3000);
    System base(SystemConfig::make(SystemMode::BaselineOoo));
    System accel(SystemConfig::make(SystemMode::AccelSpec));
    auto rb = base.run(p);
    auto ra = accel.run(p);
    EXPECT_LT(ra.cycles, rb.cycles)
        << "fetch/issue-bound loop should beat the host pipeline";
}

TEST(SystemOffload, ChainBoundLoopAtLeastTiesBaseline)
{
    // The narrow accumulator loop is bound by a serial dependence chain
    // on both engines: the fabric should be within a few percent.
    isa::Program p = hotLoop(4000);
    System base(SystemConfig::make(SystemMode::BaselineOoo));
    System accel(SystemConfig::make(SystemMode::AccelSpec));
    auto rb = base.run(p);
    auto ra = accel.run(p);
    EXPECT_LT(double(ra.cycles), double(rb.cycles) * 1.05);
}

TEST(SystemOffload, EnergyDropsWithAcceleration)
{
    isa::Program p = hotLoop(4000);
    System base(SystemConfig::make(SystemMode::BaselineOoo));
    System accel(SystemConfig::make(SystemMode::AccelSpec));
    auto rb = base.run(p);
    auto ra = accel.run(p);
    EXPECT_LT(ra.energyTotal(), rb.energyTotal());
    // The savings come from the front end and scheduling.
    EXPECT_LT(ra.energy.component.at("Fetch"),
              rb.energy.component.at("Fetch"));
    EXPECT_LT(ra.energy.component.at("InstSchedule"),
              rb.energy.component.at("InstSchedule"));
    // The fabric consumes energy only in the accelerated system.
    EXPECT_GT(ra.energy.component.at("Fabric"), 0.0);
    EXPECT_EQ(rb.energy.component.at("Fabric"), 0.0);
}

TEST(SystemOffload, NoSpecModeStillWorks)
{
    isa::Program p = hotLoop(2000);
    System sys(SystemConfig::make(SystemMode::AccelNoSpec));
    auto r = sys.run(p);
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_GE(r.dynaspam.invocationsCommitted, 1u);
}

TEST(SystemOffload, NaiveMapperStillProducesConfigs)
{
    isa::Program p = hotLoop(2000);
    System sys(SystemConfig::make(SystemMode::AccelNaive));
    auto r = sys.run(p);
    EXPECT_TRUE(r.functionallyCorrect);
    // The naive mapper should usually manage this simple trace.
    EXPECT_GE(r.dynaspam.mappingsCompleted, 1u);
}

TEST(SystemOffload, TraceLengthSweepIsMonotoneInDetection)
{
    isa::Program p = hotLoop(2000);
    for (unsigned len : {16u, 24u, 32u, 40u}) {
        System sys(SystemConfig::make(SystemMode::AccelSpec, len));
        auto r = sys.run(p);
        EXPECT_TRUE(r.functionallyCorrect) << "trace length " << len;
    }
}

TEST(SystemOffload, MultiFabricRunsAndTracksLifetime)
{
    isa::Program p = hotLoop(2000);
    for (unsigned fabrics : {1u, 2u, 4u}) {
        System sys(SystemConfig::make(SystemMode::AccelSpec, 32, fabrics));
        auto r = sys.run(p);
        EXPECT_TRUE(r.functionallyCorrect) << fabrics << " fabrics";
        if (r.dynaspam.invocationsCommitted > 0) {
            EXPECT_GT(r.dynaspam.avgConfigLifetime(), 0.0);
        }
    }
}

TEST(SystemOffload, InstructionAccountingIsConsistent)
{
    isa::Program p = hotLoop(1500);
    System sys(SystemConfig::make(SystemMode::AccelSpec));
    auto r = sys.run(p);
    EXPECT_EQ(r.instsHost + r.instsMapping + r.instsFabric, r.instsTotal);
}
