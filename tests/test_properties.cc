/**
 * @file
 * Property-based cross-product tests: every workload under every
 * DynaSpAM configuration must satisfy the simulator's global invariants —
 * functional correctness against the golden model, exact instruction
 * accounting, consistent framework statistics, and physically sensible
 * energy numbers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "isa/executor.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace dynaspam;
using namespace dynaspam::sim;

namespace
{

using Param = std::tuple<std::string, SystemMode>;

std::vector<Param>
allCombinations()
{
    std::vector<Param> out;
    for (const auto &name : workloads::allWorkloadNames()) {
        for (SystemMode mode :
             {SystemMode::BaselineOoo, SystemMode::MappingOnly,
              SystemMode::AccelSpec, SystemMode::AccelNoSpec,
              SystemMode::AccelNaive}) {
            out.emplace_back(name, mode);
        }
    }
    return out;
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string s = std::get<0>(info.param);
    s += "_";
    s += modeName(std::get<1>(info.param));
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

} // namespace

class SystemInvariants : public ::testing::TestWithParam<Param>
{
  protected:
    RunResult
    runIt()
    {
        auto [name, mode] = GetParam();
        workloads::Workload wl = workloads::makeWorkload(name);
        System system(SystemConfig::make(mode));
        RunResult r = system.run(wl.program, wl.initialMemory);

        // Golden-model check on a fresh functional run (the timing model
        // consumes the same oracle, so this certifies the whole stack).
        mem::FunctionalMemory memory = wl.initialMemory;
        isa::Executor::run(wl.program, memory);
        EXPECT_TRUE(wl.validate(memory)) << name;
        return r;
    }
};

TEST_P(SystemInvariants, CompletesAndAccountingBalances)
{
    RunResult r = runIt();
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_GT(r.cycles, 0u);
    // Every dynamic instruction is attributed to exactly one engine.
    EXPECT_EQ(r.instsHost + r.instsMapping + r.instsFabric, r.instsTotal);
    // IPC stays within the physical bounds of the machine.
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 16.0);
}

TEST_P(SystemInvariants, FrameworkStatsAreConsistent)
{
    auto [name, mode] = GetParam();
    RunResult r = runIt();

    const auto &d = r.dynaspam;
    if (mode == SystemMode::BaselineOoo) {
        EXPECT_EQ(d.mappingsStarted, 0u);
        EXPECT_EQ(r.instsFabric, 0u);
        EXPECT_EQ(r.instsMapping, 0u);
        return;
    }
    EXPECT_LE(d.mappingsCompleted + d.mappingsAborted +
                  d.mappingsDiscarded,
              d.mappingsStarted + 1);
    EXPECT_GE(d.mappingsStarted,
              d.mappingsCompleted + d.mappingsDiscarded);
    if (mode == SystemMode::MappingOnly) {
        EXPECT_EQ(d.invocationsCommitted, 0u);
        EXPECT_EQ(r.instsFabric, 0u);
    }
    if (r.instsFabric > 0) {
        EXPECT_GT(d.invocationsCommitted, 0u);
        EXPECT_GT(d.distinctMappedTraces, 0u);
        EXPECT_GE(d.distinctMappedTraces, d.distinctOffloadedTraces);
    }
}

TEST_P(SystemInvariants, EnergyIsPhysical)
{
    auto [name, mode] = GetParam();
    RunResult r = runIt();
    EXPECT_GT(r.energyTotal(), 0.0);
    for (const auto &[comp, value] : r.energy.component)
        EXPECT_GE(value, 0.0) << comp;
    if (mode == SystemMode::BaselineOoo) {
        EXPECT_DOUBLE_EQ(r.energy.component.at("Fabric"), 0.0);
    } else if (r.instsFabric > 0) {
        EXPECT_GT(r.energy.component.at("Fabric"), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllModes, SystemInvariants,
                         ::testing::ValuesIn(allCombinations()),
                         paramName);
