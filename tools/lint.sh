#!/usr/bin/env bash
#
# Custom lint for the DynaSpAM simulator sources. Checks idioms the
# compiler cannot:
#
#   1. naked `new` / `delete` — ownership must go through
#      std::make_unique / std::make_shared / containers;
#   2. non-<random> RNG (rand, srand, random_shuffle) in simulator
#      code — simulation must be deterministic and seedable;
#   3. wall-clock nondeterminism (time(), gettimeofday, system_clock)
#      in runner/simulation paths — results must not depend on when
#      they were produced (steady_clock for durations is fine);
#   4. headers missing an include guard (#pragma once or a classic
#      #ifndef guard — this codebase uses #ifndef DYNASPAM_*).
#
# Exits nonzero if any check fails. Run from anywhere:
#   tools/lint.sh
#
# When clang-tidy and build/compile_commands.json are both available,
# also runs clang-tidy over the library sources (CI does this; local
# toolchains without clang-tidy just skip it).

set -u
cd "$(dirname "$0")/.."

fail=0

say() { printf '%s\n' "$*"; }

# Sources under lint. tests/ and bench/ are exempt from the RNG and
# clock rules (tests may seed ad hoc; benchmarks time themselves) but
# not from the ownership rule.
sim_sources=$(find src apps -name '*.cc' -o -name '*.hh' | sort)
all_sources=$(find src apps tests bench -name '*.cc' -o -name '*.hh' | sort)

# grep over the given files with // and /*...*/ comment text stripped,
# so prose like "the new stripe" cannot trip the code checks.
grep_code() {
    local pattern=$1
    shift
    local f
    for f in "$@"; do
        sed -e 's_"[^"]*"_""_g' -e 's_//.*__' -e 's_/\*.*\*/__' \
            -e '/^[[:space:]]*\*/d' "$f" \
            | grep -nE "$pattern" \
            | sed "s|^|$f:|"
    done
    return 0
}

# --- 1. naked new/delete ---------------------------------------------------
# `new` appearing outside comments; placement/make_* forms and words
# containing "new" (renew, newPc) do not match.
naked_new=$(grep_code '(^|[^[:alnum:]_."])new[[:space:]]+[[:alnum:]_:<]' \
                      $all_sources)
if [ -n "$naked_new" ]; then
    say "lint: naked 'new' (use std::make_unique/std::make_shared):"
    say "$naked_new"
    fail=1
fi

naked_delete=$(grep_code '(^|[^[:alnum:]_."])delete[[:space:]]+[[:alnum:]_*]' \
                         $all_sources \
               | grep -vE '=[[:space:]]*delete' || true)
if [ -n "$naked_delete" ]; then
    say "lint: naked 'delete':"
    say "$naked_delete"
    fail=1
fi

# --- 2. non-<random> RNG in simulator code --------------------------------
legacy_rng=$(grep_code '(^|[^[:alnum:]_.:])(rand|srand|random_shuffle)[[:space:]]*\(' \
                       $sim_sources)
if [ -n "$legacy_rng" ]; then
    say "lint: legacy RNG in simulator code (use <random> with a fixed seed):"
    say "$legacy_rng"
    fail=1
fi

# --- 3. wall-clock nondeterminism -----------------------------------------
wall_clock=$(grep_code '(gettimeofday|[^[:alnum:]_]time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)?[[:space:]]*\)|system_clock::now)' \
                       $sim_sources \
             | grep -vE 'steady_clock' || true)
if [ -n "$wall_clock" ]; then
    say "lint: wall-clock time in simulator/runner code (results must be"
    say "      reproducible; use steady_clock only for durations):"
    say "$wall_clock"
    fail=1
fi

# --- 4. headers without an include guard ----------------------------------
for hh in $(find src apps tests bench -name '*.hh' | sort); do
    if ! grep -qE '^#pragma once|^#ifndef [A-Z0-9_]+_HH' "$hh"; then
        say "lint: $hh: missing include guard (#pragma once or #ifndef ..._HH)"
        fail=1
    fi
done

# --- dynaspam-analyze (when built) ----------------------------------------
# The project's own checker subsumes checks 2-4 above with real token-
# level precision (and adds fd-raii, check-side-effects, and the
# coordinator blocking rules); the grep forms stay as a zero-setup
# fallback for trees with no build directory.
analyze_bin=""
for d in build build-analyze build-checked; do
    if [ -x "$d/tools/analyze/dynaspam-analyze" ]; then
        analyze_bin="$d/tools/analyze/dynaspam-analyze"
        break
    fi
done
if [ -n "$analyze_bin" ]; then
    say "lint: running dynaspam-analyze..."
    if ! "$analyze_bin" --root .; then
        fail=1
    fi
else
    say "lint: dynaspam-analyze not built; skipping (cmake --build build)"
fi

# --- clang-tidy (optional) -------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1 \
   && [ -f build/compile_commands.json ]; then
    say "lint: running clang-tidy..."
    if ! clang-tidy -p build --quiet $(find src -name '*.cc' | sort); then
        fail=1
    fi
else
    say "lint: clang-tidy or build/compile_commands.json not found; skipping"
fi

if [ "$fail" -eq 0 ]; then
    say "lint: OK"
fi
exit "$fail"
