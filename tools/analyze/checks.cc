/**
 * @file
 * The dynaspam-analyze checks (token engine).
 *
 * Each check owns a path domain and a rule the compiler cannot state:
 *
 *  - determinism:        no wall-clock / RNG / host-entropy calls in
 *                        the simulation core — a sweep's bytes must
 *                        depend only on the job spec;
 *  - epoll-blocking:     the coordinator's single event-loop thread
 *                        must never block without a timeout, or every
 *                        client and worker stalls with it;
 *  - fd-raii:            every descriptor a creation syscall returns
 *                        must immediately enter common::Fd ownership
 *                        (or carry an `analyze-owns:` comment naming
 *                        the owner that closes it);
 *  - check-side-effects: DYNASPAM_CHECK compiles to dead code in
 *                        normal builds, so side effects in its
 *                        arguments silently vanish;
 *  - header-hygiene:     `#ifndef DYNASPAM_<PATH>_HH` guards matching
 *                        the file path, no `using namespace` in
 *                        headers, and NO_THREAD_SAFETY_ANALYSIS
 *                        confined to common/mutex.hh.
 *
 * Escapes: a `// analyze-allow(<check>): reason` comment on the same
 * or preceding line suppresses that check there; fd-raii additionally
 * honors `// analyze-owns: <reason>` for descriptors intentionally
 * released into a non-Fd owner.
 */

#include "analysis.hh"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <sstream>

namespace dynaspam::analyze
{

namespace
{

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::string suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool
contains(std::initializer_list<const char *> set, const std::string &t)
{
    return std::any_of(set.begin(), set.end(),
                       [&](const char *s) { return t == s; });
}

/**
 * Call-vs-declaration heuristic for `name(`: in a declaration the
 * preceding token is the return type's last identifier (`void open(`,
 * `std::uint64_t time(`); in a call it is punctuation (`=`, `(`, `,`,
 * `::`, `;`) or the `return` keyword. Keywords lex as identifiers, so
 * `return` is special-cased.
 */
bool
looksLikeDeclaration(const std::vector<Token> &toks, std::size_t k)
{
    return k > 0 && toks[k - 1].isIdent() && !toks[k - 1].is("return");
}

/** @return index of the `)` matching the `(` at @p open, or npos. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); i++) {
        if (toks[i].is("("))
            depth++;
        else if (toks[i].is(")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

void
report(std::vector<Finding> &out, const char *check,
       const SourceFile &file, int line, std::string message)
{
    if (file.hasEscape(line, std::string("analyze-allow(") + check +
                                 ")"))
        return;
    out.push_back({check, file.relPath, line, std::move(message)});
}

// --- determinism -----------------------------------------------------------

bool
determinismDomain(const std::string &rel)
{
    // src/runner and the snapshot auditor joined the domain with the
    // forked-sweep execution path: warmup partitioning and snapshot
    // restore must reproduce straight-through bytes, so host entropy is
    // as forbidden there as in the cycle engine itself. src/explore
    // joined with the design-space engine: its frontier reports promise
    // byte-identity across thread counts and transports, which no
    // wall-clock or random source can be allowed to break.
    return startsWith(rel, "src/core/") || startsWith(rel, "src/ooo/") ||
           startsWith(rel, "src/fabric/") ||
           startsWith(rel, "src/memory/") || startsWith(rel, "src/sim/") ||
           startsWith(rel, "src/runner/") ||
           startsWith(rel, "src/explore/") ||
           startsWith(rel, "src/check/snapshot_audit");
}

void
determinismRun(const SourceFile &f, std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); i++) {
        if (!t[i].isIdent())
            continue;
        // Nondeterministic in any position (type or call).
        if (contains({"srand", "drand48", "lrand48", "mrand48",
                      "random_device", "random_shuffle",
                      "system_clock", "high_resolution_clock",
                      "steady_clock", "gettimeofday", "clock_gettime",
                      "localtime", "gmtime", "asctime", "getenv"},
                     t[i].text)) {
            report(out, "determinism", f, t[i].line,
                   "'" + t[i].text +
                       "' in the simulation core: results must depend "
                       "only on the job spec (seed RNG explicitly; "
                       "measure time in the runner, not the model)");
            continue;
        }
        // Nondeterministic only as a function call: these are common
        // identifiers (members named `time`, locals named `clock`).
        const bool isCall =
            i + 1 < t.size() && t[i + 1].is("(") &&
            !(i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"))) &&
            !looksLikeDeclaration(t, i);
        if (isCall && contains({"rand", "random", "time", "clock"},
                               t[i].text))
            report(out, "determinism", f, t[i].line,
                   "'" + t[i].text +
                       "()' in the simulation core: wall-clock/legacy "
                       "RNG makes sweep bytes irreproducible");
    }
}

// --- epoll-blocking --------------------------------------------------------

bool
epollBlockingDomain(const std::string &rel)
{
    return rel == "src/cluster/coordinator.cc" ||
           rel == "src/cluster/coordinator.hh";
}

void
epollBlockingRun(const SourceFile &f, std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); i++) {
        if (!t[i].isIdent())
            continue;
        const bool member =
            i > 0 && (t[i - 1].is(".") || t[i - 1].is("->"));
        if (!member &&
            contains({"sleep_for", "sleep_until", "usleep", "nanosleep",
                      "system", "popen", "getaddrinfo",
                      "gethostbyname"},
                     t[i].text)) {
            report(out, "epoll-blocking", f, t[i].line,
                   "'" + t[i].text +
                       "' on the coordinator event-loop thread blocks "
                       "every client and worker; timers belong on the "
                       "epoll tick");
            continue;
        }
        if (i + 1 >= t.size() || !t[i + 1].is("("))
            continue;
        if (!member && t[i].is("sleep")) {
            report(out, "epoll-blocking", f, t[i].line,
                   "'sleep()' on the coordinator event-loop thread");
            continue;
        }
        // epoll_wait/poll with a -1 timeout, select with no timeout:
        // unbounded block in the dispatch loop.
        if (contains({"epoll_wait", "epoll_pwait", "poll", "ppoll",
                      "select"},
                     t[i].text)) {
            const std::size_t close = matchParen(t, i + 1);
            if (close == std::string::npos)
                continue;
            // Last top-level argument.
            std::size_t argStart = i + 2;
            int depth = 0;
            for (std::size_t k = i + 2; k < close; k++) {
                if (t[k].is("(") || t[k].is("[") || t[k].is("{"))
                    depth++;
                else if (t[k].is(")") || t[k].is("]") || t[k].is("}"))
                    depth--;
                else if (depth == 0 && t[k].is(","))
                    argStart = k + 1;
            }
            const bool neverWakes =
                (close == argStart + 2 && t[argStart].is("-") &&
                 t[argStart + 1].text == "1") ||
                (close == argStart + 1 &&
                 (t[argStart].is("nullptr") || t[argStart].is("NULL")));
            if (neverWakes)
                report(out, "epoll-blocking", f, t[i].line,
                       "'" + t[i].text +
                           "' with no timeout: the event loop must "
                           "wake for its timer sweep (pings, "
                           "deadlines, retry backoffs)");
        }
    }
}

// --- fd-raii ---------------------------------------------------------------

bool
fdRaiiDomain(const std::string &rel)
{
    // common/fd.hh is the ownership layer itself.
    return startsWith(rel, "src/") && rel != "src/common/fd.hh";
}

void
fdRaiiRun(const SourceFile &f, std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); i++) {
        if (!t[i].isIdent() ||
            !contains({"socket", "accept", "accept4", "open", "openat",
                       "creat", "epoll_create", "epoll_create1", "dup",
                       "dup2", "dup3", "eventfd", "memfd_create",
                       "timerfd_create", "signalfd", "inotify_init",
                       "inotify_init1"},
                      t[i].text))
            continue;
        if (i + 1 >= t.size() || !t[i + 1].is("("))
            continue;

        // k: first token of the call expression (skip `::`).
        std::size_t k = i;
        if (k > 0 && t[k - 1].is("::"))
            k--;
        // Member calls (stream.open(...)) are not the syscall, and
        // neither are declarations of same-named functions.
        if (k > 0 && (t[k - 1].is(".") || t[k - 1].is("->")))
            continue;
        if (k == i && looksLikeDeclaration(t, k))
            continue;

        // Accepted ownership transfers:
        //   common::Fd name(::socket(...));   Fd, name, (, [::]call
        //   common::Fd(::accept(...))         Fd, (, [::]call
        //   fd.reset(::epoll_create1(...))    reset, (, [::]call
        const bool intoCtor =
            k >= 3 && t[k - 1].is("(") && t[k - 2].isIdent() &&
            t[k - 3].is("Fd");
        const bool intoTemp = k >= 2 && t[k - 1].is("(") &&
                              t[k - 2].is("Fd");
        const bool intoReset = k >= 2 && t[k - 1].is("(") &&
                               t[k - 2].is("reset");
        if (intoCtor || intoTemp || intoReset)
            continue;
        if (f.hasEscape(t[i].line, "analyze-owns:"))
            continue;
        report(out, "fd-raii", f, t[i].line,
               "'" + t[i].text +
                   "()' result is not owned: wrap it in common::Fd "
                   "(or document the owner with `// analyze-owns: "
                   "...`) so every error path closes it");
    }
}

// --- check-side-effects ----------------------------------------------------

bool
checkSideEffectsDomain(const std::string &rel)
{
    return startsWith(rel, "src/");
}

void
checkSideEffectsRun(const SourceFile &f, std::vector<Finding> &out)
{
    const auto &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); i++) {
        if (!t[i].isIdent() || !(t[i].is("DYNASPAM_CHECK") ||
                                 t[i].is("DYNASPAM_DCHECK")))
            continue;
        if (!t[i + 1].is("("))
            continue;
        // Skip the macro's own definition (`#define DYNASPAM_CHECK(`).
        if (i > 0 && t[i - 1].is("define"))
            continue;
        const std::size_t close = matchParen(t, i + 1);
        if (close == std::string::npos)
            continue;
        for (std::size_t k = i + 2; k < close; k++) {
            if (contains({"++", "--", "=", "+=", "-=", "*=", "/=",
                          "%=", "&=", "|=", "^=", "<<=", ">>="},
                         t[k].text))
                report(out, "check-side-effects", f, t[k].line,
                       "'" + t[k].text + "' inside " + t[i].text +
                           ": check arguments compile to dead code in "
                           "normal builds, so the side effect "
                           "silently disappears");
        }
    }
}

// --- header-hygiene --------------------------------------------------------

bool
headerHygieneDomain(const std::string &rel)
{
    return startsWith(rel, "src/");
}

/** src/cluster/wire.hh -> DYNASPAM_CLUSTER_WIRE_HH */
std::string
expectedGuard(const std::string &rel)
{
    std::string g = "DYNASPAM_";
    for (char c : rel.substr(4, rel.size() - 4 - 3)) {
        g += std::isalnum(static_cast<unsigned char>(c))
                 ? char(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
    }
    return g + "_HH";
}

void
headerHygieneRun(const SourceFile &f, std::vector<Finding> &out)
{
    // NO_THREAD_SAFETY_ANALYSIS is the annotation system's one big
    // hammer; it is reserved for the CondVar bridge in common/mutex.hh
    // so the rest of the tree cannot silently opt out.
    if (f.relPath != "src/common/mutex.hh" &&
        f.relPath != "src/common/annotations.hh") {
        for (const Token &tok : f.tokens)
            if (tok.is("NO_THREAD_SAFETY_ANALYSIS"))
                report(out, "header-hygiene", f, tok.line,
                       "NO_THREAD_SAFETY_ANALYSIS outside "
                       "common/mutex.hh: fix the locking (or annotate "
                       "it precisely) instead of opting out of the "
                       "analysis");
    }

    if (!endsWith(f.relPath, ".hh"))
        return;

    for (std::size_t i = 0; i + 1 < f.tokens.size(); i++)
        if (f.tokens[i].is("using") && f.tokens[i + 1].is("namespace"))
            report(out, "header-hygiene", f, f.tokens[i].line,
                   "'using namespace' in a header leaks into every "
                   "includer");

    // Include guard: first directive must be `#ifndef <expected>`,
    // immediately followed by the matching `#define`.
    const std::string want = expectedGuard(f.relPath);
    int guardLine = 0;
    std::string got;
    for (std::size_t i = 0; i < f.lines.size(); i++) {
        const std::string &line = f.lines[i];
        const std::size_t pos = line.find("#ifndef");
        if (pos == std::string::npos)
            continue;
        std::istringstream is(line.substr(pos + 7));
        is >> got;
        guardLine = int(i) + 1;
        // The very next line must define it.
        const std::string define =
            i + 1 < f.lines.size() ? f.lines[i + 1] : "";
        if (define.find("#define " + got) == std::string::npos)
            report(out, "header-hygiene", f, guardLine,
                   "include guard '" + got +
                       "' is not #define'd on the next line");
        break;
    }
    if (guardLine == 0)
        report(out, "header-hygiene", f, 1,
               "missing include guard (expected #ifndef " + want + ")");
    else if (got != want)
        report(out, "header-hygiene", f, guardLine,
               "include guard '" + got + "' does not match the path "
               "convention (expected " + want + ")");
}

} // namespace

const std::vector<Check> &
allChecks()
{
    static const std::vector<Check> checks = {
        {"determinism",
         "no wall-clock/RNG/host-entropy calls in src/{core,ooo,"
         "fabric,memory,sim,runner} or the snapshot auditor",
         determinismDomain, determinismRun, "src/sim/{}"},
        {"epoll-blocking",
         "no unbounded blocking on the coordinator event-loop thread",
         epollBlockingDomain, epollBlockingRun,
         "src/cluster/coordinator.cc"},
        {"fd-raii",
         "every created descriptor enters common::Fd ownership",
         fdRaiiDomain, fdRaiiRun, "src/serve/{}"},
        {"check-side-effects",
         "no side effects inside DYNASPAM_CHECK/DYNASPAM_DCHECK "
         "arguments",
         checkSideEffectsDomain, checkSideEffectsRun, "src/ooo/{}"},
        {"header-hygiene",
         "path-derived include guards; no using-namespace in headers; "
         "NO_THREAD_SAFETY_ANALYSIS confined to common/mutex.hh",
         headerHygieneDomain, headerHygieneRun, "src/fixture/{}"},
    };
    return checks;
}

} // namespace dynaspam::analyze
