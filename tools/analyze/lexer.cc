/**
 * @file
 * Minimal C++ lexer for dynaspam-analyze's token engine.
 *
 * Produces identifiers, numbers, string/char literals and punctuation
 * with 1-based line numbers; comments are collected separately (for
 * the escape-comment conventions) and never appear in the token
 * stream. Handles line continuations, raw strings, and the multi-
 * character operators the checks care about (so `==` never looks like
 * two `=`). It does not run the preprocessor: `#` and directive names
 * lex as ordinary punctuation/identifiers, and the header-hygiene
 * check works off raw lines instead.
 */

#include "analysis.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace dynaspam::analyze
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Multi-character operators, longest first so greedy matching is
 * correct. Only operators some check distinguishes need to be here;
 * anything else harmlessly lexes as single characters.
 */
const char *const kOperators[] = {
    "<<=", ">>=", "...", "->*", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "++", "--", "->",
    "::", "&&", "||",
};

} // namespace

bool
SourceFile::hasEscape(int line, const std::string &tag) const
{
    for (const Comment &c : comments)
        if ((c.line == line || c.line == line - 1) &&
            c.text.find(tag) != std::string::npos)
            return true;
    return false;
}

bool
loadSource(const std::string &path, const std::string &relPath,
           SourceFile &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = SourceFile{};
    out.path = path;
    out.relPath = relPath;
    out.text = buf.str();

    std::string line;
    std::istringstream lines(out.text);
    while (std::getline(lines, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        out.lines.push_back(line);
    }

    lex(out);
    return true;
}

void
lex(SourceFile &file)
{
    const std::string &s = file.text;
    const std::size_t n = s.size();
    std::size_t i = 0;
    int line = 1;

    auto peek = [&](std::size_t off) {
        return i + off < n ? s[i + off] : '\0';
    };

    while (i < n) {
        const char c = s[i];

        if (c == '\n') {
            line++;
            i++;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        // Line continuation inside macro definitions.
        if (c == '\\' && (peek(1) == '\n' ||
                          (peek(1) == '\r' && peek(2) == '\n'))) {
            i += peek(1) == '\r' ? 3 : 2;
            line++;
            continue;
        }

        // Comments -> the side channel.
        if (c == '/' && peek(1) == '/') {
            std::size_t start = i;
            while (i < n && s[i] != '\n')
                i++;
            file.comments.push_back({line, s.substr(start, i - start)});
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const int startLine = line;
            std::size_t start = i;
            i += 2;
            while (i < n && !(s[i] == '*' && peek(1) == '/')) {
                if (s[i] == '\n')
                    line++;
                i++;
            }
            i = i < n ? i + 2 : n;
            file.comments.push_back(
                {startLine, s.substr(start, i - start)});
            continue;
        }

        // Raw strings: R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            std::size_t d = i + 2;
            while (d < n && s[d] != '(' && s[d] != '"' && s[d] != '\n')
                d++;
            if (d < n && s[d] == '(') {
                const std::string closer =
                    ")" + s.substr(i + 2, d - (i + 2)) + "\"";
                std::size_t end = s.find(closer, d + 1);
                end = end == std::string::npos ? n
                                               : end + closer.size();
                const int startLine = line;
                for (std::size_t k = i; k < end; k++)
                    if (s[k] == '\n')
                        line++;
                file.tokens.push_back({Token::Kind::String,
                                       s.substr(i, end - i), startLine});
                i = end;
                continue;
            }
            // `R"` not followed by a raw string: fall through.
        }

        // String / char literals with escapes.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t start = i;
            const int startLine = line;
            i++;
            while (i < n && s[i] != quote) {
                if (s[i] == '\\' && i + 1 < n)
                    i++;
                if (s[i] == '\n')
                    line++;
                i++;
            }
            i = i < n ? i + 1 : n;
            file.tokens.push_back({quote == '"' ? Token::Kind::String
                                                : Token::Kind::CharLit,
                                   s.substr(start, i - start),
                                   startLine});
            continue;
        }

        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(s[i]))
                i++;
            file.tokens.push_back({Token::Kind::Identifier,
                                   s.substr(start, i - start), line});
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(
                             static_cast<unsigned char>(peek(1))))) {
            // Good enough for pp-numbers: digits, letters (suffixes,
            // hex), dots, quotes (digit separators), exponent signs.
            std::size_t start = i;
            while (i < n &&
                   (isIdentChar(s[i]) || s[i] == '.' || s[i] == '\'' ||
                    ((s[i] == '+' || s[i] == '-') &&
                     (s[i - 1] == 'e' || s[i - 1] == 'E' ||
                      s[i - 1] == 'p' || s[i - 1] == 'P'))))
                i++;
            file.tokens.push_back({Token::Kind::Number,
                                   s.substr(start, i - start), line});
            continue;
        }

        // Punctuation: longest multi-char operator first.
        bool matched = false;
        for (const char *op : kOperators) {
            const std::size_t len = std::char_traits<char>::length(op);
            if (s.compare(i, len, op) == 0) {
                file.tokens.push_back({Token::Kind::Punct, op, line});
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        file.tokens.push_back({Token::Kind::Punct, std::string(1, c),
                               line});
        i++;
    }
}

} // namespace dynaspam::analyze
