/**
 * @file
 * dynaspam-analyze: project-specific static checks for the DynaSpAM
 * tree. Shared types between the lexer, the checks, and the driver.
 *
 * Two engines share these types:
 *  - the token engine (lexer.cc + checks.cc), portable C++20 with no
 *    dependencies — always built, authoritative for CI gating;
 *  - the AST engine (ast_engine.cc), a Clang LibTooling pass over
 *    compile_commands.json that re-runs the call-site checks with real
 *    semantic information. Compiled only when the Clang CMake package
 *    is found; `--engine ast` reports its absence otherwise.
 *
 * The token engine lexes real C++ tokens (comments and string literals
 * stripped, multi-character operators intact), which is what lets the
 * checks distinguish `a == b` from `a = b` inside DYNASPAM_CHECK and
 * ignore the word "rand" in a doc comment — the failure modes of the
 * sed/grep approach in tools/lint.sh.
 */

#ifndef DYNASPAM_TOOLS_ANALYZE_ANALYSIS_HH
#define DYNASPAM_TOOLS_ANALYZE_ANALYSIS_HH

#include <string>
#include <vector>

namespace dynaspam::analyze
{

/** One lexed C++ token. */
struct Token
{
    enum class Kind
    {
        Identifier,    ///< [A-Za-z_][A-Za-z0-9_]*
        Number,        ///< numeric literal (integer or floating)
        String,        ///< string literal (text is the raw spelling)
        CharLit,       ///< character literal
        Punct,         ///< operator / punctuation, longest-match
    };

    Kind kind;
    std::string text;
    int line = 0;          ///< 1-based source line

    bool is(const char *t) const { return text == t; }
    bool isIdent() const { return kind == Kind::Identifier; }
};

/** One comment, kept for `analyze-allow` / `analyze-owns` escapes. */
struct Comment
{
    int line = 0;          ///< 1-based line the comment starts on
    std::string text;
};

/** One source file, loaded and lexed. */
struct SourceFile
{
    std::string path;      ///< path as opened (for diagnostics)
    std::string relPath;   ///< repo-relative, forward slashes
    std::string text;
    std::vector<std::string> lines;    ///< raw lines, 0-based storage
    std::vector<Token> tokens;
    std::vector<Comment> comments;

    /**
     * @return true when a comment on @p line or the line above it
     * contains @p tag — the escape-comment convention:
     *   `// analyze-allow(<check>): reason`  and
     *   `// analyze-owns: <who owns the fd and who closes it>`.
     */
    bool hasEscape(int line, const std::string &tag) const;
};

/** One reported violation. */
struct Finding
{
    std::string check;
    std::string file;      ///< repo-relative path
    int line = 0;
    std::string message;
};

/**
 * Read @p path into a SourceFile (with @p relPath recorded) and lex
 * it. @return false when the file cannot be read.
 */
bool loadSource(const std::string &path, const std::string &relPath,
                SourceFile &out);

/** Tokenize @p file.text into file.tokens / file.comments. */
void lex(SourceFile &file);

/** One registered check. */
struct Check
{
    const char *name;
    const char *description;
    /** Whether @p relPath belongs to this check's domain. */
    bool (*inDomain)(const std::string &relPath);
    void (*run)(const SourceFile &file, std::vector<Finding> &out);
    /**
     * Repo-relative path a selftest fixture is pretended to live at,
     * so the fixture lands inside the check's domain. `{}` in the
     * string is replaced by the fixture's file name.
     */
    const char *selftestRelPath;
};

/** Registry of every check, in reporting order. */
const std::vector<Check> &allChecks();

} // namespace dynaspam::analyze

#endif // DYNASPAM_TOOLS_ANALYZE_ANALYSIS_HH
