// Selftest fixture: side effects inside DYNASPAM_CHECK arguments.
// The macro compiles to dead code in normal builds, so each of these
// mutations silently disappears there. Pretends to live in src/ooo/.
//
// The macro is stubbed locally so the fixture is self-contained; the
// check keys on the invocation spelling, not the definition.

namespace fixture
{

// analyze-allow(check-side-effects): stub definition, not a call site
#define DYNASPAM_CHECK(cond, ...) ((void)(cond))

void
badChecks(int head, int tail, int *retired)
{
    DYNASPAM_CHECK(++head <= tail, "head ran past tail");
    DYNASPAM_CHECK((*retired = head) >= 0, "retired count");
    DYNASPAM_CHECK(head == tail && (tail += 1), "tail bump");
}

} // namespace fixture
