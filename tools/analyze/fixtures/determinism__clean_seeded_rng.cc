// Selftest fixture: code the determinism check must accept — a
// seeded <random> engine, `rand`-like substrings in identifiers and
// strings, member functions named like banned calls, and an explicit
// analyze-allow escape.

#include <cstdint>
#include <random>
#include <string>

namespace fixture
{

struct Trace
{
    // A member named time() is not ::time().
    std::uint64_t time() const { return cycles; }
    std::uint64_t cycles = 0;
};

std::uint32_t
goodShuffle(std::uint32_t seed)
{
    // Seeded engine: deterministic per job spec. The identifiers
    // contain "rand" but never call it.
    std::mt19937 operandScrambler(seed);
    const std::string brand = "rand() in a string literal";
    Trace t;
    return operandScrambler() ^ std::uint32_t(t.time()) ^
           std::uint32_t(brand.size());
}

std::uint64_t
allowedClockRead()
{
    // analyze-allow(determinism): fixture pins the escape convention
    return std::uint64_t(clock());
}

} // namespace fixture
