// Selftest fixture: the dispatch loop the epoll-blocking check must
// accept — a bounded tick timeout, and poll through a named constant.

#include <sys/epoll.h>

namespace fixture
{

constexpr int kTickMs = 100;

int
goodDispatch(int epollFd)
{
    epoll_event events[16];
    // Bounded wait: timers run at worst one tick late.
    return ::epoll_wait(epollFd, events, 16, kTickMs);
}

} // namespace fixture
