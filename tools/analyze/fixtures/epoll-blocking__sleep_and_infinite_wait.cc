// Selftest fixture: seeded blocking calls on the coordinator's
// event-loop thread. Pretends to be src/cluster/coordinator.cc.

#include <chrono>
#include <thread>

#include <poll.h>
#include <sys/epoll.h>

namespace fixture
{

void
badBackoff()
{
    // Sleeping stalls every client and worker behind this thread.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

int
badDispatch(int epollFd)
{
    epoll_event events[16];
    // -1: blocks forever, so the timer sweep (pings, deadlines,
    // retry backoffs) never runs.
    return ::epoll_wait(epollFd, events, 16, -1);
}

int
badPoll(pollfd *fds, int n)
{
    return ::poll(fds, n, -1);
}

} // namespace fixture
