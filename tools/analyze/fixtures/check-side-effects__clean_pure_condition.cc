// Selftest fixture: DYNASPAM_CHECK uses the side-effect check must
// accept — comparisons (== lexes as one token, not an assignment),
// const calls, and compound conditions without mutation.

namespace fixture
{

// analyze-allow(check-side-effects): stub definition, not a call site
#define DYNASPAM_CHECK(cond, ...) ((void)(cond))

int
queueDepth(int head, int tail)
{
    return tail - head;
}

void
goodChecks(int head, int tail)
{
    DYNASPAM_CHECK(head == tail, "drained queue expected");
    DYNASPAM_CHECK(head <= tail && queueDepth(head, tail) >= 0,
                   "queue invariant: head ", head, " tail ", tail);
}

} // namespace fixture
