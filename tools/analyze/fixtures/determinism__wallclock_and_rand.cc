// Selftest fixture: seeded determinism violations. Pretends to live
// in src/sim/. Every construct below must be reported.

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture
{

unsigned long
badSeed()
{
    // rand() and time() in the simulation core: irreproducible.
    return static_cast<unsigned long>(std::rand()) ^
           static_cast<unsigned long>(time(nullptr));
}

long long
badTimestamp()
{
    // Wall clock read inside the model.
    auto now = std::chrono::system_clock::now();
    return now.time_since_epoch().count();
}

// Word-boundary control: `rand` inside identifiers and comments (the
// operand strides, a brand-new stripe) must NOT match; lexing real
// tokens is what buys this precision.
int operandStride = 4;

} // namespace fixture
