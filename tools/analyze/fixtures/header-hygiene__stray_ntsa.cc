// Selftest fixture: NO_THREAD_SAFETY_ANALYSIS outside
// common/mutex.hh — the opt-out hammer must stay confined to the
// CondVar bridge, not spread through the tree.

#define NO_THREAD_SAFETY_ANALYSIS __attribute__((no_thread_safety_analysis))

namespace fixture
{

struct Racy
{
    int counter = 0;
    void bump() NO_THREAD_SAFETY_ANALYSIS { counter++; }
};

} // namespace fixture
