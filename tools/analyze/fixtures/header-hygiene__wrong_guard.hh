// Selftest fixture: include guard that does not match the
// DYNASPAM_<PATH>_HH convention, plus a using-namespace leak.

#ifndef SOME_OTHER_GUARD_HH
#define SOME_OTHER_GUARD_HH

#include <string>

using namespace std;

namespace fixture
{
inline string
label()
{
    return "leaky";
}
} // namespace fixture

#endif // SOME_OTHER_GUARD_HH
