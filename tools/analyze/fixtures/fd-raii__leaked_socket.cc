// Selftest fixture: descriptors created without entering common::Fd
// ownership. Pretends to live in src/serve/.

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fixture
{

int
badListen()
{
    // Raw int: every early return between here and ::close leaks it.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    return fd;
}

int
badAccept(int listenFd)
{
    return ::accept(listenFd, nullptr, nullptr);
}

int
badOpen(const char *path)
{
    return ::open(path, O_RDONLY);
}

} // namespace fixture
