// Selftest fixture: descriptor creations the fd-raii check must
// accept — immediate common::Fd ownership, reset() adoption, an
// analyze-owns escape, and member functions that merely share a
// syscall's name.

#include <string>

#include <sys/socket.h>

#include "common/fd.hh"

namespace fixture
{

struct FileLike
{
    void open(const std::string &) {}
};

dynaspam::common::Fd
goodSocket()
{
    // Owned from birth: all later error paths close it.
    dynaspam::common::Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    return fd;
}

void
goodAdopt(dynaspam::common::Fd &slot, int listenFd)
{
    slot.reset(::accept(listenFd, nullptr, nullptr));
}

int
goodHandoff(int listenFd)
{
    // analyze-owns: the caller's connection map closes this fd.
    int fd = ::accept4(listenFd, nullptr, nullptr, 0);
    FileLike stream;
    stream.open("not-a-syscall");
    return fd;
}

} // namespace fixture
