/**
 * @file
 * dynaspam-analyze driver.
 *
 *   dynaspam-analyze [--root DIR] [--check NAME]... [--json]
 *   dynaspam-analyze --selftest DIR
 *   dynaspam-analyze --list-checks
 *   dynaspam-analyze --engine ast --compdb build/compile_commands.json
 *
 * Default mode scans every .cc/.hh under <root>/src with the token
 * engine and prints findings as `file:line: [check] message`. Exit
 * codes: 0 clean, 1 findings, 2 usage/environment error.
 *
 * --selftest runs each fixture in DIR against the check named by its
 * file-name prefix (`<check>__description.cc`) and fails unless every
 * fixture's seeded violation is detected — the proof that each check
 * actually fires. Fixture file names may also carry a `clean` marker
 * (`<check>__clean_*.cc`) asserting the check does NOT fire, pinning
 * the escape-comment conventions.
 */

#include "analysis.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace analyze = dynaspam::analyze;
namespace fs = std::filesystem;

namespace
{

struct Options
{
    std::string root = ".";
    std::vector<std::string> only;   ///< empty = every check
    std::string selftestDir;
    std::string engine = "token";
    std::string compdb;
    bool json = false;
    bool listChecks = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--check NAME]... [--json]\n"
        "       %s --selftest FIXTURE_DIR\n"
        "       %s --list-checks\n"
        "       %s --engine {token|ast} [--compdb FILE]\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

bool
checkEnabled(const Options &opt, const std::string &name)
{
    return opt.only.empty() ||
           std::find(opt.only.begin(), opt.only.end(), name) !=
               opt.only.end();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
printFindings(const std::vector<analyze::Finding> &findings, bool json)
{
    if (!json) {
        for (const auto &f : findings)
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.check.c_str(), f.message.c_str());
        return;
    }
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); i++) {
        const auto &f = findings[i];
        std::printf(
            "%s\n  {\"check\": \"%s\", \"file\": \"%s\", "
            "\"line\": %d, \"message\": \"%s\"}",
            i ? "," : "", f.check.c_str(), jsonEscape(f.file).c_str(),
            f.line, jsonEscape(f.message).c_str());
    }
    std::printf("\n]\n");
}

/** Every .cc/.hh under root/src, sorted for deterministic output. */
std::vector<fs::path>
collectSources(const fs::path &root)
{
    std::vector<fs::path> files;
    const fs::path src = root / "src";
    if (!fs::is_directory(src))
        return files;
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".hh")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

int
runScan(const Options &opt)
{
    const fs::path root(opt.root);
    const std::vector<fs::path> files = collectSources(root);
    if (files.empty()) {
        std::fprintf(stderr,
                     "dynaspam-analyze: no sources under %s/src\n",
                     opt.root.c_str());
        return 2;
    }

    std::vector<analyze::Finding> findings;
    for (const fs::path &path : files) {
        const std::string rel =
            fs::relative(path, root).generic_string();
        analyze::SourceFile file;
        if (!analyze::loadSource(path.string(), rel, file)) {
            std::fprintf(stderr, "dynaspam-analyze: cannot read %s\n",
                         path.string().c_str());
            return 2;
        }
        for (const analyze::Check &check : analyze::allChecks())
            if (checkEnabled(opt, check.name) && check.inDomain(rel))
                check.run(file, findings);
    }

    printFindings(findings, opt.json);
    if (!opt.json)
        std::printf("dynaspam-analyze: %zu finding(s) in %zu file(s) "
                    "scanned\n",
                    findings.size(), files.size());
    return findings.empty() ? 0 : 1;
}

/**
 * Fixture protocol: `<check>__<description>.<cc|hh>` must trip
 * <check>; `<check>__clean_<description>` must not. Each check
 * declares where its fixtures pretend to live (selftestRelPath) so
 * they land inside the check's path domain.
 */
int
runSelftest(const Options &opt)
{
    std::vector<fs::path> fixtures;
    for (const auto &entry : fs::directory_iterator(opt.selftestDir)) {
        const std::string ext = entry.path().extension().string();
        if (entry.is_regular_file() && (ext == ".cc" || ext == ".hh"))
            fixtures.push_back(entry.path());
    }
    std::sort(fixtures.begin(), fixtures.end());
    if (fixtures.empty()) {
        std::fprintf(stderr,
                     "dynaspam-analyze: no fixtures in %s\n",
                     opt.selftestDir.c_str());
        return 2;
    }

    int failures = 0;
    std::set<std::string> exercised;
    for (const fs::path &path : fixtures) {
        const std::string name = path.filename().string();
        const std::size_t sep = name.find("__");
        if (sep == std::string::npos) {
            std::fprintf(stderr,
                         "selftest: %s: no '<check>__' prefix\n",
                         name.c_str());
            failures++;
            continue;
        }
        const std::string checkName = name.substr(0, sep);
        const bool wantClean = name.compare(sep + 2, 6, "clean_") == 0;

        const analyze::Check *check = nullptr;
        for (const analyze::Check &c : analyze::allChecks())
            if (checkName == c.name)
                check = &c;
        if (!check) {
            std::fprintf(stderr, "selftest: %s: unknown check '%s'\n",
                         name.c_str(), checkName.c_str());
            failures++;
            continue;
        }

        // Pretend the fixture lives inside the check's domain.
        std::string rel = check->selftestRelPath;
        const std::size_t hole = rel.find("{}");
        if (hole != std::string::npos)
            rel.replace(hole, 2, name);

        analyze::SourceFile file;
        if (!analyze::loadSource(path.string(), rel, file)) {
            std::fprintf(stderr, "selftest: cannot read %s\n",
                         path.string().c_str());
            failures++;
            continue;
        }
        if (!check->inDomain(rel)) {
            std::fprintf(stderr,
                         "selftest: %s: selftestRelPath %s escapes "
                         "the check's own domain\n",
                         name.c_str(), rel.c_str());
            failures++;
            continue;
        }

        std::vector<analyze::Finding> findings;
        check->run(file, findings);
        const bool fired = !findings.empty();
        const bool ok = wantClean ? !fired : fired;
        std::printf("selftest: %-12s %s (%zu finding(s) from %s)\n",
                    ok ? "ok" : "FAIL", name.c_str(), findings.size(),
                    checkName.c_str());
        if (!ok) {
            for (const auto &f : findings)
                std::printf("    %s:%d: %s\n", f.file.c_str(), f.line,
                            f.message.c_str());
            failures++;
        }
        exercised.insert(checkName);
    }

    // Every registered check must have at least one firing fixture —
    // a check with no fixture is a check nobody has proven works.
    for (const analyze::Check &check : analyze::allChecks())
        if (!exercised.count(check.name)) {
            std::fprintf(stderr,
                         "selftest: FAIL: check '%s' has no fixture\n",
                         check.name);
            failures++;
        }

    std::printf("selftest: %d failure(s), %zu fixture(s), %zu "
                "check(s)\n",
                failures, fixtures.size(),
                analyze::allChecks().size());
    return failures ? 1 : 0;
}

} // namespace

// The AST engine (Clang LibTooling over compile_commands.json) is
// compiled in only when the Clang CMake package is present.
#ifdef DYNASPAM_ANALYZE_HAVE_CLANG
namespace dynaspam::analyze
{
int runAstEngine(const std::string &compdb, const std::string &root,
                 std::vector<Finding> &out);
}
#endif

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--root") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.root = v;
        } else if (arg == "--check") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.only.push_back(v);
        } else if (arg == "--selftest") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.selftestDir = v;
        } else if (arg == "--engine") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.engine = v;
        } else if (arg == "--compdb") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.compdb = v;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--list-checks") {
            opt.listChecks = true;
        } else {
            return usage(argv[0]);
        }
    }

    for (const std::string &name : opt.only) {
        bool known = false;
        for (const analyze::Check &c : analyze::allChecks())
            known = known || name == c.name;
        if (!known) {
            std::fprintf(stderr,
                         "dynaspam-analyze: unknown check '%s' "
                         "(--list-checks)\n",
                         name.c_str());
            return 2;
        }
    }

    if (opt.listChecks) {
        for (const analyze::Check &c : analyze::allChecks())
            std::printf("%-20s %s\n", c.name, c.description);
        return 0;
    }
    if (!opt.selftestDir.empty())
        return runSelftest(opt);

    if (opt.engine == "ast") {
#ifdef DYNASPAM_ANALYZE_HAVE_CLANG
        if (opt.compdb.empty()) {
            std::fprintf(stderr,
                         "dynaspam-analyze: --engine ast needs "
                         "--compdb build/compile_commands.json\n");
            return 2;
        }
        std::vector<analyze::Finding> findings;
        const int rc =
            analyze::runAstEngine(opt.compdb, opt.root, findings);
        if (rc)
            return rc;
        printFindings(findings, opt.json);
        return findings.empty() ? 0 : 1;
#else
        std::fprintf(stderr,
                     "dynaspam-analyze: built without the Clang "
                     "libraries; only '--engine token' is available "
                     "(install the Clang CMake package and "
                     "reconfigure to enable the AST engine)\n");
        return 2;
#endif
    }
    if (opt.engine != "token")
        return usage(argv[0]);
    return runScan(opt);
}
