/**
 * @file
 * dynaspam-analyze AST engine: Clang LibTooling over
 * compile_commands.json.
 *
 * Re-runs the call-site checks (determinism, epoll-blocking) with
 * real semantic information: a call is matched by its resolved callee
 * declaration, so a local variable named `rand` or a member function
 * named `time` can never false-positive, and calls reached through
 * macro expansion are attributed to the expansion site. The token
 * engine remains authoritative for the structural checks (fd-raii,
 * check-side-effects, header-hygiene) whose evidence — comment
 * escapes, macro argument spelling, include-guard layout — is
 * pre-preprocessor by nature.
 *
 * This translation unit is compiled only when CMake finds the Clang
 * package (DYNASPAM_ANALYZE_HAVE_CLANG); the tool itself always
 * builds, and `--engine ast` explains the situation when absent.
 */

#ifdef DYNASPAM_ANALYZE_HAVE_CLANG

#include "analysis.hh"

#include <memory>
#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/JSONCompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace dynaspam::analyze
{

namespace
{

using namespace clang;
using namespace clang::ast_matchers;

/** Repo-relative path of @p loc, or empty when outside the repo. */
std::string
relPathOf(const SourceManager &sm, SourceLocation loc,
          const std::string &root)
{
    const std::string file =
        sm.getFilename(sm.getExpansionLoc(loc)).str();
    if (file.rfind(root, 0) != 0)
        return {};
    std::string rel = file.substr(root.size());
    while (!rel.empty() && rel.front() == '/')
        rel.erase(rel.begin());
    return rel;
}

class CallRule : public MatchFinder::MatchCallback
{
  public:
    CallRule(const char *check, std::string message,
             bool (*inDomain)(const std::string &), std::string root,
             std::vector<Finding> &out)
        : check_(check), message_(std::move(message)),
          inDomain_(inDomain), root_(std::move(root)), out_(out)
    {
    }

    void run(const MatchFinder::MatchResult &result) override
    {
        const auto *call = result.Nodes.getNodeAs<CallExpr>("call");
        if (!call)
            return;
        const SourceManager &sm = *result.SourceManager;
        const SourceLocation loc =
            sm.getExpansionLoc(call->getBeginLoc());
        const std::string rel = relPathOf(sm, loc, root_);
        if (rel.empty() || !inDomain_(rel))
            return;
        const auto *callee = call->getDirectCallee();
        const std::string name =
            callee ? callee->getNameAsString() : "<indirect>";
        out_.push_back({check_, rel,
                        int(sm.getExpansionLineNumber(loc)),
                        "'" + name + "' " + message_});
    }

  private:
    const char *check_;
    std::string message_;
    bool (*inDomain_)(const std::string &);
    std::string root_;
    std::vector<Finding> &out_;
};

bool
astDeterminismDomain(const std::string &rel)
{
    return rel.rfind("src/core/", 0) == 0 ||
           rel.rfind("src/ooo/", 0) == 0 ||
           rel.rfind("src/fabric/", 0) == 0 ||
           rel.rfind("src/memory/", 0) == 0 ||
           rel.rfind("src/sim/", 0) == 0;
}

bool
astCoordinatorDomain(const std::string &rel)
{
    return rel == "src/cluster/coordinator.cc" ||
           rel == "src/cluster/coordinator.hh";
}

} // namespace

int
runAstEngine(const std::string &compdb, const std::string &root,
             std::vector<Finding> &out)
{
    std::string error;
    std::unique_ptr<tooling::JSONCompilationDatabase> db =
        tooling::JSONCompilationDatabase::loadFromFile(
            compdb, error,
            tooling::JSONCommandLineSyntax::AutoDetect);
    if (!db) {
        llvm::errs() << "dynaspam-analyze: cannot load " << compdb
                     << ": " << error << "\n";
        return 2;
    }

    // Only TUs in the checks' domains: everything else would be
    // parsed (slow) and then discarded.
    std::vector<std::string> files;
    std::string absRoot =
        llvm::sys::path::is_absolute(root) ? root : std::string();
    if (absRoot.empty()) {
        llvm::SmallString<256> buf(root);
        llvm::sys::fs::make_absolute(buf);
        absRoot = std::string(buf);
    }
    for (const std::string &file : db->getAllFiles()) {
        std::string rel = file;
        if (rel.rfind(absRoot, 0) == 0) {
            rel = rel.substr(absRoot.size());
            while (!rel.empty() && rel.front() == '/')
                rel.erase(rel.begin());
        }
        if (astDeterminismDomain(rel) || astCoordinatorDomain(rel))
            files.push_back(file);
    }
    if (files.empty())
        return 0;

    MatchFinder finder;

    CallRule determinism(
        "determinism",
        "call in the simulation core: results must depend only on "
        "the job spec",
        astDeterminismDomain, absRoot, out);
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "rand", "srand", "random", "drand48", "lrand48",
                     "mrand48", "time", "clock", "gettimeofday",
                     "clock_gettime", "localtime", "gmtime", "getenv",
                     "::std::chrono::system_clock::now",
                     "::std::chrono::steady_clock::now",
                     "::std::chrono::high_resolution_clock::now"))))
            .bind("call"),
        &determinism);

    CallRule blocking(
        "epoll-blocking",
        "call on the coordinator event-loop thread blocks every "
        "client and worker",
        astCoordinatorDomain, absRoot, out);
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "sleep", "usleep", "nanosleep", "system",
                     "popen", "getaddrinfo", "gethostbyname",
                     "::std::this_thread::sleep_for",
                     "::std::this_thread::sleep_until"))))
            .bind("call"),
        &blocking);

    tooling::ClangTool tool(*db, files);
    const int rc =
        tool.run(tooling::newFrontendActionFactory(&finder).get());
    // rc==1 means some TU failed to parse; findings already gathered
    // are still reported, but the run is marked as an environment
    // error so CI does not mistake a broken parse for a clean tree.
    return rc ? 2 : 0;
}

} // namespace dynaspam::analyze

#else

// Keep the TU non-empty for build systems that dislike empty objects.
namespace dynaspam::analyze
{
extern const int kAstEngineUnavailable;
const int kAstEngineUnavailable = 1;
} // namespace dynaspam::analyze

#endif // DYNASPAM_ANALYZE_HAVE_CLANG
