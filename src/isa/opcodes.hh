/**
 * @file
 * The DynaSpAM micro-ISA opcode set and its static classification.
 *
 * The ISA is a register-register RISC with 32 integer and 32 floating-point
 * architectural registers, compare-and-branch instructions, and 8-byte
 * loads/stores. It is deliberately small: the evaluation depends on the
 * *structure* of the dynamic instruction stream (operation mix, branch
 * behaviour, memory access pattern), not on a commercial encoding.
 */

#ifndef DYNASPAM_ISA_OPCODES_HH
#define DYNASPAM_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace dynaspam::isa
{

/** Every operation the micro-ISA supports. */
enum class Opcode : std::uint8_t
{
    NOP,
    // Integer ALU, register-register.
    ADD, SUB, AND, OR, XOR, SHL, SHR, SLT, SLTU,
    MIN,    ///< signed minimum (models cmov-style branchless selects)
    MAX,    ///< signed maximum
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SHLI, SHRI, SLTI,
    // Register moves / immediates.
    MOVI,   ///< dest <- imm
    MOV,    ///< dest <- src1
    // Long-latency integer.
    MUL, DIV, REM,
    // Floating point (operands in FP registers).
    FADD, FSUB, FMIN, FMAX, FNEG, FABS,
    FMUL, FDIV, FSQRT,
    FCLT,   ///< int dest <- (fp src1 < fp src2)
    CVTIF,  ///< fp dest <- (double)(int64) int src1
    CVTFI,  ///< int dest <- (int64) fp src1
    FMOVI,  ///< fp dest <- bit pattern imm (used for fp constants)
    // Memory (8-byte). Effective address = int src1 + imm.
    LD,     ///< int dest <- mem[ea]
    ST,     ///< mem[ea] <- int src2
    FLD,    ///< fp dest <- mem[ea]
    FST,    ///< mem[ea] <- fp src2
    // Control. Branch target is a static-instruction index in imm.
    BEQ, BNE, BLT, BGE,
    JMP,    ///< unconditional direct jump
    CALL,   ///< dest <- return PC; jump to imm
    RET,    ///< jump to int src1 (return address)
    HALT,   ///< stop the program

    NUM_OPCODES
};

/**
 * Scheduling class of an operation: selects the functional-unit type and
 * base execution latency.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FloatAdd,   ///< FP add/sub/min/max/neg/abs/cmp/convert
    FloatMult,
    FloatDiv,   ///< FP div and sqrt
    MemRead,
    MemWrite,
    Branch,     ///< all control transfers
    No_OpClass, ///< NOP / HALT
};

/** Functional-unit types present in both the OOO pipeline and the fabric. */
enum class FuType : std::uint8_t
{
    IntAlu,     ///< also executes branches
    IntMulDiv,
    FpAlu,
    FpMulDiv,
    Ldst,
    None,

    NUM_FU_TYPES
};

/** @return the scheduling class of @p op. */
constexpr OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::MUL:
        return OpClass::IntMult;
      case Opcode::DIV:
      case Opcode::REM:
        return OpClass::IntDiv;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMIN:
      case Opcode::FMAX:
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FCLT:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
      case Opcode::FMOVI:
        return OpClass::FloatAdd;
      case Opcode::FMUL:
        return OpClass::FloatMult;
      case Opcode::FDIV:
      case Opcode::FSQRT:
        return OpClass::FloatDiv;
      case Opcode::LD:
      case Opcode::FLD:
        return OpClass::MemRead;
      case Opcode::ST:
      case Opcode::FST:
        return OpClass::MemWrite;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::JMP:
      case Opcode::CALL:
      case Opcode::RET:
        return OpClass::Branch;
      case Opcode::NOP:
      case Opcode::HALT:
        return OpClass::No_OpClass;
      default:
        return OpClass::IntAlu;
    }
}

/** @return the functional-unit type that executes @p cls. */
constexpr FuType
fuTypeFor(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::No_OpClass:
        return FuType::IntAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuType::IntMulDiv;
      case OpClass::FloatAdd:
        return FuType::FpAlu;
      case OpClass::FloatMult:
      case OpClass::FloatDiv:
        return FuType::FpMulDiv;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return FuType::Ldst;
    }
    return FuType::IntAlu;
}

/**
 * @return the base execution latency, in cycles, of @p cls. Memory reads
 * add the cache access time on top of this address-generation cycle.
 */
constexpr unsigned
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::No_OpClass:
        return 1;
      case OpClass::IntMult:
        return 3;
      case OpClass::IntDiv:
        return 12;
      case OpClass::FloatAdd:
        return 3;
      case OpClass::FloatMult:
        return 4;
      case OpClass::FloatDiv:
        return 12;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return 1;
    }
    return 1;
}

/** @return true when @p op transfers control. */
constexpr bool
isControl(Opcode op)
{
    return opClass(op) == OpClass::Branch;
}

/** @return true for the conditional branches (not JMP/CALL/RET). */
constexpr bool
isCondBranch(Opcode op)
{
    return op == Opcode::BEQ || op == Opcode::BNE || op == Opcode::BLT ||
           op == Opcode::BGE;
}

/** @return true when @p op reads memory. */
constexpr bool
isLoad(Opcode op)
{
    return opClass(op) == OpClass::MemRead;
}

/** @return true when @p op writes memory. */
constexpr bool
isStore(Opcode op)
{
    return opClass(op) == OpClass::MemWrite;
}

/** @return the mnemonic for @p op. */
std::string_view opcodeName(Opcode op);

} // namespace dynaspam::isa

#endif // DYNASPAM_ISA_OPCODES_HH
