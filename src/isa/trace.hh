/**
 * @file
 * Dynamic-trace representation for the timing-directed simulation model.
 *
 * The functional executor runs a program to completion in program order and
 * records one DynRecord per retired instruction: the resolved control-flow
 * outcome and the effective memory address. The timing models (the OOO
 * pipeline and the DynaSpAM fabric) then consume this oracle trace,
 * simulating speculation, squash and replay as timing phenomena.
 */

#ifndef DYNASPAM_ISA_TRACE_HH
#define DYNASPAM_ISA_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"
#include "isa/program.hh"

namespace dynaspam::isa
{

/** One retired dynamic instruction in the oracle trace. */
struct DynRecord
{
    InstAddr pc = 0;            ///< static instruction index
    InstAddr nextPc = 0;        ///< architecturally correct next PC
    Addr effAddr = 0;           ///< effective address (memory ops only)
    bool taken = false;         ///< branch outcome (control ops only)
};

/**
 * The oracle dynamic trace of a whole program execution, plus summary
 * statistics gathered functionally.
 */
class DynamicTrace
{
  public:
    explicit DynamicTrace(const Program &program) : prog(&program) {}

    const Program &program() const { return *prog; }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    const DynRecord &operator[](SeqNum i) const { return records[i]; }
    const DynRecord &at(SeqNum i) const { return records.at(i); }

    const StaticInst &
    staticInst(SeqNum i) const
    {
        return prog->inst(records[i].pc);
    }

    void append(const DynRecord &rec) { records.push_back(rec); }
    void reserve(std::size_t n) { records.reserve(n); }

  private:
    const Program *prog;
    std::vector<DynRecord> records;
};

} // namespace dynaspam::isa

#endif // DYNASPAM_ISA_TRACE_HH
