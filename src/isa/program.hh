/**
 * @file
 * Program container and a label-based builder for writing micro-ISA
 * kernels by hand (the workload kernels in src/workloads use it).
 */

#ifndef DYNASPAM_ISA_PROGRAM_HH
#define DYNASPAM_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace dynaspam::isa
{

/** A complete micro-ISA program: code plus an optional name. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    std::size_t size() const { return insts.size(); }
    bool empty() const { return insts.empty(); }

    const StaticInst &inst(InstAddr pc) const { return insts.at(pc); }
    const std::vector<StaticInst> &code() const { return insts; }

    void append(const StaticInst &inst) { insts.push_back(inst); }

    /** Render the whole program as a disassembly listing. */
    std::string disassemble() const;

  private:
    std::string _name;
    std::vector<StaticInst> insts;
};

/**
 * Fluent builder for micro-ISA programs with forward-referencable labels.
 *
 * Example:
 * @code
 *   ProgramBuilder b("loop");
 *   b.movi(r(1), 0);
 *   b.label("head");
 *   b.addi(r(1), r(1), 1);
 *   b.blt(r(1), r(2), "head");
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "") : prog(std::move(name)) {}

    /** Current instruction index (the PC the next emit() will get). */
    InstAddr here() const { return InstAddr(prog.size()); }

    /** Define @p name as the current position. Names must be unique. */
    ProgramBuilder &label(const std::string &name);

    /** Append a fully formed instruction. */
    ProgramBuilder &emit(const StaticInst &inst);

    // --- Integer ALU ---
    ProgramBuilder &add(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &sub(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &and_(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &or_(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &xor_(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &shl(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &shr(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &slt(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &min_(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &max_(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &addi(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &andi(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &ori(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &xori(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &shli(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &shri(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &slti(RegIndex d, RegIndex a, std::int64_t imm);
    ProgramBuilder &movi(RegIndex d, std::int64_t imm);
    ProgramBuilder &mov(RegIndex d, RegIndex a);
    ProgramBuilder &mul(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &div(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &rem(RegIndex d, RegIndex a, RegIndex b);

    // --- Floating point ---
    ProgramBuilder &fadd(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fsub(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fmul(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fdiv(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fmin(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fmax(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &fneg(RegIndex d, RegIndex a);
    ProgramBuilder &fabs_(RegIndex d, RegIndex a);
    ProgramBuilder &fsqrt(RegIndex d, RegIndex a);
    ProgramBuilder &fclt(RegIndex d, RegIndex a, RegIndex b);
    ProgramBuilder &cvtif(RegIndex d, RegIndex a);
    ProgramBuilder &cvtfi(RegIndex d, RegIndex a);
    ProgramBuilder &fmovi(RegIndex d, double value);

    // --- Memory ---
    ProgramBuilder &ld(RegIndex d, RegIndex base, std::int64_t offset = 0);
    ProgramBuilder &st(RegIndex base, RegIndex value,
                       std::int64_t offset = 0);
    ProgramBuilder &fld(RegIndex d, RegIndex base, std::int64_t offset = 0);
    ProgramBuilder &fst(RegIndex base, RegIndex value,
                        std::int64_t offset = 0);

    // --- Control (targets are labels, resolved at build()) ---
    ProgramBuilder &beq(RegIndex a, RegIndex b, const std::string &target);
    ProgramBuilder &bne(RegIndex a, RegIndex b, const std::string &target);
    ProgramBuilder &blt(RegIndex a, RegIndex b, const std::string &target);
    ProgramBuilder &bge(RegIndex a, RegIndex b, const std::string &target);
    ProgramBuilder &jmp(const std::string &target);
    ProgramBuilder &call(RegIndex link, const std::string &target);
    ProgramBuilder &ret(RegIndex link);
    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /**
     * Resolve all label references and return the finished program.
     * @throws FatalError on undefined or duplicate labels.
     */
    Program build();

  private:
    ProgramBuilder &emitBranch(Opcode op, RegIndex a, RegIndex b,
                               const std::string &target);

    Program prog;
    std::map<std::string, InstAddr> labels;
    /// (instruction index, label) pairs awaiting resolution.
    std::vector<std::pair<InstAddr, std::string>> fixups;
    bool built = false;
};

} // namespace dynaspam::isa

#endif // DYNASPAM_ISA_PROGRAM_HH
