/**
 * @file
 * Functional executor implementation.
 */

#include "isa/executor.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "memory/functional_mem.hh"

namespace dynaspam::isa
{

double
ArchRegFile::readF(RegIndex reg) const
{
    return std::bit_cast<double>(read(reg));
}

void
ArchRegFile::writeF(RegIndex reg, double value)
{
    write(reg, std::bit_cast<std::uint64_t>(value));
}

namespace
{

std::int64_t
asSigned(std::uint64_t v)
{
    return std::bit_cast<std::int64_t>(v);
}

std::uint64_t
asUnsigned(std::int64_t v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace

ExecResult
Executor::run(const Program &program, mem::FunctionalMemory &memory,
              DynamicTrace *trace, std::uint64_t max_insts)
{
    ExecResult result;
    ArchRegFile &regs = result.regs;

    InstAddr pc = 0;
    while (result.instCount < max_insts) {
        if (pc >= program.size())
            fatal("PC ", pc, " out of bounds in program '", program.name(),
                  "' (size ", program.size(), ")");

        const StaticInst &inst = program.inst(pc);
        DynRecord rec;
        rec.pc = pc;
        InstAddr next_pc = pc + 1;

        auto r = [&](RegIndex reg) { return regs.read(reg); };
        auto rf = [&](RegIndex reg) { return regs.readF(reg); };
        auto w = [&](std::uint64_t v) { regs.write(inst.dest, v); };
        auto wf = [&](double v) { regs.writeF(inst.dest, v); };

        switch (inst.op) {
          case Opcode::NOP:
            break;
          case Opcode::ADD:
            w(r(inst.src1) + r(inst.src2));
            break;
          case Opcode::SUB:
            w(r(inst.src1) - r(inst.src2));
            break;
          case Opcode::AND:
            w(r(inst.src1) & r(inst.src2));
            break;
          case Opcode::OR:
            w(r(inst.src1) | r(inst.src2));
            break;
          case Opcode::XOR:
            w(r(inst.src1) ^ r(inst.src2));
            break;
          case Opcode::SHL:
            w(r(inst.src1) << (r(inst.src2) & 63));
            break;
          case Opcode::SHR:
            w(r(inst.src1) >> (r(inst.src2) & 63));
            break;
          case Opcode::SLT:
            w(asSigned(r(inst.src1)) < asSigned(r(inst.src2)) ? 1 : 0);
            break;
          case Opcode::SLTU:
            w(r(inst.src1) < r(inst.src2) ? 1 : 0);
            break;
          case Opcode::MIN:
            w(asSigned(r(inst.src1)) < asSigned(r(inst.src2))
                  ? r(inst.src1)
                  : r(inst.src2));
            break;
          case Opcode::MAX:
            w(asSigned(r(inst.src1)) > asSigned(r(inst.src2))
                  ? r(inst.src1)
                  : r(inst.src2));
            break;
          case Opcode::ADDI:
            w(r(inst.src1) + asUnsigned(inst.imm));
            break;
          case Opcode::ANDI:
            w(r(inst.src1) & asUnsigned(inst.imm));
            break;
          case Opcode::ORI:
            w(r(inst.src1) | asUnsigned(inst.imm));
            break;
          case Opcode::XORI:
            w(r(inst.src1) ^ asUnsigned(inst.imm));
            break;
          case Opcode::SHLI:
            w(r(inst.src1) << (inst.imm & 63));
            break;
          case Opcode::SHRI:
            w(r(inst.src1) >> (inst.imm & 63));
            break;
          case Opcode::SLTI:
            w(asSigned(r(inst.src1)) < inst.imm ? 1 : 0);
            break;
          case Opcode::MOVI:
            w(asUnsigned(inst.imm));
            break;
          case Opcode::MOV:
            w(r(inst.src1));
            break;
          case Opcode::MUL:
            w(asUnsigned(asSigned(r(inst.src1)) * asSigned(r(inst.src2))));
            break;
          case Opcode::DIV: {
            std::int64_t den = asSigned(r(inst.src2));
            w(den == 0 ? 0 : asUnsigned(asSigned(r(inst.src1)) / den));
            break;
          }
          case Opcode::REM: {
            std::int64_t den = asSigned(r(inst.src2));
            w(den == 0 ? 0 : asUnsigned(asSigned(r(inst.src1)) % den));
            break;
          }
          case Opcode::FADD:
            wf(rf(inst.src1) + rf(inst.src2));
            break;
          case Opcode::FSUB:
            wf(rf(inst.src1) - rf(inst.src2));
            break;
          case Opcode::FMUL:
            wf(rf(inst.src1) * rf(inst.src2));
            break;
          case Opcode::FDIV:
            wf(rf(inst.src1) / rf(inst.src2));
            break;
          case Opcode::FMIN:
            wf(std::fmin(rf(inst.src1), rf(inst.src2)));
            break;
          case Opcode::FMAX:
            wf(std::fmax(rf(inst.src1), rf(inst.src2)));
            break;
          case Opcode::FNEG:
            wf(-rf(inst.src1));
            break;
          case Opcode::FABS:
            wf(std::fabs(rf(inst.src1)));
            break;
          case Opcode::FSQRT:
            wf(std::sqrt(rf(inst.src1)));
            break;
          case Opcode::FCLT:
            w(rf(inst.src1) < rf(inst.src2) ? 1 : 0);
            break;
          case Opcode::CVTIF:
            wf(double(asSigned(r(inst.src1))));
            break;
          case Opcode::CVTFI:
            w(asUnsigned(std::int64_t(rf(inst.src1))));
            break;
          case Opcode::FMOVI:
            w(asUnsigned(inst.imm));
            break;
          case Opcode::LD:
          case Opcode::FLD: {
            rec.effAddr = r(inst.src1) + asUnsigned(inst.imm);
            w(memory.read64(rec.effAddr));
            break;
          }
          case Opcode::ST:
          case Opcode::FST: {
            rec.effAddr = r(inst.src1) + asUnsigned(inst.imm);
            memory.write64(rec.effAddr, r(inst.src2));
            break;
          }
          case Opcode::BEQ:
            rec.taken = r(inst.src1) == r(inst.src2);
            if (rec.taken)
                next_pc = InstAddr(inst.imm);
            break;
          case Opcode::BNE:
            rec.taken = r(inst.src1) != r(inst.src2);
            if (rec.taken)
                next_pc = InstAddr(inst.imm);
            break;
          case Opcode::BLT:
            rec.taken = asSigned(r(inst.src1)) < asSigned(r(inst.src2));
            if (rec.taken)
                next_pc = InstAddr(inst.imm);
            break;
          case Opcode::BGE:
            rec.taken = asSigned(r(inst.src1)) >= asSigned(r(inst.src2));
            if (rec.taken)
                next_pc = InstAddr(inst.imm);
            break;
          case Opcode::JMP:
            rec.taken = true;
            next_pc = InstAddr(inst.imm);
            break;
          case Opcode::CALL:
            rec.taken = true;
            w(pc + 1);
            next_pc = InstAddr(inst.imm);
            break;
          case Opcode::RET:
            rec.taken = true;
            next_pc = InstAddr(r(inst.src1));
            break;
          case Opcode::HALT:
            result.halted = true;
            break;
          default:
            panic("unhandled opcode ", int(inst.op));
        }

        rec.nextPc = next_pc;
        if (trace)
            trace->append(rec);
        result.instCount++;

        if (result.halted)
            return result;
        pc = next_pc;
    }

    fatal("program '", program.name(), "' exceeded ", max_insts,
          " instructions without halting");
}

} // namespace dynaspam::isa
