/**
 * @file
 * ProgramBuilder implementation: mnemonic emitters and label resolution.
 */

#include "isa/program.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace dynaspam::isa
{

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < insts.size(); pc++)
        os << pc << ": " << insts[pc].toString() << "\n";
    return os.str();
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels.count(name))
        fatal("duplicate label '", name, "'");
    labels[name] = here();
    return *this;
}

ProgramBuilder &
ProgramBuilder::emit(const StaticInst &inst)
{
    prog.append(inst);
    return *this;
}

namespace
{

StaticInst
rrr(Opcode op, RegIndex d, RegIndex a, RegIndex b)
{
    StaticInst i;
    i.op = op;
    i.dest = d;
    i.src1 = a;
    i.src2 = b;
    return i;
}

StaticInst
rri(Opcode op, RegIndex d, RegIndex a, std::int64_t imm)
{
    StaticInst i;
    i.op = op;
    i.dest = d;
    i.src1 = a;
    i.imm = imm;
    return i;
}

} // namespace

// Integer ALU -------------------------------------------------------------

ProgramBuilder &
ProgramBuilder::add(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::ADD, d, a, b));
}

ProgramBuilder &
ProgramBuilder::sub(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::SUB, d, a, b));
}

ProgramBuilder &
ProgramBuilder::and_(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::AND, d, a, b));
}

ProgramBuilder &
ProgramBuilder::or_(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::OR, d, a, b));
}

ProgramBuilder &
ProgramBuilder::xor_(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::XOR, d, a, b));
}

ProgramBuilder &
ProgramBuilder::shl(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::SHL, d, a, b));
}

ProgramBuilder &
ProgramBuilder::shr(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::SHR, d, a, b));
}

ProgramBuilder &
ProgramBuilder::slt(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::SLT, d, a, b));
}

ProgramBuilder &
ProgramBuilder::min_(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::MIN, d, a, b));
}

ProgramBuilder &
ProgramBuilder::max_(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::MAX, d, a, b));
}

ProgramBuilder &
ProgramBuilder::addi(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::ADDI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::andi(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::ANDI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::ori(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::ORI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::xori(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::XORI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::shli(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::SHLI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::shri(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::SHRI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::slti(RegIndex d, RegIndex a, std::int64_t imm)
{
    return emit(rri(Opcode::SLTI, d, a, imm));
}

ProgramBuilder &
ProgramBuilder::movi(RegIndex d, std::int64_t imm)
{
    StaticInst i;
    i.op = Opcode::MOVI;
    i.dest = d;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::mov(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::MOV;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::mul(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::MUL, d, a, b));
}

ProgramBuilder &
ProgramBuilder::div(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::DIV, d, a, b));
}

ProgramBuilder &
ProgramBuilder::rem(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::REM, d, a, b));
}

// Floating point ----------------------------------------------------------

ProgramBuilder &
ProgramBuilder::fadd(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FADD, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fsub(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FSUB, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fmul(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FMUL, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fdiv(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FDIV, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fmin(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FMIN, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fmax(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FMAX, d, a, b));
}

ProgramBuilder &
ProgramBuilder::fneg(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::FNEG;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fabs_(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::FABS;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fsqrt(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::FSQRT;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fclt(RegIndex d, RegIndex a, RegIndex b)
{
    return emit(rrr(Opcode::FCLT, d, a, b));
}

ProgramBuilder &
ProgramBuilder::cvtif(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::CVTIF;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::cvtfi(RegIndex d, RegIndex a)
{
    StaticInst i;
    i.op = Opcode::CVTFI;
    i.dest = d;
    i.src1 = a;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fmovi(RegIndex d, double value)
{
    StaticInst i;
    i.op = Opcode::FMOVI;
    i.dest = d;
    i.imm = std::bit_cast<std::int64_t>(value);
    return emit(i);
}

// Memory ------------------------------------------------------------------

ProgramBuilder &
ProgramBuilder::ld(RegIndex d, RegIndex base, std::int64_t offset)
{
    return emit(rri(Opcode::LD, d, base, offset));
}

ProgramBuilder &
ProgramBuilder::st(RegIndex base, RegIndex value, std::int64_t offset)
{
    StaticInst i;
    i.op = Opcode::ST;
    i.src1 = base;
    i.src2 = value;
    i.imm = offset;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fld(RegIndex d, RegIndex base, std::int64_t offset)
{
    return emit(rri(Opcode::FLD, d, base, offset));
}

ProgramBuilder &
ProgramBuilder::fst(RegIndex base, RegIndex value, std::int64_t offset)
{
    StaticInst i;
    i.op = Opcode::FST;
    i.src1 = base;
    i.src2 = value;
    i.imm = offset;
    return emit(i);
}

// Control -----------------------------------------------------------------

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, RegIndex a, RegIndex b,
                           const std::string &target)
{
    StaticInst i;
    i.op = op;
    i.src1 = a;
    i.src2 = b;
    fixups.emplace_back(here(), target);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::beq(RegIndex a, RegIndex b, const std::string &target)
{
    return emitBranch(Opcode::BEQ, a, b, target);
}

ProgramBuilder &
ProgramBuilder::bne(RegIndex a, RegIndex b, const std::string &target)
{
    return emitBranch(Opcode::BNE, a, b, target);
}

ProgramBuilder &
ProgramBuilder::blt(RegIndex a, RegIndex b, const std::string &target)
{
    return emitBranch(Opcode::BLT, a, b, target);
}

ProgramBuilder &
ProgramBuilder::bge(RegIndex a, RegIndex b, const std::string &target)
{
    return emitBranch(Opcode::BGE, a, b, target);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    return emitBranch(Opcode::JMP, REG_INVALID, REG_INVALID, target);
}

ProgramBuilder &
ProgramBuilder::call(RegIndex link, const std::string &target)
{
    StaticInst i;
    i.op = Opcode::CALL;
    i.dest = link;
    fixups.emplace_back(here(), target);
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::ret(RegIndex link)
{
    StaticInst i;
    i.op = Opcode::RET;
    i.src1 = link;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(StaticInst{});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    StaticInst i;
    i.op = Opcode::HALT;
    return emit(i);
}

Program
ProgramBuilder::build()
{
    if (built)
        fatal("ProgramBuilder::build() called twice");
    built = true;

    // Patch label references into branch immediates. Program offers no
    // mutable access, so rebuild through a patched copy of the code.
    Program out(prog.name());
    std::vector<StaticInst> code = prog.code();
    for (const auto &[pc, name] : fixups) {
        auto it = labels.find(name);
        if (it == labels.end())
            fatal("undefined label '", name, "'");
        code[pc].imm = std::int64_t(it->second);
    }
    for (const auto &inst : code)
        out.append(inst);
    return out;
}

} // namespace dynaspam::isa
