/**
 * @file
 * Static instruction representation for the micro-ISA.
 *
 * Register indices use a unified space: integer architectural registers are
 * 0..31 and floating-point architectural registers are 32..63. This lets
 * the rename stage treat both classes with one alias table.
 */

#ifndef DYNASPAM_ISA_INST_HH
#define DYNASPAM_ISA_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace dynaspam::isa
{

/** Number of integer architectural registers. */
inline constexpr RegIndex NUM_INT_REGS = 32;
/** Number of floating-point architectural registers. */
inline constexpr RegIndex NUM_FP_REGS = 32;
/** Total architectural registers in the unified space. */
inline constexpr RegIndex NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS;

/** @return the unified index of integer register @p n. */
constexpr RegIndex
intReg(unsigned n)
{
    return RegIndex(n);
}

/** @return the unified index of floating-point register @p n. */
constexpr RegIndex
fpReg(unsigned n)
{
    return RegIndex(NUM_INT_REGS + n);
}

/** @return true when @p reg is in the floating-point class. */
constexpr bool
isFpReg(RegIndex reg)
{
    return reg != REG_INVALID && reg >= NUM_INT_REGS;
}

/**
 * One static instruction. Source/destination register fields use
 * REG_INVALID when unused. The immediate doubles as the branch target
 * (a static-instruction index) for control instructions and as the
 * raw bit pattern for FMOVI.
 */
struct StaticInst
{
    Opcode op = Opcode::NOP;
    RegIndex dest = REG_INVALID;
    RegIndex src1 = REG_INVALID;
    RegIndex src2 = REG_INVALID;
    std::int64_t imm = 0;

    OpClass opClass() const { return isa::opClass(op); }
    FuType fuType() const { return fuTypeFor(opClass()); }
    bool isControl() const { return isa::isControl(op); }
    bool isCondBranch() const { return isa::isCondBranch(op); }
    bool isLoad() const { return isa::isLoad(op); }
    bool isStore() const { return isa::isStore(op); }
    bool isMem() const { return isLoad() || isStore(); }
    bool isHalt() const { return op == Opcode::HALT; }

    /** @return number of register source operands actually used. */
    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        if (src1 != REG_INVALID)
            n++;
        if (src2 != REG_INVALID)
            n++;
        return n;
    }

    bool hasDest() const { return dest != REG_INVALID; }

    /** Render a human-readable disassembly of this instruction. */
    std::string toString() const;
};

} // namespace dynaspam::isa

#endif // DYNASPAM_ISA_INST_HH
