/**
 * @file
 * Functional (architectural) executor for the micro-ISA.
 *
 * Executes a Program against a FunctionalMemory in program order, producing
 * both the final architectural state (for golden-model validation) and the
 * oracle DynamicTrace consumed by the timing models.
 */

#ifndef DYNASPAM_ISA_EXECUTOR_HH
#define DYNASPAM_ISA_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"
#include "isa/program.hh"
#include "isa/trace.hh"

namespace dynaspam
{

namespace mem
{
class FunctionalMemory;
} // namespace mem

namespace isa
{

/** Architectural register file: unified int+fp space, 64-bit values. */
class ArchRegFile
{
  public:
    ArchRegFile() { regs.fill(0); }

    std::uint64_t read(RegIndex reg) const { return regs.at(reg); }
    void write(RegIndex reg, std::uint64_t value) { regs.at(reg) = value; }

    double readF(RegIndex reg) const;
    void writeF(RegIndex reg, double value);

  private:
    std::array<std::uint64_t, NUM_ARCH_REGS> regs;
};

/** Result of a complete functional execution. */
struct ExecResult
{
    std::uint64_t instCount = 0;    ///< retired instructions (incl. HALT)
    bool halted = false;            ///< true when HALT was reached
    ArchRegFile regs;               ///< final architectural registers
};

/**
 * The functional executor. Stateless between run() calls apart from the
 * memory it mutates.
 */
class Executor
{
  public:
    /**
     * Execute @p program against @p memory.
     *
     * @param program the code to run
     * @param memory functional memory (mutated in place)
     * @param trace if non-null, filled with one DynRecord per instruction
     * @param max_insts safety bound; exceeding it raises FatalError
     * @return final architectural state and instruction count
     */
    static ExecResult run(const Program &program,
                          mem::FunctionalMemory &memory,
                          DynamicTrace *trace = nullptr,
                          std::uint64_t max_insts = 200'000'000);
};

} // namespace isa
} // namespace dynaspam

#endif // DYNASPAM_ISA_EXECUTOR_HH
