/**
 * @file
 * Opcode mnemonic table and instruction disassembly.
 */

#include "isa/opcodes.hh"

#include <array>
#include <bit>
#include <sstream>

#include "isa/inst.hh"

namespace dynaspam::isa
{

std::string_view
opcodeName(Opcode op)
{
    static constexpr std::array<std::string_view,
        std::size_t(Opcode::NUM_OPCODES)> names = {
        "nop",
        "add", "sub", "and", "or", "xor", "shl", "shr", "slt", "sltu",
        "min", "max",
        "addi", "andi", "ori", "xori", "shli", "shri", "slti",
        "movi", "mov",
        "mul", "div", "rem",
        "fadd", "fsub", "fmin", "fmax", "fneg", "fabs",
        "fmul", "fdiv", "fsqrt",
        "fclt", "cvtif", "cvtfi", "fmovi",
        "ld", "st", "fld", "fst",
        "beq", "bne", "blt", "bge",
        "jmp", "call", "ret", "halt",
    };
    auto idx = std::size_t(op);
    return idx < names.size() ? names[idx] : "<bad>";
}

namespace
{

std::string
regName(RegIndex reg)
{
    if (reg == REG_INVALID)
        return "-";
    std::ostringstream os;
    if (isFpReg(reg))
        os << "f" << (reg - NUM_INT_REGS);
    else
        os << "r" << reg;
    return os.str();
}

} // namespace

std::string
StaticInst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
        break;
      case Opcode::MOVI:
        os << " " << regName(dest) << ", " << imm;
        break;
      case Opcode::FMOVI:
        os << " " << regName(dest) << ", "
           << std::bit_cast<double>(imm);
        break;
      case Opcode::LD:
      case Opcode::FLD:
        os << " " << regName(dest) << ", " << imm << "("
           << regName(src1) << ")";
        break;
      case Opcode::ST:
      case Opcode::FST:
        os << " " << imm << "(" << regName(src1) << "), "
           << regName(src2);
        break;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        os << " " << regName(src1) << ", " << regName(src2)
           << ", @" << imm;
        break;
      case Opcode::JMP:
        os << " @" << imm;
        break;
      case Opcode::CALL:
        os << " " << regName(dest) << ", @" << imm;
        break;
      case Opcode::RET:
        os << " " << regName(src1);
        break;
      default:
        os << " " << regName(dest);
        if (src1 != REG_INVALID)
            os << ", " << regName(src1);
        if (src2 != REG_INVALID)
            os << ", " << regName(src2);
        else if (isa::opClass(op) == OpClass::IntAlu && imm != 0)
            os << ", " << imm;
        break;
    }
    return os.str();
}

} // namespace dynaspam::isa
