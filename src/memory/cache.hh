/**
 * @file
 * Tag-only set-associative cache timing model with LRU replacement.
 *
 * Data values live in FunctionalMemory; the caches model hit/miss timing
 * and access statistics only. Writeback, write-allocate.
 */

#ifndef DYNASPAM_MEMORY_CACHE_HH
#define DYNASPAM_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dynaspam::mem
{

/** Configuration of a single cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 64;
    Cycle hitLatency = 2;
};

/** Result of a timing access through a cache (or cache hierarchy). */
struct AccessResult
{
    Cycle latency = 0;  ///< total cycles to obtain the data
    bool hit = true;    ///< hit at the level access() was called on
};

/**
 * One cache level. Levels chain via the @c next pointer; the last level
 * misses to a fixed-latency memory.
 */
class Cache
{
  public:
    /**
     * @param params geometry and latency of this level
     * @param next next level, or nullptr for memory-backed
     * @param memory_latency latency charged on a last-level miss
     */
    explicit Cache(const CacheParams &params, Cache *next = nullptr,
                   Cycle memory_latency = 100);

    /**
     * Perform a timing access.
     * @param addr byte address
     * @param is_write true for stores
     * @return total latency including lower levels on a miss
     */
    AccessResult access(Addr addr, bool is_write);

    /**
     * Probe without updating state (no LRU touch, no fill).
     * @return true if @p addr currently hits.
     */
    bool probe(Addr addr) const;

    /**
     * Prefetch @p addr: fill the line off the critical path (no latency
     * charged, no demand-miss counted). No-op if the line is present.
     */
    void prefetch(Addr addr);

    /** Invalidate the whole cache (keeps statistics). */
    void invalidateAll();

    const std::string &name() const { return params.name; }
    std::uint64_t hits() const { return statHits; }
    std::uint64_t misses() const { return statMisses; }
    std::uint64_t writebacks() const { return statWritebacks; }
    std::uint64_t prefetchFills() const { return statPrefetchFills; }
    Cycle hitLatency() const { return params.hitLatency; }

    /** Export statistics into @p registry under this cache's name. */
    void exportStats(StatRegistry &registry) const;

    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;  ///< LRU timestamp

        bool operator==(const Line &) const = default;
    };

    /**
     * Complete mutable state of one cache level: the line array plus the
     * LRU clock and the statistic counters. Geometry (params, level
     * chaining) is construction-time configuration and is not captured;
     * restore() requires a Cache built with the same geometry.
     */
    struct SavedState
    {
        std::vector<Line> lines;
        std::uint64_t useClock = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t prefetchFills = 0;

        bool operator==(const SavedState &) const = default;
    };

    /** Copy the mutable state into @p out (reuses its capacity). */
    void
    save(SavedState &out) const
    {
        out.lines = lines;
        out.useClock = useClock;
        out.hits = statHits;
        out.misses = statMisses;
        out.writebacks = statWritebacks;
        out.prefetchFills = statPrefetchFills;
    }

    /** Restore state captured by save(). The geometry must match. */
    void
    restore(const SavedState &in)
    {
        lines = in.lines;
        useClock = in.useClock;
        statHits = in.hits;
        statMisses = in.misses;
        statWritebacks = in.writebacks;
        statPrefetchFills = in.prefetchFills;
    }

  private:

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params;
    Cache *nextLevel;
    Cycle memLatency;

    std::size_t numSets;
    std::vector<Line> lines;    ///< numSets * assoc, set-major
    std::uint64_t useClock = 0;

    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statWritebacks = 0;
    std::uint64_t statPrefetchFills = 0;
};

/**
 * The paper's Table 4 memory hierarchy: split 64 KiB 2-way 2-cycle L1I/L1D
 * over a shared 2 MiB 8-way 20-cycle L2, 64-byte blocks everywhere.
 */
class MemoryHierarchy
{
  public:
    struct Params
    {
        CacheParams l1i{"l1i", 64 * 1024, 2, 64, 2};
        CacheParams l1d{"l1d", 64 * 1024, 2, 64, 2};
        CacheParams l2{"l2", 2 * 1024 * 1024, 8, 64, 20};
        Cycle memoryLatency = 100;
    };

    MemoryHierarchy() : MemoryHierarchy(Params{}) {}
    explicit MemoryHierarchy(const Params &params);

    /**
     * Timing access for an instruction fetch. A simple next-line
     * prefetcher fills the sequentially following block so straight-line
     * code streams from the L1I after the first demand miss.
     */
    AccessResult
    fetchAccess(Addr addr)
    {
        auto result = l1iCache.access(addr, false);
        l1iCache.prefetch(addr + 64);
        return result;
    }
    /**
     * Timing access for a data load/store. A next-line prefetcher keeps
     * streaming access patterns resident (modern L1Ds ship stream
     * prefetchers; both the host pipeline and the fabric LDST units see
     * the same behaviour).
     */
    AccessResult
    dataAccess(Addr addr, bool is_write)
    {
        auto result = l1dCache.access(addr, is_write);
        l1dCache.prefetch(addr + 64);
        return result;
    }

    Cache &l1i() { return l1iCache; }
    Cache &l1d() { return l1dCache; }
    Cache &l2() { return l2Cache; }
    const Cache &l1i() const { return l1iCache; }
    const Cache &l1d() const { return l1dCache; }
    const Cache &l2() const { return l2Cache; }

    void exportStats(StatRegistry &registry) const;

    /** Mutable state of all three levels. */
    struct SavedState
    {
        Cache::SavedState l2;
        Cache::SavedState l1i;
        Cache::SavedState l1d;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        l2Cache.save(out.l2);
        l1iCache.save(out.l1i);
        l1dCache.save(out.l1d);
    }

    void
    restore(const SavedState &in)
    {
        l2Cache.restore(in.l2);
        l1iCache.restore(in.l1i);
        l1dCache.restore(in.l1d);
    }

  private:
    Cache l2Cache;
    Cache l1iCache;
    Cache l1dCache;
};

} // namespace dynaspam::mem

#endif // DYNASPAM_MEMORY_CACHE_HH
