/**
 * @file
 * Cache timing model implementation.
 */

#include "memory/cache.hh"

#include "common/logging.hh"

namespace dynaspam::mem
{

Cache::Cache(const CacheParams &p, Cache *next, Cycle memory_latency)
    : params(p), nextLevel(next), memLatency(memory_latency)
{
    if (params.blockBytes == 0 || params.assoc == 0)
        fatal("cache '", params.name, "': zero block size or associativity");
    std::uint64_t num_blocks = params.sizeBytes / params.blockBytes;
    if (num_blocks == 0 || num_blocks % params.assoc != 0)
        fatal("cache '", params.name, "': size/assoc/block mismatch");
    numSets = std::size_t(num_blocks / params.assoc);
    lines.resize(num_blocks);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    // Keep every intermediate an explicit std::uint64_t: blockBytes and
    // numSets are narrower types, and letting them drive integer
    // promotion here would truncate large simulated addresses.
    const std::uint64_t block = addr / std::uint64_t(params.blockBytes);
    return std::size_t(block % std::uint64_t(numSets));
}

Addr
Cache::tagOf(Addr addr) const
{
    const std::uint64_t block = addr / std::uint64_t(params.blockBytes);
    return block / std::uint64_t(numSets);
}

AccessResult
Cache::access(Addr addr, bool is_write)
{
    useClock++;
    const std::size_t base = setIndex(addr) * params.assoc;
    const Addr tag = tagOf(addr);

    // Hit path.
    for (unsigned way = 0; way < params.assoc; way++) {
        Line &line = lines[base + way];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty |= is_write;
            statHits++;
            return {params.hitLatency, true};
        }
    }

    // Miss: fetch from the next level (or memory) and fill over LRU victim.
    statMisses++;
    Cycle below;
    if (nextLevel)
        below = nextLevel->access(addr, false).latency;
    else
        below = memLatency;

    std::size_t victim = base;
    for (unsigned way = 1; way < params.assoc; way++) {
        const Line &cand = lines[base + way];
        const Line &best = lines[victim];
        if (!cand.valid) {
            victim = base + way;
            break;
        }
        if (best.valid && cand.lastUse < best.lastUse)
            victim = base + way;
    }

    Line &line = lines[victim];
    if (line.valid && line.dirty) {
        statWritebacks++;
        // Writebacks happen off the critical path; no latency charged.
    }
    line.valid = true;
    line.dirty = is_write;
    line.tag = tag;
    line.lastUse = useClock;

    return {params.hitLatency + below, false};
}

void
Cache::prefetch(Addr addr)
{
    if (probe(addr))
        return;
    statPrefetchFills++;
    useClock++;
    const std::size_t base = setIndex(addr) * params.assoc;

    std::size_t victim = base;
    for (unsigned way = 1; way < params.assoc; way++) {
        const Line &cand = lines[base + way];
        const Line &best = lines[victim];
        if (!cand.valid) {
            victim = base + way;
            break;
        }
        if (best.valid && cand.lastUse < best.lastUse)
            victim = base + way;
    }

    Line &line = lines[victim];
    if (line.valid && line.dirty)
        statWritebacks++;
    line.valid = true;
    line.dirty = false;
    line.tag = tagOf(addr);
    line.lastUse = useClock;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * params.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned way = 0; way < params.assoc; way++) {
        const Line &line = lines[base + way];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines)
        line = Line{};
}

void
Cache::exportStats(StatRegistry &registry) const
{
    registry.counter(params.name + ".hits").inc(statHits);
    registry.counter(params.name + ".misses").inc(statMisses);
    registry.counter(params.name + ".writebacks").inc(statWritebacks);
}

MemoryHierarchy::MemoryHierarchy(const Params &params)
    : l2Cache(params.l2, nullptr, params.memoryLatency),
      l1iCache(params.l1i, &l2Cache),
      l1dCache(params.l1d, &l2Cache)
{
}

void
MemoryHierarchy::exportStats(StatRegistry &registry) const
{
    l1iCache.exportStats(registry);
    l1dCache.exportStats(registry);
    l2Cache.exportStats(registry);
}

} // namespace dynaspam::mem
