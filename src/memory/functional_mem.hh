/**
 * @file
 * Flat, sparse, byte-addressable functional memory.
 *
 * Backs the architectural state of the simulated program. Allocated
 * lazily in 4 KiB pages so kernels can use widely spaced address regions
 * without cost. All accesses used by the micro-ISA are 8-byte aligned
 * 64-bit words; narrower helpers exist for workload data generators.
 */

#ifndef DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH
#define DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dynaspam::mem
{

/** Sparse paged functional memory. */
class FunctionalMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read a 64-bit word. Unmapped memory reads as zero. */
    std::uint64_t
    read64(Addr addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t value;
        std::memcpy(&value, page->data() + offsetOf(addr), 8);
        return value;
    }

    /** Write a 64-bit word, allocating the page on demand. */
    void
    write64(Addr addr, std::uint64_t value)
    {
        Page &page = getPage(addr);
        std::memcpy(page.data() + offsetOf(addr), &value, 8);
    }

    /** Read a double stored with writeDouble()/FST. */
    double
    readDouble(Addr addr) const
    {
        return std::bit_cast<double>(read64(addr));
    }

    /** Write a double as its 64-bit pattern. */
    void
    writeDouble(Addr addr, double value)
    {
        write64(addr, std::bit_cast<std::uint64_t>(value));
    }

    /** @return number of pages currently allocated. */
    std::size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void clear() { pages.clear(); }

    /** Page-map equality (order-insensitive). Note an absent page and
     *  an all-zero page compare unequal even though reads agree; for
     *  snapshot diffs both sides share a copy lineage, so this never
     *  produces a false mismatch there. */
    bool operator==(const FunctionalMemory &) const = default;

  private:
    using Page = std::vector<std::uint8_t>;

    static Addr pageOf(Addr addr) { return addr / pageBytes; }
    static std::size_t offsetOf(Addr addr)
    {
        // 64-bit accesses must not straddle a page boundary.
        std::size_t off = std::size_t(addr % pageBytes);
        if (off > pageBytes - 8)
            fatal("unaligned cross-page access at 0x", std::hex, addr);
        return off;
    }

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages.find(pageOf(addr));
        return it == pages.end() ? nullptr : &it->second;
    }

    Page &
    getPage(Addr addr)
    {
        auto it = pages.find(pageOf(addr));
        if (it == pages.end())
            it = pages.emplace(pageOf(addr), Page(pageBytes, 0)).first;
        return it->second;
    }

    std::unordered_map<Addr, Page> pages;
};

} // namespace dynaspam::mem

#endif // DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH
