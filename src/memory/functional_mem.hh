/**
 * @file
 * Flat, sparse, byte-addressable functional memory.
 *
 * Backs the architectural state of the simulated program. Allocated
 * lazily in 4 KiB pages so kernels can use widely spaced address regions
 * without cost. All accesses used by the micro-ISA are 8-byte aligned
 * 64-bit words; narrower helpers exist for workload data generators.
 */

#ifndef DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH
#define DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/binio.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace dynaspam::mem
{

/** Sparse paged functional memory. */
class FunctionalMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read a 64-bit word. Unmapped memory reads as zero. */
    std::uint64_t
    read64(Addr addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t value;
        std::memcpy(&value, page->data() + offsetOf(addr), 8);
        return value;
    }

    /** Write a 64-bit word, allocating the page on demand. */
    void
    write64(Addr addr, std::uint64_t value)
    {
        Page &page = getPage(addr);
        std::memcpy(page.data() + offsetOf(addr), &value, 8);
    }

    /** Read a double stored with writeDouble()/FST. */
    double
    readDouble(Addr addr) const
    {
        return std::bit_cast<double>(read64(addr));
    }

    /** Write a double as its 64-bit pattern. */
    void
    writeDouble(Addr addr, double value)
    {
        write64(addr, std::bit_cast<std::uint64_t>(value));
    }

    /** @return number of pages currently allocated. */
    std::size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void clear() { pages.clear(); }

    /** Page-map equality (order-insensitive). Note an absent page and
     *  an all-zero page compare unequal even though reads agree; for
     *  snapshot diffs both sides share a copy lineage, so this never
     *  produces a false mismatch there. */
    bool operator==(const FunctionalMemory &) const = default;

    /** Append the page map to @p out, sorted by page number so the
     *  encoding is independent of hash-map iteration order. */
    void
    serialize(binio::Writer &out) const
    {
        std::vector<Addr> keys;
        keys.reserve(pages.size());
        for (const auto &[page_no, page] : pages)
            keys.push_back(page_no);
        std::sort(keys.begin(), keys.end());
        out.u64(keys.size());
        for (Addr page_no : keys) {
            const Page &page = pages.at(page_no);
            out.u64(page_no);
            out.raw(page.data(), page.size());
        }
    }

    /** Rebuild the page map from @p in (fail-soft, see binio::Reader). */
    void
    deserialize(binio::Reader &in)
    {
        pages.clear();
        std::uint64_t count = in.u64();
        if (!in.checkCount(count, 8 + pageBytes))
            return;
        for (std::uint64_t i = 0; i < count && in.ok(); i++) {
            Addr page_no = in.u64();
            Page page(pageBytes, 0);
            in.raw(page.data(), page.size());
            pages.emplace(page_no, std::move(page));
        }
    }

    /** Content hash over the sorted page map (FNV-1a), for identity
     *  checks of on-disk snapshots. */
    std::uint64_t
    contentHash(std::uint64_t hash = bits::FNV1A_OFFSET) const
    {
        std::vector<Addr> keys;
        keys.reserve(pages.size());
        for (const auto &[page_no, page] : pages)
            keys.push_back(page_no);
        std::sort(keys.begin(), keys.end());
        for (Addr page_no : keys) {
            for (unsigned shift = 0; shift < 64; shift += 8)
                hash = bits::fnv1aStep(
                    hash, std::uint8_t((page_no >> shift) & 0xff));
            const Page &page = pages.at(page_no);
            for (std::uint8_t byte : page)
                hash = bits::fnv1aStep(hash, byte);
        }
        return hash;
    }

  private:
    using Page = std::vector<std::uint8_t>;

    static Addr pageOf(Addr addr) { return addr / pageBytes; }
    static std::size_t offsetOf(Addr addr)
    {
        // 64-bit accesses must not straddle a page boundary.
        std::size_t off = std::size_t(addr % pageBytes);
        if (off > pageBytes - 8)
            fatal("unaligned cross-page access at 0x", std::hex, addr);
        return off;
    }

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages.find(pageOf(addr));
        return it == pages.end() ? nullptr : &it->second;
    }

    Page &
    getPage(Addr addr)
    {
        auto it = pages.find(pageOf(addr));
        if (it == pages.end())
            it = pages.emplace(pageOf(addr), Page(pageBytes, 0)).first;
        return it->second;
    }

    std::unordered_map<Addr, Page> pages;
};

} // namespace dynaspam::mem

#endif // DYNASPAM_MEMORY_FUNCTIONAL_MEM_HH
