/**
 * @file
 * Golden-model interpreter and lockstep checker implementation.
 *
 * The interpreter is organized differently from isa::Executor on
 * purpose — ALU, branch and memory semantics are grouped into separate
 * evaluation helpers — so a semantics bug in one implementation is
 * unlikely to be mirrored by the other.
 */

#include "check/golden.hh"

#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "isa/inst.hh"
#include "isa/opcodes.hh"

namespace dynaspam::check
{

namespace
{

std::int64_t
sgn(std::uint64_t v)
{
    return std::bit_cast<std::int64_t>(v);
}

std::uint64_t
uns(std::int64_t v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
fp(std::uint64_t v)
{
    return std::bit_cast<double>(v);
}

std::uint64_t
fpBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Integer/FP computation for every value-producing non-memory op. */
std::uint64_t
computeValue(isa::Opcode op, std::uint64_t a, std::uint64_t b,
             std::int64_t imm, InstAddr pc)
{
    using isa::Opcode;
    switch (op) {
      case Opcode::ADD:
        return a + b;
      case Opcode::SUB:
        return a - b;
      case Opcode::AND:
        return a & b;
      case Opcode::OR:
        return a | b;
      case Opcode::XOR:
        return a ^ b;
      case Opcode::SHL:
        return bits::shiftLeft(a, unsigned(b));
      case Opcode::SHR:
        return a >> (b & 63u);
      case Opcode::SLT:
        return sgn(a) < sgn(b) ? 1 : 0;
      case Opcode::SLTU:
        return a < b ? 1 : 0;
      case Opcode::MIN:
        return sgn(a) < sgn(b) ? a : b;
      case Opcode::MAX:
        return sgn(a) > sgn(b) ? a : b;
      case Opcode::ADDI:
        return a + uns(imm);
      case Opcode::ANDI:
        return a & uns(imm);
      case Opcode::ORI:
        return a | uns(imm);
      case Opcode::XORI:
        return a ^ uns(imm);
      case Opcode::SHLI:
        return bits::shiftLeft(a, unsigned(uns(imm)));
      case Opcode::SHRI:
        return a >> (uns(imm) & 63u);
      case Opcode::SLTI:
        return sgn(a) < imm ? 1 : 0;
      case Opcode::MOVI:
      case Opcode::FMOVI:
        return uns(imm);
      case Opcode::MOV:
        return a;
      case Opcode::MUL:
        return uns(sgn(a) * sgn(b));
      case Opcode::DIV:
        return sgn(b) == 0 ? 0 : uns(sgn(a) / sgn(b));
      case Opcode::REM:
        return sgn(b) == 0 ? 0 : uns(sgn(a) % sgn(b));
      case Opcode::FADD:
        return fpBits(fp(a) + fp(b));
      case Opcode::FSUB:
        return fpBits(fp(a) - fp(b));
      case Opcode::FMUL:
        return fpBits(fp(a) * fp(b));
      case Opcode::FDIV:
        return fpBits(fp(a) / fp(b));
      case Opcode::FMIN:
        return fpBits(std::fmin(fp(a), fp(b)));
      case Opcode::FMAX:
        return fpBits(std::fmax(fp(a), fp(b)));
      case Opcode::FNEG:
        return fpBits(-fp(a));
      case Opcode::FABS:
        return fpBits(std::fabs(fp(a)));
      case Opcode::FSQRT:
        return fpBits(std::sqrt(fp(a)));
      case Opcode::FCLT:
        return fp(a) < fp(b) ? 1 : 0;
      case Opcode::CVTIF:
        return fpBits(double(sgn(a)));
      case Opcode::CVTFI:
        return uns(std::int64_t(fp(a)));
      case Opcode::CALL:
        return std::uint64_t(pc) + 1;
      default:
        panic("golden model: op ", int(op), " produces no value");
    }
}

/** Resolve a conditional branch's direction. */
bool
branchTaken(isa::Opcode op, std::uint64_t a, std::uint64_t b)
{
    using isa::Opcode;
    switch (op) {
      case Opcode::BEQ:
        return a == b;
      case Opcode::BNE:
        return a != b;
      case Opcode::BLT:
        return sgn(a) < sgn(b);
      case Opcode::BGE:
        return sgn(a) >= sgn(b);
      default:
        panic("golden model: op ", int(op), " is not a cond branch");
    }
}

} // namespace

GoldenModel::GoldenModel(const isa::Program &program,
                         const mem::FunctionalMemory &initial_memory)
    : prog(program), mem(initial_memory)
{
}

GoldenEffect
GoldenModel::step()
{
    GoldenEffect eff;
    if (isHalted)
        panic("golden model stepped past HALT");
    if (curPc >= prog.size())
        panic("golden model PC ", curPc, " out of bounds");

    const isa::StaticInst &inst = prog.inst(curPc);
    eff.pc = curPc;
    eff.nextPc = curPc + 1;

    const std::uint64_t a =
        inst.src1 == REG_INVALID ? 0 : regs[inst.src1];
    const std::uint64_t b =
        inst.src2 == REG_INVALID ? 0 : regs[inst.src2];

    using isa::Opcode;
    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        isHalted = true;
        eff.halted = true;
        break;
      case Opcode::LD:
      case Opcode::FLD:
        eff.isMem = true;
        eff.effAddr = a + uns(inst.imm);
        eff.dest = inst.dest;
        eff.destValue = mem.read64(eff.effAddr);
        regs[inst.dest] = eff.destValue;
        break;
      case Opcode::ST:
      case Opcode::FST:
        eff.isMem = true;
        eff.effAddr = a + uns(inst.imm);
        mem.write64(eff.effAddr, b);
        break;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        eff.taken = branchTaken(inst.op, a, b);
        if (eff.taken)
            eff.nextPc = InstAddr(inst.imm);
        break;
      case Opcode::JMP:
        eff.taken = true;
        eff.nextPc = InstAddr(inst.imm);
        break;
      case Opcode::CALL:
        eff.taken = true;
        eff.dest = inst.dest;
        eff.destValue = computeValue(inst.op, a, b, inst.imm, curPc);
        regs[inst.dest] = eff.destValue;
        eff.nextPc = InstAddr(inst.imm);
        break;
      case Opcode::RET:
        eff.taken = true;
        eff.nextPc = InstAddr(a);
        break;
      default:
        eff.dest = inst.dest;
        eff.destValue = computeValue(inst.op, a, b, inst.imm, curPc);
        regs[inst.dest] = eff.destValue;
        break;
    }

    if (!isHalted)
        curPc = eff.nextPc;
    return eff;
}

// ---------------------------------------------------------------------
// LockstepChecker
// ---------------------------------------------------------------------

LockstepChecker::LockstepChecker(const isa::DynamicTrace &t,
                                 const mem::FunctionalMemory &initial,
                                 ViolationSink &s)
    : trace(t), golden(t.program(), initial), sink(s)
{
}

void
LockstepChecker::diverged(SeqNum idx, Cycle now, const std::string &what)
{
    dead = true;
    std::ostringstream os;
    os << "golden-model divergence at record " << idx << ": " << what
       << "\n--- last " << window.size() << " commits ---\n";
    dumpWindow(os);
    sink.report("golden", now, os.str());
}

void
LockstepChecker::checkRecord(SeqNum idx, bool via_fabric, Cycle now)
{
    if (idx >= trace.size()) {
        diverged(idx, now, "commit beyond end of trace (size " +
                               std::to_string(trace.size()) + ")");
        return;
    }
    if (golden.halted()) {
        diverged(idx, now, "commit after golden model halted");
        return;
    }

    const isa::DynRecord &rec = trace[idx];
    if (golden.pc() != rec.pc) {
        diverged(idx, now,
                 "control flow: golden pc " + std::to_string(golden.pc()) +
                     " != trace pc " + std::to_string(rec.pc));
        return;
    }

    const GoldenEffect eff = golden.step();
    const isa::StaticInst &inst = trace.program().inst(rec.pc);

    if (eff.nextPc != rec.nextPc) {
        diverged(idx, now,
                 "nextPc: golden " + std::to_string(eff.nextPc) +
                     " != trace " + std::to_string(rec.nextPc));
        return;
    }
    if (inst.isControl() && eff.taken != rec.taken) {
        diverged(idx, now, "branch outcome: golden " +
                               std::to_string(eff.taken) + " != trace " +
                               std::to_string(rec.taken));
        return;
    }
    if (inst.isMem() && eff.effAddr != rec.effAddr) {
        std::ostringstream os;
        os << "effective address: golden 0x" << std::hex << eff.effAddr
           << " != trace 0x" << rec.effAddr;
        diverged(idx, now, os.str());
        return;
    }

    window.push_back({idx, rec.pc, via_fabric, now});
    if (window.size() > windowSize)
        window.pop_front();
    checked++;
}

void
LockstepChecker::onCommit(SeqNum first_idx, std::uint32_t count,
                          bool via_fabric, Cycle now)
{
    if (dead || !count)
        return;

    if (first_idx != nextIdx) {
        diverged(first_idx, now,
                 "commit-order break: expected record " +
                     std::to_string(nextIdx) + ", got " +
                     std::to_string(first_idx) +
                     (via_fabric ? " (fabric invocation)" : ""));
        return;
    }

    for (std::uint32_t i = 0; i < count && !dead; i++)
        checkRecord(first_idx + i, via_fabric, now);
    if (!dead)
        nextIdx = first_idx + count;
}

void
LockstepChecker::finish(Cycle now)
{
    if (dead)
        return;
    if (nextIdx != trace.size()) {
        diverged(nextIdx, now,
                 "run ended with only " + std::to_string(nextIdx) + " of " +
                     std::to_string(trace.size()) + " records committed");
    }
}

void
LockstepChecker::dumpWindow(std::ostream &os) const
{
    for (const CommitEvent &ev : window) {
        os << "  [" << ev.idx << "] cycle " << ev.cycle << " pc " << ev.pc
           << " " << trace.program().inst(ev.pc).toString()
           << (ev.viaFabric ? "  (fabric)" : "") << "\n";
    }
}

} // namespace dynaspam::check
