/**
 * @file
 * Per-subsystem invariant auditors. Each auditor walks one simulator
 * structure and reports violations of its documented invariants through
 * a ViolationSink. Auditors are read-only: they never mutate the
 * structures they inspect, so they can run at any cycle boundary.
 *
 * The auditors are always compiled (so the fault-injection self-test
 * works in every build); whether they run is decided by the Verifier
 * based on check::enabled() and the audit interval.
 */

#ifndef DYNASPAM_CHECK_AUDITORS_HH
#define DYNASPAM_CHECK_AUDITORS_HH

#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "common/types.hh"

namespace dynaspam::ooo
{
class OooCpu;
} // namespace dynaspam::ooo

namespace dynaspam::core
{
class TCache;
class ConfigCache;
} // namespace dynaspam::core

namespace dynaspam::fabric
{
struct FabricConfig;
struct FabricParams;
} // namespace dynaspam::fabric

namespace dynaspam::check
{

/**
 * Audits the OOO pipeline's architectural bookkeeping:
 *
 *  - "rob": sequence numbers are contiguous, the entries cover the
 *    oracle-trace records [commitIdx, ...) contiguously (in-order
 *    commit), completion implies issue, and every TraceInvoke entry
 *    has matching invocation state (and vice versa).
 *  - "rename": the physical register file is exactly partitioned
 *    between the RAT, the free list, the previous mappings held by
 *    in-flight defining instructions, and the previous live-out
 *    mappings held by in-flight invocations — no register leaked,
 *    none aliased.
 *  - "lsq": load/store queues hold in-flight memory instructions of
 *    the right kind in age order, and store-set dependence edges
 *    point strictly older.
 *  - "atomicity": an unresolved invocation's live-out registers are
 *    all still not-ready — a fat ROB' entry's results must become
 *    visible atomically, never early.
 *  - "scheduler": the wakeup-driven issue bookkeeping mirrors the IQ
 *    exactly — every waiting IQ instruction with no unknown sources
 *    has exactly one ready/pending reference of the right FU type,
 *    instructions with unknown sources are registered once per
 *    unknown source on a not-ready producer's consumer list, the
 *    ready/pending counters match, and the cacheline-keyed LSQ and
 *    store-buffer indexes hold exactly the queues' entries in age
 *    order.
 */
class OooAuditor
{
  public:
    OooAuditor(const ooo::OooCpu &cpu, ViolationSink &sink);

    /** Run every audit. */
    void auditAll(Cycle now);

    void auditRob(Cycle now);
    void auditRename(Cycle now);
    void auditLsq(Cycle now);
    void auditAtomicity(Cycle now);
    void auditScheduler(Cycle now);

  private:
    const ooo::OooCpu &cpu;
    ViolationSink &sink;
    /** Reusable per-phys-reg scratch for the partition check. */
    std::vector<std::uint8_t> physSeen;
};

/**
 * Audits the DynaSpAM detection/caching structures:
 *
 *  - "tcache": every valid entry sits at its direct-mapped index, its
 *    saturating counter is within range, and the hot flag is only set
 *    past the threshold.
 *  - "configcache": every valid entry sits at its index, its counter
 *    is in range, and it holds a non-null, self-consistent
 *    configuration whose key matches the entry.
 */
class StructureAuditor
{
  public:
    explicit StructureAuditor(ViolationSink &s) : sink(s) {}

    void auditTCache(const core::TCache &tcache, Cycle now);
    void auditConfigCache(const core::ConfigCache &cache,
                          const fabric::FabricParams &params, Cycle now);

  private:
    ViolationSink &sink;
};

/**
 * Audit one fabric configuration against the scheduling-frontier
 * legality rules of the mapping algorithm ("frontier"):
 *
 *  - placements fit the fabric geometry and are unique per PE;
 *  - dataflow only moves forward: a PassReg/Routed operand's producer
 *    is earlier in program order and in a strictly earlier stripe;
 *  - a Routed operand pays exactly (consumer stripe − producer stripe
 *    − 1) hops;
 *  - live-in references are in range and the live-in/live-out
 *    interfaces fit the FIFO counts, with live-outs sorted by
 *    architectural register and produced by the last writer;
 *  - no stripe boundary carries more distinct values than it has pass
 *    registers.
 */
void auditFabricConfig(const fabric::FabricConfig &config,
                       const fabric::FabricParams &params,
                       ViolationSink &sink, Cycle now);

} // namespace dynaspam::check

#endif // DYNASPAM_CHECK_AUDITORS_HH
