/**
 * @file
 * Fault-injection self-test for the verification layer.
 *
 * Each scenario builds a minimal consistent simulator state, confirms
 * the targeted auditor stays silent on it, then seeds one specific
 * invariant violation and confirms the auditor reports it through a
 * collecting ViolationSink. A checker that cannot catch its own seeded
 * bug is worse than no checker — this is the test of the tester.
 *
 * Run via `dynaspam check-selftest` or the test_check unit test.
 */

#ifndef DYNASPAM_CHECK_FAULT_INJECT_HH
#define DYNASPAM_CHECK_FAULT_INJECT_HH

#include <iosfwd>

namespace dynaspam::check
{

/**
 * Seeds violations into simulator structures. Declared a friend by
 * OooCpu, TCache and ConfigCache so scenarios can corrupt private
 * state directly.
 *
 * Each injector returns true when (a) the clean state produced no
 * report and (b) the seeded fault was detected by the right auditor.
 */
class FaultInjector
{
  public:
    static bool injectRobFault();        ///< break ROB seq contiguity
    static bool injectRenameFault();     ///< alias a phys reg twice
    static bool injectLsqFault();        ///< reorder the load queue
    static bool injectAtomicityFault();  ///< expose a live-out early
    static bool injectSchedulerFault();  ///< phantom ready-list entry
    static bool injectTCacheFault();     ///< hot below the threshold
    static bool injectConfigCacheFault();///< valid entry, null config
    static bool injectFrontierFault();   ///< backwards dataflow route
    static bool injectGoldenFault();     ///< out-of-order + wrong trace
    static bool injectSnapshotFault();   ///< corrupt a restored snapshot
};

/**
 * Run every injection scenario, reporting one PASS/FAIL line per
 * auditor to @p os. @return true when every auditor caught its fault.
 */
bool runSelfTest(std::ostream &os);

} // namespace dynaspam::check

#endif // DYNASPAM_CHECK_FAULT_INJECT_HH
