/**
 * @file
 * Snapshot round-trip auditor.
 *
 * The forked-sweep machinery relies on sim::Snapshot capturing the
 * COMPLETE mutable simulator state: a restore followed by a re-save
 * must reproduce the source snapshot exactly, or the fork will quietly
 * drift from the straight-through run. This auditor diffs two
 * snapshots field-by-field and reports the first mismatching member
 * through a ViolationSink, so a missed field shows up as a named
 * violation ("cpu.rob", "controller", ...) instead of a mystery
 * byte-diff three layers up.
 *
 * Wired in two places: the runner's fork path re-saves every restored
 * fork and audits it against the warmup snapshot when checks are
 * enabled, and the fault-injection self-test seeds a corrupted restore
 * to prove the diff actually fires (FaultInjector::injectSnapshotFault).
 */

#ifndef DYNASPAM_CHECK_SNAPSHOT_AUDIT_HH
#define DYNASPAM_CHECK_SNAPSHOT_AUDIT_HH

#include "check/check.hh"
#include "common/types.hh"

namespace dynaspam::sim
{
struct Snapshot;
} // namespace dynaspam::sim

namespace dynaspam::check
{

/**
 * Compare @p got against @p expect member-by-member. Reports one
 * violation (auditor tag "snapshot") naming the first differing field
 * for each top-level component that mismatches.
 * @param now cycle recorded in the violation
 * @return true when the snapshots are identical
 */
bool auditSnapshotRoundTrip(const sim::Snapshot &expect,
                            const sim::Snapshot &got, ViolationSink &sink,
                            Cycle now);

} // namespace dynaspam::check

#endif // DYNASPAM_CHECK_SNAPSHOT_AUDIT_HH
