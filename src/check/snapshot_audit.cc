#include "check/snapshot_audit.hh"

#include <sstream>
#include <string>

#include "sim/snapshot.hh"

namespace dynaspam::check
{

namespace
{

/**
 * Diff one component by probing a list of named member comparisons and
 * reporting the first mismatch. The component-level operator== is the
 * source of truth; the member list only localizes the difference.
 */
template <typename State, typename... Probe>
bool
diffComponent(const char *component, const State &expect, const State &got,
              ViolationSink &sink, Cycle now, const Probe &...probes)
{
    if (expect == got)
        return true;

    std::string field = "<unlisted member>";
    bool found = false;
    auto check = [&](const auto &probe) {
        if (found)
            return;
        if (!(expect.*(probe.member) == got.*(probe.member))) {
            field = probe.name;
            found = true;
        }
    };
    (check(probes), ...);

    std::ostringstream os;
    os << "restored state diverges from its source snapshot in "
       << component << "." << field;
    sink.report("snapshot", now, os.str());
    return false;
}

/** A named pointer-to-member probe for diffComponent. */
template <typename State, typename Member>
struct Probe
{
    const char *name;
    Member State::*member;
};

template <typename State, typename Member>
Probe<State, Member>
probe(const char *name, Member State::*member)
{
    return {name, member};
}

} // namespace

bool
auditSnapshotRoundTrip(const sim::Snapshot &expect, const sim::Snapshot &got,
                       ViolationSink &sink, Cycle now)
{
    bool ok = true;

    if (expect.input.get() != got.input.get()) {
        sink.report("snapshot", now,
                    "snapshots were taken over different SimInputs");
        ok = false;
    }

    using Cpu = ooo::OooCpu::SavedState;
    ok &= diffComponent(
        "cpu", expect.cpu, got.cpu, sink, now,
        probe("bpred", &Cpu::bpred),
        probe("storeSets", &Cpu::storeSets),
        probe("activeIsDefault", &Cpu::activeIsDefault),
        probe("pendingIsNull", &Cpu::pendingIsNull),
        probe("curCycle", &Cpu::curCycle),
        probe("nextSeq", &Cpu::nextSeq),
        probe("fetchIdx", &Cpu::fetchIdx),
        probe("commitIdx", &Cpu::commitIdx),
        probe("fetchResumeCycle", &Cpu::fetchResumeCycle),
        probe("fetchBlockedOnBranch", &Cpu::fetchBlockedOnBranch),
        probe("lastFetchBlock", &Cpu::lastFetchBlock),
        probe("frontEnd", &Cpu::frontEnd),
        probe("rat", &Cpu::rat),
        probe("freeList", &Cpu::freeList),
        probe("physReadyCycle", &Cpu::physReadyCycle),
        probe("rob", &Cpu::rob),
        probe("iq", &Cpu::iq),
        probe("loadQueue", &Cpu::loadQueue),
        probe("storeQueue", &Cpu::storeQueue),
        probe("invocations", &Cpu::invocations),
        probe("readyByType", &Cpu::readyByType),
        probe("pendingByType", &Cpu::pendingByType),
        probe("regConsumers", &Cpu::regConsumers),
        probe("readyCount", &Cpu::readyCount),
        probe("pendingCount", &Cpu::pendingCount),
        probe("storesByLine", &Cpu::storesByLine),
        probe("loadsByLine", &Cpu::loadsByLine),
        probe("sqBoundCycle", &Cpu::sqBoundCycle),
        probe("sqBound", &Cpu::sqBound),
        probe("storeBuffer", &Cpu::storeBuffer),
        probe("retiredByLine", &Cpu::retiredByLine),
        probe("fuBusyUntil", &Cpu::fuBusyUntil),
        probe("mappingActive", &Cpu::mappingActive),
        probe("mappingTraceIdx", &Cpu::mappingTraceIdx),
        probe("mappingFetchRemaining", &Cpu::mappingFetchRemaining),
        probe("mappingDispatchRemaining", &Cpu::mappingDispatchRemaining),
        probe("mappingIssueRemaining", &Cpu::mappingIssueRemaining),
        probe("mappingCommitRemaining", &Cpu::mappingCommitRemaining),
        probe("pstats", &Cpu::pstats));

    using Mem = mem::MemoryHierarchy::SavedState;
    ok &= diffComponent("memory", expect.memory, got.memory, sink, now,
                        probe("l2", &Mem::l2), probe("l1i", &Mem::l1i),
                        probe("l1d", &Mem::l1d));

    if (expect.controller.has_value() != got.controller.has_value()) {
        sink.report("snapshot", now,
                    "controller state present in only one snapshot");
        ok = false;
    } else if (expect.controller) {
        using Ctl = core::DynaSpamController::SavedState;
        ok &= diffComponent(
            "controller", *expect.controller, *got.controller, sink, now,
            probe("tcache", &Ctl::tcache),
            probe("configCache", &Ctl::configCache),
            probe("fabrics", &Ctl::fabrics),
            probe("session", &Ctl::session),
            probe("policy", &Ctl::policy),
            probe("mappingInProgress", &Ctl::mappingInProgress),
            probe("mappingKey", &Ctl::mappingKey),
            probe("lastMappingStart", &Ctl::lastMappingStart),
            probe("pending", &Ctl::pending),
            probe("suppressed", &Ctl::suppressed),
            probe("mappedKeys", &Ctl::mappedKeys),
            probe("offloadedKeys", &Ctl::offloadedKeys),
            probe("failedKeys", &Ctl::failedKeys),
            probe("dstats", &Ctl::dstats));
    }

    if (expect.verifier.has_value() != got.verifier.has_value()) {
        sink.report("snapshot", now,
                    "verifier state present in only one snapshot");
        ok = false;
    } else if (expect.verifier) {
        using Ver = Verifier::SavedState;
        ok &= diffComponent(
            "verifier", *expect.verifier, *got.verifier, sink, now,
            probe("lockstep", &Ver::lockstep),
            probe("auditPasses", &Ver::auditPasses),
            probe("structurePasses", &Ver::structurePasses));
    }

    return ok;
}

} // namespace dynaspam::check
