/**
 * @file
 * Invariant auditor implementations.
 */

#include "check/auditors.hh"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "core/configcache.hh"
#include "core/tcache.hh"
#include "fabric/config.hh"
#include "fabric/params.hh"
#include "isa/inst.hh"
#include "ooo/cpu.hh"
#include "ooo/dyninst.hh"

namespace dynaspam::check
{

namespace
{

/** Oracle records one ROB entry covers. */
std::uint64_t
recordSpan(const ooo::DynInst &entry)
{
    return entry.kind == ooo::RobKind::TraceInvoke ? entry.traceLen : 1;
}

} // namespace

// ---------------------------------------------------------------------
// OooAuditor
// ---------------------------------------------------------------------

OooAuditor::OooAuditor(const ooo::OooCpu &c, ViolationSink &s)
    : cpu(c), sink(s), physSeen(c.params.numPhysRegs, 0)
{
}

void
OooAuditor::auditAll(Cycle now)
{
    auditRob(now);
    auditRename(now);
    auditLsq(now);
    auditAtomicity(now);
    auditScheduler(now);
}

void
OooAuditor::auditRob(Cycle now)
{
    const auto &rob = cpu.rob;
    if (!rob.empty() && rob.front().traceIdx != cpu.commitIdx) {
        std::ostringstream os;
        os << "ROB head covers record " << rob.front().traceIdx
           << " but the next record to commit is " << cpu.commitIdx;
        sink.report("rob", now, os.str());
    }

    SeqNum expect_seq = rob.empty() ? 0 : rob.front().seq;
    SeqNum expect_idx = cpu.commitIdx;
    std::uint64_t invocation_entries = 0;
    for (std::size_t i = 0; i < rob.size(); i++) {
        const ooo::DynInst &d = rob[i];
        if (d.seq != expect_seq) {
            std::ostringstream os;
            os << "ROB seq not contiguous at slot " << i << ": entry seq "
               << d.seq << ", expected " << expect_seq;
            sink.report("rob", now, os.str());
            return;
        }
        if (d.traceIdx != expect_idx) {
            std::ostringstream os;
            os << "ROB entry seq " << d.seq << " covers record "
               << d.traceIdx << " but the age-ordered walk expects record "
               << expect_idx << " (commit order broken)";
            sink.report("rob", now, os.str());
            return;
        }
        if (d.kind == ooo::RobKind::Inst && d.completed && !d.issued) {
            std::ostringstream os;
            os << "ROB entry seq " << d.seq
               << " is completed but was never issued";
            sink.report("rob", now, os.str());
        }
        if (d.kind == ooo::RobKind::TraceInvoke) {
            invocation_entries++;
            if (!cpu.invocations.count(d.seq)) {
                std::ostringstream os;
                os << "TraceInvoke ROB entry seq " << d.seq
                   << " has no invocation state";
                sink.report("rob", now, os.str());
            }
        }
        expect_seq++;
        expect_idx += recordSpan(d);
    }

    if (invocation_entries != cpu.invocations.size()) {
        std::ostringstream os;
        os << "invocation-state map holds " << cpu.invocations.size()
           << " entries but the ROB holds " << invocation_entries
           << " TraceInvoke entries";
        sink.report("rob", now, os.str());
    }
}

void
OooAuditor::auditRename(Cycle now)
{
    std::fill(physSeen.begin(), physSeen.end(), 0);

    auto claim = [&](RegIndex phys, const char *role) -> bool {
        if (phys >= physSeen.size()) {
            std::ostringstream os;
            os << role << " holds out-of-range physical register " << phys;
            sink.report("rename", now, os.str());
            return false;
        }
        if (physSeen[phys]++) {
            std::ostringstream os;
            os << "physical register " << phys << " claimed twice ("
               << role << " and an earlier holder)";
            sink.report("rename", now, os.str());
            return false;
        }
        return true;
    };

    for (std::size_t arch = 0; arch < cpu.rat.size(); arch++) {
        if (!claim(cpu.rat[arch], "RAT"))
            return;
    }
    for (RegIndex phys : cpu.freeList) {
        if (!claim(phys, "free list"))
            return;
    }
    for (const ooo::DynInst &d : cpu.rob) {
        if (d.kind == ooo::RobKind::Inst && d.inst && d.inst->hasDest()) {
            if (!claim(d.prevPhys, "in-flight prevPhys"))
                return;
        }
    }
    for (const auto &[seq, inv] : cpu.invocations) {
        for (RegIndex phys : inv.liveOutPrevPhys) {
            if (!claim(phys, "invocation liveOutPrevPhys"))
                return;
        }
    }

    for (std::size_t phys = 0; phys < physSeen.size(); phys++) {
        if (!physSeen[phys]) {
            std::ostringstream os;
            os << "physical register " << phys
               << " leaked: neither mapped, free, nor held by an "
                  "in-flight instruction";
            sink.report("rename", now, os.str());
            return;
        }
    }
}

void
OooAuditor::auditLsq(Cycle now)
{
    auto auditQueue = [&](const std::deque<SeqNum> &queue, bool loads,
                          const char *name) {
        SeqNum prev = 0;
        for (SeqNum seq : queue) {
            if (seq <= prev) {
                std::ostringstream os;
                os << name << " out of age order: seq " << seq
                   << " follows seq " << prev;
                sink.report("lsq", now, os.str());
                return;
            }
            prev = seq;

            const ooo::DynInst *d = cpu.robFind(seq);
            if (!d) {
                std::ostringstream os;
                os << name << " holds seq " << seq
                   << " which is not in the ROB";
                sink.report("lsq", now, os.str());
                return;
            }
            if (loads ? !d->isLoad() : !d->isStore()) {
                std::ostringstream os;
                os << name << " holds seq " << seq
                   << " which is not a " << (loads ? "load" : "store");
                sink.report("lsq", now, os.str());
                return;
            }
            if (loads && d->dependsOnStore && d->dependsOnStore >= seq) {
                std::ostringstream os;
                os << "load seq " << seq
                   << " store-set dependence points at seq "
                   << d->dependsOnStore << ", which is not older";
                sink.report("lsq", now, os.str());
                return;
            }
        }
    };

    auditQueue(cpu.loadQueue, true, "load queue");
    auditQueue(cpu.storeQueue, false, "store queue");
}

void
OooAuditor::auditAtomicity(Cycle now)
{
    for (const auto &[seq, inv] : cpu.invocations) {
        if (inv.resolved)
            continue;
        for (RegIndex phys : inv.liveOutPhys) {
            if (phys < cpu.physReadyCycle.size() &&
                cpu.physReadyCycle[phys] != CYCLE_INVALID) {
                std::ostringstream os;
                os << "invocation seq " << seq
                   << " is unresolved but its live-out phys " << phys
                   << " already reads as ready at cycle "
                   << cpu.physReadyCycle[phys]
                   << " (fat ROB' commit must be atomic)";
                sink.report("atomicity", now, os.str());
                return;
            }
        }
    }
}

void
OooAuditor::auditScheduler(Cycle now)
{
    // The wakeup scheduler and the LSQ line indexes are derived views of
    // the IQ and the memory queues; this audit proves the views stay an
    // exact mirror (the sqBound watermark is cross-checked at its use
    // site by a DYNASPAM_CHECK instead, where the reference predicate is
    // evaluated on identical state).

    // Pass 1: validate every ready/pending entry and count references.
    std::unordered_map<SeqNum, unsigned> schedRefs;
    std::size_t ready_total = 0;
    std::size_t pending_total = 0;
    auto checkEntry = [&](SeqNum seq, unsigned type,
                          const char *where) -> bool {
        const ooo::DynInst *d = cpu.robFind(seq);
        if (!d || !d->inIq || d->issued) {
            std::ostringstream os;
            os << where << " list holds seq " << seq << " which is "
               << (!d ? "not in the ROB"
                      : (d->issued ? "already issued" : "not in the IQ"));
            sink.report("scheduler", now, os.str());
            return false;
        }
        if (unsigned(d->inst->fuType()) != type) {
            std::ostringstream os;
            os << where << " list " << type << " holds seq " << seq
               << " whose FU type is " << unsigned(d->inst->fuType());
            sink.report("scheduler", now, os.str());
            return false;
        }
        if (d->waitCount != 0) {
            std::ostringstream os;
            os << where << " list holds seq " << seq << " which still has "
               << unsigned(d->waitCount) << " unknown sources";
            sink.report("scheduler", now, os.str());
            return false;
        }
        if (schedRefs[seq]++) {
            std::ostringstream os;
            os << "seq " << seq
               << " referenced twice across the ready/pending lists";
            sink.report("scheduler", now, os.str());
            return false;
        }
        return true;
    };
    for (unsigned t = 0; t < cpu.readyByType.size(); t++) {
        ready_total += cpu.readyByType[t].size();
        for (SeqNum seq : cpu.readyByType[t]) {
            if (!checkEntry(seq, t, "ready"))
                return;
        }
    }
    for (unsigned t = 0; t < cpu.pendingByType.size(); t++) {
        pending_total += cpu.pendingByType[t].size();
        for (const auto &pw : cpu.pendingByType[t]) {
            if (!checkEntry(pw.seq, t, "pending"))
                return;
        }
    }
    if (ready_total != cpu.readyCount || pending_total != cpu.pendingCount) {
        std::ostringstream os;
        os << "scheduler counters out of sync: readyCount "
           << cpu.readyCount << " vs " << ready_total << " entries, "
           << "pendingCount " << cpu.pendingCount << " vs "
           << pending_total << " entries";
        sink.report("scheduler", now, os.str());
        return;
    }

    // Pass 2: consumer-list registrations, one per unknown source.
    std::unordered_map<SeqNum, unsigned> consumerRefs;
    for (std::size_t phys = 0; phys < cpu.regConsumers.size(); phys++) {
        const auto &consumers = cpu.regConsumers[phys];
        if (consumers.empty())
            continue;
        if (cpu.physReadyCycle[phys] != CYCLE_INVALID) {
            std::ostringstream os;
            os << "phys " << phys << " has " << consumers.size()
               << " registered consumers but already reads as ready at "
                  "cycle " << cpu.physReadyCycle[phys];
            sink.report("scheduler", now, os.str());
            return;
        }
        for (SeqNum seq : consumers) {
            const ooo::DynInst *d = cpu.robFind(seq);
            if (!d || !d->inIq || d->issued) {
                std::ostringstream os;
                os << "phys " << phys << " consumer list holds seq " << seq
                   << " which is not waiting in the IQ";
                sink.report("scheduler", now, os.str());
                return;
            }
            consumerRefs[seq]++;
        }
    }

    // Pass 3: every waiting IQ instruction is accounted for exactly once.
    for (SeqNum seq : cpu.iq) {
        const ooo::DynInst *d = cpu.robFind(seq);
        if (!d || !d->inIq) {
            std::ostringstream os;
            os << "IQ holds seq " << seq
               << (d ? " whose inIq flag is clear" : " not in the ROB");
            sink.report("scheduler", now, os.str());
            return;
        }
        const unsigned sched = schedRefs.count(seq) ? schedRefs[seq] : 0;
        const unsigned cons =
            consumerRefs.count(seq) ? consumerRefs[seq] : 0;
        if (d->waitCount == 0 && (sched != 1 || cons != 0)) {
            std::ostringstream os;
            os << "seq " << seq << " has no unknown sources but " << sched
               << " ready/pending references and " << cons
               << " consumer registrations (want 1 and 0)";
            sink.report("scheduler", now, os.str());
            return;
        }
        if (d->waitCount != 0 &&
            (sched != 0 || cons != unsigned(d->waitCount))) {
            std::ostringstream os;
            os << "seq " << seq << " waits on " << unsigned(d->waitCount)
               << " sources but has " << sched
               << " ready/pending references and " << cons
               << " consumer registrations";
            sink.report("scheduler", now, os.str());
            return;
        }
    }
    if (ready_total + pending_total > cpu.iq.size()) {
        std::ostringstream os;
        os << "scheduler lists hold " << ready_total + pending_total
           << " entries but the IQ holds only " << cpu.iq.size();
        sink.report("scheduler", now, os.str());
        return;
    }

    // Pass 4: the LSQ line indexes mirror the queues exactly.
    auto auditIndex = [&](const std::deque<SeqNum> &queue,
                          const ooo::OooCpu::LsqIndex &index,
                          const char *name) -> bool {
        ooo::OooCpu::LsqIndex expect;
        for (SeqNum seq : queue) {
            const ooo::DynInst *d = cpu.robFind(seq);
            if (!d || !d->record)
                return true;    // auditLsq already reported this
            expect[ooo::OooCpu::lsqLine(d->record->effAddr)].push_back(seq);
        }
        if (index == expect)
            return true;
        std::ostringstream os;
        os << name << " line index does not mirror the queue ("
           << index.size() << " lines indexed, " << expect.size()
           << " expected)";
        sink.report("scheduler", now, os.str());
        return false;
    };
    if (!auditIndex(cpu.loadQueue, cpu.loadsByLine, "load"))
        return;
    if (!auditIndex(cpu.storeQueue, cpu.storesByLine, "store"))
        return;

    // Pass 5: retiredByLine mirrors the post-commit store buffer.
    std::size_t retired_total = 0;
    for (const auto &[line, entries] : cpu.retiredByLine) {
        retired_total += entries.size();
        SeqNum prev = 0;
        for (const auto &rs : entries) {
            if (ooo::OooCpu::lsqLine(rs.addr) != line || rs.seq <= prev) {
                std::ostringstream os;
                os << "retired-store line index entry seq " << rs.seq
                   << " misfiled or out of age order on line " << line;
                sink.report("scheduler", now, os.str());
                return;
            }
            prev = rs.seq;
        }
    }
    if (retired_total != cpu.storeBuffer.size()) {
        std::ostringstream os;
        os << "retired-store line index holds " << retired_total
           << " entries but the store buffer holds "
           << cpu.storeBuffer.size();
        sink.report("scheduler", now, os.str());
        return;
    }
}

// ---------------------------------------------------------------------
// StructureAuditor
// ---------------------------------------------------------------------

void
StructureAuditor::auditTCache(const core::TCache &tcache, Cycle now)
{
    const unsigned max_counter = bits::counterMax(tcache.params.counterBits);
    for (std::size_t i = 0; i < tcache.entries.size(); i++) {
        const auto &entry = tcache.entries[i];
        if (!entry.valid) {
            if (entry.hot) {
                std::ostringstream os;
                os << "T-Cache entry " << i << " is hot but invalid";
                sink.report("tcache", now, os.str());
            }
            continue;
        }
        if (tcache.indexOf(entry.key) != i) {
            std::ostringstream os;
            os << "T-Cache entry " << i << " holds key 0x" << std::hex
               << entry.key << std::dec << " which maps to index "
               << tcache.indexOf(entry.key);
            sink.report("tcache", now, os.str());
        }
        if (entry.counter > max_counter) {
            std::ostringstream os;
            os << "T-Cache entry " << i << " counter " << entry.counter
               << " exceeds the " << tcache.params.counterBits
               << "-bit saturation range";
            sink.report("tcache", now, os.str());
        }
        if (entry.hot && entry.counter <= tcache.params.hotThreshold) {
            std::ostringstream os;
            os << "T-Cache entry " << i << " is hot with counter "
               << entry.counter << " <= threshold "
               << tcache.params.hotThreshold;
            sink.report("tcache", now, os.str());
        }
    }
}

void
StructureAuditor::auditConfigCache(const core::ConfigCache &cache,
                                   const fabric::FabricParams &params,
                                   Cycle now)
{
    const unsigned max_counter = bits::counterMax(cache.params.counterBits);
    for (std::size_t i = 0; i < cache.entries.size(); i++) {
        const auto &entry = cache.entries[i];
        if (!entry.valid)
            continue;
        if (cache.indexOf(entry.key) != i) {
            std::ostringstream os;
            os << "config-cache entry " << i << " holds key 0x" << std::hex
               << entry.key << std::dec << " which maps to index "
               << cache.indexOf(entry.key);
            sink.report("configcache", now, os.str());
        }
        if (entry.counter > max_counter) {
            std::ostringstream os;
            os << "config-cache entry " << i << " counter " << entry.counter
               << " exceeds the " << cache.params.counterBits
               << "-bit saturation range";
            sink.report("configcache", now, os.str());
        }
        if (!entry.config) {
            std::ostringstream os;
            os << "config-cache entry " << i
               << " is valid but holds no configuration";
            sink.report("configcache", now, os.str());
            continue;
        }
        if (!entry.config->valid()) {
            std::ostringstream os;
            os << "config-cache entry " << i
               << " holds an empty configuration";
            sink.report("configcache", now, os.str());
            continue;
        }
        if (entry.config->key != entry.key) {
            std::ostringstream os;
            os << "config-cache entry " << i << " key 0x" << std::hex
               << entry.key << " does not match its configuration's key 0x"
               << entry.config->key << std::dec;
            sink.report("configcache", now, os.str());
        }
        auditFabricConfig(*entry.config, params, sink, now);
    }
}

// ---------------------------------------------------------------------
// Fabric configuration (frontier legality)
// ---------------------------------------------------------------------

namespace
{

/** Report one frontier violation, prefixed with the config identity. */
void
frontierViolation(const fabric::FabricConfig &config, ViolationSink &sink,
                  Cycle now, const std::string &what)
{
    std::ostringstream os;
    os << "config key 0x" << std::hex << config.key << std::dec << ": "
       << what;
    sink.report("frontier", now, os.str());
}

} // namespace

void
auditFabricConfig(const fabric::FabricConfig &config,
                  const fabric::FabricParams &params, ViolationSink &sink,
                  Cycle now)
{
    const std::size_t n = config.insts.size();

    if (config.numRecords != n) {
        std::ostringstream os;
        os << "covers " << config.numRecords << " records but places "
           << n << " instructions";
        frontierViolation(config, sink, now, os.str());
        return;
    }
    if (config.liveIns.size() > params.liveInFifos) {
        std::ostringstream os;
        os << config.liveIns.size() << " live-ins exceed the "
           << params.liveInFifos << " live-in FIFOs";
        frontierViolation(config, sink, now, os.str());
    }
    if (config.liveOuts.size() > params.liveOutFifos) {
        std::ostringstream os;
        os << config.liveOuts.size() << " live-outs exceed the "
           << params.liveOutFifos << " live-out FIFOs";
        frontierViolation(config, sink, now, os.str());
    }

    // Geometry, PE uniqueness, and route legality.
    std::vector<std::uint8_t> peUsed(
        std::size_t(params.numStripes) * params.pesPerStripe(), 0);
    bool has_stores = false;
    unsigned max_stripe = 0;

    for (std::size_t i = 0; i < n; i++) {
        const fabric::MappedInst &mi = config.insts[i];
        has_stores |= mi.isStore;
        max_stripe = std::max(max_stripe, unsigned(mi.pe.stripe));

        if (mi.pe.stripe >= params.numStripes ||
            mi.pe.index >= params.pesPerStripe()) {
            std::ostringstream os;
            os << "inst " << i << " placed at stripe "
               << unsigned(mi.pe.stripe) << " PE " << unsigned(mi.pe.index)
               << ", outside the fabric geometry";
            frontierViolation(config, sink, now, os.str());
            return;
        }
        std::uint8_t &used =
            peUsed[std::size_t(mi.pe.stripe) * params.pesPerStripe() +
                   mi.pe.index];
        if (used++) {
            std::ostringstream os;
            os << "stripe " << unsigned(mi.pe.stripe) << " PE "
               << unsigned(mi.pe.index) << " allocated twice";
            frontierViolation(config, sink, now, os.str());
            return;
        }

        for (const fabric::OperandRoute *route : {&mi.src1, &mi.src2}) {
            using Kind = fabric::OperandRoute::Kind;
            switch (route->kind) {
              case Kind::None:
                break;
              case Kind::LiveIn:
                if (route->liveInIdx >= config.liveIns.size()) {
                    std::ostringstream os;
                    os << "inst " << i << " reads live-in slot "
                       << route->liveInIdx << " of "
                       << config.liveIns.size();
                    frontierViolation(config, sink, now, os.str());
                    return;
                }
                break;
              case Kind::PassReg:
              case Kind::Routed: {
                if (route->producerIdx >= i) {
                    std::ostringstream os;
                    os << "inst " << i << " consumes producer "
                       << route->producerIdx
                       << " which is not earlier in program order";
                    frontierViolation(config, sink, now, os.str());
                    return;
                }
                const fabric::MappedInst &prod =
                    config.insts[route->producerIdx];
                if (prod.destArch == REG_INVALID) {
                    std::ostringstream os;
                    os << "inst " << i << " consumes producer "
                       << route->producerIdx
                       << " which produces no value";
                    frontierViolation(config, sink, now, os.str());
                    return;
                }
                if (prod.pe.stripe >= mi.pe.stripe) {
                    std::ostringstream os;
                    os << "inst " << i << " in stripe "
                       << unsigned(mi.pe.stripe)
                       << " consumes a value from stripe "
                       << unsigned(prod.pe.stripe)
                       << " (dataflow must move strictly forward)";
                    frontierViolation(config, sink, now, os.str());
                    return;
                }
                const unsigned span =
                    unsigned(mi.pe.stripe) - prod.pe.stripe - 1;
                if (route->kind == Kind::Routed && route->hops != span) {
                    std::ostringstream os;
                    os << "inst " << i << " routed operand pays "
                       << route->hops << " hops but crosses " << span
                       << " extra stripe boundaries";
                    frontierViolation(config, sink, now, os.str());
                    return;
                }
                break;
              }
            }
        }
    }

    if (config.stripesUsed != max_stripe + 1) {
        std::ostringstream os;
        os << "stripesUsed is " << unsigned(config.stripesUsed)
           << " but the deepest placement is in stripe " << max_stripe;
        frontierViolation(config, sink, now, os.str());
    }
    if (config.hasStores != has_stores) {
        frontierViolation(config, sink, now,
                          "hasStores flag disagrees with the placements");
    }

    // Live-outs: sorted by arch, unique, produced by the last writer.
    for (std::size_t i = 0; i < config.liveOuts.size(); i++) {
        const fabric::LiveOut &lo = config.liveOuts[i];
        if (i > 0 && config.liveOuts[i - 1].arch >= lo.arch) {
            frontierViolation(config, sink, now,
                              "live-outs not sorted by arch register");
            return;
        }
        if (lo.producerIdx >= n ||
            config.insts[lo.producerIdx].destArch != lo.arch) {
            std::ostringstream os;
            os << "live-out arch " << lo.arch
               << " credited to inst " << lo.producerIdx
               << " which does not write it";
            frontierViolation(config, sink, now, os.str());
            return;
        }
        for (std::size_t j = lo.producerIdx + 1; j < n; j++) {
            if (config.insts[j].destArch == lo.arch) {
                std::ostringstream os;
                os << "live-out arch " << lo.arch << " credited to inst "
                   << lo.producerIdx << " but inst " << j
                   << " writes it later";
                frontierViolation(config, sink, now, os.str());
                return;
            }
        }
    }

    // Pass-register pressure: each boundary b (feeding stripe b) carries
    // at least one register per distinct producer whose value crosses it.
    // The count here is a lower bound on the mapper's allocation, so
    // exceeding the capacity is definitely illegal.
    std::vector<std::vector<std::uint16_t>> crossing(params.numStripes + 1);
    for (std::size_t i = 0; i < n; i++) {
        for (const fabric::OperandRoute *route :
             {&config.insts[i].src1, &config.insts[i].src2}) {
            using Kind = fabric::OperandRoute::Kind;
            if (route->kind != Kind::PassReg && route->kind != Kind::Routed)
                continue;
            const fabric::MappedInst &prod =
                config.insts[route->producerIdx];
            for (unsigned b = prod.pe.stripe + 1;
                 b <= config.insts[i].pe.stripe; b++) {
                crossing[b].push_back(route->producerIdx);
            }
        }
    }
    for (unsigned b = 0; b < crossing.size(); b++) {
        auto &producers = crossing[b];
        std::sort(producers.begin(), producers.end());
        producers.erase(std::unique(producers.begin(), producers.end()),
                        producers.end());
        if (producers.size() > params.boundaryCapacity()) {
            std::ostringstream os;
            os << "boundary " << b << " carries " << producers.size()
               << " distinct values but has only "
               << params.boundaryCapacity() << " pass registers";
            frontierViolation(config, sink, now, os.str());
            return;
        }
    }
}

} // namespace dynaspam::check
