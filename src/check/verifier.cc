/**
 * @file
 * Verifier implementation.
 */

#include "check/verifier.hh"

#include "core/controller.hh"

namespace dynaspam::check
{

Verifier::Verifier(const ooo::OooCpu &c, const isa::DynamicTrace &trace,
                   const mem::FunctionalMemory &initial_memory,
                   const core::DynaSpamController *ctrl,
                   ViolationSink &s)
    : cpu(c), controller(ctrl), sink(s),
      lockstep(trace, initial_memory, s), oooAuditor(c, s),
      structureAuditor(s), interval(auditInterval())
{
    if (!interval)
        interval = 1;
}

void
Verifier::onCommit(SeqNum first_idx, std::uint32_t count, bool via_fabric,
                   Cycle now)
{
    lockstep.onCommit(first_idx, count, via_fabric, now);
}

void
Verifier::onCycleEnd(Cycle now)
{
    if (now % interval != 0)
        return;
    oooAuditor.auditAll(now);
    statAuditPasses++;

    if (now % (interval * structureStride) == 0)
        auditStructures(now);
}

void
Verifier::auditStructures(Cycle now)
{
    if (!controller)
        return;
    structureAuditor.auditTCache(controller->tcache(), now);
    structureAuditor.auditConfigCache(controller->configCache(),
                                      controller->fabricConfigParams(),
                                      now);
    statStructurePasses++;
}

void
Verifier::finish(Cycle now)
{
    lockstep.finish(now);
    oooAuditor.auditAll(now);
    auditStructures(now);
}

} // namespace dynaspam::check
