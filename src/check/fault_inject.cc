/**
 * @file
 * Fault-injection scenarios.
 */

#include "check/fault_inject.hh"

#include <ostream>
#include <utility>

#include "check/auditors.hh"
#include "check/golden.hh"
#include "check/snapshot_audit.hh"
#include "core/configcache.hh"
#include "core/tcache.hh"
#include "fabric/config.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/cpu.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

namespace dynaspam::check
{

namespace
{

/** A fresh pipeline over @p trace, suitable for direct state surgery. */
struct CpuFixture
{
    mem::MemoryHierarchy hierarchy{mem::MemoryHierarchy::Params{}};
    ooo::OooCpu cpu;

    explicit CpuFixture(const isa::DynamicTrace &trace)
        : cpu(ooo::OooParams{}, trace, hierarchy)
    {
    }
};

/** A minimal legal two-instruction fabric configuration:
 *  stripe 0 produces a value that stripe 1 consumes via pass regs. */
fabric::FabricConfig
legalConfig()
{
    fabric::FabricConfig config;
    config.key = 0;
    config.numRecords = 2;
    config.stripesUsed = 2;

    fabric::MappedInst producer;
    producer.op = isa::Opcode::MOVI;
    producer.pe = {0, 0};
    producer.destArch = 1;
    config.insts.push_back(producer);

    fabric::MappedInst consumer;
    consumer.op = isa::Opcode::ADD;
    consumer.pe = {1, 0};
    consumer.src1.kind = fabric::OperandRoute::Kind::PassReg;
    consumer.src1.producerIdx = 0;
    consumer.src2.kind = fabric::OperandRoute::Kind::PassReg;
    consumer.src2.producerIdx = 0;
    consumer.destArch = 2;
    config.insts.push_back(consumer);

    config.liveOuts.push_back({1, 0});
    config.liveOuts.push_back({2, 1});
    return config;
}

} // namespace

bool
FaultInjector::injectRobFault()
{
    isa::Program program("empty");
    isa::DynamicTrace trace(program);
    CpuFixture fx(trace);

    ooo::DynInst first;
    first.seq = 1;
    first.traceIdx = 0;
    ooo::DynInst second;
    second.seq = 2;
    second.traceIdx = 1;
    fx.cpu.rob.push_back(first);
    fx.cpu.rob.push_back(second);

    ViolationSink sink(ViolationSink::Mode::Collect);
    OooAuditor auditor(fx.cpu, sink);
    auditor.auditRob(0);
    if (!sink.empty())
        return false;

    fx.cpu.rob.back().seq = 5;      // tear the age-ordered window
    auditor.auditRob(1);
    return sink.firedFrom("rob");
}

bool
FaultInjector::injectRenameFault()
{
    isa::Program program("empty");
    isa::DynamicTrace trace(program);
    CpuFixture fx(trace);

    ViolationSink sink(ViolationSink::Mode::Collect);
    OooAuditor auditor(fx.cpu, sink);
    auditor.auditRename(0);
    if (!sink.empty())
        return false;

    // Free the same register twice: the classic double-free that makes
    // two later instructions share one physical register.
    fx.cpu.freeList.push_back(fx.cpu.freeList.front());
    auditor.auditRename(1);
    return sink.firedFrom("rename");
}

bool
FaultInjector::injectLsqFault()
{
    isa::ProgramBuilder b("loads");
    b.ld(1, 0, 0);
    b.ld(2, 0, 8);
    b.halt();
    const isa::Program program = b.build();
    isa::DynamicTrace trace(program);
    CpuFixture fx(trace);

    for (SeqNum seq = 1; seq <= 2; seq++) {
        ooo::DynInst d;
        d.seq = seq;
        d.traceIdx = seq - 1;
        d.inst = &program.inst(InstAddr(seq - 1));
        fx.cpu.rob.push_back(d);
        fx.cpu.loadQueue.push_back(seq);
    }

    ViolationSink sink(ViolationSink::Mode::Collect);
    OooAuditor auditor(fx.cpu, sink);
    auditor.auditLsq(0);
    if (!sink.empty())
        return false;

    std::swap(fx.cpu.loadQueue[0], fx.cpu.loadQueue[1]);
    auditor.auditLsq(1);
    return sink.firedFrom("lsq");
}

bool
FaultInjector::injectAtomicityFault()
{
    isa::Program program("empty");
    isa::DynamicTrace trace(program);
    CpuFixture fx(trace);

    // An unresolved in-flight invocation with one allocated live-out.
    const RegIndex phys = fx.cpu.freeList.back();
    fx.cpu.freeList.pop_back();
    fx.cpu.physReadyCycle[phys] = CYCLE_INVALID;
    ooo::OooCpu::InvocationState inv;
    inv.liveOutPhys.push_back(phys);
    fx.cpu.invocations.emplace(1, inv);

    ViolationSink sink(ViolationSink::Mode::Collect);
    OooAuditor auditor(fx.cpu, sink);
    auditor.auditAtomicity(0);
    if (!sink.empty())
        return false;

    // The fabric "leaks" the live-out before the fat entry commits.
    fx.cpu.physReadyCycle[phys] = 42;
    auditor.auditAtomicity(1);
    return sink.firedFrom("atomicity");
}

bool
FaultInjector::injectSchedulerFault()
{
    isa::ProgramBuilder b("alu");
    b.movi(1, 5);
    b.halt();
    const isa::Program program = b.build();
    isa::DynamicTrace trace(program);
    CpuFixture fx(trace);

    // One dispatched, ready-to-issue instruction with its single
    // scheduler reference in the matching ready list.
    ooo::DynInst d;
    d.seq = 1;
    d.traceIdx = 0;
    d.inst = &program.inst(0);
    d.inIq = true;
    fx.cpu.rob.push_back(d);
    fx.cpu.iq.push_back(1);
    const unsigned type = unsigned(program.inst(0).fuType());
    fx.cpu.readyByType[type].push_back(1);
    fx.cpu.readyCount = 1;

    ViolationSink sink(ViolationSink::Mode::Collect);
    OooAuditor auditor(fx.cpu, sink);
    auditor.auditScheduler(0);
    if (!sink.empty())
        return false;

    // A stale wakeup left behind by a squash: the ready list names an
    // instruction the ROB no longer holds.
    fx.cpu.readyByType[type].push_back(99);
    fx.cpu.readyCount++;
    auditor.auditScheduler(1);
    return sink.firedFrom("scheduler");
}

bool
FaultInjector::injectTCacheFault()
{
    core::TCache tcache;
    auto &entry = tcache.entries[0];
    entry.valid = true;
    entry.key = 0;
    entry.counter = 1;

    ViolationSink sink(ViolationSink::Mode::Collect);
    StructureAuditor auditor(sink);
    auditor.auditTCache(tcache, 0);
    if (!sink.empty())
        return false;

    entry.hot = true;               // hot while far below the threshold
    auditor.auditTCache(tcache, 1);
    return sink.firedFrom("tcache");
}

bool
FaultInjector::injectConfigCacheFault()
{
    core::ConfigCache cache;
    auto &entry = cache.entries[0];
    entry.valid = true;
    entry.key = 0;
    entry.config =
        std::make_shared<const fabric::FabricConfig>(legalConfig());

    ViolationSink sink(ViolationSink::Mode::Collect);
    StructureAuditor auditor(sink);
    fabric::FabricParams params;
    auditor.auditConfigCache(cache, params, 0);
    if (!sink.empty())
        return false;

    entry.config = nullptr;         // valid entry with nothing behind it
    auditor.auditConfigCache(cache, params, 1);
    return sink.firedFrom("configcache");
}

bool
FaultInjector::injectFrontierFault()
{
    fabric::FabricConfig config = legalConfig();
    fabric::FabricParams params;

    ViolationSink sink(ViolationSink::Mode::Collect);
    auditFabricConfig(config, params, sink, 0);
    if (!sink.empty())
        return false;

    // Point the consumer at itself: dataflow no longer moves forward
    // through the frontier.
    config.insts[1].src1.producerIdx = 1;
    auditFabricConfig(config, params, sink, 1);
    return sink.firedFrom("frontier");
}

bool
FaultInjector::injectGoldenFault()
{
    isa::ProgramBuilder b("tiny");
    b.movi(1, 5);
    b.add(2, 1, 1);
    b.halt();
    const isa::Program program = b.build();

    mem::FunctionalMemory memory;
    isa::DynamicTrace trace(program);
    isa::Executor::run(program, memory, &trace);

    // Clean: in-order commit of the faithful trace passes.
    {
        ViolationSink sink(ViolationSink::Mode::Collect);
        mem::FunctionalMemory initial;
        LockstepChecker checker(trace, initial, sink);
        for (SeqNum i = 0; i < trace.size(); i++)
            checker.onCommit(i, 1, false, i);
        checker.finish(trace.size());
        if (!sink.empty())
            return false;
    }

    // Fault 1: the pipeline commits record 1 before record 0.
    {
        ViolationSink sink(ViolationSink::Mode::Collect);
        mem::FunctionalMemory initial;
        LockstepChecker checker(trace, initial, sink);
        checker.onCommit(1, 1, false, 0);
        if (!sink.firedFrom("golden"))
            return false;
    }

    // Fault 2: the oracle trace itself is wrong (bad branch target).
    {
        isa::DynamicTrace bad(program);
        for (SeqNum i = 0; i < trace.size(); i++) {
            isa::DynRecord rec = trace[i];
            if (i == 1)
                rec.nextPc = 7;
            bad.append(rec);
        }
        ViolationSink sink(ViolationSink::Mode::Collect);
        mem::FunctionalMemory initial;
        LockstepChecker checker(bad, initial, sink);
        for (SeqNum i = 0; i < bad.size(); i++)
            checker.onCommit(i, 1, false, i);
        if (!sink.firedFrom("golden"))
            return false;
    }
    return true;
}

bool
FaultInjector::injectSnapshotFault()
{
    // A short loop so the snapshot catches in-flight pipeline state.
    isa::ProgramBuilder b("snaploop");
    b.movi(1, 0);
    b.movi(2, 8);
    b.label("head");
    b.addi(1, 1, 1);
    b.blt(1, 2, "head");
    b.halt();
    const isa::Program program = b.build();

    mem::FunctionalMemory memory;
    auto input = sim::SimInput::make(program, memory);
    const sim::SystemConfig cfg =
        sim::SystemConfig::make(sim::SystemMode::AccelSpec);

    sim::Simulation source(cfg, input);
    for (int i = 0; i < 20 && !source.done(); i++)
        source.tick();
    sim::Snapshot snap;
    source.snapshot(snap);

    sim::Simulation restored(cfg, input);
    restored.restore(snap);
    sim::Snapshot echo;
    restored.snapshot(echo);

    // Clean: a faithful restore round-trips exactly.
    ViolationSink sink(ViolationSink::Mode::Collect);
    if (!auditSnapshotRoundTrip(snap, echo, sink, source.now()) ||
        !sink.empty())
        return false;

    // Fault 1: a restore that silently lost a pipeline field.
    echo.cpu.curCycle += 1;
    if (auditSnapshotRoundTrip(snap, echo, sink, source.now()))
        return false;
    if (!sink.firedFrom("snapshot"))
        return false;

    // Fault 2: a controller-side divergence (stat drift).
    sink.clear();
    restored.snapshot(echo);
    if (!echo.controller)
        return false;
    echo.controller->dstats.tracesConsidered += 1;
    if (auditSnapshotRoundTrip(snap, echo, sink, source.now()))
        return false;
    return sink.firedFrom("snapshot");
}

bool
runSelfTest(std::ostream &os)
{
    struct Scenario
    {
        const char *name;
        bool (*run)();
    };
    const Scenario scenarios[] = {
        {"rob age-ordering / in-order commit", FaultInjector::injectRobFault},
        {"rename map / free-list partition", FaultInjector::injectRenameFault},
        {"load-store queue ordering", FaultInjector::injectLsqFault},
        {"ROB' fat-commit atomicity", FaultInjector::injectAtomicityFault},
        {"scheduler / LSQ-index mirror", FaultInjector::injectSchedulerFault},
        {"T-Cache coherence", FaultInjector::injectTCacheFault},
        {"config-cache validity", FaultInjector::injectConfigCacheFault},
        {"frontier scheduling legality", FaultInjector::injectFrontierFault},
        {"golden-model lockstep", FaultInjector::injectGoldenFault},
        {"snapshot restore round-trip", FaultInjector::injectSnapshotFault},
    };

    bool all_ok = true;
    for (const Scenario &s : scenarios) {
        const bool ok = s.run();
        os << (ok ? "PASS" : "FAIL") << "  " << s.name << "\n";
        all_ok &= ok;
    }
    os << (all_ok ? "self-test passed: every auditor caught its "
                    "seeded violation\n"
                  : "SELF-TEST FAILED\n");
    return all_ok;
}

} // namespace dynaspam::check
