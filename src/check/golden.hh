/**
 * @file
 * Golden-model differential validation (the paper's core claim,
 * machine-checked): a tiny in-order functional interpreter for the
 * micro-ISA, run in lockstep against the committed-instruction stream
 * of the OOO pipeline + fabric.
 *
 * The timing model is oracle-directed — it consumes a pre-resolved
 * DynamicTrace — so two distinct things are validated here:
 *
 *  1. The oracle trace itself: every record's pc/nextPc/effAddr/taken
 *     must match an independent re-execution (GoldenModel is a second
 *     implementation of the ISA semantics, deliberately separate from
 *     isa::Executor).
 *  2. The commit stream: the pipeline (with trace invocations
 *     committing fat atomic blocks via ROB') must retire exactly the
 *     record sequence 0,1,2,... in order, exactly once — i.e. fabric
 *     offload is observationally equivalent to host OOO execution.
 *
 * On first divergence the checker dumps a window of recent commits
 * with disassembly and golden-vs-trace state so the failure is
 * debuggable, then reports through the ViolationSink.
 */

#ifndef DYNASPAM_CHECK_GOLDEN_HH
#define DYNASPAM_CHECK_GOLDEN_HH

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>

#include "check/check.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "isa/trace.hh"
#include "memory/functional_mem.hh"

namespace dynaspam::check
{

/** Architectural effect of one golden-model step. */
struct GoldenEffect
{
    InstAddr pc = 0;
    InstAddr nextPc = 0;
    bool taken = false;         ///< control ops only
    bool isMem = false;
    Addr effAddr = 0;           ///< memory ops only
    RegIndex dest = REG_INVALID;
    std::uint64_t destValue = 0;
    bool halted = false;
};

/**
 * The in-order functional reference interpreter. Holds its own
 * register file and a private copy of memory; steps one instruction
 * at a time from its own PC.
 */
class GoldenModel
{
  public:
    GoldenModel(const isa::Program &program,
                const mem::FunctionalMemory &initial_memory);

    /** Execute the instruction at the current PC. */
    GoldenEffect step();

    InstAddr pc() const { return curPc; }
    bool halted() const { return isHalted; }
    std::uint64_t reg(RegIndex index) const { return regs.at(index); }
    const mem::FunctionalMemory &memory() const { return mem; }

    /** Complete interpreter state (the memory copy is a deep copy). */
    struct SavedState
    {
        mem::FunctionalMemory mem;
        std::array<std::uint64_t, isa::NUM_ARCH_REGS> regs{};
        InstAddr curPc = 0;
        bool isHalted = false;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.mem = mem;
        out.regs = regs;
        out.curPc = curPc;
        out.isHalted = isHalted;
    }

    void
    restore(const SavedState &in)
    {
        mem = in.mem;
        regs = in.regs;
        curPc = in.curPc;
        isHalted = in.isHalted;
    }

  private:
    const isa::Program &prog;
    mem::FunctionalMemory mem;
    std::array<std::uint64_t, isa::NUM_ARCH_REGS> regs{};
    InstAddr curPc = 0;
    bool isHalted = false;
};

/**
 * Lockstep commit-stream checker. Feed it every commit (host
 * instructions one record at a time, fabric invocations as atomic
 * blocks); it steps the golden model per record and diffs.
 */
class LockstepChecker
{
  public:
    /** Number of recent commits kept for the divergence dump. */
    static constexpr std::size_t windowSize = 32;

    LockstepChecker(const isa::DynamicTrace &trace,
                    const mem::FunctionalMemory &initial_memory,
                    ViolationSink &sink);

    /**
     * Records [first_idx, first_idx + count) committed atomically at
     * @p now. @p via_fabric marks fat trace-invocation commits.
     */
    void onCommit(SeqNum first_idx, std::uint32_t count, bool via_fabric,
                  Cycle now);

    /** End of run: every trace record must have committed. */
    void finish(Cycle now);

    /** Next record index the checker expects to commit. */
    SeqNum expected() const { return nextIdx; }

    std::uint64_t commitsChecked() const { return checked; }

    /** Dump the recent-commit window (also done on divergence). */
    void dumpWindow(std::ostream &os) const;

  private:
    struct CommitEvent
    {
        SeqNum idx = 0;
        InstAddr pc = 0;
        bool viaFabric = false;
        Cycle cycle = 0;

        bool operator==(const CommitEvent &) const = default;
    };

  public:
    /** Complete checker state: the golden model plus the commit cursor
     *  and the divergence-dump window. */
    struct SavedState
    {
        GoldenModel::SavedState golden;
        SeqNum nextIdx = 0;
        std::uint64_t checked = 0;
        bool dead = false;
        std::deque<CommitEvent> window;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        golden.save(out.golden);
        out.nextIdx = nextIdx;
        out.checked = checked;
        out.dead = dead;
        out.window = window;
    }

    void
    restore(const SavedState &in)
    {
        golden.restore(in.golden);
        nextIdx = in.nextIdx;
        checked = in.checked;
        dead = in.dead;
        window = in.window;
    }

  private:

    void checkRecord(SeqNum idx, bool via_fabric, Cycle now);
    void diverged(SeqNum idx, Cycle now, const std::string &what);

    const isa::DynamicTrace &trace;
    GoldenModel golden;
    ViolationSink &sink;

    SeqNum nextIdx = 0;
    std::uint64_t checked = 0;
    bool dead = false;          ///< stop after first divergence
    std::deque<CommitEvent> window;
};

} // namespace dynaspam::check

#endif // DYNASPAM_CHECK_GOLDEN_HH
