/**
 * @file
 * Invariant-checking framework: the DYNASPAM_CHECK / DYNASPAM_DCHECK
 * macros, the runtime enable knob, and the violation sink the
 * per-subsystem auditors report through.
 *
 * Cost model: the macros compile to a dead `if (false && ...)` unless
 * the build sets -DDYNASPAM_CHECKS=ON (which defines
 * DYNASPAM_CHECKS_BUILD), so release binaries pay nothing while the
 * checked expressions still parse and type-check in every
 * configuration. In checked builds a runtime knob (environment
 * variable DYNASPAM_CHECKS=0/1) can still turn enforcement off.
 *
 * Reporting: ad-hoc DYNASPAM_CHECK failures abort like panic() — they
 * indicate simulator bugs. Auditors instead report through a
 * ViolationSink, which either aborts (production checked runs) or
 * collects (the fault-injection self-test, which must observe that an
 * auditor fired without dying).
 */

#ifndef DYNASPAM_CHECK_CHECK_HH
#define DYNASPAM_CHECK_CHECK_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace dynaspam::check
{

/** True when the build compiled invariant checks in (-DDYNASPAM_CHECKS). */
constexpr bool
compiledIn()
{
#ifdef DYNASPAM_CHECKS_BUILD
    return true;
#else
    return false;
#endif
}

/**
 * Master runtime switch. Defaults to compiledIn(); the DYNASPAM_CHECKS
 * environment variable (0/1/off/on) overrides in either direction —
 * note the auditors and golden model are always built, so even an
 * unchecked build can opt in at runtime (only the inline
 * DYNASPAM_CHECK macro sites are compiled out there).
 */
bool enabled();

/** Cycles between per-subsystem audit passes (DYNASPAM_CHECK_INTERVAL,
 *  default 1: every cycle). */
std::uint64_t auditInterval();

/** One detected invariant violation. */
struct Violation
{
    std::string auditor;    ///< short auditor tag ("rob", "rename", ...)
    std::string message;
    Cycle cycle = 0;
};

/**
 * Destination for auditor reports. Abort mode treats any violation as
 * a simulator bug (prints and aborts, like panic()); Collect mode
 * accumulates them for inspection by tests and the self-test.
 */
class ViolationSink
{
  public:
    enum class Mode : std::uint8_t
    {
        Abort,
        Collect,
    };

    explicit ViolationSink(Mode m = Mode::Abort) : mode(m) {}

    /** Report one violation; aborts in Abort mode. */
    void report(std::string_view auditor, Cycle cycle,
                std::string message);

    const std::vector<Violation> &violations() const { return all; }
    bool empty() const { return all.empty(); }

    /** @return true when any collected violation came from @p auditor. */
    bool firedFrom(std::string_view auditor) const;

    void clear() { all.clear(); }

  private:
    Mode mode;
    std::vector<Violation> all;
};

namespace detail
{

/** Terminal handler for a failed DYNASPAM_CHECK (aborts). */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *expr, const std::string &msg);

inline std::string
formatMessage()
{
    return {};
}

template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail
} // namespace dynaspam::check

/**
 * Check a simulator invariant. Compiled to dead code unless the build
 * enables DYNASPAM_CHECKS; gated by check::enabled() at runtime. The
 * condition must be side-effect free. Extra arguments are streamed
 * into the failure message.
 */
#define DYNASPAM_CHECK(cond, ...)                                         \
    do {                                                                  \
        if (::dynaspam::check::compiledIn() &&                            \
            ::dynaspam::check::enabled() && !(cond)) {                    \
            ::dynaspam::check::detail::checkFailed(                       \
                __FILE__, __LINE__, #cond,                                \
                ::dynaspam::check::detail::formatMessage(__VA_ARGS__));   \
        }                                                                 \
    } while (false)

/**
 * Like DYNASPAM_CHECK but additionally compiled out in NDEBUG builds:
 * for checks too hot even for routine checked runs.
 */
#ifdef NDEBUG
#define DYNASPAM_DCHECK(cond, ...)                                        \
    do {                                                                  \
        if (false && !(cond)) {                                           \
        }                                                                 \
    } while (false)
#else
#define DYNASPAM_DCHECK(cond, ...) DYNASPAM_CHECK(cond, __VA_ARGS__)
#endif

#endif // DYNASPAM_CHECK_CHECK_HH
