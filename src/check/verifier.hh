/**
 * @file
 * The run-time verifier: one object per simulated run that owns the
 * golden-model lockstep checker and the invariant auditors, and drives
 * them from the pipeline's CommitObserver callbacks.
 *
 * Cadence: the pipeline auditors run every check::auditInterval()
 * cycles (default every cycle); the structure audits (T-Cache,
 * configuration cache and every cached fabric configuration) are much
 * heavier per pass and the structures only change on trains/inserts,
 * so they run structureStride times less often. The lockstep checker
 * is driven per commit and so is exact regardless of interval.
 */

#ifndef DYNASPAM_CHECK_VERIFIER_HH
#define DYNASPAM_CHECK_VERIFIER_HH

#include <cstdint>

#include "check/auditors.hh"
#include "check/check.hh"
#include "check/golden.hh"
#include "ooo/cpu.hh"

namespace dynaspam::core
{
class DynaSpamController;
} // namespace dynaspam::core

namespace dynaspam::check
{

/** Drives all checkers for one OooCpu run. Attach with
 *  cpu.setCommitObserver(&verifier); call finish() after cpu.run(). */
class Verifier : public ooo::CommitObserver
{
  public:
    /** Structure audits run every auditInterval() * structureStride
     *  cycles. */
    static constexpr std::uint64_t structureStride = 64;

    /**
     * @param cpu the pipeline under audit
     * @param trace the oracle trace the run commits
     * @param initial_memory starting data-memory image (for the golden
     *        model's private copy)
     * @param controller DynaSpAM controller, or nullptr for baseline
     *        runs (skips the structure audits)
     * @param sink violation destination
     */
    Verifier(const ooo::OooCpu &cpu, const isa::DynamicTrace &trace,
             const mem::FunctionalMemory &initial_memory,
             const core::DynaSpamController *controller,
             ViolationSink &sink);

    void onCommit(SeqNum first_idx, std::uint32_t count, bool via_fabric,
                  Cycle now) override;
    void onCycleEnd(Cycle now) override;

    /** End of run: the whole trace must have committed; final audit. */
    void finish(Cycle now);

    const LockstepChecker &lockstepChecker() const { return lockstep; }
    std::uint64_t auditPasses() const { return statAuditPasses; }
    std::uint64_t structurePasses() const { return statStructurePasses; }

    /** Complete verifier state (the auditors are read-only walkers with
     *  no state of their own). */
    struct SavedState
    {
        LockstepChecker::SavedState lockstep;
        std::uint64_t auditPasses = 0;
        std::uint64_t structurePasses = 0;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        lockstep.save(out.lockstep);
        out.auditPasses = statAuditPasses;
        out.structurePasses = statStructurePasses;
    }

    void
    restore(const SavedState &in)
    {
        lockstep.restore(in.lockstep);
        statAuditPasses = in.auditPasses;
        statStructurePasses = in.structurePasses;
    }

  private:
    void auditStructures(Cycle now);

    const ooo::OooCpu &cpu;
    const core::DynaSpamController *controller;
    ViolationSink &sink;

    LockstepChecker lockstep;
    OooAuditor oooAuditor;
    StructureAuditor structureAuditor;

    std::uint64_t interval;
    std::uint64_t statAuditPasses = 0;
    std::uint64_t statStructurePasses = 0;
};

} // namespace dynaspam::check

#endif // DYNASPAM_CHECK_VERIFIER_HH
