/**
 * @file
 * Invariant framework implementation: runtime knobs and reporting.
 */

#include "check/check.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dynaspam::check
{

namespace
{

/** Parse a boolean-ish environment value; @return fallback when unset. */
bool
envFlag(const char *name, bool fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    if (!std::strcmp(value, "0") || !std::strcmp(value, "off") ||
        !std::strcmp(value, "false")) {
        return false;
    }
    return true;
}

} // namespace

bool
enabled()
{
    static const bool on = envFlag("DYNASPAM_CHECKS", compiledIn());
    return on;
}

std::uint64_t
auditInterval()
{
    static const std::uint64_t interval = [] {
        const char *value = std::getenv("DYNASPAM_CHECK_INTERVAL");
        if (!value || !*value)
            return std::uint64_t(1);
        char *end = nullptr;
        const unsigned long long n = std::strtoull(value, &end, 10);
        return (end && !*end && n > 0) ? std::uint64_t(n)
                                       : std::uint64_t(1);
    }();
    return interval;
}

void
ViolationSink::report(std::string_view auditor, Cycle cycle,
                      std::string message)
{
    if (mode == Mode::Abort) {
        std::fprintf(stderr,
                     "invariant violation [%.*s] at cycle %llu: %s\n",
                     int(auditor.size()), auditor.data(),
                     static_cast<unsigned long long>(cycle),
                     message.c_str());
        std::abort();
    }
    all.push_back({std::string(auditor), std::move(message), cycle});
}

bool
ViolationSink::firedFrom(std::string_view auditor) const
{
    for (const Violation &v : all) {
        if (v.auditor == auditor)
            return true;
    }
    return false;
}

namespace detail
{

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &msg)
{
    std::fprintf(stderr, "DYNASPAM_CHECK failed at %s:%d: %s%s%s\n", file,
                 line, expr, msg.empty() ? "" : " — ", msg.c_str());
    std::abort();
}

} // namespace detail
} // namespace dynaspam::check
