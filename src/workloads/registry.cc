/**
 * @file
 * Workload registry and shared helpers.
 */

#include "workloads/workload.hh"

#include <cctype>
#include <cmath>

#include "common/logging.hh"

namespace dynaspam::workloads
{

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "BP", "BFS", "BT", "HS", "KM", "LD", "KNN", "NW", "PF", "PTF",
        "SRAD",
    };
    return names;
}

std::string
canonicalWorkloadName(const std::string &tag)
{
    std::string name;
    name.reserve(tag.size());
    for (char c : tag)
        name += char(std::toupper(static_cast<unsigned char>(c)));
    return name;
}

Workload
makeWorkload(const std::string &raw_name, unsigned scale)
{
    const std::string name = canonicalWorkloadName(raw_name);
    if (name == "BP")
        return makeBp(scale);
    if (name == "BFS")
        return makeBfs(scale);
    if (name == "BT")
        return makeBt(scale);
    if (name == "HS")
        return makeHs(scale);
    if (name == "KM")
        return makeKm(scale);
    if (name == "LD")
        return makeLd(scale);
    if (name == "KNN")
        return makeKnn(scale);
    if (name == "NW")
        return makeNw(scale);
    if (name == "PF")
        return makePf(scale);
    if (name == "PTF")
        return makePtf(scale);
    if (name == "SRAD")
        return makeSrad(scale);
    fatal("unknown workload '", name, "'");
}

bool
nearlyEqual(const std::vector<double> &a, const std::vector<double> &b,
            double tolerance)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); i++) {
        double diff = std::fabs(a[i] - b[i]);
        double mag = std::fmax(std::fabs(a[i]), std::fabs(b[i]));
        if (diff > tolerance * std::fmax(1.0, mag))
            return false;
    }
    return true;
}

} // namespace dynaspam::workloads
