/**
 * @file
 * KM — Kmeans (mirrors Rodinia kmeans, kmeans_clustering).
 *
 * Structure mirrored: the assignment step — for every point, compute the
 * squared Euclidean distance to each cluster centre over all features and
 * record the argmin. Dense FP multiply-accumulate inner loop, one
 * data-dependent "new minimum?" branch per centre, membership stores.
 */

#include "workloads/workload.hh"

#include <limits>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr PTS_BASE = 0x100000;
constexpr Addr CTR_BASE = 0x400000;
constexpr Addr MEMB_BASE = 0x500000;
constexpr unsigned FEATURES = 32;
constexpr unsigned CLUSTERS = 5;

} // namespace

Workload
makeKm(unsigned scale)
{
    const unsigned num_points = 160 * scale;

    Workload wl;
    wl.name = "KM";
    wl.fullName = "Kmeans";
    wl.kernel = "kmeans_clustering";

    Rng rng(0x6b31);
    std::vector<double> pts(std::size_t(num_points) * FEATURES),
        ctr(std::size_t(CLUSTERS) * FEATURES);
    for (auto &v : pts)
        v = rng.uniform() * 10.0;
    for (auto &v : ctr)
        v = rng.uniform() * 10.0;
    pokeDoubles(wl.initialMemory, PTS_BASE, pts);
    pokeDoubles(wl.initialMemory, CTR_BASE, ctr);

    // --- Reference assignment ------------------------------------------------
    std::vector<std::int64_t> memb_ref(num_points);
    for (unsigned p = 0; p < num_points; p++) {
        double best = std::numeric_limits<double>::max();
        std::int64_t arg = 0;
        for (unsigned c = 0; c < CLUSTERS; c++) {
            double d = 0.0;
            for (unsigned f = 0; f < FEATURES; f++) {
                double diff = pts[p * FEATURES + f] - ctr[c * FEATURES + f];
                d += diff * diff;
            }
            if (d < best) {
                best = d;
                arg = c;
            }
        }
        memb_ref[p] = arg;
    }

    // --- Program ---------------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("km");
    const auto p = intReg(1), np = intReg(2), c = intReg(3),
               nc = intReg(4), f = intReg(5), nf = intReg(6),
               pp = intReg(7), cp = intReg(8), best_c = intReg(9),
               mp = intReg(10), cond = intReg(11), prow = intReg(12);
    const auto dist = fpReg(1), diff = fpReg(2), pv = fpReg(3),
               cv = fpReg(4), best = fpReg(5);

    b.movi(np, num_points);
    b.movi(nc, CLUSTERS);
    b.movi(nf, FEATURES);
    b.movi(p, 0);
    b.movi(prow, PTS_BASE);
    b.movi(mp, MEMB_BASE);

    b.label("point");
    b.fmovi(best, 1e300);
    b.movi(best_c, 0);
    b.movi(c, 0);
    b.movi(cp, CTR_BASE);

    b.label("center");
    b.fmovi(dist, 0.0);
    b.movi(f, 0);
    b.mov(pp, prow);
    b.label("feat");
    b.fld(pv, pp, 0);
    b.fld(cv, cp, 0);
    b.fsub(diff, pv, cv);
    b.fmul(diff, diff, diff);
    b.fadd(dist, dist, diff);
    b.addi(pp, pp, 8);
    b.addi(cp, cp, 8);
    b.addi(f, f, 1);
    b.blt(f, nf, "feat");

    b.fclt(cond, dist, best);
    b.movi(intReg(13), 1);
    b.bne(cond, intReg(13), "not_better");
    b.fadd(best, dist, fpReg(10));      // best = dist (f10 stays 0.0)
    b.mov(best_c, c);
    b.label("not_better");
    b.addi(c, c, 1);
    b.blt(c, nc, "center");

    b.st(mp, best_c, 0);
    b.addi(mp, mp, 8);
    b.addi(prow, prow, 8 * FEATURES);
    b.addi(p, p, 1);
    b.blt(p, np, "point");
    b.halt();
    wl.program = b.build();

    wl.validate = [memb_ref, num_points](const mem::FunctionalMemory &m) {
        return peekInts(m, MEMB_BASE, num_points) == memb_ref;
    };
    return wl;
}

} // namespace dynaspam::workloads
