/**
 * @file
 * BFS — Breadth-First Search (mirrors Rodinia bfs, BFSGraph kernel).
 *
 * Structure mirrored: level-synchronous frontier expansion over a CSR
 * graph with mask/visited/cost arrays. The per-node "is it on the
 * frontier?" and per-edge "already visited?" branches are data dependent
 * and largely unbiased — exactly why BFS shows many short-lived
 * configurations in the paper's Table 5.
 */

#include "workloads/workload.hh"

#include <queue>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr ROW_BASE = 0x100000;
constexpr Addr COL_BASE = 0x200000;
constexpr Addr MASK_BASE = 0x300000;
constexpr Addr NEWMASK_BASE = 0x400000;
constexpr Addr VISITED_BASE = 0x500000;
constexpr Addr COST_BASE = 0x600000;

} // namespace

Workload
makeBfs(unsigned scale)
{
    const unsigned num_nodes = 512 * scale;
    const unsigned avg_degree = 4;

    Workload wl;
    wl.name = "BFS";
    wl.fullName = "Breadth-First Search";
    wl.kernel = "BFSGraph";

    // --- Graph generation (deterministic random CSR) ----------------------
    Rng rng(0xbf501);
    std::vector<std::vector<std::int64_t>> adj(num_nodes);
    for (unsigned n = 0; n < num_nodes; n++) {
        unsigned degree = 1 + unsigned(rng.below(2 * avg_degree));
        for (unsigned d = 0; d < degree; d++)
            adj[n].push_back(std::int64_t(rng.below(num_nodes)));
    }
    // Chain edges guarantee connectivity (so BFS reaches every node).
    for (unsigned n = 0; n + 1 < num_nodes; n++)
        adj[n].push_back(n + 1);

    std::vector<std::int64_t> row(num_nodes + 1), col;
    for (unsigned n = 0; n < num_nodes; n++) {
        row[n] = std::int64_t(col.size());
        for (auto t : adj[n])
            col.push_back(t);
    }
    row[num_nodes] = std::int64_t(col.size());

    pokeInts(wl.initialMemory, ROW_BASE, row);
    pokeInts(wl.initialMemory, COL_BASE, col);
    std::vector<std::int64_t> mask(num_nodes, 0), visited(num_nodes, 0),
        cost(num_nodes, 0);
    mask[0] = 1;
    visited[0] = 1;
    pokeInts(wl.initialMemory, MASK_BASE, mask);
    pokeInts(wl.initialMemory, VISITED_BASE, visited);
    pokeInts(wl.initialMemory, COST_BASE, cost);

    // --- Reference BFS -----------------------------------------------------
    std::vector<std::int64_t> cost_ref(num_nodes, 0);
    {
        std::vector<bool> seen(num_nodes, false);
        std::queue<unsigned> q;
        q.push(0);
        seen[0] = true;
        while (!q.empty()) {
            unsigned n = q.front();
            q.pop();
            for (std::int64_t e = row[n]; e < row[n + 1]; e++) {
                auto id = unsigned(col[std::size_t(e)]);
                if (!seen[id]) {
                    seen[id] = true;
                    cost_ref[id] = cost_ref[n] + 1;
                    q.push(id);
                }
            }
        }
    }

    // --- Program ------------------------------------------------------------
    using isa::intReg;
    isa::ProgramBuilder b("bfs");
    const auto n = intReg(1), off = intReg(2), maskp = intReg(3),
               maskv = intReg(4), rowp = intReg(5), e = intReg(6),
               eend = intReg(7), costp = intReg(8), lvl = intReg(9),
               stop = intReg(10), eoff = intReg(11), colp = intReg(12),
               id = intReg(13), idoff = intReg(14), visp = intReg(15),
               visv = intReg(16), onev = intReg(17), dstp = intReg(18),
               nmp = intReg(19), num = intReg(20), zero = intReg(31);

    b.movi(num, num_nodes);
    b.movi(zero, 0);
    b.movi(onev, 1);

    b.label("level");
    b.movi(stop, 1);
    b.movi(n, 0);

    b.label("node");
    b.shli(off, n, 3);
    b.movi(maskp, MASK_BASE);
    b.add(maskp, maskp, off);
    b.ld(maskv, maskp, 0);
    b.beq(maskv, zero, "skip_node");

    b.st(maskp, zero, 0);                       // mask[n] = 0
    b.movi(rowp, ROW_BASE);
    b.add(rowp, rowp, off);
    b.ld(e, rowp, 0);                           // rowstart[n]
    b.ld(eend, rowp, 8);                        // rowstart[n+1]
    b.movi(costp, COST_BASE);
    b.add(costp, costp, off);
    b.ld(lvl, costp, 0);
    b.addi(lvl, lvl, 1);                        // next level

    b.label("edge");
    b.bge(e, eend, "skip_node");
    b.shli(eoff, e, 3);
    b.movi(colp, COL_BASE);
    b.add(colp, colp, eoff);
    b.ld(id, colp, 0);
    b.shli(idoff, id, 3);
    b.movi(visp, VISITED_BASE);
    b.add(visp, visp, idoff);
    b.ld(visv, visp, 0);
    b.bne(visv, zero, "next_edge");

    b.st(visp, onev, 0);                        // visited[id] = 1
    b.movi(dstp, COST_BASE);
    b.add(dstp, dstp, idoff);
    b.st(dstp, lvl, 0);                         // cost[id] = lvl
    b.movi(nmp, NEWMASK_BASE);
    b.add(nmp, nmp, idoff);
    b.st(nmp, onev, 0);                         // newmask[id] = 1
    b.movi(stop, 0);

    b.label("next_edge");
    b.addi(e, e, 1);
    b.jmp("edge");

    b.label("skip_node");
    b.addi(n, n, 1);
    b.blt(n, num, "node");

    // Swap: mask <- newmask, newmask <- 0.
    b.movi(n, 0);
    b.label("swap");
    b.shli(off, n, 3);
    b.movi(nmp, NEWMASK_BASE);
    b.add(nmp, nmp, off);
    b.ld(maskv, nmp, 0);
    b.movi(maskp, MASK_BASE);
    b.add(maskp, maskp, off);
    b.st(maskp, maskv, 0);
    b.st(nmp, zero, 0);
    b.addi(n, n, 1);
    b.blt(n, num, "swap");

    b.beq(stop, zero, "level");
    b.halt();
    wl.program = b.build();

    // --- Validator ----------------------------------------------------------
    wl.validate = [cost_ref, num_nodes](const mem::FunctionalMemory &m) {
        return peekInts(m, COST_BASE, num_nodes) == cost_ref;
    };
    return wl;
}

} // namespace dynaspam::workloads
