/**
 * @file
 * PF — PathFinder (mirrors Rodinia pathfinder, run kernel).
 *
 * Structure mirrored: row-by-row dynamic programming over a 2D grid —
 * dst[j] = wall[i][j] + min(src[j-1], src[j], src[j+1]) — with the
 * three-way min computed through data-dependent compare-branches and
 * double-buffered rows.
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr WALL_BASE = 0x100000;
constexpr Addr SRC_BASE = 0x600000;
constexpr Addr DST_BASE = 0x700000;

} // namespace

Workload
makePf(unsigned scale)
{
    const unsigned cols = 256;
    const unsigned rows = 8 * scale;

    Workload wl;
    wl.name = "PF";
    wl.fullName = "PathFinder";
    wl.kernel = "run";

    Rng rng(0x9f01);
    std::vector<std::int64_t> wall(std::size_t(rows) * cols);
    for (auto &v : wall)
        v = std::int64_t(rng.below(10));
    std::vector<std::int64_t> first_row(cols);
    for (auto &v : first_row)
        v = std::int64_t(rng.below(10));
    pokeInts(wl.initialMemory, WALL_BASE, wall);
    pokeInts(wl.initialMemory, SRC_BASE, first_row);

    // --- Reference DP ----------------------------------------------------
    std::vector<std::int64_t> src = first_row, dst(cols);
    for (unsigned i = 0; i < rows; i++) {
        for (unsigned j = 0; j < cols; j++) {
            std::int64_t best = src[j];
            if (j > 0)
                best = std::min(best, src[j - 1]);
            if (j + 1 < cols)
                best = std::min(best, src[j + 1]);
            dst[j] = wall[i * cols + j] + best;
        }
        std::swap(src, dst);
    }
    const std::vector<std::int64_t> result_ref = src;
    const Addr final_base = (rows % 2 == 0) ? SRC_BASE : DST_BASE;

    // --- Program -------------------------------------------------------------
    using isa::intReg;
    isa::ProgramBuilder b("pf");
    const auto i = intReg(1), j = intReg(2), nrows = intReg(3),
               ncols = intReg(4), srcp = intReg(5), dstp = intReg(6),
               wp = intReg(7), best = intReg(8), cand = intReg(9),
               wv = intReg(10), lastj = intReg(11), tmp = intReg(12),
               sp = intReg(13), dp = intReg(14);

    b.movi(nrows, rows);
    b.movi(ncols, cols);
    b.movi(lastj, cols - 1);
    b.movi(srcp, SRC_BASE);
    b.movi(dstp, DST_BASE);
    b.movi(wp, WALL_BASE);
    b.movi(i, 0);

    b.label("row");
    // Peel j = 0: min(src[0], src[1]).
    b.ld(best, srcp, 0);
    b.ld(cand, srcp, 8);
    b.min_(best, best, cand);
    b.ld(wv, wp, 0);
    b.add(best, best, wv);
    b.st(dstp, best, 0);
    // Interior columns.
    b.movi(j, 1);
    b.addi(sp, srcp, 8);
    b.addi(dp, dstp, 8);
    b.addi(wp, wp, 8);

    b.label("col");
    // best = min(src[j-1], src[j], src[j+1]), branchless (compilers emit
    // min/cmov here). The interior is the hot path; the first and last
    // columns are peeled below.
    b.ld(best, sp, 0);                  // src[j]
    b.ld(cand, sp, -8);
    b.min_(best, best, cand);
    b.ld(cand, sp, 8);
    b.min_(best, best, cand);
    b.ld(wv, wp, 0);
    b.add(best, best, wv);
    b.st(dp, best, 0);
    b.addi(sp, sp, 8);
    b.addi(dp, dp, 8);
    b.addi(wp, wp, 8);
    b.addi(j, j, 1);
    b.blt(j, lastj, "col");

    // Peel j = cols-1: min(src[cols-2], src[cols-1]).
    b.ld(best, sp, 0);
    b.ld(cand, sp, -8);
    b.min_(best, best, cand);
    b.ld(wv, wp, 0);
    b.add(best, best, wv);
    b.st(dp, best, 0);
    b.addi(wp, wp, 8);

    // Swap row buffers.
    b.mov(tmp, srcp);
    b.mov(srcp, dstp);
    b.mov(dstp, tmp);
    b.addi(i, i, 1);
    b.blt(i, nrows, "row");
    b.halt();
    wl.program = b.build();

    wl.validate = [result_ref, final_base,
                   cols](const mem::FunctionalMemory &m) {
        return peekInts(m, final_base, cols) == result_ref;
    };
    return wl;
}

} // namespace dynaspam::workloads
