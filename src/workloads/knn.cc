/**
 * @file
 * KNN — K-Nearest Neighbors (mirrors Rodinia nn, main kernel).
 *
 * Structure mirrored: a distance sweep over an unstructured record set
 * (2D coordinates, as in Rodinia's hurricane data) computing
 * sqrt((lat-qlat)^2 + (lng-qlng)^2) per record, followed by k rounds of
 * min-extraction to produce the k nearest records.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr LAT_BASE = 0x100000;
constexpr Addr LNG_BASE = 0x200000;
constexpr Addr DIST_BASE = 0x300000;
constexpr Addr BEST_BASE = 0x400000;
constexpr unsigned K = 4;

} // namespace

Workload
makeKnn(unsigned scale)
{
    const unsigned num_records = 2200 * scale;
    const double qlat = 30.0, qlng = -90.0;

    Workload wl;
    wl.name = "KNN";
    wl.fullName = "K-Nearest Neighbors";
    wl.kernel = "main";

    Rng rng(0x6e6e);
    std::vector<double> lat(num_records), lng(num_records);
    for (unsigned r = 0; r < num_records; r++) {
        lat[r] = 25.0 + rng.uniform() * 20.0;
        lng[r] = -100.0 + rng.uniform() * 30.0;
    }
    pokeDoubles(wl.initialMemory, LAT_BASE, lat);
    pokeDoubles(wl.initialMemory, LNG_BASE, lng);

    // --- Reference -------------------------------------------------------------
    std::vector<double> dist_ref(num_records);
    for (unsigned r = 0; r < num_records; r++) {
        double dx = lat[r] - qlat, dy = lng[r] - qlng;
        dist_ref[r] = std::sqrt(dx * dx + dy * dy);
    }
    std::vector<double> working = dist_ref;
    std::vector<std::int64_t> best_ref(K);
    for (unsigned k = 0; k < K; k++) {
        auto it = std::min_element(working.begin(), working.end());
        best_ref[k] = it - working.begin();
        *it = std::numeric_limits<double>::max();
    }

    // --- Program -----------------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("knn");
    const auto r = intReg(1), nr = intReg(2), latp = intReg(3),
               lngp = intReg(4), dp = intReg(5), k = intReg(6),
               kk = intReg(7), argmin = intReg(8), bp = intReg(9),
               cond = intReg(10), onec = intReg(11), minp = intReg(12);
    const auto dx = fpReg(1), dy = fpReg(2), d = fpReg(3),
               qlatr = fpReg(10), qlngr = fpReg(11), minv = fpReg(4),
               dv = fpReg(5), big = fpReg(12);

    b.movi(nr, num_records);
    b.fmovi(qlatr, qlat);
    b.fmovi(qlngr, qlng);
    b.fmovi(big, std::numeric_limits<double>::max());
    b.movi(onec, 1);

    // Distance sweep.
    b.movi(r, 0);
    b.movi(latp, LAT_BASE);
    b.movi(lngp, LNG_BASE);
    b.movi(dp, DIST_BASE);
    b.label("sweep");
    b.fld(dx, latp, 0);
    b.fsub(dx, dx, qlatr);
    b.fld(dy, lngp, 0);
    b.fsub(dy, dy, qlngr);
    b.fmul(dx, dx, dx);
    b.fmul(dy, dy, dy);
    b.fadd(d, dx, dy);
    b.fsqrt(d, d);
    b.fst(dp, d, 0);
    b.addi(latp, latp, 8);
    b.addi(lngp, lngp, 8);
    b.addi(dp, dp, 8);
    b.addi(r, r, 1);
    b.blt(r, nr, "sweep");

    // K rounds of min-extraction.
    b.movi(kk, K);
    b.movi(k, 0);
    b.movi(bp, BEST_BASE);
    b.label("round");
    b.fadd(minv, big, fpReg(13));       // minv = +inf (f13 stays 0)
    b.movi(argmin, 0);
    b.movi(r, 0);
    b.movi(dp, DIST_BASE);
    b.label("scan");
    b.fld(dv, dp, 0);
    b.fclt(cond, dv, minv);
    b.bne(cond, onec, "no_min");
    b.fadd(minv, dv, fpReg(13));
    b.mov(argmin, r);
    b.mov(minp, dp);
    b.label("no_min");
    b.addi(dp, dp, 8);
    b.addi(r, r, 1);
    b.blt(r, nr, "scan");

    b.st(bp, argmin, 0);
    b.fst(minp, big, 0);                // exclude the winner
    b.addi(bp, bp, 8);
    b.addi(k, k, 1);
    b.blt(k, kk, "round");
    b.halt();
    wl.program = b.build();

    wl.validate = [dist_ref, best_ref,
                   num_records](const mem::FunctionalMemory &m) {
        // Distances were overwritten for the K winners; check the rest.
        auto got = peekDoubles(m, DIST_BASE, num_records);
        for (unsigned r2 = 0; r2 < num_records; r2++) {
            bool excluded = false;
            for (auto w : best_ref)
                excluded |= (w == std::int64_t(r2));
            if (excluded)
                continue;
            double diff = std::fabs(got[r2] - dist_ref[r2]);
            if (diff > 1e-9 * std::fmax(1.0, std::fabs(dist_ref[r2])))
                return false;
        }
        return peekInts(m, BEST_BASE, K) == best_ref;
    };
    return wl;
}

} // namespace dynaspam::workloads
