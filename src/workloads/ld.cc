/**
 * @file
 * LD — LU Decomposition (mirrors Rodinia lud, lud_base).
 *
 * Structure mirrored: in-place Doolittle factorization with the classic
 * triple loop nest — an upper-row update and a lower-column update with a
 * division, then the trailing-submatrix rank-1 update. Loop trip counts
 * shrink as the factorization proceeds, producing several distinct hot
 * traces (the paper detects 9 for LD).
 */

#include "workloads/workload.hh"

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr A_BASE = 0x100000;

} // namespace

Workload
makeLd(unsigned scale)
{
    const unsigned n = 24 + 8 * scale;

    Workload wl;
    wl.name = "LD";
    wl.fullName = "LU Decomposition";
    wl.kernel = "lud_base";

    // A diagonally dominant matrix keeps the factorization stable.
    Rng rng(0x1d02);
    std::vector<double> a(std::size_t(n) * n);
    for (unsigned i = 0; i < n; i++) {
        double row_sum = 0.0;
        for (unsigned j = 0; j < n; j++) {
            a[i * n + j] = rng.uniform() * 2.0 - 1.0;
            row_sum += 2.0;
        }
        a[i * n + i] += row_sum;
    }
    pokeDoubles(wl.initialMemory, A_BASE, a);

    // --- Reference: in-place Doolittle LU ------------------------------------
    std::vector<double> lu = a;
    for (unsigned k = 0; k < n; k++) {
        for (unsigned i = k + 1; i < n; i++) {
            lu[i * n + k] /= lu[k * n + k];
            for (unsigned j = k + 1; j < n; j++)
                lu[i * n + j] -= lu[i * n + k] * lu[k * n + j];
        }
    }

    // --- Program -----------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("ld");
    const auto k = intReg(1), nn = intReg(2), i = intReg(3),
               j = intReg(4), kp1 = intReg(5), rowk = intReg(6),
               rowi = intReg(7), pj = intReg(8), pkj = intReg(9),
               tmp = intReg(10), nbytes = intReg(11);
    const auto pivot = fpReg(1), lik = fpReg(2), av = fpReg(3),
               kv = fpReg(4);

    const std::int64_t row_bytes = std::int64_t(n) * 8;

    b.movi(nn, n);
    b.movi(nbytes, row_bytes);
    b.movi(k, 0);
    b.movi(rowk, A_BASE);

    b.label("k_loop");
    b.addi(kp1, k, 1);

    // lik = a[i][k] / pivot, then row update.
    b.shli(tmp, k, 3);
    b.add(pkj, rowk, tmp);
    b.fld(pivot, pkj, 0);               // a[k][k]

    // Bottom-tested loops (the shape loop inversion produces at -O3):
    // the back edge is the strongly biased branch the trace anchors on.
    b.mov(i, kp1);
    b.bge(i, nn, "k_next");             // zero-trip guard
    b.add(rowi, rowk, nbytes);
    b.label("i_loop");

    b.shli(tmp, k, 3);
    b.add(pj, rowi, tmp);
    b.fld(lik, pj, 0);
    b.fdiv(lik, lik, pivot);
    b.fst(pj, lik, 0);                  // a[i][k] = lik

    b.mov(j, kp1);
    b.bge(j, nn, "i_next");             // zero-trip guard
    b.shli(tmp, kp1, 3);
    b.add(pj, rowi, tmp);               // &a[i][k+1]
    b.add(pkj, rowk, tmp);              // &a[k][k+1]
    b.label("j_loop");
    b.fld(kv, pkj, 0);
    b.fmul(kv, kv, lik);
    b.fld(av, pj, 0);
    b.fsub(av, av, kv);
    b.fst(pj, av, 0);
    b.addi(pj, pj, 8);
    b.addi(pkj, pkj, 8);
    b.addi(j, j, 1);
    b.blt(j, nn, "j_loop");

    b.label("i_next");
    b.add(rowi, rowi, nbytes);
    b.addi(i, i, 1);
    b.blt(i, nn, "i_loop");

    b.label("k_next");
    b.add(rowk, rowk, nbytes);
    b.addi(k, k, 1);
    b.blt(k, nn, "k_loop");
    b.halt();
    wl.program = b.build();

    wl.validate = [lu, n](const mem::FunctionalMemory &m) {
        auto got = peekDoubles(m, A_BASE, std::size_t(n) * n);
        return nearlyEqual(got, lu, 1e-8);
    };
    return wl;
}

} // namespace dynaspam::workloads
