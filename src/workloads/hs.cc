/**
 * @file
 * HS — Hotspot (mirrors Rodinia hotspot, compute_tran_temp).
 *
 * Structure mirrored: an iterative 5-point stencil over a 2D temperature
 * grid with a power-density source term. Regular FP loads along rows,
 * highly biased loop branches, read-one-grid/write-the-other double
 * buffering per time step.
 */

#include "workloads/workload.hh"

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr T_BASE = 0x100000;
constexpr Addr P_BASE = 0x300000;
constexpr Addr OUT_BASE = 0x500000;

} // namespace

Workload
makeHs(unsigned scale)
{
    const unsigned dim = 64;
    const unsigned steps = 2 * scale;
    const double cx = 0.15, cy = 0.12, cp = 0.08;

    Workload wl;
    wl.name = "HS";
    wl.fullName = "Hotspot";
    wl.kernel = "compute_tran_temp";

    Rng rng(0x4057);
    std::vector<double> temp(std::size_t(dim) * dim),
        power(std::size_t(dim) * dim);
    for (auto &v : temp)
        v = 320.0 + rng.uniform() * 10.0;
    for (auto &v : power)
        v = rng.uniform() * 0.5;
    pokeDoubles(wl.initialMemory, T_BASE, temp);
    pokeDoubles(wl.initialMemory, P_BASE, power);

    // --- Reference stencil ---------------------------------------------------
    std::vector<double> tref = temp, tnew = temp;
    for (unsigned s = 0; s < steps; s++) {
        for (unsigned i = 1; i + 1 < dim; i++) {
            for (unsigned j = 1; j + 1 < dim; j++) {
                std::size_t c = std::size_t(i) * dim + j;
                double center = tref[c];
                double dx = tref[c - 1] + tref[c + 1] - 2.0 * center;
                double dy = tref[c - dim] + tref[c + dim] - 2.0 * center;
                tnew[c] = center + cx * dx + cy * dy + cp * power[c];
            }
        }
        std::swap(tref, tnew);
    }

    // --- Program ---------------------------------------------------------------
    // Double buffering: even steps read T write OUT, odd steps the
    // reverse; `steps` swaps happen, so the final result lives in T when
    // steps is even, OUT when odd. The program swaps base pointers.
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("hs");
    const auto s = intReg(1), nsteps = intReg(2), i = intReg(3),
               j = intReg(4), lim = intReg(5), src = intReg(6),
               dst = intReg(7), rowp = intReg(8), pp = intReg(10),
               tmpr = intReg(11), one = intReg(12), rowb = intReg(13);
    const auto center = fpReg(1), dx = fpReg(2), dy = fpReg(3),
               acc = fpReg(4), t2 = fpReg(5), cxr = fpReg(10),
               cyr = fpReg(11), cpr = fpReg(12), two = fpReg(13),
               pv = fpReg(6);

    const std::int64_t row_bytes = std::int64_t(dim) * 8;

    b.movi(nsteps, steps);
    b.movi(lim, dim - 1);
    b.movi(one, 1);
    b.fmovi(cxr, cx);
    b.fmovi(cyr, cy);
    b.fmovi(cpr, cp);
    b.fmovi(two, 2.0);
    b.movi(src, T_BASE);
    b.movi(dst, OUT_BASE);
    b.movi(s, 0);

    b.label("step");
    // Copy borders: dst row 0 and dim-1, plus per-row edges are handled
    // by copying the whole frame first (simple and keeps the reference
    // model exact).
    b.movi(i, 0);
    b.label("copy_i");
    b.movi(tmpr, std::int64_t(dim));
    b.mul(rowb, i, tmpr);               // i*dim
    b.shli(rowb, rowb, 3);              // byte offset
    b.add(rowp, src, rowb);
    b.add(pp, dst, rowb);
    b.movi(j, 0);
    b.label("copy_j");
    b.fld(center, rowp, 0);
    b.fst(pp, center, 0);
    b.addi(rowp, rowp, 8);
    b.addi(pp, pp, 8);
    b.addi(j, j, 1);
    b.movi(tmpr, std::int64_t(dim));
    b.blt(j, tmpr, "copy_j");
    b.addi(i, i, 1);
    b.blt(i, tmpr, "copy_i");

    // Interior stencil.
    b.movi(i, 1);
    b.label("row");
    b.movi(tmpr, std::int64_t(dim));
    b.mul(rowb, i, tmpr);
    b.addi(rowb, rowb, 1);              // (i*dim + 1)
    b.shli(rowb, rowb, 3);
    b.add(rowp, src, rowb);             // &src[i][1]
    b.movi(pp, P_BASE);
    b.add(pp, pp, rowb);                // &power[i][1]
    b.add(tmpr, dst, rowb);             // &dst[i][1] (reuse tmpr)
    b.movi(j, 1);

    b.label("col");
    b.fld(center, rowp, 0);
    b.fld(dx, rowp, -8);
    b.fld(t2, rowp, 8);
    b.fadd(dx, dx, t2);
    b.fmul(t2, center, two);
    b.fsub(dx, dx, t2);                 // left+right-2c
    b.fld(dy, rowp, -row_bytes);
    b.fld(t2, rowp, row_bytes);
    b.fadd(dy, dy, t2);
    b.fmul(t2, center, two);
    b.fsub(dy, dy, t2);                 // up+down-2c
    b.fmul(dx, dx, cxr);
    b.fmul(dy, dy, cyr);
    b.fadd(acc, center, dx);
    b.fadd(acc, acc, dy);
    b.fld(pv, pp, 0);
    b.fmul(pv, pv, cpr);
    b.fadd(acc, acc, pv);
    b.fst(tmpr, acc, 0);
    b.addi(rowp, rowp, 8);
    b.addi(pp, pp, 8);
    b.addi(tmpr, tmpr, 8);
    b.addi(j, j, 1);
    b.blt(j, lim, "col");

    b.addi(i, i, 1);
    b.blt(i, lim, "row");

    // Swap src/dst.
    b.mov(rowb, src);
    b.mov(src, dst);
    b.mov(dst, rowb);
    b.addi(s, s, 1);
    b.blt(s, nsteps, "step");
    b.halt();
    wl.program = b.build();

    // --- Validator -----------------------------------------------------------
    const Addr final_base = (steps % 2 == 0) ? T_BASE : OUT_BASE;
    wl.validate = [tref, dim, final_base](const mem::FunctionalMemory &m) {
        auto got = peekDoubles(m, final_base, std::size_t(dim) * dim);
        return nearlyEqual(got, tref, 1e-9);
    };
    return wl;
}

} // namespace dynaspam::workloads
