/**
 * @file
 * BP — Back Propagation (mirrors Rodinia backprop, bpnn_train_kernel).
 *
 * Structure mirrored: a dense forward pass (hidden[j] = squash(sum_i
 * w[j][i] * x[i])) followed by a weight-update sweep (w += eta * h * x).
 * Both are regular FP multiply-accumulate loop nests with highly biased
 * loop branches — the trace-friendly behaviour that gives BP its long
 * configuration lifetimes in Table 5. The squash function uses the
 * rational s/(1+|s|) form (the micro-ISA has no exp).
 */

#include "workloads/workload.hh"

#include <cmath>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr X_BASE = 0x100000;
constexpr Addr W_BASE = 0x200000;
constexpr Addr H_BASE = 0x300000;
constexpr unsigned NUM_IN = 256;

} // namespace

Workload
makeBp(unsigned scale)
{
    const unsigned num_hidden = 16 * scale;
    const double eta = 0.3;

    Workload wl;
    wl.name = "BP";
    wl.fullName = "Back Propagation";
    wl.kernel = "bpnn_train_kernel";

    // --- Data generation -------------------------------------------------
    Rng rng(0xbp01);
    std::vector<double> x(NUM_IN), w(std::size_t(num_hidden) * NUM_IN);
    for (auto &v : x)
        v = rng.uniform() * 2.0 - 1.0;
    for (auto &v : w)
        v = rng.uniform() * 0.2 - 0.1;
    pokeDoubles(wl.initialMemory, X_BASE, x);
    pokeDoubles(wl.initialMemory, W_BASE, w);

    // --- Reference model --------------------------------------------------
    std::vector<double> href(num_hidden);
    std::vector<double> wref = w;
    for (unsigned j = 0; j < num_hidden; j++) {
        double s = 0.0;
        for (unsigned i = 0; i < NUM_IN; i++)
            s += wref[j * NUM_IN + i] * x[i];
        href[j] = s / (1.0 + std::fabs(s));
    }
    for (unsigned j = 0; j < num_hidden; j++)
        for (unsigned i = 0; i < NUM_IN; i++)
            wref[j * NUM_IN + i] += eta * href[j] * x[i];

    // --- Program ----------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("bp");
    const auto j = intReg(1), nh = intReg(2), i = intReg(3), ni = intReg(4);
    const auto wp = intReg(5), xp = intReg(6), hp = intReg(7);
    const auto sum = fpReg(1), wv = fpReg(2), xv = fpReg(3);
    const auto one = fpReg(10), etaR = fpReg(11), hj = fpReg(5),
               tmp = fpReg(6);

    b.movi(nh, num_hidden);
    b.movi(ni, NUM_IN);
    b.fmovi(one, 1.0);
    b.fmovi(etaR, eta);

    // Forward pass.
    b.movi(j, 0);
    b.movi(wp, W_BASE);
    b.movi(hp, H_BASE);
    b.label("fwd_j");
    {
        b.fmovi(sum, 0.0);
        b.movi(i, 0);
        b.movi(xp, X_BASE);
        b.label("fwd_i");
        b.fld(wv, wp, 0);
        b.fld(xv, xp, 0);
        b.fmul(wv, wv, xv);
        b.fadd(sum, sum, wv);
        b.addi(wp, wp, 8);
        b.addi(xp, xp, 8);
        b.addi(i, i, 1);
        b.blt(i, ni, "fwd_i");

        b.fabs_(tmp, sum);
        b.fadd(tmp, tmp, one);
        b.fdiv(hj, sum, tmp);
        b.fst(hp, hj, 0);
        b.addi(hp, hp, 8);
        b.addi(j, j, 1);
        b.blt(j, nh, "fwd_j");
    }

    // Weight update.
    b.movi(j, 0);
    b.movi(wp, W_BASE);
    b.movi(hp, H_BASE);
    b.label("upd_j");
    {
        b.fld(hj, hp, 0);
        b.fmul(hj, hj, etaR);       // eta * h[j]
        b.movi(i, 0);
        b.movi(xp, X_BASE);
        b.label("upd_i");
        b.fld(xv, xp, 0);
        b.fmul(xv, xv, hj);
        b.fld(wv, wp, 0);
        b.fadd(wv, wv, xv);
        b.fst(wp, wv, 0);
        b.addi(wp, wp, 8);
        b.addi(xp, xp, 8);
        b.addi(i, i, 1);
        b.blt(i, ni, "upd_i");

        b.addi(hp, hp, 8);
        b.addi(j, j, 1);
        b.blt(j, nh, "upd_j");
    }
    b.halt();
    wl.program = b.build();

    // --- Validator ---------------------------------------------------------
    wl.validate = [href, wref,
                   num_hidden](const mem::FunctionalMemory &memory) {
        auto h = peekDoubles(memory, H_BASE, num_hidden);
        auto w_final =
            peekDoubles(memory, W_BASE, std::size_t(num_hidden) * NUM_IN);
        return nearlyEqual(h, href) && nearlyEqual(w_final, wref);
    };
    return wl;
}

} // namespace dynaspam::workloads
