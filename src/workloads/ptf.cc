/**
 * @file
 * PTF — Particle Filter (mirrors Rodinia particlefilter, particleFilter).
 *
 * Structure mirrored: the per-frame estimation loop — propagate each
 * particle with a deterministic pseudo-noise model, compute a likelihood
 * weight from the distance to the (noisy) measurement, normalize the
 * weights, and produce the weighted state estimate. FP-heavy loops with
 * a division in the normalization pass.
 */

#include "workloads/workload.hh"

#include <cmath>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr X_BASE = 0x100000;       // particle positions
constexpr Addr W_BASE = 0x200000;       // weights
constexpr Addr NOISE_BASE = 0x300000;   // pre-generated noise
constexpr Addr EST_BASE = 0x400000;     // per-frame estimates
} // namespace

Workload
makePtf(unsigned scale)
{
    const unsigned num_particles = 256;
    const unsigned frames = 6 * scale;

    Workload wl;
    wl.name = "PTF";
    wl.fullName = "Particle Filter";
    wl.kernel = "particleFilter";

    Rng rng(0x97f1);
    std::vector<double> x(num_particles), noise(num_particles * frames);
    for (auto &v : x)
        v = rng.uniform() * 4.0 - 2.0;
    for (auto &v : noise)
        v = rng.uniform() * 0.5 - 0.25;
    std::vector<double> meas(frames);
    for (unsigned f = 0; f < frames; f++)
        meas[f] = double(f) * 0.1;
    pokeDoubles(wl.initialMemory, X_BASE, x);
    pokeDoubles(wl.initialMemory, NOISE_BASE, noise);

    // --- Reference model ------------------------------------------------------
    std::vector<double> xref = x, est_ref(frames);
    for (unsigned f = 0; f < frames; f++) {
        std::vector<double> w(num_particles);
        double wsum = 0.0;
        for (unsigned p = 0; p < num_particles; p++) {
            xref[p] += noise[f * num_particles + p];
            double d = xref[p] - meas[f];
            w[p] = 1.0 / (1.0 + d * d);     // rational likelihood
            wsum += w[p];
        }
        double estimate = 0.0;
        for (unsigned p = 0; p < num_particles; p++) {
            w[p] /= wsum;
            estimate += xref[p] * w[p];
        }
        est_ref[f] = estimate;
    }

    // --- Program ---------------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("ptf");
    const auto f = intReg(1), nf = intReg(2), p = intReg(3),
               np = intReg(4), xp = intReg(5), wp = intReg(6),
               npz = intReg(7), ep = intReg(8);
    const auto xv = fpReg(1), nv = fpReg(2), d = fpReg(3), wv = fpReg(4),
               wsum = fpReg(5), mv = fpReg(6), one = fpReg(10),
               estv = fpReg(7), step = fpReg(11);

    b.movi(nf, frames);
    b.movi(np, num_particles);
    b.fmovi(one, 1.0);
    b.fmovi(step, 0.1);
    b.movi(f, 0);
    b.movi(npz, NOISE_BASE);
    b.movi(ep, EST_BASE);
    b.fmovi(mv, 0.0);                   // measurement accumulator

    b.label("frame");
    // Propagate + weigh.
    b.fmovi(wsum, 0.0);
    b.movi(p, 0);
    b.movi(xp, X_BASE);
    b.movi(wp, W_BASE);
    b.label("weigh");
    b.fld(xv, xp, 0);
    b.fld(nv, npz, 0);
    b.fadd(xv, xv, nv);
    b.fst(xp, xv, 0);
    b.fsub(d, xv, mv);
    b.fmul(d, d, d);
    b.fadd(d, d, one);
    b.fdiv(wv, one, d);
    b.fst(wp, wv, 0);
    b.fadd(wsum, wsum, wv);
    b.addi(xp, xp, 8);
    b.addi(wp, wp, 8);
    b.addi(npz, npz, 8);
    b.addi(p, p, 1);
    b.blt(p, np, "weigh");

    // Normalize + estimate.
    b.fmovi(estv, 0.0);
    b.movi(p, 0);
    b.movi(xp, X_BASE);
    b.movi(wp, W_BASE);
    b.label("norm");
    b.fld(wv, wp, 0);
    b.fdiv(wv, wv, wsum);
    b.fst(wp, wv, 0);
    b.fld(xv, xp, 0);
    b.fmul(xv, xv, wv);
    b.fadd(estv, estv, xv);
    b.addi(xp, xp, 8);
    b.addi(wp, wp, 8);
    b.addi(p, p, 1);
    b.blt(p, np, "norm");

    b.fst(ep, estv, 0);
    b.addi(ep, ep, 8);
    b.fadd(mv, mv, step);               // meas[f] = 0.1 * f
    b.addi(f, f, 1);
    b.blt(f, nf, "frame");
    b.halt();
    wl.program = b.build();

    wl.validate = [est_ref, frames](const mem::FunctionalMemory &m) {
        return nearlyEqual(peekDoubles(m, EST_BASE, frames), est_ref, 1e-9);
    };
    return wl;
}

} // namespace dynaspam::workloads
