/**
 * @file
 * NW — Needleman-Wunsch (mirrors Rodinia nw, runTest kernel).
 *
 * Structure mirrored: the dynamic-programming score matrix fill —
 * m[i][j] = max(m[i-1][j-1] + sim[i][j], m[i-1][j] - penalty,
 * m[i][j-1] - penalty) — with true loop-carried memory dependences in
 * two dimensions and a high fraction of memory instructions. This is one
 * of the two benchmarks the paper reports slowing down when memory
 * speculation is disabled.
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr M_BASE = 0x100000;
constexpr Addr SIM_BASE = 0x500000;
constexpr std::int64_t PENALTY = 10;

} // namespace

Workload
makeNw(unsigned scale)
{
    const unsigned n = 64 + 16 * scale;     // (n x n) score matrix

    Workload wl;
    wl.name = "NW";
    wl.fullName = "Needleman-Wunsch";
    wl.kernel = "runTest";

    Rng rng(0x9a77);
    std::vector<std::int64_t> sim(std::size_t(n) * n);
    for (auto &v : sim)
        v = std::int64_t(rng.below(21)) - 10;   // similarity in [-10, 10]

    std::vector<std::int64_t> m(std::size_t(n) * n, 0);
    for (unsigned i = 0; i < n; i++) {
        m[i * n] = -PENALTY * std::int64_t(i);
        m[i] = -PENALTY * std::int64_t(i);
    }
    pokeInts(wl.initialMemory, SIM_BASE, sim);
    pokeInts(wl.initialMemory, M_BASE, m);

    // --- Reference DP fill --------------------------------------------------
    std::vector<std::int64_t> mref = m;
    for (unsigned i = 1; i < n; i++) {
        for (unsigned j = 1; j < n; j++) {
            std::int64_t diag = mref[(i - 1) * n + (j - 1)] + sim[i * n + j];
            std::int64_t up = mref[(i - 1) * n + j] - PENALTY;
            std::int64_t left = mref[i * n + (j - 1)] - PENALTY;
            mref[i * n + j] = std::max({diag, up, left});
        }
    }

    // --- Program --------------------------------------------------------------
    using isa::intReg;
    isa::ProgramBuilder b("nw");
    const auto i = intReg(1), j = intReg(2), nn = intReg(3),
               mp = intReg(4), sp = intReg(5), diag = intReg(6),
               up = intReg(7), left = intReg(8), simv = intReg(9),
               best = intReg(10), pen = intReg(11), rowb = intReg(12),
               tmp = intReg(13);
    const std::int64_t row_bytes = std::int64_t(n) * 8;

    b.movi(nn, n);
    b.movi(pen, PENALTY);
    b.movi(i, 1);

    b.label("row");
    b.movi(tmp, std::int64_t(n));
    b.mul(rowb, i, tmp);
    b.addi(rowb, rowb, 1);
    b.shli(rowb, rowb, 3);              // byte offset of (i, 1)
    b.movi(mp, M_BASE);
    b.add(mp, mp, rowb);                // &m[i][1]
    b.movi(sp, SIM_BASE);
    b.add(sp, sp, rowb);                // &sim[i][1]
    b.movi(j, 1);

    b.label("col");
    b.ld(diag, mp, -row_bytes - 8);
    b.ld(simv, sp, 0);
    b.add(diag, diag, simv);
    b.ld(up, mp, -row_bytes);
    b.sub(up, up, pen);
    b.ld(left, mp, -8);
    b.sub(left, left, pen);
    // best = max(diag, up, left), branchless — mirrors the conditional
    // moves an optimizing compiler emits for this reduction.
    b.max_(best, diag, up);
    b.max_(best, best, left);
    b.st(mp, best, 0);
    b.addi(mp, mp, 8);
    b.addi(sp, sp, 8);
    b.addi(j, j, 1);
    b.blt(j, nn, "col");

    b.addi(i, i, 1);
    b.blt(i, nn, "row");
    b.halt();
    wl.program = b.build();

    wl.validate = [mref, n](const mem::FunctionalMemory &memory) {
        return peekInts(memory, M_BASE, std::size_t(n) * n) == mref;
    };
    return wl;
}

} // namespace dynaspam::workloads
