/**
 * @file
 * Workload interface: the 11 Rodinia-mirroring kernels of Table 3.
 *
 * Each workload provides a micro-ISA program, pre-initialized data
 * memory, and a golden-model validator that checks the program's outputs
 * against a C++ reference computation. The kernels mirror the *structure*
 * of the corresponding Rodinia kernels — loop nests, data-access
 * patterns, branch behaviour and operation mix — which is what drives
 * trace detection, mapping quality and speedup shape; see DESIGN.md.
 */

#ifndef DYNASPAM_WORKLOADS_WORKLOAD_HH
#define DYNASPAM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "memory/functional_mem.hh"

namespace dynaspam::workloads
{

/** A runnable benchmark kernel. */
struct Workload
{
    std::string name;           ///< short tag (BP, BFS, ...)
    std::string fullName;       ///< Rodinia benchmark it mirrors
    std::string kernel;         ///< Rodinia kernel function it mirrors
    isa::Program program;
    mem::FunctionalMemory initialMemory;

    /**
     * Golden-model check: inspects the final data memory after a
     * functional run and returns true when outputs match the reference.
     */
    std::function<bool(const mem::FunctionalMemory &)> validate;
};

/**
 * Factory functions, one per benchmark. @p scale grows the problem size
 * roughly linearly in dynamic instruction count (scale 1 runs a few
 * hundred thousand instructions).
 */
Workload makeBp(unsigned scale = 1);    ///< Back Propagation
Workload makeBfs(unsigned scale = 1);   ///< Breadth-First Search
Workload makeBt(unsigned scale = 1);    ///< B+ Tree search
Workload makeHs(unsigned scale = 1);    ///< Hotspot stencil
Workload makeKm(unsigned scale = 1);    ///< Kmeans clustering
Workload makeLd(unsigned scale = 1);    ///< LU Decomposition
Workload makeKnn(unsigned scale = 1);   ///< K-Nearest Neighbors
Workload makeNw(unsigned scale = 1);    ///< Needleman-Wunsch
Workload makePf(unsigned scale = 1);    ///< PathFinder
Workload makePtf(unsigned scale = 1);   ///< Particle Filter
Workload makeSrad(unsigned scale = 1);  ///< SRAD diffusion

/** The 11 benchmark tags in the paper's Table 3 order. */
const std::vector<std::string> &allWorkloadNames();

/** @return @p tag upper-cased to the registry's canonical form. */
std::string canonicalWorkloadName(const std::string &tag);

/** Build a workload by tag (case-insensitive).
 *  @throws FatalError on unknown tag. */
Workload makeWorkload(const std::string &name, unsigned scale = 1);

// --- Data-memory helpers for generators and validators ------------------

/** Write an array of doubles starting at @p base (8 bytes per element). */
inline void
pokeDoubles(mem::FunctionalMemory &memory, Addr base,
            const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); i++)
        memory.writeDouble(base + 8 * i, values[i]);
}

/** Write an array of 64-bit integers starting at @p base. */
inline void
pokeInts(mem::FunctionalMemory &memory, Addr base,
         const std::vector<std::int64_t> &values)
{
    for (std::size_t i = 0; i < values.size(); i++)
        memory.write64(base + 8 * i, std::uint64_t(values[i]));
}

/** Read back @p count doubles from @p base. */
inline std::vector<double>
peekDoubles(const mem::FunctionalMemory &memory, Addr base,
            std::size_t count)
{
    std::vector<double> out(count);
    for (std::size_t i = 0; i < count; i++)
        out[i] = memory.readDouble(base + 8 * i);
    return out;
}

/** Read back @p count 64-bit integers from @p base. */
inline std::vector<std::int64_t>
peekInts(const mem::FunctionalMemory &memory, Addr base, std::size_t count)
{
    std::vector<std::int64_t> out(count);
    for (std::size_t i = 0; i < count; i++)
        out[i] = std::int64_t(memory.read64(base + 8 * i));
    return out;
}

/** Compare double arrays within a tolerance. */
bool nearlyEqual(const std::vector<double> &a, const std::vector<double> &b,
                 double tolerance = 1e-9);

} // namespace dynaspam::workloads

#endif // DYNASPAM_WORKLOADS_WORKLOAD_HH
