/**
 * @file
 * BT — B+ Tree search (mirrors Rodinia b+tree, kernel_cpu).
 *
 * Structure mirrored: a stream of key lookups descending an array-encoded
 * B+ tree — pointer chasing through inner nodes with short key-scan loops
 * whose exit branches are data dependent, then a leaf scan. Node layout
 * (8-byte words): [isLeaf][nkeys][key0..key7][ptr0..ptr8].
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr TREE_BASE = 0x100000;
constexpr Addr QUERY_BASE = 0x600000;
constexpr Addr RESULT_BASE = 0x700000;

constexpr unsigned FANOUT = 8;              ///< max keys per node
constexpr unsigned NODE_WORDS = 2 + FANOUT + (FANOUT + 1);
constexpr unsigned NODE_BYTES = NODE_WORDS * 8;

/** In-memory node being built. */
struct Node
{
    bool leaf = true;
    std::vector<std::int64_t> keys;
    std::vector<unsigned> children;     ///< node indices
    std::int64_t subtreeMin = 0;        ///< smallest key in the subtree
};

} // namespace

Workload
makeBt(unsigned scale)
{
    const unsigned num_keys = 512;
    const unsigned num_queries = 600 * scale;

    Workload wl;
    wl.name = "BT";
    wl.fullName = "B+ Tree";
    wl.kernel = "kernel_cpu";

    // --- Bulk-load a B+ tree over sorted keys ------------------------------
    std::vector<std::int64_t> keys(num_keys);
    for (unsigned i = 0; i < num_keys; i++)
        keys[i] = std::int64_t(i) * 7 + 3;   // sorted, distinct

    std::vector<Node> nodes;
    std::vector<unsigned> level;        // node indices of current level
    for (unsigned i = 0; i < num_keys; i += FANOUT) {
        Node leaf;
        leaf.leaf = true;
        for (unsigned k = i; k < std::min(num_keys, i + FANOUT); k++)
            leaf.keys.push_back(keys[k]);
        leaf.subtreeMin = leaf.keys.front();
        level.push_back(unsigned(nodes.size()));
        nodes.push_back(leaf);
    }
    while (level.size() > 1) {
        std::vector<unsigned> next;
        for (std::size_t i = 0; i < level.size(); i += FANOUT + 1) {
            Node inner;
            inner.leaf = false;
            std::size_t end = std::min(level.size(), i + FANOUT + 1);
            inner.subtreeMin = nodes[level[i]].subtreeMin;
            for (std::size_t c = i; c < end; c++) {
                inner.children.push_back(level[c]);
                // Separator: the smallest key reachable through the
                // next child's subtree.
                if (c + 1 < end)
                    inner.keys.push_back(nodes[level[c + 1]].subtreeMin);
            }
            next.push_back(unsigned(nodes.size()));
            nodes.push_back(inner);
        }
        level = next;
    }
    const unsigned root = level.front();

    // --- Serialize the tree -------------------------------------------------
    auto nodeAddr = [](unsigned idx) {
        return TREE_BASE + Addr(idx) * NODE_BYTES;
    };
    for (unsigned idx = 0; idx < nodes.size(); idx++) {
        const Node &node = nodes[idx];
        Addr base = nodeAddr(idx);
        wl.initialMemory.write64(base, node.leaf ? 1 : 0);
        wl.initialMemory.write64(base + 8, node.keys.size());
        for (unsigned k = 0; k < FANOUT; k++) {
            std::int64_t key = k < node.keys.size()
                                   ? node.keys[k]
                                   : std::int64_t(1) << 60;
            wl.initialMemory.write64(base + 16 + 8 * k,
                                     std::uint64_t(key));
        }
        for (unsigned c = 0; c <= FANOUT; c++) {
            Addr child = c < node.children.size()
                             ? nodeAddr(node.children[c])
                             : 0;
            wl.initialMemory.write64(base + 16 + 8 * FANOUT + 8 * c,
                                     child);
        }
    }

    // --- Queries and reference answers --------------------------------------
    // Skewed query distribution, as in real index workloads: most
    // probes revisit a handful of hot keys (so a handful of descend
    // paths dominate — the paper detects only 4 BT traces), with a tail
    // of random hits and misses.
    Rng rng(0xb7e3);
    std::vector<std::int64_t> hot_keys;
    for (unsigned h = 0; h < 4; h++)
        hot_keys.push_back(keys[rng.below(num_keys)]);
    std::vector<std::int64_t> queries(num_queries), expect(num_queries);
    for (unsigned q = 0; q < num_queries; q++) {
        std::int64_t probe;
        if (rng.bernoulli(0.8))
            probe = hot_keys[rng.below(hot_keys.size())];
        else if (rng.bernoulli(0.6))
            probe = keys[rng.below(num_keys)];
        else
            probe = std::int64_t(rng.below(4096));
        queries[q] = probe;
        expect[q] =
            std::binary_search(keys.begin(), keys.end(), probe) ? probe
                                                                : -1;
    }
    pokeInts(wl.initialMemory, QUERY_BASE, queries);

    // --- Program -----------------------------------------------------------
    using isa::intReg;
    isa::ProgramBuilder b("bt");
    const auto q = intReg(1), nq = intReg(2), qp = intReg(3),
               key = intReg(4), node = intReg(5), leaf = intReg(6),
               nk = intReg(7), i = intReg(8), kp = intReg(9),
               kv = intReg(10), ptr = intReg(11), res = intReg(12),
               rp = intReg(13), zero = intReg(31), off = intReg(14),
               rootr = intReg(15);

    b.movi(nq, num_queries);
    b.movi(zero, 0);
    b.movi(rootr, std::int64_t(nodeAddr(root)));
    b.movi(q, 0);
    b.movi(qp, QUERY_BASE);
    b.movi(rp, RESULT_BASE);

    b.label("query");
    b.ld(key, qp, 0);
    b.mov(node, rootr);

    b.label("descend");
    b.ld(leaf, node, 0);
    b.bne(leaf, zero, "at_leaf");
    // Inner node: find first key > probe; child index = that position.
    b.ld(nk, node, 8);
    b.movi(i, 0);
    b.addi(kp, node, 16);
    b.label("scan_inner");
    b.bge(i, nk, "pick_child");
    b.ld(kv, kp, 0);
    b.blt(key, kv, "pick_child");
    b.addi(i, i, 1);
    b.addi(kp, kp, 8);
    b.jmp("scan_inner");
    b.label("pick_child");
    b.shli(off, i, 3);
    b.add(ptr, node, off);
    b.ld(node, ptr, 16 + 8 * FANOUT);
    b.jmp("descend");

    b.label("at_leaf");
    b.ld(nk, node, 8);
    b.movi(i, 0);
    b.addi(kp, node, 16);
    b.movi(res, -1);
    b.label("scan_leaf");
    b.bge(i, nk, "done_leaf");
    b.ld(kv, kp, 0);
    b.beq(kv, key, "found");
    b.addi(i, i, 1);
    b.addi(kp, kp, 8);
    b.jmp("scan_leaf");
    b.label("found");
    b.mov(res, key);
    b.label("done_leaf");
    b.st(rp, res, 0);
    b.addi(rp, rp, 8);
    b.addi(qp, qp, 8);
    b.addi(q, q, 1);
    b.blt(q, nq, "query");
    b.halt();
    wl.program = b.build();

    // --- Validator ------------------------------------------------------------
    wl.validate = [expect, num_queries](const mem::FunctionalMemory &m) {
        return peekInts(m, RESULT_BASE, num_queries) == expect;
    };
    return wl;
}

} // namespace dynaspam::workloads
