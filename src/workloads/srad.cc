/**
 * @file
 * SRAD — Speckle Reducing Anisotropic Diffusion (mirrors Rodinia srad,
 * main kernel).
 *
 * Structure mirrored: the two-sweep PDE update over an image — first
 * compute per-pixel gradients, Laplacian and the diffusion coefficient
 * c = 1/(1+q) (division-heavy), then apply the diffusion update from the
 * neighbouring coefficients. High memory-instruction fraction plus FP
 * divides: the second benchmark the paper reports slowing down without
 * memory speculation.
 */

#include "workloads/workload.hh"

#include "common/random.hh"

namespace dynaspam::workloads
{

namespace
{

constexpr Addr IMG_BASE = 0x100000;
constexpr Addr C_BASE = 0x400000;

} // namespace

Workload
makeSrad(unsigned scale)
{
    const unsigned dim = 48;
    const unsigned iters = 2 * scale;
    const double lambda = 0.1;

    Workload wl;
    wl.name = "SRAD";
    wl.fullName = "SRAD";
    wl.kernel = "main";

    Rng rng(0x57ad);
    std::vector<double> img(std::size_t(dim) * dim);
    for (auto &v : img)
        v = 1.0 + rng.uniform() * 4.0;
    pokeDoubles(wl.initialMemory, IMG_BASE, img);

    // --- Reference model -----------------------------------------------------
    std::vector<double> iref = img, cref(std::size_t(dim) * dim, 0.0);
    for (unsigned it = 0; it < iters; it++) {
        for (unsigned i = 1; i + 1 < dim; i++) {
            for (unsigned j = 1; j + 1 < dim; j++) {
                std::size_t k = std::size_t(i) * dim + j;
                double c0 = iref[k];
                double dn = iref[k - dim] - c0;
                double ds = iref[k + dim] - c0;
                double dw = iref[k - 1] - c0;
                double de = iref[k + 1] - c0;
                double g2 = (dn * dn + ds * ds + dw * dw + de * de) /
                            (c0 * c0);
                cref[k] = 1.0 / (1.0 + g2);
            }
        }
        for (unsigned i = 1; i + 1 < dim; i++) {
            for (unsigned j = 1; j + 1 < dim; j++) {
                std::size_t k = std::size_t(i) * dim + j;
                double c0 = iref[k];
                double div = cref[k] * (iref[k - dim] - c0) +
                             cref[k] * (iref[k + dim] - c0) +
                             cref[k] * (iref[k - 1] - c0) +
                             cref[k] * (iref[k + 1] - c0);
                iref[k] = c0 + lambda * div;
            }
        }
    }

    // --- Program ----------------------------------------------------------------
    using isa::fpReg;
    using isa::intReg;
    isa::ProgramBuilder b("srad");
    const auto it = intReg(1), niters = intReg(2), i = intReg(3),
               j = intReg(4), lim = intReg(5), ip = intReg(6),
               cp = intReg(7), rowb = intReg(8), tmp = intReg(9);
    const auto c0 = fpReg(1), dn = fpReg(2), ds = fpReg(3), dw = fpReg(4),
               de = fpReg(5), g2 = fpReg(6), cv = fpReg(7), one = fpReg(10),
               lam = fpReg(11), acc = fpReg(8);
    const std::int64_t row_bytes = std::int64_t(dim) * 8;

    b.movi(niters, iters);
    b.movi(lim, dim - 1);
    b.fmovi(one, 1.0);
    b.fmovi(lam, lambda);
    b.movi(it, 0);

    b.label("iter");

    // Sweep 1: diffusion coefficients.
    b.movi(i, 1);
    b.label("c_row");
    b.movi(tmp, std::int64_t(dim));
    b.mul(rowb, i, tmp);
    b.addi(rowb, rowb, 1);
    b.shli(rowb, rowb, 3);
    b.movi(ip, IMG_BASE);
    b.add(ip, ip, rowb);
    b.movi(cp, C_BASE);
    b.add(cp, cp, rowb);
    b.movi(j, 1);
    b.label("c_col");
    b.fld(c0, ip, 0);
    b.fld(dn, ip, -row_bytes);
    b.fsub(dn, dn, c0);
    b.fld(ds, ip, row_bytes);
    b.fsub(ds, ds, c0);
    b.fld(dw, ip, -8);
    b.fsub(dw, dw, c0);
    b.fld(de, ip, 8);
    b.fsub(de, de, c0);
    b.fmul(dn, dn, dn);
    b.fmul(ds, ds, ds);
    b.fmul(dw, dw, dw);
    b.fmul(de, de, de);
    b.fadd(g2, dn, ds);
    b.fadd(g2, g2, dw);
    b.fadd(g2, g2, de);
    b.fmul(acc, c0, c0);
    b.fdiv(g2, g2, acc);
    b.fadd(g2, g2, one);
    b.fdiv(cv, one, g2);
    b.fst(cp, cv, 0);
    b.addi(ip, ip, 8);
    b.addi(cp, cp, 8);
    b.addi(j, j, 1);
    b.blt(j, lim, "c_col");
    b.addi(i, i, 1);
    b.blt(i, lim, "c_row");

    // Sweep 2: diffusion update.
    b.movi(i, 1);
    b.label("u_row");
    b.movi(tmp, std::int64_t(dim));
    b.mul(rowb, i, tmp);
    b.addi(rowb, rowb, 1);
    b.shli(rowb, rowb, 3);
    b.movi(ip, IMG_BASE);
    b.add(ip, ip, rowb);
    b.movi(cp, C_BASE);
    b.add(cp, cp, rowb);
    b.movi(j, 1);
    b.label("u_col");
    b.fld(c0, ip, 0);
    b.fld(cv, cp, 0);
    b.fld(dn, ip, -row_bytes);
    b.fsub(dn, dn, c0);
    b.fld(ds, ip, row_bytes);
    b.fsub(ds, ds, c0);
    b.fadd(acc, dn, ds);
    b.fld(dw, ip, -8);
    b.fsub(dw, dw, c0);
    b.fadd(acc, acc, dw);
    b.fld(de, ip, 8);
    b.fsub(de, de, c0);
    b.fadd(acc, acc, de);
    b.fmul(acc, acc, cv);
    b.fmul(acc, acc, lam);
    b.fadd(c0, c0, acc);
    b.fst(ip, c0, 0);
    b.addi(ip, ip, 8);
    b.addi(cp, cp, 8);
    b.addi(j, j, 1);
    b.blt(j, lim, "u_col");
    b.addi(i, i, 1);
    b.blt(i, lim, "u_row");

    b.addi(it, it, 1);
    b.blt(it, niters, "iter");
    b.halt();
    wl.program = b.build();

    wl.validate = [iref, dim](const mem::FunctionalMemory &m) {
        auto got = peekDoubles(m, IMG_BASE, std::size_t(dim) * dim);
        return nearlyEqual(got, iref, 1e-8);
    };
    return wl;
}

} // namespace dynaspam::workloads
