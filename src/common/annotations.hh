/**
 * @file
 * Clang thread-safety (capability) analysis annotations.
 *
 * Wraps Clang's `-Wthread-safety` attribute set so concurrency
 * contracts — which mutex guards which member, which functions must
 * (or must not) hold which lock — are part of a declaration's type and
 * enforced at compile time. Under any compiler without the attributes
 * (GCC included) every macro expands to nothing, so annotated code
 * builds identically everywhere; the `analyze` CMake preset builds
 * with Clang and `-Wthread-safety -Werror=thread-safety`, turning a
 * missed lock into a build break instead of a TSan-schedule lottery.
 *
 * Conventions in this codebase (see DESIGN.md, "Static-safety layer"):
 *  - shared state is `common::Mutex` + `common::MutexLock`
 *    (common/mutex.hh), never a raw std::mutex — the raw type carries
 *    no capability and silences the analysis;
 *  - every member a mutex protects carries GUARDED_BY(thatMutex);
 *  - private helpers called with a lock held are REQUIRES(thatMutex);
 *  - thread-confined state (e.g. the coordinator's epoll loop) is
 *    modeled with a common::ThreadRole capability instead of a lock;
 *  - NO_THREAD_SAFETY_ANALYSIS is reserved for the lock primitives
 *    themselves and is forbidden in src/ outside common/mutex.hh.
 *
 * The macro set mirrors the documented Clang names
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
 * conventions transfer verbatim from upstream docs and reviews.
 */

#ifndef DYNASPAM_COMMON_ANNOTATIONS_HH
#define DYNASPAM_COMMON_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define DYNASPAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DYNASPAM_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a class as a capability (lockable) type. */
#define CAPABILITY(x) DYNASPAM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define SCOPED_CAPABILITY DYNASPAM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define GUARDED_BY(x) DYNASPAM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define PT_GUARDED_BY(x) DYNASPAM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry (and keeps
 *  them held across the call). */
#define REQUIRES(...) \
    DYNASPAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Shared (reader) form of REQUIRES. */
#define REQUIRES_SHARED(...) \
    DYNASPAM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability; it must not be held on entry. */
#define ACQUIRE(...) \
    DYNASPAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared (reader) form of ACQUIRE. */
#define ACQUIRE_SHARED(...) \
    DYNASPAM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability; it must be held on entry. */
#define RELEASE(...) \
    DYNASPAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared (reader) form of RELEASE. */
#define RELEASE_SHARED(...) \
    DYNASPAM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function tries to acquire; @p first arg is the success return value. */
#define TRY_ACQUIRE(...) \
    DYNASPAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT hold the listed capabilities on entry (deadlock
 *  and re-entrancy guard). */
#define EXCLUDES(...) \
    DYNASPAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trust the caller). */
#define ASSERT_CAPABILITY(x) \
    DYNASPAM_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) DYNASPAM_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opts a function out of the analysis. Reserved for the lock wrappers
 * in common/mutex.hh whose bodies manipulate the underlying std
 * primitives directly; dynaspam-analyze's header-hygiene check rejects
 * it anywhere else under src/.
 */
#define NO_THREAD_SAFETY_ANALYSIS \
    DYNASPAM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // DYNASPAM_COMMON_ANNOTATIONS_HH
