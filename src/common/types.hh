/**
 * @file
 * Fundamental scalar types shared across the DynaSpAM simulator.
 */

#ifndef DYNASPAM_COMMON_TYPES_HH
#define DYNASPAM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dynaspam
{

/** Simulated byte address in the flat functional memory. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Program counter expressed as a static-instruction index. */
using InstAddr = std::uint32_t;

/** Index of a dynamic instruction within a DynamicTrace. */
using SeqNum = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::uint16_t;

/** Sentinel for "no register". */
inline constexpr RegIndex REG_INVALID =
    std::numeric_limits<RegIndex>::max();

/** Sentinel for "no instruction address". */
inline constexpr InstAddr INST_ADDR_INVALID =
    std::numeric_limits<InstAddr>::max();

/** Sentinel for "no cycle". */
inline constexpr Cycle CYCLE_INVALID = std::numeric_limits<Cycle>::max();

} // namespace dynaspam

#endif // DYNASPAM_COMMON_TYPES_HH
