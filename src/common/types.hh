/**
 * @file
 * Fundamental scalar types shared across the DynaSpAM simulator.
 */

#ifndef DYNASPAM_COMMON_TYPES_HH
#define DYNASPAM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dynaspam
{

/** Simulated byte address in the flat functional memory. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Program counter expressed as a static-instruction index. */
using InstAddr = std::uint32_t;

/** Index of a dynamic instruction within a DynamicTrace. */
using SeqNum = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::uint16_t;

/** Sentinel for "no register". */
inline constexpr RegIndex REG_INVALID =
    std::numeric_limits<RegIndex>::max();

/** Sentinel for "no instruction address". */
inline constexpr InstAddr INST_ADDR_INVALID =
    std::numeric_limits<InstAddr>::max();

/** Sentinel for "no cycle". */
inline constexpr Cycle CYCLE_INVALID = std::numeric_limits<Cycle>::max();

/**
 * Explicitly 64-bit-unsigned bit arithmetic. Shift/mask expressions on
 * narrower or signed operand types promote to `int` and can overflow or
 * sign-extend in ways UBSan flags; routing them through these helpers
 * keeps every intermediate an std::uint64_t by construction.
 */
namespace bits
{

/** Mask with the low @p n bits set. @p n may be 0..64. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t(0)
                   : (std::uint64_t(1) << n) - std::uint64_t(1);
}

/** @p value shifted left by @p n, computed in 64 bits. @p n must be <64. */
constexpr std::uint64_t
shiftLeft(std::uint64_t value, unsigned n)
{
    return value << (n & 63u);
}

/** Largest value of an @p n-bit saturating counter. */
constexpr unsigned
counterMax(unsigned n)
{
    return unsigned(mask(n));
}

/** FNV-1a offset basis (64-bit). */
inline constexpr std::uint64_t FNV1A_OFFSET = 0xcbf29ce484222325ULL;
/** FNV-1a prime (64-bit). */
inline constexpr std::uint64_t FNV1A_PRIME = 0x100000001b3ULL;

/** One FNV-1a step: fold @p byte into hash state @p h. */
constexpr std::uint64_t
fnv1aStep(std::uint64_t h, std::uint8_t byte)
{
    return (h ^ std::uint64_t(byte)) * FNV1A_PRIME;
}

/**
 * Stable 64-bit FNV-1a over a byte sequence. Identical on every
 * platform and standard library — safe for on-disk cache keys.
 */
constexpr std::uint64_t
fnv1a(const char *data, std::size_t size,
      std::uint64_t h = FNV1A_OFFSET)
{
    for (std::size_t i = 0; i < size; i++)
        h = fnv1aStep(h, std::uint8_t(data[i]));
    return h;
}

/**
 * Store @p value little-endian into @p out[0..3]. Explicit byte order
 * makes on-wire and on-disk encodings identical on every platform.
 */
constexpr void
storeLE32(std::uint32_t value, unsigned char *out)
{
    out[0] = (unsigned char)(value & 0xff);
    out[1] = (unsigned char)((value >> 8) & 0xff);
    out[2] = (unsigned char)((value >> 16) & 0xff);
    out[3] = (unsigned char)((value >> 24) & 0xff);
}

/** Load a little-endian 32-bit value from @p in[0..3]. */
constexpr std::uint32_t
loadLE32(const unsigned char *in)
{
    return std::uint32_t(in[0]) | (std::uint32_t(in[1]) << 8) |
           (std::uint32_t(in[2]) << 16) | (std::uint32_t(in[3]) << 24);
}

/** Store @p value little-endian into @p out[0..7]. */
constexpr void
storeLE64(std::uint64_t value, unsigned char *out)
{
    storeLE32(std::uint32_t(value & 0xffffffffu), out);
    storeLE32(std::uint32_t(value >> 32), out + 4);
}

/** Load a little-endian 64-bit value from @p in[0..7]. */
constexpr std::uint64_t
loadLE64(const unsigned char *in)
{
    return std::uint64_t(loadLE32(in)) |
           (std::uint64_t(loadLE32(in + 4)) << 32);
}

} // namespace bits

} // namespace dynaspam

#endif // DYNASPAM_COMMON_TYPES_HH
