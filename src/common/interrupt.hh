/**
 * @file
 * Async-signal-safe interrupt handling for the CLI tools.
 *
 * `dynaspam run`/`sweep` used to die wherever SIGINT found them, which
 * could strand half-written result-cache temp files on disk. This
 * module provides the two pieces the fix needs:
 *
 *  - a *cleanup-file registry*: code that is about to create a
 *    transient file registers its path in a fixed-size, lock-free slot
 *    table and unregisters it once the file has been renamed or
 *    removed. Registration copies the path into static storage, so a
 *    signal handler can walk the table without touching the heap.
 *  - installCleanupSignalHandlers(): a SIGINT/SIGTERM handler that
 *    unlinks every registered file and _exit()s with the conventional
 *    128+signo code (130 for SIGINT, 143 for SIGTERM) — distinct from
 *    both success (0) and FatalError (2), so scripts can tell an
 *    interrupted run from a failed one.
 *
 * Everything the handler does (walking atomics, unlink, _exit) is
 * async-signal-safe. The worst a race can produce is unlinking a temp
 * file whose writer just renamed it away (ENOENT, ignored) — never a
 * truncated visible cache entry.
 *
 * The serve daemon does NOT use this handler: it installs its own
 * self-pipe drain handler (serve::Server) so in-flight requests finish
 * before exit.
 */

#ifndef DYNASPAM_COMMON_INTERRUPT_HH
#define DYNASPAM_COMMON_INTERRUPT_HH

#include <cstddef>

namespace dynaspam::interrupt
{

/** Slots available for concurrently registered cleanup files. */
inline constexpr std::size_t kMaxCleanupFiles = 64;

/** Longest registerable path (longer paths are silently not tracked). */
inline constexpr std::size_t kMaxCleanupPath = 1024;

/**
 * Track @p path for unlinking if a fatal signal arrives.
 * @return a slot handle for unregisterCleanupFile, or a negative value
 *         when the table is full / the path is too long (the caller
 *         proceeds untracked — tracking is best-effort protection).
 * Thread-safe.
 */
int registerCleanupFile(const char *path);

/** Stop tracking the slot returned by registerCleanupFile (no-op for
 *  negative handles). Thread-safe. */
void unregisterCleanupFile(int slot);

/**
 * Unlink every currently registered file. This is the signal handler's
 * body, exposed separately so tests can exercise it without raising a
 * signal. Async-signal-safe. @return files successfully unlinked.
 */
std::size_t cleanupRegisteredFiles();

/**
 * Install SIGINT/SIGTERM handlers that run cleanupRegisteredFiles()
 * and _exit(128 + signo). Call once, early in a CLI command.
 */
void installCleanupSignalHandlers();

/** Exit code the handler uses for @p signo (128 + signo). */
int exitCodeFor(int signo);

} // namespace dynaspam::interrupt

#endif // DYNASPAM_COMMON_INTERRUPT_HH
