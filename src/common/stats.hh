/**
 * @file
 * Lightweight statistics package: named scalar counters, histograms and a
 * registry, plus small numeric helpers (geomean) used by the benches.
 */

#ifndef DYNASPAM_COMMON_STATS_HH
#define DYNASPAM_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dynaspam
{

/** A named monotonically increasing scalar statistic. */
class StatCounter
{
  public:
    StatCounter() = default;
    explicit StatCounter(std::string name) : _name(std::move(name)) {}

    void inc(std::uint64_t amount = 1) { _value += amount; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/** A named accumulating floating-point statistic (e.g. energy in pJ). */
class StatAccum
{
  public:
    StatAccum() = default;
    explicit StatAccum(std::string name) : _name(std::move(name)) {}

    void add(double amount) { _value += amount; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    double _value = 0.0;
};

/** A fixed-bucket histogram for distribution statistics. */
class Histogram
{
  public:
    /**
     * @param name stat name
     * @param bucket_width width of each bucket
     * @param num_buckets number of buckets; samples beyond the last bucket
     *                    are accumulated in an overflow bucket
     */
    Histogram(std::string name, std::uint64_t bucket_width,
              std::size_t num_buckets)
        : _name(std::move(name)), bucketWidth(bucket_width),
          buckets(num_buckets, 0)
    {
    }

    void
    sample(std::uint64_t value)
    {
        std::size_t idx = value / bucketWidth;
        if (idx >= buckets.size())
            overflow++;
        else
            buckets[idx]++;
        count++;
        sum += value;
    }

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? double(sum) / count : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    std::uint64_t overflowCount() const { return overflow; }
    const std::string &name() const { return _name; }

    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        overflow = 0;
        count = 0;
        sum = 0;
    }

  private:
    std::string _name;
    std::uint64_t bucketWidth;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/**
 * A registry of scalar statistics owned by simulator components. Components
 * register counters by name; the registry supports dumping and lookup so
 * benches and tests can read any statistic without friend access.
 */
class StatRegistry
{
  public:
    /** Register (or fetch) a counter under @p name. */
    StatCounter &
    counter(const std::string &name)
    {
        auto it = counters.find(name);
        if (it == counters.end())
            it = counters.emplace(name, StatCounter(name)).first;
        return it->second;
    }

    /** Register (or fetch) a floating-point accumulator under @p name. */
    StatAccum &
    accum(const std::string &name)
    {
        auto it = accums.find(name);
        if (it == accums.end())
            it = accums.emplace(name, StatAccum(name)).first;
        return it->second;
    }

    /** @return counter value, or 0 if never registered. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value();
    }

    /** @return accumulator value, or 0.0 if never registered. */
    double
    getAccum(const std::string &name) const
    {
        auto it = accums.find(name);
        return it == accums.end() ? 0.0 : it->second.value();
    }

    void
    resetAll()
    {
        for (auto &kv : counters)
            kv.second.reset();
        for (auto &kv : accums)
            kv.second.reset();
    }

    /** Dump all statistics, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters)
            os << kv.first << " " << kv.second.value() << "\n";
        for (const auto &kv : accums)
            os << kv.first << " " << kv.second.value() << "\n";
    }

    const std::map<std::string, StatCounter> &allCounters() const
    {
        return counters;
    }

  private:
    std::map<std::string, StatCounter> counters;
    std::map<std::string, StatAccum> accums;
};

/** Geometric mean of a vector of positive values (0 on empty input). */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

} // namespace dynaspam

#endif // DYNASPAM_COMMON_STATS_HH
