/**
 * @file
 * Lightweight statistics package: named scalar counters, histograms and a
 * registry, plus small numeric helpers (geomean) used by the benches.
 */

#ifndef DYNASPAM_COMMON_STATS_HH
#define DYNASPAM_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace dynaspam
{

/** A named monotonically increasing scalar statistic. */
class StatCounter
{
  public:
    StatCounter() = default;
    explicit StatCounter(std::string name) : _name(std::move(name)) {}

    void inc(std::uint64_t amount = 1) { _value += amount; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/** A named accumulating floating-point statistic (e.g. energy in pJ). */
class StatAccum
{
  public:
    StatAccum() = default;
    explicit StatAccum(std::string name) : _name(std::move(name)) {}

    void add(double amount) { _value += amount; }
    void reset() { _value = 0.0; }

    double value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    double _value = 0.0;
};

/** A fixed-bucket histogram for distribution statistics. */
class Histogram
{
  public:
    /**
     * @param name stat name
     * @param bucket_width width of each bucket
     * @param num_buckets number of buckets; samples beyond the last bucket
     *                    are accumulated in an overflow bucket
     */
    Histogram(std::string name, std::uint64_t bucket_width,
              std::size_t num_buckets)
        : _name(std::move(name)), bucketWidth(bucket_width),
          buckets(num_buckets, 0)
    {
        if (bucket_width == 0)
            fatal("histogram \"", _name, "\": bucket_width must be > 0");
        if (num_buckets == 0)
            fatal("histogram \"", _name, "\": needs at least one bucket");
    }

    void
    sample(std::uint64_t value)
    {
        std::size_t idx = value / bucketWidth;
        if (idx >= buckets.size())
            overflow++;
        else
            buckets[idx]++;
        count++;
        sum += value;
    }

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? double(sum) / count : 0.0; }
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t width() const { return bucketWidth; }
    std::uint64_t total() const { return sum; }
    std::uint64_t overflowCount() const { return overflow; }
    const std::string &name() const { return _name; }

    /**
     * Overwrite the contents with previously recorded state. Used by the
     * runner's result cache to round-trip histograms through JSON.
     * @throws FatalError when @p bucket_counts has a different shape
     */
    void
    restore(const std::vector<std::uint64_t> &bucket_counts,
            std::uint64_t overflow_count, std::uint64_t sample_count,
            std::uint64_t sample_sum)
    {
        if (bucket_counts.size() != buckets.size())
            fatal("histogram \"", _name, "\": restore with ",
                  bucket_counts.size(), " buckets into ", buckets.size());
        buckets = bucket_counts;
        overflow = overflow_count;
        count = sample_count;
        sum = sample_sum;
    }

    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        overflow = 0;
        count = 0;
        sum = 0;
    }

  private:
    std::string _name;
    std::uint64_t bucketWidth;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
};

/**
 * A registry of scalar statistics owned by simulator components. Components
 * register counters by name; the registry supports dumping and lookup so
 * benches and tests can read any statistic without friend access.
 */
class StatRegistry
{
  public:
    /** Register (or fetch) a counter under @p name. */
    StatCounter &
    counter(const std::string &name)
    {
        auto it = counters.find(name);
        if (it == counters.end())
            it = counters.emplace(name, StatCounter(name)).first;
        return it->second;
    }

    /** Register (or fetch) a floating-point accumulator under @p name. */
    StatAccum &
    accum(const std::string &name)
    {
        auto it = accums.find(name);
        if (it == accums.end())
            it = accums.emplace(name, StatAccum(name)).first;
        return it->second;
    }

    /**
     * Register (or fetch) a histogram under @p name. The bucket geometry
     * is fixed at first registration; later calls with the same name
     * return the existing histogram regardless of the arguments.
     */
    Histogram &
    histogram(const std::string &name, std::uint64_t bucket_width,
              std::size_t num_buckets)
    {
        auto it = histograms.find(name);
        if (it == histograms.end())
            it = histograms
                     .emplace(name,
                              Histogram(name, bucket_width, num_buckets))
                     .first;
        return it->second;
    }

    /** @return histogram registered under @p name, or nullptr. */
    const Histogram *
    findHistogram(const std::string &name) const
    {
        auto it = histograms.find(name);
        return it == histograms.end() ? nullptr : &it->second;
    }

    /** @return counter value, or 0 if never registered. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value();
    }

    /** @return accumulator value, or 0.0 if never registered. */
    double
    getAccum(const std::string &name) const
    {
        auto it = accums.find(name);
        return it == accums.end() ? 0.0 : it->second.value();
    }

    void
    resetAll()
    {
        for (auto &kv : counters)
            kv.second.reset();
        for (auto &kv : accums)
            kv.second.reset();
        for (auto &kv : histograms)
            kv.second.reset();
    }

    /** Dump all statistics, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters)
            os << kv.first << " " << kv.second.value() << "\n";
        for (const auto &kv : accums)
            os << kv.first << " " << kv.second.value() << "\n";
        for (const auto &kv : histograms) {
            const Histogram &h = kv.second;
            os << kv.first << " count=" << h.samples()
               << " mean=" << h.mean() << " overflow=" << h.overflowCount()
               << " buckets=";
            for (std::size_t i = 0; i < h.numBuckets(); i++)
                os << (i ? "," : "") << h.bucket(i);
            os << "\n";
        }
    }

    /**
     * @return the registry as a JSON object:
     * `{"counters": {name: value}, "accums": {name: value},
     *   "histograms": {name: {"bucket_width", "buckets", "overflow",
     *   "count", "sum"}}}`. Deterministic (sorted keys).
     */
    json::Value
    toJson() const
    {
        json::Object counters_obj, accums_obj, histograms_obj;
        for (const auto &kv : counters)
            counters_obj.emplace(kv.first, kv.second.value());
        for (const auto &kv : accums)
            accums_obj.emplace(kv.first, kv.second.value());
        for (const auto &kv : histograms) {
            const Histogram &h = kv.second;
            json::Array buckets_arr;
            for (std::size_t i = 0; i < h.numBuckets(); i++)
                buckets_arr.emplace_back(h.bucket(i));
            json::Object hist_obj;
            hist_obj.emplace("bucket_width", h.width());
            hist_obj.emplace("buckets", std::move(buckets_arr));
            hist_obj.emplace("overflow", h.overflowCount());
            hist_obj.emplace("count", h.samples());
            hist_obj.emplace("sum", h.total());
            histograms_obj.emplace(kv.first, std::move(hist_obj));
        }
        json::Object root;
        root.emplace("counters", std::move(counters_obj));
        root.emplace("accums", std::move(accums_obj));
        root.emplace("histograms", std::move(histograms_obj));
        return json::Value(std::move(root));
    }

    /** Dump all statistics as a JSON document (see toJson). */
    void
    dumpJson(std::ostream &os) const
    {
        toJson().write(os, 2);
        os << "\n";
    }

    const std::map<std::string, StatCounter> &allCounters() const
    {
        return counters;
    }

    const std::map<std::string, StatAccum> &allAccums() const
    {
        return accums;
    }

    const std::map<std::string, Histogram> &allHistograms() const
    {
        return histograms;
    }

  private:
    std::map<std::string, StatCounter> counters;
    std::map<std::string, StatAccum> accums;
    std::map<std::string, Histogram> histograms;
};

/**
 * Geometric mean of a vector of positive values (0 on empty input).
 * Zero entries are skipped — they represent a degenerate measurement
 * (e.g. a workload that committed nothing), and log(0) would otherwise
 * silently turn the whole mean into 0-via--inf. Returns 0 when every
 * entry was skipped. @throws FatalError on a negative entry, for which
 * no geometric mean exists (std::log would return NaN and poison every
 * downstream comparison instead of failing here).
 */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t counted = 0;
    for (double v : values) {
        if (v < 0.0 || std::isnan(v))
            fatal("geomean: invalid value ", v);
        if (v == 0.0)
            continue;
        log_sum += std::log(v);
        counted++;
    }
    if (counted == 0)
        return 0.0;
    return std::exp(log_sum / double(counted));
}

} // namespace dynaspam

#endif // DYNASPAM_COMMON_STATS_HH
