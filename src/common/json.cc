#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace dynaspam::json
{

bool
Value::asBool() const
{
    if (const bool *b = std::get_if<bool>(&data))
        return *b;
    fatal("json: expected boolean");
}

std::uint64_t
Value::asUint() const
{
    if (const auto *u = std::get_if<std::uint64_t>(&data))
        return *u;
    if (const auto *i = std::get_if<std::int64_t>(&data)) {
        if (*i < 0)
            fatal("json: negative value where unsigned expected");
        return std::uint64_t(*i);
    }
    if (const auto *d = std::get_if<double>(&data)) {
        if (*d < 0 || *d != std::floor(*d))
            fatal("json: non-integral value where unsigned expected");
        return std::uint64_t(*d);
    }
    fatal("json: expected unsigned integer");
}

std::int64_t
Value::asInt() const
{
    if (const auto *i = std::get_if<std::int64_t>(&data))
        return *i;
    if (const auto *u = std::get_if<std::uint64_t>(&data)) {
        if (*u > std::uint64_t(INT64_MAX))
            fatal("json: unsigned value overflows signed integer");
        return std::int64_t(*u);
    }
    if (const auto *d = std::get_if<double>(&data)) {
        if (*d != std::floor(*d))
            fatal("json: non-integral value where integer expected");
        return std::int64_t(*d);
    }
    fatal("json: expected integer");
}

double
Value::asDouble() const
{
    if (const auto *d = std::get_if<double>(&data))
        return *d;
    if (const auto *i = std::get_if<std::int64_t>(&data))
        return double(*i);
    if (const auto *u = std::get_if<std::uint64_t>(&data))
        return double(*u);
    // Non-finite doubles round-trip as the string literals the writer
    // emits (JSON itself has no NaN/Infinity tokens).
    if (const auto *s = std::get_if<std::string>(&data)) {
        if (*s == "NaN")
            return std::numeric_limits<double>::quiet_NaN();
        if (*s == "Infinity")
            return std::numeric_limits<double>::infinity();
        if (*s == "-Infinity")
            return -std::numeric_limits<double>::infinity();
    }
    fatal("json: expected number");
}

const std::string &
Value::asString() const
{
    if (const auto *s = std::get_if<std::string>(&data))
        return *s;
    fatal("json: expected string");
}

const Array &
Value::asArray() const
{
    if (const auto *a = std::get_if<Array>(&data))
        return *a;
    fatal("json: expected array");
}

Array &
Value::asArray()
{
    if (auto *a = std::get_if<Array>(&data))
        return *a;
    fatal("json: expected array");
}

const Object &
Value::asObject() const
{
    if (const auto *o = std::get_if<Object>(&data))
        return *o;
    fatal("json: expected object");
}

Object &
Value::asObject()
{
    if (auto *o = std::get_if<Object>(&data))
        return *o;
    fatal("json: expected object");
}

const Raw &
Value::asRaw() const
{
    if (const auto *r = std::get_if<Raw>(&data))
        return *r;
    fatal("json: expected raw fragment");
}

const Value *
Value::find(const std::string &key) const
{
    const auto *o = std::get_if<Object>(&data);
    if (!o)
        return nullptr;
    auto it = o->find(key);
    return it == o->end() ? nullptr : &it->second;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        fatal("json: missing key \"", key, "\"");
    return *v;
}

// --- Writing ------------------------------------------------------------

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

namespace
{

void
writeDouble(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan tokens. Emitting null here used to lose
        // the value: numeric readers (asDouble) reject null, so a NaN
        // stat poisoned its whole cache entry / baseline file. Encode
        // as a string literal instead; asDouble maps it back.
        if (std::isnan(d))
            os << "\"NaN\"";
        else
            os << (d > 0 ? "\"Infinity\"" : "\"-Infinity\"");
        return;
    }
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    os.write(buf, ptr - buf);
    // Make integral doubles visibly floating so they parse back as double.
    bool integral = true;
    for (const char *p = buf; p != ptr; p++)
        if (*p == '.' || *p == 'e' || *p == 'E')
            integral = false;
    if (integral)
        os << ".0";
}

void
newlineIndent(std::ostream &os, unsigned indent, unsigned depth)
{
    os << '\n';
    for (unsigned i = 0; i < indent * depth; i++)
        os << ' ';
}

} // namespace

void
Value::writeIndented(std::ostream &os, unsigned indent, unsigned depth) const
{
    std::visit(
        [&](const auto &v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::nullptr_t>) {
                os << "null";
            } else if constexpr (std::is_same_v<T, bool>) {
                os << (v ? "true" : "false");
            } else if constexpr (std::is_same_v<T, std::int64_t> ||
                                 std::is_same_v<T, std::uint64_t>) {
                os << v;
            } else if constexpr (std::is_same_v<T, double>) {
                writeDouble(os, v);
            } else if constexpr (std::is_same_v<T, std::string>) {
                writeEscaped(os, v);
            } else if constexpr (std::is_same_v<T, Raw>) {
                // Verbatim: the producer serialized the fragment at
                // this nesting depth already (Value::dumpAt).
                os << v.text;
            } else if constexpr (std::is_same_v<T, Array>) {
                if (v.empty()) {
                    os << "[]";
                    return;
                }
                os << '[';
                bool first = true;
                for (const Value &elem : v) {
                    if (!first)
                        os << ',';
                    first = false;
                    if (indent)
                        newlineIndent(os, indent, depth + 1);
                    elem.writeIndented(os, indent, depth + 1);
                }
                if (indent)
                    newlineIndent(os, indent, depth);
                os << ']';
            } else if constexpr (std::is_same_v<T, Object>) {
                if (v.empty()) {
                    os << "{}";
                    return;
                }
                os << '{';
                bool first = true;
                for (const auto &kv : v) {
                    if (!first)
                        os << ',';
                    first = false;
                    if (indent)
                        newlineIndent(os, indent, depth + 1);
                    writeEscaped(os, kv.first);
                    os << (indent ? ": " : ":");
                    kv.second.writeIndented(os, indent, depth + 1);
                }
                if (indent)
                    newlineIndent(os, indent, depth);
                os << '}';
            }
        },
        data);
}

void
Value::write(std::ostream &os, unsigned indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Value::dump(unsigned indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

std::string
Value::dumpAt(unsigned indent, unsigned depth) const
{
    std::ostringstream os;
    writeIndented(os, indent, depth);
    return os.str();
}

// --- Parsing ------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &s) : text(s) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        // Report line/column alongside the byte offset: request bodies
        // arrive from humans and curl scripts, and "line 3, column 17"
        // is actionable where a raw offset is not.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); i++) {
            if (text[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        fatal("json: parse error at line ", line, ", column ", col,
              " (offset ", pos, "): ", what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            fail(std::string("expected '") + c + "'");
        pos++;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (text.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return descend([this] { return parseObject(); });
          case '[':
            return descend([this] { return parseArray(); });
          case '"':
            return Value(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    /** Run @p parse one container level deeper, enforcing the cap. */
    template <typename Fn>
    Value
    descend(Fn parse)
    {
        if (depth >= kMaxParseDepth)
            fail("nesting deeper than " + std::to_string(kMaxParseDepth) +
                 " levels");
        depth++;
        Value v = parse();
        depth--;
        return v;
    }

    Value
    parseObject()
    {
        expect('{');
        Object obj;
        skipSpace();
        if (peek() == '}') {
            pos++;
            return Value(std::move(obj));
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            Value element = parseValue();
            if (!obj.emplace(key, std::move(element)).second)
                fail("duplicate object key \"" + key + "\"");
            skipSpace();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect('}');
            return Value(std::move(obj));
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Array arr;
        skipSpace();
        if (peek() == ']') {
            pos++;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                pos++;
                continue;
            }
            expect(']');
            return Value(std::move(arr));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                pos--;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char esc = text[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; surrogate
                // pairs are not needed for the stat names we emit).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Value
    parseNumber()
    {
        std::size_t start = pos;
        bool negative = false;
        bool floating = false;
        if (peek() == '-') {
            negative = true;
            pos++;
        }
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                pos++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                if (c == '.' || c == 'e' || c == 'E')
                    floating = true;
                pos++;
            } else {
                break;
            }
        }
        if (pos == start + (negative ? 1u : 0u))
            fail("bad number");
        const char *first = text.data() + start;
        const char *last = text.data() + pos;
        if (!floating) {
            if (negative) {
                std::int64_t i = 0;
                auto [p, ec] = std::from_chars(first, last, i);
                if (ec == std::errc() && p == last)
                    return Value(i);
            } else {
                std::uint64_t u = 0;
                auto [p, ec] = std::from_chars(first, last, u);
                if (ec == std::errc() && p == last)
                    return Value(u);
            }
            // Out-of-range integers fall through to double.
        }
        double d = 0;
        auto [p, ec] = std::from_chars(first, last, d);
        if (ec != std::errc() || p != last)
            fail("bad number");
        return Value(d);
    }

    const std::string &text;
    std::size_t pos = 0;
    unsigned depth = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace dynaspam::json
