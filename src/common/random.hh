/**
 * @file
 * Deterministic pseudo-random number generation for workload data
 * generators. A fixed algorithm (xoshiro256**) keeps every experiment
 * reproducible across platforms and standard-library versions.
 */

#ifndef DYNASPAM_COMMON_RANDOM_HH
#define DYNASPAM_COMMON_RANDOM_HH

#include <cstdint>

namespace dynaspam
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace dynaspam

#endif // DYNASPAM_COMMON_RANDOM_HH
