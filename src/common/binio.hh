/**
 * @file
 * Little-endian binary (de)serialization primitives for on-disk state.
 *
 * Snapshots must be byte-stable across platforms and compiler versions,
 * so nothing here ever memcpys a whole struct (padding would leak in):
 * every field is written explicitly through fixed-width little-endian
 * encoders. The Reader is fail-soft: any overrun sets a sticky failure
 * flag and yields zeros, so deserializers can decode straight through
 * and check ok() once at the end — corrupt input degrades to a cache
 * miss, never UB.
 */

#ifndef DYNASPAM_COMMON_BINIO_HH
#define DYNASPAM_COMMON_BINIO_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace dynaspam::binio
{

/** Appends little-endian fields to a growing byte string. */
class Writer
{
  public:
    void
    u8(std::uint8_t value)
    {
        buf.push_back(char(value));
    }

    void
    u32(std::uint32_t value)
    {
        unsigned char tmp[4];
        bits::storeLE32(value, tmp);
        buf.append(reinterpret_cast<const char *>(tmp), 4);
    }

    void
    u64(std::uint64_t value)
    {
        unsigned char tmp[8];
        bits::storeLE64(value, tmp);
        buf.append(reinterpret_cast<const char *>(tmp), 8);
    }

    void b(bool value) { u8(value ? 1 : 0); }

    /** i64 via two's-complement u64 round-trip (well-defined in C++20). */
    void i64(std::int64_t value) { u64(std::uint64_t(value)); }

    /** Length-prefixed byte string (u32 length + raw bytes). */
    void
    str(std::string_view value)
    {
        u32(std::uint32_t(value.size()));
        buf.append(value.data(), value.size());
    }

    /** Raw bytes, no length prefix (caller wrote the count already). */
    void
    raw(const void *data, std::size_t size)
    {
        buf.append(static_cast<const char *>(data), size);
    }

    const std::string &bytes() const { return buf; }
    std::string take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Fail-soft reader over a byte buffer. Overruns latch the failure flag
 * and return zero values; callers decode unconditionally and test ok()
 * at the top level.
 */
class Reader
{
  public:
    Reader(const char *data, std::size_t size) : ptr(data), len(size) {}
    explicit Reader(std::string_view bytes)
        : Reader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return std::uint8_t(ptr[pos++]);
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t value = bits::loadLE32(
            reinterpret_cast<const unsigned char *>(ptr + pos));
        pos += 4;
        return value;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t value = bits::loadLE64(
            reinterpret_cast<const unsigned char *>(ptr + pos));
        pos += 8;
        return value;
    }

    bool b() { return u8() != 0; }

    std::int64_t i64() { return std::int64_t(u64()); }

    std::string
    str()
    {
        std::uint32_t size = u32();
        if (!need(size))
            return {};
        std::string value(ptr + pos, size);
        pos += size;
        return value;
    }

    /** Copy @p size raw bytes into @p out (zero-fills on overrun). */
    void
    raw(void *out, std::size_t size)
    {
        if (!need(size)) {
            std::memset(out, 0, size);
            return;
        }
        std::memcpy(out, ptr + pos, size);
        pos += size;
    }

    /**
     * Validate a just-read element count against the bytes remaining
     * (each element needs at least @p elem_min_bytes). A corrupt count
     * fails the stream instead of driving a giant allocation.
     */
    bool
    checkCount(std::uint64_t count, std::size_t elem_min_bytes)
    {
        std::size_t min = std::size_t(elem_min_bytes ? elem_min_bytes : 1);
        if (count > remaining() / min) {
            failed = true;
            return false;
        }
        return true;
    }

    std::size_t remaining() const { return failed ? 0 : len - pos; }
    bool ok() const { return !failed; }
    /** Force the stream into the failed state (semantic errors). */
    void fail() { failed = true; }

  private:
    bool
    need(std::size_t size)
    {
        if (failed || len - pos < size) {
            failed = true;
            return false;
        }
        return true;
    }

    const char *ptr;
    std::size_t len;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace dynaspam::binio

#endif // DYNASPAM_COMMON_BINIO_HH
