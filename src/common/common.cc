/**
 * @file
 * Anchor translation unit for the header-only common module so that the
 * dynaspam library always has at least one object file.
 */

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dynaspam
{

// Intentionally empty: the common module is header-only.

} // namespace dynaspam
