/**
 * @file
 * RAII ownership for POSIX file descriptors.
 *
 * Every descriptor the serving stack creates — listen sockets, accepted
 * connections, dialed coordinator links, wake pipes, epoll instances —
 * is owned by a common::Fd from the moment the creating syscall
 * returns, so an error path between creation and the old manual
 * ::close() can no longer leak it. dynaspam-analyze's fd-raii check
 * enforces this shape: a socket()/accept()/open()/epoll_create1()
 * result must flow into an Fd (constructor, reset()) at the call site.
 *
 * Ownership transfers are explicit: release() for handing a descriptor
 * to an owner the analysis can see (an event-loop connection table, a
 * function documented to take ownership), get() for borrowing in
 * syscalls. Fd is move-only; closing happens exactly once.
 *
 * close(2) is deliberately not retried on EINTR: on Linux the
 * descriptor is freed even when close returns EINTR, so retrying could
 * close an unrelated descriptor another thread just received.
 */

#ifndef DYNASPAM_COMMON_FD_HH
#define DYNASPAM_COMMON_FD_HH

#include <utility>

#include <unistd.h>

#include "common/logging.hh"

namespace dynaspam::common
{

/** Move-only owner of one POSIX file descriptor. */
class Fd
{
  public:
    /** An empty (invalid) descriptor. */
    Fd() = default;
    /** Take ownership of @p fd (negative = empty, matching syscall
     *  error returns: `Fd fd(::socket(...))` is always safe). */
    explicit Fd(int fd) : fd_(fd) {}

    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    /** @return the descriptor, still owned by this Fd (-1 if empty). */
    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    explicit operator bool() const { return valid(); }

    /** Give up ownership without closing. @return the descriptor */
    int
    release()
    {
        return std::exchange(fd_, -1);
    }

    /** Close the current descriptor (if any) and own @p fd instead. */
    void
    reset(int fd = -1)
    {
        if (fd_ >= 0 && fd_ != fd)
            ::close(fd_);
        fd_ = fd;
    }

  private:
    int fd_ = -1;
};

/** RAII pipe(2): two Fds created together (self-pipe wakeups). */
struct Pipe
{
    Fd readEnd;
    Fd writeEnd;

    bool valid() const { return readEnd.valid() && writeEnd.valid(); }

    /**
     * pipe(2) with both ends owned.
     * @throws FatalError when the pipe cannot be created
     */
    static Pipe
    create()
    {
        int raw[2];
        if (::pipe(raw) != 0)
            fatal("pipe: cannot create self-pipe");
        Pipe p;
        p.readEnd.reset(raw[0]);
        p.writeEnd.reset(raw[1]);
        return p;
    }
};

} // namespace dynaspam::common

#endif // DYNASPAM_COMMON_FD_HH
