/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags simulator bugs (aborts); fatal() flags user/configuration
 * errors (throws so tests can observe them); warn()/inform() report status.
 */

#ifndef DYNASPAM_COMMON_LOGGING_HH
#define DYNASPAM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dynaspam
{

/** Exception thrown by fatal() for user-level configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Report a condition that indicates a simulator bug and abort.
 * @param args message fragments, streamed together
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "panic: %s\n", os.str().c_str());
    std::abort();
}

/**
 * Report a user-level error (bad configuration, invalid argument).
 * Throws FatalError so callers and tests can handle it.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/** Warn about suspicious-but-survivable behaviour. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "warn: %s\n", os.str().c_str());
}

/** Informative status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stdout, "info: %s\n", os.str().c_str());
}

} // namespace dynaspam

#endif // DYNASPAM_COMMON_LOGGING_HH
