#include "common/interrupt.hh"

#include <atomic>
#include <csignal>
#include <cstring>

#include <unistd.h>

namespace dynaspam::interrupt
{

namespace
{

/**
 * One registry slot. `state` cycles Empty -> Claiming -> Active ->
 * Empty. The path bytes are only written in the Claiming window, and
 * the handler only reads them while the slot is Active, so the
 * release/acquire pair on `state` orders the accesses. All storage is
 * static: nothing here allocates, which is what makes the signal
 * handler's walk safe.
 */
struct Slot
{
    enum State : int { Empty = 0, Claiming = 1, Active = 2 };
    std::atomic<int> state{Empty};
    char path[kMaxCleanupPath];
};

Slot slots[kMaxCleanupFiles];

extern "C" void
cleanupSignalHandler(int signo)
{
    cleanupRegisteredFiles();
    _exit(exitCodeFor(signo));
}

} // namespace

int
registerCleanupFile(const char *path)
{
    const std::size_t len = std::strlen(path);
    if (len + 1 > kMaxCleanupPath)
        return -1;
    for (std::size_t i = 0; i < kMaxCleanupFiles; i++) {
        int expected = Slot::Empty;
        if (!slots[i].state.compare_exchange_strong(
                expected, Slot::Claiming, std::memory_order_acquire))
            continue;
        std::memcpy(slots[i].path, path, len + 1);
        slots[i].state.store(Slot::Active, std::memory_order_release);
        return int(i);
    }
    return -1;
}

void
unregisterCleanupFile(int slot)
{
    if (slot < 0 || std::size_t(slot) >= kMaxCleanupFiles)
        return;
    slots[slot].state.store(Slot::Empty, std::memory_order_release);
}

std::size_t
cleanupRegisteredFiles()
{
    std::size_t removed = 0;
    for (std::size_t i = 0; i < kMaxCleanupFiles; i++) {
        if (slots[i].state.load(std::memory_order_acquire) != Slot::Active)
            continue;
        // The owner may rename/unregister concurrently; unlinking a
        // path that just disappeared fails with ENOENT, which is fine.
        if (::unlink(slots[i].path) == 0)
            removed++;
    }
    return removed;
}

void
installCleanupSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = cleanupSignalHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

int
exitCodeFor(int signo)
{
    return 128 + signo;
}

} // namespace dynaspam::interrupt
