/**
 * @file
 * Annotated locking primitives for the thread-safety analysis.
 *
 * `std::mutex` and `std::lock_guard` carry no Clang capability
 * attributes, so code using them compiles clean under `-Wthread-safety`
 * even when it reads guarded state without the lock. These wrappers are
 * the annotated replacements every concurrent subsystem uses instead:
 *
 *  - Mutex        a CAPABILITY("mutex") over std::mutex;
 *  - MutexLock    the SCOPED_CAPABILITY lock_guard replacement;
 *  - CondVar      a condition variable that waits on a Mutex directly
 *                 (REQUIRES(mu) on every wait; callers loop on their
 *                 condition themselves, so every guarded read sits in
 *                 a function the analysis checks);
 *  - ThreadRole   a pseudo-capability for *thread-confined* state —
 *                 members GUARDED_BY(role) and methods REQUIRES(role)
 *                 can only be touched by code that statically proves it
 *                 runs on the owning thread (the function that acquires
 *                 the role at thread entry);
 *  - ScopedRole   RAII acquire/release of a ThreadRole for a thread's
 *                 top-level function.
 *
 * CondVar bridges to std::condition_variable with the adopt/release
 * idiom: the caller already holds the Mutex (enforced by REQUIRES), so
 * the wait adopts it into a std::unique_lock, sleeps, and releases the
 * unique_lock's ownership back to the caller without unlocking. No
 * extra state, no condition_variable_any, identical wakeup semantics.
 *
 * These wrappers are the only place NO_THREAD_SAFETY_ANALYSIS may
 * appear in src/ (dynaspam-analyze enforces this): their bodies
 * manipulate the raw std primitives that the analysis cannot see
 * through, while their annotations state the contract the rest of the
 * tree is checked against.
 */

#ifndef DYNASPAM_COMMON_MUTEX_HH
#define DYNASPAM_COMMON_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.hh"

namespace dynaspam::common
{

/** Annotated exclusive mutex (see file comment). */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu.lock(); }
    void unlock() RELEASE() { mu.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return mu.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu;
};

/** Scoped lock over a Mutex; the std::lock_guard replacement. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mu(mutex)
    {
        mu.lock();
    }
    ~MutexLock() RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * Condition variable waiting on a Mutex the caller already holds.
 * Every wait is REQUIRES(mutex): the analysis checks both that the
 * caller locked it and that the predicate's guarded reads are legal.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() noexcept { cv.notify_one(); }
    void notifyAll() noexcept { cv.notify_all(); }

    /**
     * Atomically release @p mutex and sleep; reacquired on return.
     *
     * No predicate overloads on purpose: a predicate lambda is analyzed
     * as its own function, where the lock is not visibly held, so
     * guarded reads inside it would warn. Callers write the standard
     * `while (!condition) cv.wait(mutex);` loop instead — the guarded
     * reads stay in the enclosing function, where the analysis sees the
     * MutexLock. Spurious wakeups are therefore the caller's loop to
     * absorb, exactly as with std::condition_variable::wait(lock).
     */
    void
    wait(Mutex &mutex) REQUIRES(mutex) NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> lock(mutex.mu, std::adopt_lock);
        cv.wait(lock);
        lock.release();    // ownership stays with the caller
    }

    /** wait() with a deadline; same manual-loop contract as wait(). */
    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(Mutex &mutex,
              const std::chrono::time_point<Clock, Duration> &deadline)
        REQUIRES(mutex) NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> lock(mutex.mu, std::adopt_lock);
        std::cv_status status = cv.wait_until(lock, deadline);
        lock.release();
        return status;
    }

  private:
    std::condition_variable cv;
};

/**
 * Pseudo-capability naming a thread, not a lock. State owned by one
 * thread (the coordinator's epoll loop, a worker's serve loop) is
 * GUARDED_BY(role) and its helpers REQUIRES(role); only the thread's
 * top-level function acquires the role (via ScopedRole), so a public
 * entry point called from another thread cannot reach thread-confined
 * state without a compile-time diagnostic. Acquire/release compile to
 * nothing — the capability exists purely in the analysis.
 */
class CAPABILITY("role") ThreadRole
{
  public:
    ThreadRole() = default;
    ThreadRole(const ThreadRole &) = delete;
    ThreadRole &operator=(const ThreadRole &) = delete;

    void acquire() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {}
    void release() RELEASE() NO_THREAD_SAFETY_ANALYSIS {}
};

/** RAII role acquisition for a thread's top-level function. */
class SCOPED_CAPABILITY ScopedRole
{
  public:
    explicit ScopedRole(ThreadRole &role_) ACQUIRE(role_) : role(role_)
    {
        role.acquire();
    }
    ~ScopedRole() RELEASE() { role.release(); }

    ScopedRole(const ScopedRole &) = delete;
    ScopedRole &operator=(const ScopedRole &) = delete;

  private:
    ThreadRole &role;
};

} // namespace dynaspam::common

#endif // DYNASPAM_COMMON_MUTEX_HH
