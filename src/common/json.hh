/**
 * @file
 * Minimal JSON value type, writer and parser.
 *
 * The runner's result cache and sweep reports need structured,
 * machine-readable output without adding an external dependency, so this
 * module implements the small subset of JSON the repository needs:
 *
 *  - Objects are backed by std::map, so serialization order is sorted by
 *    key and therefore deterministic: the same Value always produces the
 *    same bytes, which is what makes cached results and 1-vs-N-thread
 *    sweep reports byte-comparable.
 *  - Integers are kept as 64-bit values (signed or unsigned) end to end;
 *    cycle and instruction counters round-trip exactly even beyond 2^53.
 *  - Doubles are written with std::to_chars (shortest round-trip form),
 *    which is locale-independent and deterministic.
 *
 * Parsing errors throw FatalError with the offending line/column and
 * byte offset; callers that read untrusted files (e.g. a corrupted
 * result cache) catch it and fall back. The parser sits on a network
 * boundary (serve::Server request bodies), so it is strict about
 * adversarial input: nesting depth is capped at kMaxParseDepth,
 * duplicate object keys are rejected, and unescaped control characters
 * inside strings are syntax errors.
 */

#ifndef DYNASPAM_COMMON_JSON_HH
#define DYNASPAM_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace dynaspam::json
{

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/**
 * A pre-serialized JSON fragment the writer emits verbatim in place of
 * a value. The splice primitive behind zero-reserialization proxying:
 * the cluster coordinator embeds worker-produced report entries into a
 * merged document without parsing them. The producer is responsible for
 * serializing the fragment at the nesting depth it will be spliced into
 * (dumpAt with the same indent/depth), or output indentation will not
 * match a natively serialized document. Never produced by parse().
 */
struct Raw
{
    std::string text;
};

/**
 * Maximum container nesting depth parse() accepts. Documents emitted by
 * this repository nest a handful of levels; the cap only exists so a
 * hostile request body ("[[[[…") cannot blow the parser's stack.
 */
inline constexpr unsigned kMaxParseDepth = 96;

/** A JSON document node. */
class Value
{
  public:
    Value() : data(nullptr) {}
    Value(std::nullptr_t) : data(nullptr) {}
    Value(bool b) : data(b) {}
    Value(std::int64_t i) : data(i) {}
    Value(std::uint64_t u) : data(u) {}
    Value(int i) : data(std::int64_t(i)) {}
    Value(unsigned u) : data(std::uint64_t(u)) {}
    Value(double d) : data(d) {}
    Value(const char *s) : data(std::string(s)) {}
    Value(std::string s) : data(std::move(s)) {}
    Value(Array a) : data(std::move(a)) {}
    Value(Object o) : data(std::move(o)) {}
    Value(Raw r) : data(std::move(r)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(data); }
    bool isBool() const { return std::holds_alternative<bool>(data); }
    bool isString() const { return std::holds_alternative<std::string>(data); }
    bool isArray() const { return std::holds_alternative<Array>(data); }
    bool isObject() const { return std::holds_alternative<Object>(data); }
    bool isRaw() const { return std::holds_alternative<Raw>(data); }

    /** @return true for any numeric alternative (int, uint or double). */
    bool
    isNumber() const
    {
        return std::holds_alternative<std::int64_t>(data) ||
               std::holds_alternative<std::uint64_t>(data) ||
               std::holds_alternative<double>(data);
    }

    /** @return boolean payload. @throws FatalError on type mismatch */
    bool asBool() const;
    /** @return value as an unsigned 64-bit integer (negative values and
     *  non-integral doubles are errors). @throws FatalError */
    std::uint64_t asUint() const;
    /** @return value as a signed 64-bit integer. @throws FatalError */
    std::int64_t asInt() const;
    /** @return value as a double (exact for any numeric). @throws FatalError */
    double asDouble() const;
    /** @return string payload. @throws FatalError on type mismatch */
    const std::string &asString() const;
    /** @return array payload. @throws FatalError on type mismatch */
    const Array &asArray() const;
    Array &asArray();
    /** @return object payload. @throws FatalError on type mismatch */
    const Object &asObject() const;
    Object &asObject();
    /** @return raw-fragment payload. @throws FatalError on type mismatch */
    const Raw &asRaw() const;

    /** Object member lookup. @return nullptr when absent or not an object */
    const Value *find(const std::string &key) const;
    /** Object member access. @throws FatalError when missing */
    const Value &at(const std::string &key) const;

    /**
     * Serialize. With @p indent > 0, pretty-prints using that many spaces
     * per level; with 0, emits the compact single-line form. Output is
     * deterministic: object keys are sorted, doubles use shortest
     * round-trip formatting.
     */
    void write(std::ostream &os, unsigned indent = 0) const;

    /** @return write() output as a string. */
    std::string dump(unsigned indent = 0) const;

    /**
     * Serialize as if this value sat @p depth container levels deep in
     * an indent-formatted document: nested newlines are indented
     * relative to that depth, with no leading or trailing indentation.
     * dumpAt(indent, 0) == dump(indent). The output is exactly the
     * bytes write(indent) would emit for this value inside an enclosing
     * document, which is what makes Raw splicing byte-identical.
     */
    std::string dumpAt(unsigned indent, unsigned depth) const;

    /**
     * Parse a complete JSON document (trailing garbage is an error).
     * @throws FatalError on any syntax error
     */
    static Value parse(const std::string &text);

  private:
    void writeIndented(std::ostream &os, unsigned indent,
                       unsigned depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
                 std::string, Array, Object, Raw>
        data;
};

/** Write @p s as a JSON string literal (quotes + escapes) to @p os. */
void writeEscaped(std::ostream &os, const std::string &s);

} // namespace dynaspam::json

#endif // DYNASPAM_COMMON_JSON_HH
