/**
 * @file
 * Dataflow execution timing model of the spatial fabric.
 *
 * One Fabric instance models one on-chip fabric: it holds at most one
 * active configuration (reconfiguration costs cycles and is tracked for
 * the configuration-lifetime statistics), executes invocations in
 * dataflow order with stripe-boundary routing latencies, supports
 * pipelined back-to-back invocations through the global bus, and runs
 * its LDST units against the data cache with store-set memory dependence
 * speculation.
 */

#ifndef DYNASPAM_FABRIC_FABRIC_HH
#define DYNASPAM_FABRIC_FABRIC_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "fabric/config.hh"
#include "fabric/params.hh"
#include "isa/trace.hh"
#include "memory/cache.hh"
#include "ooo/storesets.hh"

namespace dynaspam::trace
{
class TraceSink;
} // namespace dynaspam::trace

namespace dynaspam::fabric
{

/** Timing outcome of one invocation on the fabric. */
struct FabricExecResult
{
    bool squashed = false;

    /** Why the invocation squashed (valid when squashed). */
    enum class SquashCause : std::uint8_t
    {
        None,
        BranchMismatch,     ///< a branch left the mapped trace path
        MemoryViolation,    ///< speculative load bypassed an aliasing store
    };
    SquashCause cause = SquashCause::None;

    /** When all live-outs/branch results/stores were delivered, or when
     *  the squash condition was detected. */
    Cycle completeCycle = 0;

    /** Ready-at-host cycles, parallel to FabricConfig::liveOuts. */
    std::vector<Cycle> liveOutReady;

    /** One record per store the invocation performed. */
    struct StoreEvent
    {
        Addr addr = 0;
        Cycle completeCycle = 0;
        InstAddr pc = 0;
    };
    /** Store events (empty when squashed) — lets the host pipeline
     *  detect younger loads that speculatively bypassed them. */
    std::vector<StoreEvent> storeEvents;
};

/** Event counts for energy accounting and the evaluation figures. */
struct FabricStats
{
    std::uint64_t invocations = 0;
    std::uint64_t squashedInvocations = 0;
    std::uint64_t peOps = 0;
    std::uint64_t datapathHops = 0;
    std::uint64_t fifoPushes = 0;
    std::uint64_t busTransfers = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t reconfigurations = 0;
    std::uint64_t memViolations = 0;
    /** Sum over invocations of stripesUsed (for gated leakage). */
    std::uint64_t activeStripeInvocations = 0;

    bool operator==(const FabricStats &) const = default;
};

/**
 * One physical fabric instance.
 */
class Fabric
{
  public:
    /**
     * @param params geometry/timing
     * @param hierarchy data cache for LDST units
     * @param store_sets memory dependence predictor shared with the host
     */
    Fabric(const FabricParams &params, mem::MemoryHierarchy &hierarchy,
           ooo::StoreSetPredictor &store_sets);

    /**
     * Load @p config into the fabric, replacing the current one.
     * @param now cycle the reconfiguration starts
     * @return cycle at which the fabric is ready to execute
     */
    Cycle configure(std::shared_ptr<const FabricConfig> config, Cycle now);

    /** @return true if @p key is the currently loaded configuration. */
    bool hasConfig(std::uint64_t key) const
    {
        return current && current->key == key;
    }

    /** @return true when any configuration is loaded. */
    bool configured() const { return current != nullptr; }

    /** @return the loaded configuration (must be configured()). */
    const FabricConfig &config() const { return *current; }

    /**
     * Execute one invocation of the loaded configuration.
     *
     * @param trace oracle trace (for addresses and branch outcomes)
     * @param trace_idx first oracle record of this invocation
     * @param live_in_arrival host-side ready cycle per live-in, parallel
     *                        to config().liveIns
     * @param mem_safe earliest cycle fabric memory ops may access memory
     * @param now cycle the invocation is requested
     */
    FabricExecResult execute(const isa::DynamicTrace &trace,
                             SeqNum trace_idx,
                             const std::vector<Cycle> &live_in_arrival,
                             Cycle mem_safe, Cycle now);

    /**
     * The invocation dispatched from @p trace_idx committed: its effects
     * on the fabric's pipelining state are final (drops its snapshot and
     * all older ones).
     */
    void noteCommitted(SeqNum trace_idx);

    /**
     * The invocation dispatched from @p trace_idx was squashed in the
     * ROB: rewind the fabric's pipelining state to just before its
     * execute() call, discarding it and everything younger. No-op if the
     * invocation never executed here.
     */
    void rollback(SeqNum trace_idx);

    const FabricStats &stats() const { return fstats; }
    const FabricParams &parameters() const { return params; }

    /** Invocations executed since the last reconfiguration. */
    std::uint64_t invocationsSinceConfigure() const
    {
        return invocationsOnConfig;
    }

    /** Last cycle this fabric was used (for LRU across fabrics). */
    Cycle lastUseCycle() const { return lastUse; }

    /** Attach an event-trace sink (nullptr detaches): samples the
     *  in-flight FIFO occupancy as a counter track. */
    void setTraceSink(trace::TraceSink *sink) { tsink = sink; }

    /** Export statistics under "<prefix>." into @p registry. */
    void exportStats(StatRegistry &registry,
                     const std::string &prefix = "fabric") const;

    /** Recently completed stores, for cross-invocation memory-order
     *  violation detection. */
    struct RecentStore
    {
        Addr addr = 0;
        Cycle completeCycle = 0;
        InstAddr pc = 0;
        SeqNum seq = 0;

        bool operator==(const RecentStore &) const = default;
    };

    /** Pre-execution state capture for ROB-squash rollback; also the
     *  per-fabric payload of a full simulator snapshot. FabricConfig
     *  objects are immutable, so the pointer is shared, not copied. */
    struct Snapshot
    {
        std::shared_ptr<const FabricConfig> config;
        Cycle configReadyCycle = 0;
        Cycle lastUse = 0;
        std::vector<Cycle> prevInstComplete;
        std::vector<Cycle> prevLiveOutInternal;
        SeqNum prevTraceEndIdx = 0;
        std::deque<Cycle> inflightWindow;
        std::deque<RecentStore> recentStores;
        Cycle lastMemCompletePersist = 0;
        std::uint64_t invocationsOnConfig = 0;

        bool operator==(const Snapshot &) const = default;
    };

    /**
     * Complete mutable fabric state: the live pipelining state (as one
     * rollback Snapshot), the outstanding per-invocation rollback
     * snapshots, and the statistics.
     */
    struct SavedState
    {
        Snapshot live;
        std::map<SeqNum, Snapshot> snapshots;
        FabricStats stats;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.live = takeSnapshot();
        out.snapshots = snapshots;
        out.stats = fstats;
    }

    void
    restore(const SavedState &in)
    {
        restoreSnapshot(in.live);
        snapshots = in.snapshots;
        fstats = in.stats;
    }

  private:
    FabricParams params;
    mem::MemoryHierarchy &hierarchy;
    ooo::StoreSetPredictor &storeSets;

    std::shared_ptr<const FabricConfig> current;
    Cycle configReadyCycle = 0;
    Cycle lastUse = 0;

    /** Per-instruction completion cycles of the previous invocation of
     *  the current config (for PE structural pipelining). */
    std::vector<Cycle> prevInstComplete;
    /** Previous invocation's internal live-out completion times, for
     *  direct global-bus forwarding on back-to-back invocations. */
    std::vector<Cycle> prevLiveOutInternal;
    SeqNum prevTraceEndIdx = 0;     ///< record index just after previous
                                    ///< invocation (back-to-back check)

    /** Completion cycles of recent invocations: models live-in/live-out
     *  FIFO depth back-pressure on pipelined execution. */
    std::deque<Cycle> inflightWindow;

    std::deque<RecentStore> recentStores;

    /** Completion of the newest memory op, persisted across invocations
     *  for the strict ordering of the no-speculation configuration. */
    Cycle lastMemCompletePersist = 0;

    std::uint64_t invocationsOnConfig = 0;

    Snapshot takeSnapshot() const;
    void restoreSnapshot(const Snapshot &snap);

    /** Keyed by the invocation's first trace record. */
    std::map<SeqNum, Snapshot> snapshots;

    trace::TraceSink *tsink = nullptr;

    FabricStats fstats;
};

} // namespace dynaspam::fabric

#endif // DYNASPAM_FABRIC_FABRIC_HH
