/**
 * @file
 * Geometry and timing parameters of the DynaSpAM spatial fabric
 * (paper Table 4: 16 stripes, same execution units as the OOO pipeline
 * per stripe, 3 pass registers per FU, 16 live-in / 16 live-out FIFOs
 * with 8-entry buffers).
 */

#ifndef DYNASPAM_FABRIC_PARAMS_HH
#define DYNASPAM_FABRIC_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "ooo/params.hh"

namespace dynaspam::fabric
{

/** Identifies one processing element in the fabric. */
struct PeId
{
    std::uint8_t stripe = 0;
    std::uint8_t index = 0;     ///< PE index within the stripe

    bool
    operator==(const PeId &other) const
    {
        return stripe == other.stripe && index == other.index;
    }
};

/** Fabric configuration parameters. */
struct FabricParams
{
    unsigned numStripes = 16;

    /**
     * Execution units per stripe: same mix as the OOO pipeline
     * (Table 4, "same execution units as OOO per strip").
     */
    ooo::FuPoolParams stripeUnits;

    unsigned passRegsPerFu = 3;     ///< Table 4: 3 pass regs per FU
    unsigned liveInFifos = 16;      ///< Table 4
    unsigned liveOutFifos = 16;     ///< Table 4
    unsigned fifoDepth = 8;         ///< Table 4: 8-entry buffers

    /** Cycles for a value to cross the global bus (host <-> fabric, and
     *  live-out-to-live-in forwarding between back-to-back invocations).
     *  A dedicated point-to-point bus (Figure 4) crosses in one cycle. */
    Cycle globalBusLatency = 1;
    /** Extra cycles per additional stripe boundary a routed value hops. */
    Cycle hopLatency = 1;
    /** Cycles to (re)configure one stripe from the configuration cache. */
    Cycle configureCyclesPerStripe = 2;

    /** When false, fabric memory ops execute in strict program order. */
    bool memorySpeculation = true;

    /** @return total PEs per stripe. */
    unsigned pesPerStripe() const { return stripeUnits.total(); }

    /**
     * Pass-register capacity of one stripe boundary: how many distinct
     * values can be carried from stripe s to stripe s+1.
     */
    unsigned
    boundaryCapacity() const
    {
        return passRegsPerFu * pesPerStripe();
    }

    bool operator==(const FabricParams &) const = default;
};

} // namespace dynaspam::fabric

#endif // DYNASPAM_FABRIC_PARAMS_HH
