/**
 * @file
 * Spatial fabric dataflow execution model implementation.
 */

#include "fabric/fabric.hh"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace dynaspam::fabric
{

std::string
FabricConfig::toString() const
{
    std::ostringstream os;
    os << "config key=0x" << std::hex << key << std::dec << " records="
       << numRecords << " stripes=" << int(stripesUsed) << "\n";
    for (std::size_t i = 0; i < insts.size(); i++) {
        const MappedInst &mi = insts[i];
        os << "  [" << i << "] pc=" << mi.pc << " "
           << isa::opcodeName(mi.op) << " @s" << int(mi.pe.stripe) << ":p"
           << int(mi.pe.index) << "\n";
    }
    return os.str();
}

Fabric::Fabric(const FabricParams &p, mem::MemoryHierarchy &h,
               ooo::StoreSetPredictor &ss)
    : params(p), hierarchy(h), storeSets(ss)
{
    if (params.numStripes == 0 || params.pesPerStripe() == 0)
        fatal("fabric must have at least one stripe and one PE");
}

Cycle
Fabric::configure(std::shared_ptr<const FabricConfig> config, Cycle now)
{
    if (!config || !config->valid())
        fatal("attempt to configure fabric with an invalid config");
    if (config->stripesUsed > params.numStripes)
        fatal("config uses ", int(config->stripesUsed),
              " stripes but fabric has ", params.numStripes);

    if (current)
        fstats.reconfigurations++;
    current = std::move(config);
    invocationsOnConfig = 0;
    prevInstComplete.assign(current->insts.size(), 0);
    prevLiveOutInternal.assign(current->liveOuts.size(), 0);
    prevTraceEndIdx = 0;
    configReadyCycle = now + Cycle(current->stripesUsed) *
                                 params.configureCyclesPerStripe;
    lastUse = now;
    return configReadyCycle;
}

Fabric::Snapshot
Fabric::takeSnapshot() const
{
    Snapshot snap;
    snap.config = current;
    snap.configReadyCycle = configReadyCycle;
    snap.lastUse = lastUse;
    snap.prevInstComplete = prevInstComplete;
    snap.prevLiveOutInternal = prevLiveOutInternal;
    snap.prevTraceEndIdx = prevTraceEndIdx;
    snap.inflightWindow = inflightWindow;
    snap.recentStores = recentStores;
    snap.lastMemCompletePersist = lastMemCompletePersist;
    snap.invocationsOnConfig = invocationsOnConfig;
    return snap;
}

void
Fabric::restoreSnapshot(const Snapshot &snap)
{
    current = snap.config;
    configReadyCycle = snap.configReadyCycle;
    lastUse = snap.lastUse;
    prevInstComplete = snap.prevInstComplete;
    prevLiveOutInternal = snap.prevLiveOutInternal;
    prevTraceEndIdx = snap.prevTraceEndIdx;
    inflightWindow = snap.inflightWindow;
    recentStores = snap.recentStores;
    lastMemCompletePersist = snap.lastMemCompletePersist;
    invocationsOnConfig = snap.invocationsOnConfig;
}

void
Fabric::noteCommitted(SeqNum trace_idx)
{
    // Commits arrive in program order: everything at or before this
    // invocation is final.
    snapshots.erase(snapshots.begin(),
                    snapshots.upper_bound(trace_idx));
}

void
Fabric::rollback(SeqNum trace_idx)
{
    auto it = snapshots.find(trace_idx);
    if (it == snapshots.end())
        return;     // never executed here (or already rolled back)
    restoreSnapshot(it->second);
    snapshots.erase(it, snapshots.end());
}

FabricExecResult
Fabric::execute(const isa::DynamicTrace &trace, SeqNum trace_idx,
                const std::vector<Cycle> &live_in_arrival, Cycle mem_safe,
                Cycle now)
{
    if (!current)
        panic("Fabric::execute without a configuration");
    if (live_in_arrival.size() != current->liveIns.size())
        panic("live-in arrival count mismatch");

    // Capture the pipelining state so a ROB squash of this invocation
    // can rewind its ghost effects.
    snapshots[trace_idx] = takeSnapshot();

    FabricExecResult result;
    const FabricConfig &cfg = *current;
    const std::size_t n = cfg.insts.size();

    // Base start: request time, configuration done, and FIFO-depth
    // back-pressure (at most fifoDepth invocations overlap in flight).
    Cycle start = std::max(now, configReadyCycle);
    if (inflightWindow.size() >= params.fifoDepth)
        start = std::max(start,
                         inflightWindow[inflightWindow.size() -
                                        params.fifoDepth]);

    // Live-in arrival at the fabric input ports. Back-to-back invocations
    // of the same trace forward dependent live-outs directly over the
    // global bus, skipping the trip through the host register file.
    const bool back_to_back =
        invocationsOnConfig > 0 && trace_idx == prevTraceEndIdx;
    std::vector<Cycle> arrival(live_in_arrival.size());
    for (std::size_t i = 0; i < arrival.size(); i++) {
        arrival[i] = live_in_arrival[i] + params.globalBusLatency;
        if (back_to_back) {
            for (std::size_t o = 0; o < cfg.liveOuts.size(); o++) {
                if (cfg.liveOuts[o].arch == cfg.liveIns[i]) {
                    arrival[i] = std::min(
                        arrival[i],
                        prevLiveOutInternal[o] + params.globalBusLatency);
                    break;
                }
            }
        }
        fstats.busTransfers++;
        fstats.fifoPushes++;
    }

    std::vector<Cycle> complete(n, 0);
    // PE occupancy per instruction: loads occupy their LDST unit only
    // for issue/address generation — the reservation buffer (Figure 4)
    // holds in-flight misses so responses can return out of order and
    // later invocations' loads can issue meanwhile (memory-level
    // parallelism, as in the host pipeline).
    std::vector<Cycle> occupy(n, 0);
    // Without memory speculation, memory operations execute in strict
    // program order — including across invocations.
    Cycle last_mem_complete =
        params.memorySpeculation ? 0 : lastMemCompletePersist;
    Cycle last_event = start;
    bool squashed = false;
    std::size_t executed = n;

    // Stores of this invocation, for intra-trace violation detection.
    struct PendingStore
    {
        Addr addr;
        Cycle completeCycle;
        InstAddr pc;
        SeqNum seq;
    };
    std::vector<PendingStore> invStores;

    for (std::size_t i = 0; i < n; i++) {
        const MappedInst &mi = cfg.insts[i];
        const isa::DynRecord &rec = trace[trace_idx + i];
        const SeqNum pseudo_seq = ooo::FABRIC_SEQ_FLAG | (trace_idx + i + 1);

        Cycle ready = start;
        for (const OperandRoute *route : {&mi.src1, &mi.src2}) {
            switch (route->kind) {
              case OperandRoute::Kind::None:
                break;
              case OperandRoute::Kind::LiveIn:
                ready = std::max(ready, arrival.at(route->liveInIdx));
                break;
              case OperandRoute::Kind::PassReg:
                ready = std::max(ready, complete.at(route->producerIdx));
                break;
              case OperandRoute::Kind::Routed:
                ready = std::max(ready,
                                 complete.at(route->producerIdx) +
                                     Cycle(route->hops) * params.hopLatency);
                fstats.datapathHops += route->hops;
                break;
            }
        }

        // Structural pipelining: the PE must have finished this slot's
        // operation from the previous invocation.
        ready = std::max(ready, prevInstComplete[i]);

        const unsigned lat = isa::opLatency(mi.opClass());
        Cycle done;

        if (mi.isLoad || mi.isStore) {
            ready = std::max(ready, mem_safe);
            if (!params.memorySpeculation) {
                // Strict program order among memory operations.
                ready = std::max(ready, last_mem_complete);
            }

            if (mi.isLoad) {
                if (params.memorySpeculation) {
                    // Store-set gate: wait for the predicted producer.
                    SeqNum dep = storeSets.lookupDependence(mi.pc);
                    if (dep != 0) {
                        for (const PendingStore &ps : invStores) {
                            if (ps.seq == dep) {
                                ready = std::max(ready, ps.completeCycle);
                                break;
                            }
                        }
                        // Dependences on stores outside this invocation
                        // are covered by mem_safe / recentStores below.
                        for (const RecentStore &rs : recentStores) {
                            if (rs.seq == dep)
                                ready = std::max(ready, rs.completeCycle);
                        }
                    }
                }
                fstats.dcacheAccesses++;
                auto access = hierarchy.dataAccess(rec.effAddr, false);
                done = ready + lat + access.latency;

                if (params.memorySpeculation) {
                    // Violation: an older store (this or the previous
                    // invocation) to the same address completes after
                    // this load started executing.
                    auto violates = [&](Addr a, Cycle c) {
                        return a == rec.effAddr && c > ready;
                    };
                    const PendingStore *bad = nullptr;
                    for (const PendingStore &ps : invStores) {
                        if (violates(ps.addr, ps.completeCycle)) {
                            bad = &ps;
                            break;
                        }
                    }
                    if (!bad) {
                        for (const RecentStore &rs : recentStores) {
                            if (violates(rs.addr, rs.completeCycle)) {
                                storeSets.recordViolation(mi.pc, rs.pc);
                                squashed = true;
                                result.cause = FabricExecResult::
                                    SquashCause::MemoryViolation;
                                last_event =
                                    std::max(last_event, rs.completeCycle);
                                break;
                            }
                        }
                    } else {
                        storeSets.recordViolation(mi.pc, bad->pc);
                        squashed = true;
                        result.cause =
                            FabricExecResult::SquashCause::MemoryViolation;
                        last_event =
                            std::max(last_event, bad->completeCycle);
                    }
                    if (squashed) {
                        fstats.memViolations++;
                        executed = i + 1;
                        complete[i] = done;
                        break;
                    }
                }
            } else {
                done = ready + lat;
                invStores.push_back({rec.effAddr, done, mi.pc, pseudo_seq});
                if (params.memorySpeculation)
                    storeSets.dispatchStore(mi.pc, pseudo_seq);
                // Stores drain to the cache when the invocation commits.
                fstats.dcacheAccesses++;
                hierarchy.dataAccess(rec.effAddr, true);
            }
            last_mem_complete = std::max(last_mem_complete, done);
        } else {
            done = ready + lat;
        }

        complete[i] = done;
        // Functional units are pipelined (one new operation per cycle)
        // except the iterative dividers; loads hand off to the
        // reservation buffer after address generation.
        {
            const isa::OpClass cls = mi.opClass();
            const bool unpipelined = cls == isa::OpClass::IntDiv ||
                                     cls == isa::OpClass::FloatDiv;
            occupy[i] = unpipelined ? done : ready + 1;
        }
        fstats.peOps++;
        last_event = std::max(last_event, done);

        if (mi.isBranch) {
            if (rec.taken != mi.expectedTaken) {
                // The oracle path leaves the mapped trace: squash when
                // this branch result reaches the ROB'.
                squashed = true;
                result.cause = FabricExecResult::SquashCause::BranchMismatch;
                executed = i + 1;
                break;
            }
            // Branch results are shipped to the ROB' over the bus.
            fstats.busTransfers++;
        }
    }

    // Update structural state for pipelining (loads free their PE at
    // issue; the reservation buffer carries the outstanding access).
    for (std::size_t i = 0; i < n; i++) {
        prevInstComplete[i] =
            i < executed ? occupy[i] : std::max(last_event, start);
    }
    lastMemCompletePersist = std::max(lastMemCompletePersist,
                                      last_mem_complete);

    if (squashed) {
        result.squashed = true;
        result.completeCycle = last_event + params.globalBusLatency;
        fstats.invocations++;
        fstats.squashedInvocations++;
        fstats.activeStripeInvocations += cfg.stripesUsed;
        invocationsOnConfig++;
        prevTraceEndIdx = 0;    // no back-to-back chaining after a squash
        lastUse = result.completeCycle;
        inflightWindow.push_back(result.completeCycle);
        if (inflightWindow.size() > 2 * params.fifoDepth)
            inflightWindow.pop_front();
        if (trace::compiledIn() && tsink) {
            tsink->counter(trace::Mark::FifoLevel, now,
                           inflightWindow.size());
        }
        // Squashed stores never drained; retire their LFST registrations.
        for (const PendingStore &ps : invStores)
            storeSets.retireStore(ps.pc, ps.seq);
        return result;
    }

    // Deliver live-outs to the host over the global bus.
    result.liveOutReady.resize(cfg.liveOuts.size());
    Cycle complete_all = last_event;
    for (std::size_t o = 0; o < cfg.liveOuts.size(); o++) {
        Cycle internal = complete.at(cfg.liveOuts[o].producerIdx);
        prevLiveOutInternal[o] = internal;
        result.liveOutReady[o] = internal + params.globalBusLatency;
        complete_all = std::max(complete_all, result.liveOutReady[o]);
        fstats.busTransfers++;
        fstats.fifoPushes++;
    }
    result.completeCycle = complete_all;

    // Remember this invocation's stores for cross-invocation violation
    // detection, and report them to the host for its own load-bypass
    // checks. LFST registrations deliberately persist so a load in the
    // *next* invocation still sees its predicted producer (each new
    // dispatch of the same store PC re-registers, keeping them fresh).
    for (const PendingStore &ps : invStores) {
        recentStores.push_back({ps.addr, ps.completeCycle, ps.pc, ps.seq});
        result.storeEvents.push_back({ps.addr, ps.completeCycle, ps.pc});
    }
    while (recentStores.size() > 64)
        recentStores.pop_front();

    fstats.invocations++;
    fstats.activeStripeInvocations += cfg.stripesUsed;
    invocationsOnConfig++;
    prevTraceEndIdx = trace_idx + cfg.numRecords;
    lastUse = result.completeCycle;
    inflightWindow.push_back(result.completeCycle);
    if (inflightWindow.size() > 2 * params.fifoDepth)
        inflightWindow.pop_front();
    if (trace::compiledIn() && tsink)
        tsink->counter(trace::Mark::FifoLevel, now, inflightWindow.size());

    return result;
}

void
Fabric::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.counter(prefix + ".invocations").inc(fstats.invocations);
    reg.counter(prefix + ".squashedInvocations")
        .inc(fstats.squashedInvocations);
    reg.counter(prefix + ".peOps").inc(fstats.peOps);
    reg.counter(prefix + ".datapathHops").inc(fstats.datapathHops);
    reg.counter(prefix + ".fifoPushes").inc(fstats.fifoPushes);
    reg.counter(prefix + ".busTransfers").inc(fstats.busTransfers);
    reg.counter(prefix + ".dcacheAccesses").inc(fstats.dcacheAccesses);
    reg.counter(prefix + ".reconfigurations").inc(fstats.reconfigurations);
    reg.counter(prefix + ".memViolations").inc(fstats.memViolations);
    reg.counter(prefix + ".activeStripeInvocations")
        .inc(fstats.activeStripeInvocations);
}

} // namespace dynaspam::fabric
