/**
 * @file
 * Fabric configuration: the product of the dynamic mapping phase.
 *
 * A FabricConfig records, for every instruction of a mapped trace, its PE
 * placement and operand routing, plus the trace's live-in/live-out
 * interface, its control-flow path (for validity checking during
 * offloaded execution) and its memory-operation order (the simplified
 * memory instructions kept in the configuration per Section 3.2).
 */

#ifndef DYNASPAM_FABRIC_CONFIG_HH
#define DYNASPAM_FABRIC_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fabric/params.hh"
#include "isa/inst.hh"

namespace dynaspam::fabric
{

/** Where one operand of a mapped instruction comes from. */
struct OperandRoute
{
    enum class Kind : std::uint8_t
    {
        None,       ///< operand unused
        LiveIn,     ///< from a live-in FIFO via the global bus
        PassReg,    ///< from the previous stripe's pass registers
        Routed,     ///< from a producer several stripes back, via newly
                    ///< allocated pass-register datapaths (costs hops)
    };

    Kind kind = Kind::None;
    /** Producing instruction's index within the config (PassReg/Routed). */
    std::uint16_t producerIdx = 0xffff;
    /** Live-in FIFO index (LiveIn). */
    std::uint16_t liveInIdx = 0;
    /** Extra stripe boundaries the value crosses beyond one. */
    std::uint16_t hops = 0;

    bool operator==(const OperandRoute &) const = default;
};

/** One instruction placed on the fabric. */
struct MappedInst
{
    InstAddr pc = 0;
    isa::Opcode op = isa::Opcode::NOP;
    PeId pe;
    OperandRoute src1;
    OperandRoute src2;
    RegIndex destArch = REG_INVALID;

    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    /** For branches: the outcome along the mapped trace path. */
    bool expectedTaken = false;

    isa::OpClass opClass() const { return isa::opClass(op); }
};

/** A live-out: which mapped instruction produces which architectural reg. */
struct LiveOut
{
    RegIndex arch = REG_INVALID;
    std::uint16_t producerIdx = 0xffff;
};

/** Complete configuration for one trace. */
struct FabricConfig
{
    /** Identity: PC of the trace's first (branch) instruction plus the
     *  predicted outcomes of its three branches, as in the T-Cache. */
    std::uint64_t key = 0;

    /** First oracle-trace record the config was mapped from (debug). */
    SeqNum mappedFromIdx = 0;

    /** Number of dynamic records one invocation covers. */
    std::uint32_t numRecords = 0;

    std::vector<MappedInst> insts;      ///< in trace program order
    std::vector<RegIndex> liveIns;      ///< arch regs, FIFO order
    std::vector<LiveOut> liveOuts;

    bool hasStores = false;
    std::uint8_t stripesUsed = 0;

    bool valid() const { return numRecords > 0 && !insts.empty(); }

    /** Human-readable dump of placements and routes. */
    std::string toString() const;
};

} // namespace dynaspam::fabric

#endif // DYNASPAM_FABRIC_CONFIG_HH
