/**
 * @file
 * Cluster worker: one shard of the distributed sweep fabric.
 *
 * A worker is a standalone process (`dynaspam worker --connect
 * host:port`) that dials the coordinator's worker port, joins the
 * cluster with a Hello/Welcome handshake, and then executes the job
 * batches the coordinator assigns to its shard. It wraps the exact
 * execution stack the single-process daemon uses — runner::execute
 * behind a runner::ResultCache — so a job computed by a worker produces
 * the same bytes it would have produced anywhere else.
 *
 * Shard-local caching, two tiers:
 *  - the on-disk ResultCache (per-worker --cache-dir), same format and
 *    epoch as the CLI's, surviving worker restarts;
 *  - an in-memory LRU memo of *pre-rendered* sweep-report entry bytes
 *    (from_cache=true form, serialized once at the report's splice
 *    depth), so a repeat job is answered with a string copy — no cache
 *    file read, no JSON parse, and no re-serialization, on the worker
 *    or on the coordinator (which splices the fragment via json::Raw).
 * Because the coordinator routes each job hash to a fixed owner slot,
 * hits concentrate in the owning worker's memo and never require
 * cross-worker traffic.
 *
 * Health and liveness: the worker answers coordinator Pings between job
 * executions (never mid-job), reporting its queued-batch depth and
 * cumulative cache evictions — the coordinator republishes both as
 * per-worker Prometheus gauges.
 *
 * Failure semantics: a deterministic job failure (execute throws) is
 * reported as a Result {"error": ...} — the coordinator fails that
 * request without retry, because retrying a deterministic simulator
 * reproduces the error. A vanished worker (socket EOF / ping timeout)
 * is the retryable case, handled coordinator-side by reassignment.
 */

#ifndef DYNASPAM_CLUSTER_WORKER_HH
#define DYNASPAM_CLUSTER_WORKER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "cluster/wire.hh"
#include "common/annotations.hh"
#include "common/fd.hh"
#include "common/json.hh"
#include "common/mutex.hh"
#include "runner/job.hh"
#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/snapshot_cache.hh"

namespace dynaspam::cluster
{

/** Configuration for one Worker instance. */
struct WorkerOptions
{
    /** Coordinator worker-port endpoint to dial. */
    std::string connectHost = "127.0.0.1";
    unsigned connectPort = 9090;
    /** Bounded *consecutive* dial failures (coordinator may still be
     *  booting, or be restarting mid-sweep); a successful connection
     *  resets the count. */
    unsigned connectRetries = 25;
    std::uint64_t connectRetryMs = 200;

    /**
     * Re-dial after a lost coordinator link instead of exiting. An
     * orderly drain (Goodbye frame) or shutdownNow() still terminates
     * the worker; only an unexplained EOF / error / silence triggers a
     * reconnect. Waits are jittered exponential backoff from
     * connectRetryMs, capped at reconnectBackoffCapMs.
     */
    bool reconnect = true;
    std::uint64_t reconnectBackoffCapMs = 5000;

    /**
     * Shared cluster secret sent in the Hello frame. Must match the
     * coordinator's --cluster-token when the coordinator has one; an
     * empty token simply omits the field. Never logged.
     */
    std::string clusterToken;

    /** Shard-local result cache; empty disables the disk tier. */
    std::string cacheDir;
    /** LRU size budget for the cache directory; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 0;
    /** In-memory memo capacity, in entries. */
    std::size_t memoCapacity = 4096;

    /** Shard-local snapshot cache (warmed fork-group state); empty
     *  disables on-disk snapshots. */
    std::string snapshotCacheDir;
    /** LRU size budget for the snapshot cache; 0 = unbounded. */
    std::uint64_t snapshotCacheMaxBytes = 0;

    /** Log a line per lifecycle event (suppressed in tests). */
    bool verbose = true;

    /** Simulation function; defaults to runner::execute (test seam).
     *  Supplying one disables fork-group execution — every job runs
     *  through the seam individually. */
    std::function<sim::RunResult(const runner::Job &)> executeFn;
};

/** One cluster worker process (or in-process instance, in tests). */
class Worker
{
  public:
    explicit Worker(WorkerOptions options);

    /**
     * Dial the coordinator, handshake, and serve batches until the
     * coordinator sends Goodbye (orderly drain) or shutdownNow() is
     * called. A lost link (EOF, error, silence) re-dials with jittered
     * exponential backoff when options.reconnect is set; consecutive
     * dial failures are bounded by options.connectRetries.
     * @return process exit code: 0 on clean close, 1 on error
     */
    int run();

    /**
     * Serve an already-connected coordinator link (handshake included).
     * Exposed for tests driving a socketpair. @return same as run().
     */
    int serveConnection(int fd);

    /**
     * Async kill switch: shut the coordinator link down so the serve
     * loop exits at the next socket operation. Callable from any
     * thread; used by tests to simulate a worker crash mid-sweep.
     */
    void shutdownNow();

    /** Slot assigned by the last Welcome (for logs/tests). Readable
     *  from any thread; the serve thread writes it at handshake. */
    unsigned slot() const { return slot_.load(std::memory_order_relaxed); }

  private:
    /**
     * Drain every decodable frame out of @p inBuf: answer Pings
     * immediately, queue Batches. @return false on protocol error.
     */
    bool drainFrames(std::string &inBuf, int fd);
    /**
     * Execute one batch and send its Result frame. Bytes arriving
     * mid-batch (pings, more batches) are picked up into @p inBuf
     * between job executions.
     */
    bool handleBatch(const Frame &frame, int fd, std::string &inBuf);
    /** One dial attempt. @return the connected fd, or -1 (retryable
     *  failure; terminal errors also set `terminal`). */
    int dialCoordinator();
    /** Memo -> disk-cache probe. @return the entry on a hit. */
    std::optional<RawEntry> cachedEntry(const runner::Job &job);
    /** Render a freshly executed outcome and memo its cached twin. */
    RawEntry freshEntry(const runner::Job &job,
                        const runner::JobOutcome &outcome);
    void memoPut(const std::string &hash, std::string fragment);
    void maybeGcCache();

    WorkerOptions options;
    runner::ResultCache cache;
    runner::SnapshotCache snapCache;
    runner::ForkGroupStats groupStats;
    /** True when the options carried a custom executeFn: the test seam
     *  replaces the simulator, so fork-group execution is disabled. */
    bool customExecute = false;

    std::atomic<unsigned> slot_{0};
    std::atomic<bool> stopping{false};
    /** Set on Goodbye / handshake rejection / unusable address: run()
     *  must not reconnect. */
    std::atomic<bool> terminal{false};

    /**
     * The live coordinator link, guarded so shutdownNow() can never
     * call ::shutdown on a descriptor the serve thread already closed
     * (and the kernel possibly recycled): the serve thread clears
     * linkFd under the lock before closing the socket.
     */
    common::Mutex fdMutex;
    int linkFd GUARDED_BY(fdMutex) = -1;

    std::deque<Frame> pendingBatches;

    /** LRU memo: hash -> pre-rendered entry fragment (from_cache=true
     *  form, serialized at the report's splice depth). */
    std::list<std::pair<std::string, std::string>> memoOrder;
    std::map<std::string,
             std::list<std::pair<std::string, std::string>>::iterator>
        memoMap;
    std::uint64_t memoEvictions = 0;
    std::uint64_t cacheEvictions = 0;
    std::uint64_t storesSinceGc = 0;
};

} // namespace dynaspam::cluster

#endif // DYNASPAM_CLUSTER_WORKER_HH
