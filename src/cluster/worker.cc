#include "cluster/worker.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "runner/report.hh"
#include "serve/http.hh"

namespace dynaspam::cluster
{

namespace
{

/** Cache GC every this many stores when a size budget is configured. */
constexpr std::uint64_t kGcStoreInterval = 32;

/**
 * SO_RCVTIMEO on the coordinator link. The coordinator pings every few
 * seconds, so this much silence means it is gone.
 */
constexpr unsigned kCoordinatorSilenceTimeoutSec = 30;

/** @return bytes read, 0 on EOF, -1 error, -2 timeout/no-data */
long
recvSome(int fd, char *buf, std::size_t len, int flags)
{
    while (true) {
        ssize_t n = ::recv(fd, buf, len, flags);
        if (n >= 0)
            return long(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -2;
        return -1;
    }
}

bool
sendFrame(int fd, FrameType type, const json::Value &payload)
{
    const std::string wire = encodeFrame(type, payload.dump());
    return serve::sendAll(fd, wire.data(), wire.size());
}

} // namespace

Worker::Worker(WorkerOptions options_)
    : options(std::move(options_)), cache(options.cacheDir),
      snapCache(options.snapshotCacheDir),
      customExecute(bool(options.executeFn))
{
    if (!options.executeFn)
        options.executeFn = [](const runner::Job &job) {
            return runner::execute(job);
        };
}

int
Worker::dialCoordinator()
{
    common::Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) {
        warn("worker: socket: ", std::strerror(errno));
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(options.connectPort));
    if (::inet_pton(AF_INET, options.connectHost.c_str(),
                    &addr.sin_addr) != 1) {
        warn("worker: bad coordinator address \"", options.connectHost,
             "\" (IPv4 literal required)");
        terminal.store(true, std::memory_order_relaxed);
        return -1;
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0)
        return fd.release();
    return -1;
}

int
Worker::run()
{
    // Jitter the reconnect waves so workers that lost the same
    // coordinator don't re-dial in lockstep. Seed quality is
    // irrelevant; per-process distinctness is the point.
    Rng rng(std::uint64_t(::getpid()) * 0x9e3779b97f4a7c15ULL ^
            std::uint64_t(std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));
    unsigned dialFailures = 0;
    while (true) {
        const int fd = dialCoordinator();
        if (terminal.load(std::memory_order_relaxed))
            return 1;
        if (fd < 0) {
            if (++dialFailures >= options.connectRetries) {
                warn("worker: cannot reach coordinator at ",
                     options.connectHost, ":", options.connectPort,
                     " after ", options.connectRetries, " attempts");
                return 1;
            }
            std::uint64_t delay = retryBackoffDelayMs(
                options.connectRetryMs, dialFailures,
                options.reconnectBackoffCapMs);
            delay += rng.below(delay / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }
        dialFailures = 0;
        // serveConnection takes ownership and closes on all paths.
        const int code = serveConnection(fd);
        if (stopping.load(std::memory_order_relaxed) ||
            terminal.load(std::memory_order_relaxed) ||
            !options.reconnect)
            return code;
        if (options.verbose)
            warn("worker: coordinator link lost, reconnecting");
    }
}

int
Worker::serveConnection(int fd)
{
    // Owns @p fd (int parameter so tests can hand it a socketpair end).
    common::Fd link(fd);
    {
        common::MutexLock lock(fdMutex);
        linkFd = fd;
    }

    timeval tv{};
    tv.tv_sec = kCoordinatorSilenceTimeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    // Clearing linkFd under the lock strictly precedes `link` closing
    // the socket (at return), so a concurrent shutdownNow() either sees
    // the live fd and shuts it down before we close, or sees -1.
    auto finish = [this](int code) {
        {
            common::MutexLock lock(fdMutex);
            linkFd = -1;
        }
        if (cache.enabled()) {
            runner::CacheGcStats gc = cache.gc(options.cacheMaxBytes);
            cacheEvictions += gc.staleEvicted + gc.lruEvicted;
        }
        if (snapCache.enabled()) {
            runner::CacheGcStats gc =
                snapCache.gc(options.snapshotCacheMaxBytes);
            cacheEvictions += gc.staleEvicted + gc.lruEvicted;
        }
        return code;
    };

    json::Object hello;
    hello.emplace("protocol", std::uint64_t(kWireVersion));
    if (!options.clusterToken.empty())
        hello.emplace("token", options.clusterToken);
    if (!sendFrame(fd, FrameType::Hello, json::Value(std::move(hello))))
        return finish(1);

    // Handshake: block until one Welcome frame arrives.
    std::string inBuf;
    Frame welcome;
    while (true) {
        std::size_t consumed = 0;
        DecodeOutcome outcome = decodeFrame(inBuf, welcome, consumed);
        if (outcome == DecodeOutcome::Bad) {
            warn("worker: bad frame during handshake");
            return finish(1);
        }
        if (outcome == DecodeOutcome::Ok) {
            inBuf.erase(0, consumed);
            break;
        }
        char chunk[4096];
        long n = recvSome(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            warn("worker: coordinator closed during handshake");
            return finish(1);
        }
        inBuf.append(chunk, std::size_t(n));
    }
    if (welcome.type != FrameType::Welcome) {
        warn("worker: expected Welcome, got frame type ",
             unsigned(welcome.type));
        return finish(1);
    }
    try {
        json::Value payload = json::Value::parse(welcome.payload);
        if (const json::Value *error = payload.find("error")) {
            warn("worker: coordinator rejected us: ", error->asString());
            // A rejection (full cluster, protocol mismatch) is not a
            // lost link: reconnecting would just be rejected again.
            terminal.store(true, std::memory_order_relaxed);
            return finish(1);
        }
        slot_ = unsigned(payload.at("slot").asUint());
        if (options.verbose)
            inform("worker: joined as slot ", slot_, "/",
                   payload.at("slots").asUint(), " (cache ",
                   cache.enabled() ? options.cacheDir : "disabled", ")");
    } catch (const FatalError &err) {
        warn("worker: malformed Welcome: ", err.what());
        return finish(1);
    }

    while (true) {
        if (!drainFrames(inBuf, fd))
            return finish(stopping.load() ? 1 : 0);
        while (!pendingBatches.empty()) {
            Frame batch = std::move(pendingBatches.front());
            pendingBatches.pop_front();
            if (!handleBatch(batch, fd, inBuf))
                return finish(1);
        }

        char chunk[4096];
        long n = recvSome(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            // Bare EOF: the coordinator vanished without a Goodbye.
            // run() re-dials (an orderly drain sets `terminal` via the
            // Goodbye frame before the close).
            return finish(stopping.load() ? 1 : 0);
        if (n == -2) {
            warn("worker: coordinator silent for ",
                 kCoordinatorSilenceTimeoutSec, "s, dropping link");
            return finish(1);
        }
        if (n < 0)
            return finish(stopping.load() ? 1 : 0);
        inBuf.append(chunk, std::size_t(n));
    }
}

void
Worker::shutdownNow()
{
    stopping.store(true, std::memory_order_relaxed);
    common::MutexLock lock(fdMutex);
    if (linkFd >= 0)
        ::shutdown(linkFd, SHUT_RDWR);
}

bool
Worker::drainFrames(std::string &inBuf, int fd)
{
    while (true) {
        Frame frame;
        std::size_t consumed = 0;
        switch (decodeFrame(inBuf, frame, consumed)) {
          case DecodeOutcome::Bad:
            warn("worker: bad frame from coordinator, dropping link");
            return false;
          case DecodeOutcome::NeedMore:
            return true;
          case DecodeOutcome::Ok:
            break;
        }
        inBuf.erase(0, consumed);

        switch (frame.type) {
          case FrameType::Ping: {
            json::Object pong;
            try {
                json::Value ping = json::Value::parse(frame.payload);
                pong.emplace("tick", ping.at("tick").asUint());
            } catch (const FatalError &) {
                warn("worker: malformed Ping payload");
                return false;
            }
            pong.emplace("queued",
                         std::uint64_t(pendingBatches.size()));
            pong.emplace("evictions", memoEvictions + cacheEvictions);
            pong.emplace("warmups", groupStats.warmups.load());
            if (!sendFrame(fd, FrameType::Pong,
                           json::Value(std::move(pong))))
                return false;
            break;
          }
          case FrameType::Batch:
            pendingBatches.push_back(std::move(frame));
            break;
          case FrameType::Goodbye:
            // Orderly coordinator shutdown: exit cleanly, never
            // reconnect.
            if (options.verbose)
                inform("worker: coordinator said goodbye, exiting");
            terminal.store(true, std::memory_order_relaxed);
            return false;
          default:
            warn("worker: unexpected frame type ", unsigned(frame.type),
                 " from coordinator");
            return false;
        }
    }
}

bool
Worker::handleBatch(const Frame &frame, int fd, std::string &inBuf)
{
    std::uint64_t id = 0;
    std::vector<RawEntry> entries;
    std::string error;
    try {
        json::Value payload = json::Value::parse(frame.payload);
        id = payload.at("id").asUint();
        const json::Array &specs = payload.at("jobs").asArray();
        std::vector<runner::Job> jobs;
        jobs.reserve(specs.size());
        for (const json::Value &spec : specs)
            jobs.push_back(runner::jobFromJson(spec));
        entries.resize(jobs.size());

        // Tier 1+2: memo and disk cache, recording the misses.
        std::vector<std::size_t> missIdx;
        for (std::size_t i = 0; i < jobs.size(); i++) {
            if (std::optional<RawEntry> hit = cachedEntry(jobs[i]))
                entries[i] = std::move(*hit);
            else
                missIdx.push_back(i);
        }

        // Partition the misses into fork groups — the coordinator
        // shards by fork-group hash, so a group's members all land in
        // this batch and warm once here (possibly straight from the
        // snapshot cache). The executeFn test seam replaces the
        // simulator, so when it is set every job runs individually.
        std::vector<std::vector<std::size_t>> units;
        // Canonical miss order (matching Runner::runAll): sort by job
        // hash before partitioning so fork-group member order — and the
        // warmup representative — is independent of the coordinator's
        // batch order. Entries still land by original index.
        std::sort(missIdx.begin(), missIdx.end(),
                  [&](std::size_t a, std::size_t b) {
                      const std::uint64_t ha = jobs[a].hash();
                      const std::uint64_t hb = jobs[b].hash();
                      if (ha != hb)
                          return ha < hb;
                      const std::string ka = jobs[a].key();
                      const std::string kb = jobs[b].key();
                      if (ka != kb)
                          return ka < kb;
                      return a < b;
                  });
        std::map<std::string, std::size_t> groupOf;
        for (std::size_t i : missIdx) {
            if (customExecute || jobs[i].warmupInsts == 0) {
                units.push_back({i});
                continue;
            }
            auto [it, fresh] = groupOf.try_emplace(
                runner::forkGroupKey(jobs[i]), units.size());
            if (fresh)
                units.emplace_back();
            units[it->second].push_back(i);
        }

        std::vector<runner::JobOutcome> outcomes(jobs.size());
        for (const std::vector<std::size_t> &unit : units) {
            const std::size_t front = unit.front();
            if (unit.size() == 1 &&
                (customExecute || jobs[front].warmupInsts == 0)) {
                sim::RunResult result = options.executeFn(jobs[front]);
                if (cache.enabled())
                    cache.store(jobs[front], result);
                outcomes[front] = runner::JobOutcome{
                    jobs[front], std::move(result), false};
            } else {
                runner::runForkGroup(
                    jobs, unit, outcomes,
                    cache.enabled() ? &cache : nullptr,
                    snapCache.enabled() ? &snapCache : nullptr,
                    &groupStats);
            }
            if (cache.enabled())
                maybeGcCache();
            for (std::size_t i : unit)
                entries[i] = freshEntry(jobs[i], outcomes[i]);

            // Opportunistically answer pings that arrived while the
            // unit simulated, so a busy worker is not declared dead.
            char chunk[4096];
            long n;
            while ((n = recvSome(fd, chunk, sizeof(chunk),
                                 MSG_DONTWAIT)) > 0)
                inBuf.append(chunk, std::size_t(n));
            if (!drainFrames(inBuf, fd))
                return false;
            if (n == 0 || n == -1)
                return false;    // link gone mid-batch
        }
    } catch (const std::exception &err) {
        error = err.what();
    }

    if (!error.empty()) {
        json::Object result;
        result.emplace("id", id);
        result.emplace("error", error);
        return sendFrame(fd, FrameType::Result,
                         json::Value(std::move(result)));
    }
    const std::string wire =
        encodeFrame(FrameType::ResultRaw, encodeResultRaw(id, entries));
    return serve::sendAll(fd, wire.data(), wire.size());
}

namespace
{

std::string
renderEntry(const runner::JobOutcome &outcome)
{
    return runner::sweepEntryJson(outcome).dumpAt(kReportIndent,
                                                  kEntryFragmentDepth);
}

} // namespace

std::optional<RawEntry>
Worker::cachedEntry(const runner::Job &job)
{
    const std::string hash = job.hashHex();
    auto it = memoMap.find(hash);
    if (it != memoMap.end()) {
        // Touch: move to the front of the LRU order.
        memoOrder.splice(memoOrder.begin(), memoOrder, it->second);
        return RawEntry{true, it->second->second};
    }

    if (cache.enabled()) {
        if (auto cached = cache.load(job)) {
            std::string fragment = renderEntry(
                runner::JobOutcome{job, std::move(*cached), true});
            memoPut(hash, fragment);
            return RawEntry{true, std::move(fragment)};
        }
    }
    return std::nullopt;
}

RawEntry
Worker::freshEntry(const runner::Job &job,
                   const runner::JobOutcome &outcome)
{
    RawEntry entry{false, renderEntry(runner::JobOutcome{
                              job, outcome.result, false})};
    // Future requests for this hash are cache hits: memo the
    // from_cache=true twin, matching what a disk-cache probe would
    // render next time.
    memoPut(job.hashHex(),
            renderEntry(runner::JobOutcome{job, outcome.result, true}));
    return entry;
}

void
Worker::memoPut(const std::string &hash, std::string fragment)
{
    if (options.memoCapacity == 0)
        return;
    auto it = memoMap.find(hash);
    if (it != memoMap.end()) {
        it->second->second = std::move(fragment);
        memoOrder.splice(memoOrder.begin(), memoOrder, it->second);
        return;
    }
    memoOrder.emplace_front(hash, std::move(fragment));
    memoMap[hash] = memoOrder.begin();
    while (memoOrder.size() > options.memoCapacity) {
        memoMap.erase(memoOrder.back().first);
        memoOrder.pop_back();
        memoEvictions++;
    }
}

void
Worker::maybeGcCache()
{
    if (!options.cacheMaxBytes)
        return;
    if (++storesSinceGc % kGcStoreInterval == 0) {
        runner::CacheGcStats gc = cache.gc(options.cacheMaxBytes);
        cacheEvictions += gc.staleEvicted + gc.lruEvicted;
    }
}

} // namespace dynaspam::cluster
