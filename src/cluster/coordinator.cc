#include "cluster/coordinator.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "runner/report.hh"
#include "serve/server.hh"

namespace dynaspam::cluster
{

namespace
{

/** epoll_wait tick: timers (pings, deadlines, backoffs) run per tick. */
constexpr int kEpollTickMs = 100;

/** Batch-reassignment backoff saturates here (see retryBackoffDelayMs). */
constexpr std::uint64_t kRetryBackoffCapMs = 60'000;

/**
 * A client that buffers more than this many bytes while a request is
 * pending (so the parser is paused) is flooding us: drop it.
 */
constexpr std::size_t kBusyClientBufferFactor = 4;

/** Self-pipe write end for the SIGTERM/SIGINT drain handler. */
std::atomic<int> gCoordinatorWakeFd{-1};

extern "C" void
coordinatorSignalHandler(int)
{
    int fd = gCoordinatorWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string
requestLabels(const std::string &endpoint, int status)
{
    std::ostringstream os;
    os << "endpoint=\"" << endpoint << "\",status=\"" << status << "\"";
    return os.str();
}

std::string
workerLabel(int slot)
{
    std::ostringstream os;
    os << "worker=\"" << slot << "\"";
    return os.str();
}

/**
 * Drain a non-blocking fd into @p buf.
 * @return 1 more may come, 0 peer closed, -1 error
 */
int
drainFd(int fd, std::string &buf)
{
    char chunk[16384];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf.append(chunk, std::size_t(n));
            continue;
        }
        if (n == 0)
            return 0;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return 1;
        return -1;
    }
}

/**
 * Flush @p out to a non-blocking fd.
 * @return false when the peer vanished
 */
bool
flushBuffer(int fd, std::string &out)
{
    while (!out.empty()) {
        ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            out.erase(0, std::size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;    // caller arms EPOLLOUT
        return false;
    }
    return true;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

} // namespace

Coordinator::Coordinator(CoordinatorOptions options_)
    : options(std::move(options_))
{
    if (options.workerSlots == 0)
        fatal("coordinator: --workers must be >= 1");
    slotFd.assign(options.workerSlots, -1);

    metrics_.declareCounter("dynaspam_http_requests_total",
                            "HTTP requests by endpoint and status code.");
    metrics_.declareCounter("dynaspam_http_connections_total",
                            "Accepted client TCP connections.");
    metrics_.declareCounter("dynaspam_cache_hits_total",
                            "Jobs answered from a worker shard cache.");
    metrics_.declareCounter("dynaspam_cache_misses_total",
                            "Jobs executed by a worker shard.");
    metrics_.declareGauge("dynaspam_cache_hit_ratio",
                          "Lifetime cache hits / lookups (0 when none).");
    metrics_.declareGauge("dynaspam_cluster_workers_connected",
                          "Workers currently holding a shard slot.");
    metrics_.declareGauge("dynaspam_cluster_worker_inflight",
                          "Batches inflight per worker slot.");
    metrics_.declareGauge("dynaspam_cluster_worker_queue_depth",
                          "Batches queued worker-side, per slot (from the "
                          "last Pong).");
    metrics_.declareGauge("dynaspam_cluster_worker_evictions",
                          "Cumulative memo + cache evictions per slot "
                          "(from the last Pong).");
    metrics_.declareCounter("dynaspam_cluster_batch_retries_total",
                            "Batch reassignments after a worker died.");
    metrics_.declareCounter("dynaspam_cluster_hello_rejects_total",
                            "Worker enrollments rejected (bad or missing "
                            "cluster token).");
    metrics_.declareGauge("dynaspam_cluster_coordinator_memo_hits",
                          "Jobs answered from the coordinator-side "
                          "result memo.");
    metrics_.declareGauge("dynaspam_cluster_outstanding_jobs",
                          "Jobs belonging to unfinished requests.");
    metrics_.declareHistogram(
        "dynaspam_request_latency_seconds",
        "End-to-end /run and /sweep latency in seconds.",
        {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30});
}

Coordinator::~Coordinator()
{
    if (started && !drained) {
        beginDrain();
        waitUntilDrained();
    }
}

void
Coordinator::start()
{
    if (started)
        panic("Coordinator::start called twice");

    wakePipe = common::Pipe::create();
    // The event loop drains the wake pipe until EAGAIN; it must never
    // block there.
    setNonBlocking(wakePipe.readEnd.get());

    listenHttpFd = serve::listenTcp(options.bindAddress, options.httpPort,
                                    options.acceptBacklog, httpPort_);
    listenWorkerFd =
        serve::listenTcp(options.bindAddress, options.workerPort,
                         options.acceptBacklog, workerPort_);
    setNonBlocking(listenHttpFd.get());
    setNonBlocking(listenWorkerFd.get());

    epollFd.reset(::epoll_create1(0));
    if (!epollFd)
        fatal("coordinator: epoll_create1: ", std::strerror(errno));
    for (int fd : {listenHttpFd.get(), listenWorkerFd.get(),
                   wakePipe.readEnd.get()}) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
            fatal("coordinator: epoll_ctl: ", std::strerror(errno));
    }

    started = true;
    loopThread = std::thread([this] { eventLoop(); });
}

void
Coordinator::beginDrain()
{
    if (wakePipe.writeEnd.valid()) {
        char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakePipe.writeEnd.get(), &byte, 1);
    }
}

void
Coordinator::waitUntilDrained()
{
    if (!started || drained)
        return;
    if (loopThread.joinable())
        loopThread.join();
    drained = true;
}

int
Coordinator::serveForever()
{
    start();

    gCoordinatorWakeFd.store(wakePipe.writeEnd.get(),
                             std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = coordinatorSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (options.verbose)
        inform("coordinator: serving HTTP on ", options.bindAddress, ":",
               httpPort(), ", workers on :", workerPort(), " (",
               options.workerSlots, " shard slots, queue capacity ",
               options.queueCapacity, ")");

    waitUntilDrained();
    gCoordinatorWakeFd.store(-1, std::memory_order_relaxed);

    if (options.verbose)
        inform("coordinator: drained, exiting");
    return 0;
}

void
Coordinator::eventLoop()
{
    // The loop thread owns every piece of GUARDED_BY(loopRole) state for
    // its entire lifetime; helpers REQUIRES(loopRole) and are therefore
    // uncallable from any other thread.
    common::ScopedRole role(loopRole);

    lastPingSweep = Clock::now();

    std::vector<epoll_event> events(64);
    while (true) {
        int ready = ::epoll_wait(epollFd.get(), events.data(),
                                 int(events.size()), kEpollTickMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("coordinator: epoll_wait: ", std::strerror(errno));
            break;
        }

        // Connection events first, accepts last: a close in this wave
        // can then never collide with an fd number a fresh accept
        // reuses.
        for (int pass = 0; pass < 2; pass++) {
            for (int i = 0; i < ready; i++) {
                int fd = events[i].data.fd;
                bool isListen =
                    fd == listenHttpFd.get() ||
                    fd == listenWorkerFd.get() ||
                    fd == wakePipe.readEnd.get();
                if ((pass == 0) == isListen)
                    continue;

                if (fd == wakePipe.readEnd.get()) {
                    char sink[64];
                    while (::read(wakePipe.readEnd.get(), sink,
                                  sizeof(sink)) > 0) {
                    }
                    if (!draining) {
                        draining = true;
                        for (common::Fd *lfd :
                             {&listenHttpFd, &listenWorkerFd}) {
                            if (lfd->valid()) {
                                ::epoll_ctl(epollFd.get(), EPOLL_CTL_DEL,
                                            lfd->get(), nullptr);
                                lfd->reset();
                            }
                        }
                    }
                } else if (fd == listenHttpFd.get()) {
                    acceptClients();
                } else if (fd == listenWorkerFd.get()) {
                    acceptWorkers();
                } else if (clients.count(fd)) {
                    if (events[i].events & (EPOLLHUP | EPOLLERR))
                        closeClient(fd);
                    else {
                        if (events[i].events & EPOLLIN)
                            onClientReadable(fd);
                        if (clients.count(fd) &&
                            (events[i].events & EPOLLOUT))
                            onClientWritable(fd);
                    }
                } else if (workers.count(fd)) {
                    if (events[i].events & (EPOLLHUP | EPOLLERR))
                        dropWorker(fd, "link error");
                    else {
                        if (events[i].events & EPOLLIN)
                            onWorkerReadable(fd);
                        if (workers.count(fd) &&
                            (events[i].events & EPOLLOUT))
                            onWorkerWritable(fd);
                    }
                }
            }
        }

        checkTimers();

        if (draining && requests.empty() && exploreSessions.empty()) {
            bool flushed = true;
            for (const auto &kv : clients)
                if (!kv.second.out.empty())
                    flushed = false;
            if (flushed)
                break;
        }
    }

    for (auto &kv : clients)
        ::close(kv.first);
    clients.clear();
    // Orderly shutdown: a Goodbye frame tells each worker to exit
    // instead of reconnecting (a bare EOF now means "coordinator lost,
    // retry with backoff"). Best-effort blocking send — the links are
    // about to close either way.
    const std::string bye = encodeFrame(FrameType::Goodbye, "{}");
    for (auto &kv : workers) {
        [[maybe_unused]] ssize_t n =
            ::send(kv.first, bye.data(), bye.size(), MSG_NOSIGNAL);
        ::close(kv.first);
    }
    workers.clear();
    std::fill(slotFd.begin(), slotFd.end(), -1);
}

void
Coordinator::updateEvents(int fd, bool wantWrite)
{
    epoll_event ev{};
    ev.events = wantWrite ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd.get(), EPOLL_CTL_MOD, fd, &ev) != 0)
        warn("coordinator: epoll_ctl mod: ", std::strerror(errno));
}

void
Coordinator::acceptClients()
{
    while (true) {
        common::Fd accepted(::accept4(listenHttpFd.get(), nullptr,
                                      nullptr, SOCK_NONBLOCK));
        if (!accepted) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("coordinator: accept: ", std::strerror(errno));
            return;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = accepted.get();
        if (::epoll_ctl(epollFd.get(), EPOLL_CTL_ADD, accepted.get(),
                        &ev) != 0)
            continue;    // `accepted` closes the socket
        ClientConn conn;
        // analyze-owns: the clients map owns the fd; closeClient() and
        // the event-loop teardown close it.
        conn.fd = accepted.release();
        clients.emplace(conn.fd, std::move(conn));
        metrics_.inc("dynaspam_http_connections_total");
    }
}

void
Coordinator::acceptWorkers()
{
    while (true) {
        common::Fd accepted(::accept4(listenWorkerFd.get(), nullptr,
                                      nullptr, SOCK_NONBLOCK));
        if (!accepted) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("coordinator: worker accept: ", std::strerror(errno));
            return;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = accepted.get();
        if (::epoll_ctl(epollFd.get(), EPOLL_CTL_ADD, accepted.get(),
                        &ev) != 0)
            continue;    // `accepted` closes the socket
        WorkerConn conn;
        // analyze-owns: the workers map owns the fd; dropWorker() and
        // the event-loop teardown close it.
        conn.fd = accepted.release();
        conn.lastPong = Clock::now();
        workers.emplace(conn.fd, std::move(conn));
    }
}

void
Coordinator::onClientReadable(int fd)
{
    ClientConn &conn = clients.at(fd);
    int state = drainFd(fd, conn.in);
    if (state <= 0) {
        closeClient(fd);
        return;
    }
    if (conn.busy &&
        conn.in.size() > options.maxRequestBytes * kBusyClientBufferFactor) {
        closeClient(fd);
        return;
    }
    parseClientRequests(fd);
}

void
Coordinator::onClientWritable(int fd)
{
    ClientConn &conn = clients.at(fd);
    if (!flushBuffer(fd, conn.out)) {
        closeClient(fd);
        return;
    }
    if (conn.out.empty()) {
        if (conn.closeAfterFlush) {
            closeClient(fd);
            return;
        }
        updateEvents(fd, false);
    }
}

void
Coordinator::parseClientRequests(int fd)
{
    while (true) {
        // Re-find each round: a handler can close this client.
        auto it = clients.find(fd);
        if (it == clients.end())
            return;
        ClientConn &conn = it->second;
        if (conn.busy || conn.closeAfterFlush)
            return;

        serve::HttpRequest req;
        std::size_t consumed = 0;
        switch (serve::parseHttpRequest(conn.in, options.maxRequestBytes,
                                        req, consumed)) {
          case serve::HttpParseOutcome::NeedMore:
            return;
          case serve::HttpParseOutcome::Malformed:
            queueResponse(conn,
                          errorResponse(400, "malformed HTTP request"),
                          false, "unparsed");
            conn.closeAfterFlush = true;
            return;
          case serve::HttpParseOutcome::TooLarge:
            queueResponse(
                conn, errorResponse(413, "request exceeds size limit"),
                false, "unparsed");
            conn.closeAfterFlush = true;
            return;
          case serve::HttpParseOutcome::Ok:
            conn.in.erase(0, consumed);
            handleHttpRequest(conn, req);
            break;
        }
    }
}

void
Coordinator::handleHttpRequest(ClientConn &conn,
                               const serve::HttpRequest &req)
{
    // HTTP/1.1 default persistence; `Connection: close` opts out, and a
    // draining coordinator stops granting keep-alive.
    bool keepAlive = toLower(req.header("connection")) != "close" &&
                     !draining;

    if (req.target == "/healthz") {
        if (req.method != "GET") {
            queueResponse(conn, errorResponse(405, "use GET"), keepAlive,
                          "/healthz");
            return;
        }
        serve::HttpResponse resp;
        resp.body = json::Value(json::Object{{"status", "ok"}}).dump(2);
        resp.body += '\n';
        queueResponse(conn, resp, keepAlive, "/healthz");
        return;
    }
    if (req.target == "/metrics") {
        if (req.method != "GET") {
            queueResponse(conn, errorResponse(405, "use GET"), keepAlive,
                          "/metrics");
            return;
        }
        queueResponse(conn, handleMetricsScrape(), keepAlive, "/metrics");
        return;
    }
    if (req.target == "/run") {
        if (req.method != "POST") {
            queueResponse(conn, errorResponse(405, "use POST"), keepAlive,
                          "/run");
            return;
        }
        runner::Job job;
        try {
            job = serve::jobFromSpecJson(json::Value::parse(req.body));
        } catch (const FatalError &err) {
            queueResponse(conn, errorResponse(400, err.what()), keepAlive,
                          "/run");
            return;
        }
        admitRequest(conn, "/run", "run", {job}, keepAlive);
        return;
    }
    if (req.target == "/sweep") {
        if (req.method != "POST") {
            queueResponse(conn, errorResponse(405, "use POST"), keepAlive,
                          "/sweep");
            return;
        }
        serve::SweepRequest sweep;
        try {
            sweep = serve::parseSweepBody(req.body);
        } catch (const FatalError &err) {
            queueResponse(conn, errorResponse(400, err.what()), keepAlive,
                          "/sweep");
            return;
        }
        admitRequest(conn, "/sweep", sweep.name, std::move(sweep.jobs),
                     keepAlive);
        return;
    }
    if (req.target == "/explore") {
        handleExplore(conn, req);
        return;
    }
    if (req.target.rfind("/results", 0) == 0) {
        queueResponse(conn,
                      errorResponse(404,
                                    "results live in worker shard caches; "
                                    "re-request via POST /sweep"),
                      keepAlive, "/results");
        return;
    }
    queueResponse(conn, errorResponse(404, "unknown endpoint"), keepAlive,
                  "other");
}

void
Coordinator::queueResponse(ClientConn &conn,
                           const serve::HttpResponse &resp,
                           bool keep_alive, const std::string &endpoint)
{
    metrics_.inc("dynaspam_http_requests_total",
                 requestLabels(endpoint, resp.status));
    conn.out += serve::serializeHttpResponse(resp, keep_alive);
    if (!keep_alive)
        conn.closeAfterFlush = true;
    if (!flushBuffer(conn.fd, conn.out)) {
        closeClient(conn.fd);
        return;
    }
    if (!conn.out.empty())
        updateEvents(conn.fd, true);
    else if (conn.closeAfterFlush)
        closeClient(conn.fd);
}

void
Coordinator::closeClient(int fd)
{
    auto it = clients.find(fd);
    if (it == clients.end())
        return;
    // A pending request keeps running; its result still warms the
    // owning shard's caches. The response is dropped on completion.
    // An explore session dies with its stream: any in-flight internal
    // batch completes (warming shard caches and the memo) and is then
    // dropped when finishExploreBatch finds the session gone.
    const std::uint64_t exploreId = it->second.exploreId;
    ::close(fd);
    clients.erase(it);
    if (exploreId != 0)
        exploreSessions.erase(exploreId);
}

void
Coordinator::onWorkerReadable(int fd)
{
    WorkerConn &conn = workers.at(fd);
    int state = drainFd(fd, conn.in);
    if (state < 0) {
        dropWorker(fd, "read error");
        return;
    }

    while (workers.count(fd)) {
        Frame frame;
        std::size_t consumed = 0;
        switch (decodeFrame(workers.at(fd).in, frame, consumed)) {
          case DecodeOutcome::Bad:
            dropWorker(fd, "bad frame");
            return;
          case DecodeOutcome::NeedMore:
            if (state == 0)
                dropWorker(fd, "connection closed");
            return;
          case DecodeOutcome::Ok:
            workers.at(fd).in.erase(0, consumed);
            handleWorkerFrame(workers.at(fd), frame);
            break;
        }
    }
}

void
Coordinator::onWorkerWritable(int fd)
{
    WorkerConn &conn = workers.at(fd);
    if (!flushBuffer(fd, conn.out)) {
        dropWorker(fd, "write error");
        return;
    }
    if (conn.out.empty()) {
        if (conn.closeAfterFlush) {
            dropWorker(fd, "handshake rejected");
            return;
        }
        updateEvents(fd, false);
    }
}

void
Coordinator::handleWorkerFrame(WorkerConn &conn, const Frame &frame)
{
    if (conn.slot < 0) {
        // Pre-handshake: only Hello is legal.
        if (frame.type != FrameType::Hello) {
            dropWorker(conn.fd, "frame before Hello");
            return;
        }
        try {
            json::Value hello = json::Value::parse(frame.payload);
            if (hello.at("protocol").asUint() != kWireVersion) {
                json::Object reject;
                reject.emplace("error", "protocol version mismatch");
                conn.closeAfterFlush = true;
                queueFrame(conn, FrameType::Welcome,
                           json::Value(std::move(reject)));
                return;
            }
            if (!options.clusterToken.empty()) {
                // Authenticated enrollment: a wrong or missing token
                // drops the connection before any Welcome. The drop
                // path logs nothing at this stage, so the expected
                // token can never leak into logs (and the counter
                // below carries no label material from the frame).
                const json::Value *token = hello.find("token");
                if (!token || !token->isString() ||
                    token->asString() != options.clusterToken) {
                    metrics_.inc("dynaspam_cluster_hello_rejects_total");
                    dropWorker(conn.fd, "enrollment rejected");
                    return;
                }
            }
        } catch (const FatalError &) {
            dropWorker(conn.fd, "malformed Hello");
            return;
        }

        auto vacancy = std::find(slotFd.begin(), slotFd.end(), -1);
        if (vacancy == slotFd.end()) {
            json::Object reject;
            reject.emplace("error", "cluster full");
            conn.closeAfterFlush = true;
            queueFrame(conn, FrameType::Welcome,
                       json::Value(std::move(reject)));
            return;
        }
        conn.slot = int(vacancy - slotFd.begin());
        *vacancy = conn.fd;
        conn.lastPong = Clock::now();

        json::Object welcome;
        welcome.emplace("slot", std::uint64_t(conn.slot));
        welcome.emplace("slots", std::uint64_t(options.workerSlots));
        queueFrame(conn, FrameType::Welcome,
                   json::Value(std::move(welcome)));
        updateWorkerGauge();
        if (options.verbose)
            inform("coordinator: worker joined slot ", conn.slot, "/",
                   options.workerSlots);
        assignPendingBatches();
        return;
    }

    switch (frame.type) {
      case FrameType::Pong: {
        conn.lastPong = Clock::now();
        try {
            json::Value pong = json::Value::parse(frame.payload);
            const std::string label = workerLabel(conn.slot);
            metrics_.set("dynaspam_cluster_worker_queue_depth", label,
                         double(pong.at("queued").asUint()));
            metrics_.set("dynaspam_cluster_worker_evictions", label,
                         double(pong.at("evictions").asUint()));
            // Cumulative warm passes the worker actually simulated; a
            // snapshot-cache-served sweep leaves this flat, which the
            // ship-smoke asserts over /metrics.
            if (const json::Value *warmups = pong.find("warmups"))
                metrics_.set("dynaspam_cluster_worker_warmups", label,
                             double(warmups->asUint()));
        } catch (const FatalError &) {
            dropWorker(conn.fd, "malformed Pong");
        }
        break;
      }
      case FrameType::Result:
      case FrameType::ResultRaw:
        handleResult(conn, frame);
        break;
      default:
        dropWorker(conn.fd, "unexpected frame type");
        break;
    }
}

void
Coordinator::handleResult(WorkerConn &conn, const Frame &frame)
{
    // Success results arrive as binary ResultRaw frames whose entries
    // are pre-rendered report fragments — spliced below via json::Raw,
    // never parsed. The JSON Result frame only carries errors.
    std::uint64_t batchId = 0;
    std::vector<RawEntry> rawEntries;
    std::string error;
    if (frame.type == FrameType::ResultRaw) {
        if (!decodeResultRaw(frame.payload, batchId, rawEntries)) {
            dropWorker(conn.fd, "malformed Result");
            return;
        }
    } else {
        try {
            json::Value payload = json::Value::parse(frame.payload);
            batchId = payload.at("id").asUint();
            error = payload.at("error").asString();
        } catch (const FatalError &) {
            dropWorker(conn.fd, "malformed Result");
            return;
        }
    }

    conn.inflight.erase(batchId);
    metrics_.set("dynaspam_cluster_worker_inflight",
                 workerLabel(conn.slot), double(conn.inflight.size()));

    auto batchIt = batches.find(batchId);
    if (batchIt == batches.end())
        return;    // request already failed; late result, ignore
    Batch batch = std::move(batchIt->second);
    batches.erase(batchIt);

    auto reqIt = requests.find(batch.requestId);
    if (reqIt == requests.end())
        return;    // request died (deadline/client); drop the result
    Request &request = reqIt->second;
    request.batchIds.erase(batch.id);

    if (!error.empty()) {
        // Deterministic execution failure: retrying would reproduce it.
        failRequest(request.id, 500, error);
        return;
    }

    if (rawEntries.size() != batch.jobIndices.size()) {
        failRequest(request.id, 500,
                    "shard returned " +
                        std::to_string(rawEntries.size()) +
                        " entries for a " +
                        std::to_string(batch.jobIndices.size()) +
                        "-job batch");
        return;
    }
    for (std::size_t i = 0; i < rawEntries.size(); i++) {
        if (rawEntries[i].fromCache)
            request.hits++;
        if (options.memoCapacity > 0) {
            // Memoize a twin of the fragment with from_cache flipped to
            // true: a memo-served repeat IS a cache hit, and must say
            // so. The re-render is byte-safe — json::Object keys are
            // sorted, and dumpAt at the worker's indent/depth produces
            // exactly the splice-compatible form.
            try {
                json::Value entry =
                    json::Value::parse(rawEntries[i].fragment);
                entry.asObject().insert_or_assign("from_cache",
                                                  json::Value(true));
                memoPut(
                    request.jobs[batch.jobIndices[i]].hashHex(),
                    entry.dumpAt(kReportIndent, kEntryFragmentDepth));
            } catch (const FatalError &) {
                // An unparseable fragment still splices verbatim; it
                // just never memoizes.
            }
        }
        request.entries[batch.jobIndices[i]] =
            json::Value(json::Raw{std::move(rawEntries[i].fragment)});
        request.remaining--;
    }

    if (request.remaining == 0)
        finishRequest(request);
}

void
Coordinator::queueFrame(WorkerConn &conn, FrameType type,
                        const json::Value &payload)
{
    conn.out += encodeFrame(type, payload.dump());
    if (!flushBuffer(conn.fd, conn.out)) {
        dropWorker(conn.fd, "write error");
        return;
    }
    if (!conn.out.empty())
        updateEvents(conn.fd, true);
    else if (conn.closeAfterFlush)
        dropWorker(conn.fd, "handshake rejected");
}

void
Coordinator::dropWorker(int fd, const char *why)
{
    auto it = workers.find(fd);
    if (it == workers.end())
        return;
    WorkerConn &conn = it->second;
    const int slot = conn.slot;
    const std::set<std::uint64_t> inflight = std::move(conn.inflight);

    if (slot >= 0) {
        slotFd[std::size_t(slot)] = -1;
        metrics_.set("dynaspam_cluster_worker_inflight", workerLabel(slot),
                     0.0);
        if (options.verbose)
            warn("coordinator: worker slot ", slot, " dropped (", why,
                 "), ", inflight.size(), " batches to reassign");
    }
    ::close(fd);
    workers.erase(it);
    updateWorkerGauge();

    const Clock::time_point now = Clock::now();
    for (std::uint64_t batchId : inflight) {
        auto batchIt = batches.find(batchId);
        if (batchIt == batches.end())
            continue;
        Batch &batch = batchIt->second;
        batch.assignedFd = -1;
        if (!requests.count(batch.requestId)) {
            batches.erase(batchIt);
            continue;
        }
        batch.attempts++;
        metrics_.inc("dynaspam_cluster_batch_retries_total",
                     workerLabel(slot));
        if (batch.attempts > options.maxBatchRetries) {
            std::ostringstream os;
            os << "shard batch failed after " << options.maxBatchRetries
               << " reassignments (workers keep dying)";
            failRequest(batch.requestId, 503, os.str());
            continue;
        }
        // Exponential backoff: 1x, 2x, 4x, ... the base, clamped so a
        // high attempt count can neither overflow the shift (UB at 64)
        // nor schedule the retry past any useful horizon.
        batch.notBefore = now + std::chrono::milliseconds(
            retryBackoffDelayMs(options.retryBackoffMs, batch.attempts,
                                kRetryBackoffCapMs));
    }
    assignPendingBatches();
}

void
Coordinator::admitRequest(ClientConn &conn, const std::string &endpoint,
                          const std::string &name,
                          std::vector<runner::Job> jobs, bool keep_alive)
{
    if (draining) {
        queueResponse(conn, errorResponse(503, "coordinator is draining"),
                      false, endpoint);
        return;
    }
    if (outstandingJobs + jobs.size() > options.queueCapacity) {
        std::ostringstream os;
        os << "admission queue full (" << outstandingJobs
           << " outstanding, " << jobs.size() << " requested, capacity "
           << options.queueCapacity << ")";
        queueResponse(conn, errorResponse(429, os.str()), keep_alive,
                      endpoint);
        return;
    }
    // Memo probe: jobs whose pre-rendered entry is already in the
    // coordinator-side memo never reach a worker. Fully memo-served
    // requests are legal even with zero workers connected.
    std::vector<const std::string *> memoFrags(jobs.size(), nullptr);
    std::size_t memoServed = 0;
    if (options.memoCapacity > 0) {
        for (std::size_t i = 0; i < jobs.size(); i++) {
            memoFrags[i] = memoGet(jobs[i].hashHex());
            if (memoFrags[i])
                memoServed++;
        }
    }
    if (memoServed < jobs.size() && liveWorkerCount() == 0) {
        queueResponse(conn, errorResponse(503, "no workers connected"),
                      keep_alive, endpoint);
        return;
    }

    const std::uint64_t id = nextRequestId++;
    Request &request = requests[id];
    request.id = id;
    request.clientFd = conn.fd;
    request.name = name;
    request.keepAlive = keep_alive;
    request.endpoint = endpoint;
    request.jobs = std::move(jobs);
    request.entries.resize(request.jobs.size());
    request.remaining = request.jobs.size();
    request.start = Clock::now();
    request.deadline =
        request.start +
        std::chrono::milliseconds(options.requestTimeoutMs);

    for (std::size_t i = 0; i < request.jobs.size(); i++) {
        if (!memoFrags[i])
            continue;
        request.entries[i] = json::Value(json::Raw{*memoFrags[i]});
        request.hits++;
        request.remaining--;
    }
    if (memoServed > 0) {
        memoHits += memoServed;
        metrics_.set("dynaspam_cluster_coordinator_memo_hits",
                     double(memoHits));
    }

    // Shard: group the memo-missed job indices by FNV-1a hash-space
    // owner slot, using the fork-group hash so every member of a fork
    // group lands on the same worker — that worker warms the shared
    // prefix once (or loads it from its snapshot cache) and forks all
    // members from it. Jobs without a warmup phase keep their per-job
    // hash, preserving the old shard-local result-cache locality.
    std::map<unsigned, std::vector<std::size_t>> shards;
    for (std::size_t i = 0; i < request.jobs.size(); i++)
        if (!memoFrags[i])
            shards[ownerSlot(runner::forkGroupHash(request.jobs[i]),
                             options.workerSlots)]
                .push_back(i);

    for (auto &shard : shards) {
        const std::uint64_t batchId = nextBatchId++;
        Batch &batch = batches[batchId];
        batch.id = batchId;
        batch.requestId = id;
        batch.ownerSlot = shard.first;
        batch.jobIndices = std::move(shard.second);
        batch.notBefore = request.start;
        request.batchIds.insert(batchId);
        assignBatch(batch);
    }

    outstandingJobs += request.jobs.size();
    metrics_.set("dynaspam_cluster_outstanding_jobs",
                 double(outstandingJobs));
    conn.busy = true;
    conn.requestId = id;
    // A fully memo-served request completes without any worker round
    // trip (finishRequest needs conn.busy/requestId set above).
    if (request.remaining == 0)
        finishRequest(request);
}

void
Coordinator::assignPendingBatches()
{
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> orphaned;
    for (auto &kv : batches) {
        Batch &batch = kv.second;
        if (batch.assignedFd >= 0 || batch.notBefore > now)
            continue;
        if (!requests.count(batch.requestId)) {
            orphaned.push_back(kv.first);
            continue;
        }
        assignBatch(batch);
    }
    for (std::uint64_t id : orphaned)
        batches.erase(id);
}

bool
Coordinator::assignBatch(Batch &batch)
{
    const int fd = liveWorkerForSlot(batch.ownerSlot);
    if (fd < 0)
        return false;    // stays pending until a worker joins
    auto reqIt = requests.find(batch.requestId);
    if (reqIt == requests.end())
        return false;

    json::Array jobSpecs;
    for (std::size_t index : batch.jobIndices)
        jobSpecs.push_back(runner::jobToJson(reqIt->second.jobs[index]));
    json::Object payload;
    payload.emplace("id", batch.id);
    payload.emplace("jobs", std::move(jobSpecs));

    WorkerConn &conn = workers.at(fd);
    batch.assignedFd = fd;
    conn.inflight.insert(batch.id);
    metrics_.set("dynaspam_cluster_worker_inflight",
                 workerLabel(conn.slot), double(conn.inflight.size()));
    queueFrame(conn, FrameType::Batch, json::Value(std::move(payload)));
    return true;
}

void
Coordinator::failRequest(std::uint64_t requestId, int status,
                         const std::string &message)
{
    auto it = requests.find(requestId);
    if (it == requests.end())
        return;
    Request &request = it->second;
    dropRequestBatches(request);
    const std::uint64_t exploreId = request.exploreSessionId;
    if (exploreId == 0)
        respond(request, errorResponse(status, message));
    outstandingJobs -= request.jobs.size();
    metrics_.set("dynaspam_cluster_outstanding_jobs",
                 double(outstandingJobs));
    requests.erase(it);
    // An internal explore batch fails its whole search: the stream
    // already carries partial generations, so the failure surfaces as
    // a terminal error line instead of an HTTP status.
    if (exploreId != 0)
        failExploreSession(exploreId, status, message);
}

void
Coordinator::finishRequest(Request &request)
{
    if (request.exploreSessionId != 0) {
        const std::uint64_t sessionId = request.exploreSessionId;
        finishExploreBatch(request);
        driveExplore(sessionId);
        return;
    }

    StatRegistry registry = runner::sweepRequestStats(
        request.jobs.size(), request.hits);
    std::ostringstream os;
    runner::sweepReportJson(request.name, std::move(request.entries),
                            &registry)
        .write(os, 2);
    os << "\n";

    metrics_.inc("dynaspam_cache_hits_total", double(request.hits));
    metrics_.inc("dynaspam_cache_misses_total",
                 double(request.jobs.size() - request.hits));
    metrics_.observe("dynaspam_request_latency_seconds",
                     std::chrono::duration<double>(Clock::now() -
                                                   request.start)
                         .count());

    serve::HttpResponse resp;
    resp.body = os.str();
    respond(request, resp);

    outstandingJobs -= request.jobs.size();
    metrics_.set("dynaspam_cluster_outstanding_jobs",
                 double(outstandingJobs));
    requests.erase(request.id);
}

void
Coordinator::respond(const Request &request,
                     const serve::HttpResponse &resp)
{
    auto it = clients.find(request.clientFd);
    if (it == clients.end() || it->second.requestId != request.id ||
        !it->second.busy) {
        // Client vanished; still account the request.
        metrics_.inc("dynaspam_http_requests_total",
                     requestLabels(request.endpoint, resp.status));
        return;
    }
    ClientConn &conn = it->second;
    conn.busy = false;
    conn.requestId = 0;
    queueResponse(conn, resp, request.keepAlive, request.endpoint);
    parseClientRequests(request.clientFd);
}

void
Coordinator::handleExplore(ClientConn &conn,
                           const serve::HttpRequest &req)
{
    // The stream never keeps the connection alive: the chunk
    // terminator plus close is how it ends.
    if (req.method != "POST") {
        queueResponse(conn, errorResponse(405, "use POST"), false,
                      "/explore");
        return;
    }
    explore::Space space;
    try {
        space = explore::Space::fromJson(json::Value::parse(req.body));
    } catch (const FatalError &err) {
        queueResponse(conn, errorResponse(400, err.what()), false,
                      "/explore");
        return;
    }
    if (draining) {
        queueResponse(conn, errorResponse(503, "coordinator is draining"),
                      false, "/explore");
        return;
    }

    const std::uint64_t id = nextExploreId++;
    ExploreSession &session = exploreSessions[id];
    session.id = id;
    session.clientFd = conn.fd;
    session.engine = std::make_unique<explore::Engine>(std::move(space));
    session.deadline =
        Clock::now() +
        std::chrono::milliseconds(options.requestTimeoutMs);

    // Admission is decided on the first engine batch, before any
    // stream bytes: a full queue or an empty worker ring turns into
    // the same plain 429/503 a /sweep would get.
    const std::vector<runner::Job> &first = session.engine->nextBatch();
    if (!first.empty()) {
        if (outstandingJobs + first.size() > options.queueCapacity) {
            std::ostringstream os;
            os << "admission queue full (" << outstandingJobs
               << " outstanding, " << first.size()
               << " requested, capacity " << options.queueCapacity << ")";
            exploreSessions.erase(id);
            queueResponse(conn, errorResponse(429, os.str()), false,
                          "/explore");
            return;
        }
        std::size_t memoServed = 0;
        if (options.memoCapacity > 0) {
            for (const runner::Job &job : first)
                if (memoMap.count(job.hashHex()))
                    memoServed++;
        }
        if (memoServed < first.size() && liveWorkerCount() == 0) {
            exploreSessions.erase(id);
            queueResponse(conn,
                          errorResponse(503, "no workers connected"),
                          false, "/explore");
            return;
        }
    }

    // Count the request as a 200 now; later failures surface as a
    // terminal error line inside the stream, exactly like the
    // single-process daemon.
    metrics_.inc("dynaspam_http_requests_total",
                 requestLabels("/explore", 200));
    conn.busy = true;
    conn.exploreId = id;
    conn.out += serve::chunkedResponseHead(200, "application/x-ndjson");
    std::string startBytes;
    for (const std::string &line : session.engine->start())
        startBytes += serve::encodeChunk(line + "\n");
    if (!emitExplore(id, startBytes))
        return;
    driveExplore(id);
}

void
Coordinator::driveExplore(std::uint64_t sessionId)
{
    // Iterative, so memo-served batches (which complete synchronously)
    // cannot recurse one stack frame per generation.
    while (true) {
        auto it = exploreSessions.find(sessionId);
        if (it == exploreSessions.end())
            return;
        ExploreSession &session = it->second;
        if (session.requestId != 0)
            return;    // waiting on shard results
        if (session.engine->done()) {
            endExploreStream(sessionId);
            return;
        }
        if (!dispatchExploreBatch(session))
            return;    // shards in flight (or the session died)
    }
}

bool
Coordinator::dispatchExploreBatch(ExploreSession &session)
{
    const std::vector<runner::Job> &batch = session.engine->nextBatch();

    const std::uint64_t id = nextRequestId++;
    Request &request = requests[id];
    request.id = id;
    request.clientFd = -1;    // results flow over the stream, not HTTP
    request.name = "explore";
    request.endpoint = "/explore";
    request.exploreSessionId = session.id;
    request.jobs = batch;
    request.entries.resize(request.jobs.size());
    request.remaining = request.jobs.size();
    request.start = Clock::now();
    request.deadline = session.deadline;

    // Internal batches bypass the draining/queue-capacity rejections:
    // the search was admitted as a whole when its stream began, and a
    // draining coordinator still finishes running streams.
    std::size_t memoServed = 0;
    if (options.memoCapacity > 0) {
        for (std::size_t i = 0; i < request.jobs.size(); i++) {
            const std::string *frag =
                memoGet(request.jobs[i].hashHex());
            if (!frag)
                continue;
            request.entries[i] = json::Value(json::Raw{*frag});
            request.hits++;
            request.remaining--;
            memoServed++;
        }
    }
    if (memoServed > 0) {
        memoHits += memoServed;
        metrics_.set("dynaspam_cluster_coordinator_memo_hits",
                     double(memoHits));
    }

    std::map<unsigned, std::vector<std::size_t>> shards;
    for (std::size_t i = 0; i < request.jobs.size(); i++)
        if (request.entries[i].isNull())
            shards[ownerSlot(runner::forkGroupHash(request.jobs[i]),
                             options.workerSlots)]
                .push_back(i);
    for (auto &shard : shards) {
        const std::uint64_t batchId = nextBatchId++;
        Batch &b = batches[batchId];
        b.id = batchId;
        b.requestId = id;
        b.ownerSlot = shard.first;
        b.jobIndices = std::move(shard.second);
        b.notBefore = request.start;
        request.batchIds.insert(batchId);
        assignBatch(b);
    }

    outstandingJobs += request.jobs.size();
    metrics_.set("dynaspam_cluster_outstanding_jobs",
                 double(outstandingJobs));
    session.requestId = id;

    if (request.remaining == 0) {
        // Fully memo-served: complete inline; driveExplore's loop
        // continues with the next generation.
        finishExploreBatch(request);
        return true;
    }
    return false;
}

void
Coordinator::finishExploreBatch(Request &request)
{
    const std::uint64_t sessionId = request.exploreSessionId;

    // Decode the pre-rendered entries back into outcomes for the
    // engine. This is the one place the coordinator parses fragments —
    // the price of reusing the /sweep shard machinery unchanged.
    std::vector<runner::JobOutcome> outcomes;
    std::string decodeError;
    for (const json::Value &entry : request.entries) {
        try {
            json::Value doc = json::Value::parse(entry.asRaw().text);
            runner::JobOutcome outcome;
            outcome.job = runner::jobFromJson(doc.at("job"));
            outcome.result = runner::resultFromJson(doc.at("result"));
            const json::Value *fc = doc.find("from_cache");
            outcome.fromCache = fc && fc->asBool();
            outcomes.push_back(std::move(outcome));
        } catch (const FatalError &err) {
            decodeError = err.what();
            break;
        }
    }

    outstandingJobs -= request.jobs.size();
    metrics_.set("dynaspam_cluster_outstanding_jobs",
                 double(outstandingJobs));
    requests.erase(request.id);    // `request` is dead past this line

    auto it = exploreSessions.find(sessionId);
    if (it == exploreSessions.end())
        return;    // stream gone; the results still warmed the caches
    ExploreSession &session = it->second;
    session.requestId = 0;
    if (!decodeError.empty()) {
        failExploreSession(sessionId, 500,
                           "shard entry undecodable: " + decodeError);
        return;
    }
    std::vector<std::string> lines;
    try {
        lines = session.engine->feed(outcomes);
    } catch (const FatalError &err) {
        failExploreSession(sessionId, 500, err.what());
        return;
    }
    std::string bytes;
    for (const std::string &line : lines)
        bytes += serve::encodeChunk(line + "\n");
    emitExplore(sessionId, bytes);
}

bool
Coordinator::emitExplore(std::uint64_t sessionId,
                         const std::string &bytes)
{
    auto it = exploreSessions.find(sessionId);
    if (it == exploreSessions.end())
        return false;
    auto clientIt = clients.find(it->second.clientFd);
    if (clientIt == clients.end()) {
        exploreSessions.erase(it);
        return false;
    }
    ClientConn &conn = clientIt->second;
    conn.out += bytes;
    if (!flushBuffer(conn.fd, conn.out)) {
        closeClient(conn.fd);    // also erases the session
        return false;
    }
    if (!conn.out.empty())
        updateEvents(conn.fd, true);
    else if (conn.closeAfterFlush)
        closeClient(conn.fd);
    return exploreSessions.count(sessionId) > 0;
}

void
Coordinator::endExploreStream(std::uint64_t sessionId)
{
    auto it = exploreSessions.find(sessionId);
    if (it == exploreSessions.end())
        return;
    const int fd = it->second.clientFd;
    exploreSessions.erase(it);
    auto clientIt = clients.find(fd);
    if (clientIt == clients.end())
        return;
    ClientConn &conn = clientIt->second;
    conn.out += serve::kLastChunk;
    conn.closeAfterFlush = true;
    if (!flushBuffer(conn.fd, conn.out)) {
        closeClient(conn.fd);
        return;
    }
    if (!conn.out.empty())
        updateEvents(conn.fd, true);
    else
        closeClient(conn.fd);
}

void
Coordinator::failExploreSession(std::uint64_t sessionId, int status,
                                const std::string &message)
{
    json::Object err;
    err.emplace("type", "error");
    err.emplace("status", std::uint64_t(status));
    err.emplace("error", message);
    emitExplore(sessionId,
                serve::encodeChunk(json::Value(std::move(err)).dump() +
                                   "\n"));
    endExploreStream(sessionId);
}

const std::string *
Coordinator::memoGet(const std::string &hash)
{
    auto it = memoMap.find(hash);
    if (it == memoMap.end())
        return nullptr;
    memoOrder.splice(memoOrder.begin(), memoOrder, it->second.first);
    return &it->second.second;
}

void
Coordinator::memoPut(const std::string &hash, std::string fragment)
{
    auto it = memoMap.find(hash);
    if (it != memoMap.end()) {
        memoOrder.splice(memoOrder.begin(), memoOrder, it->second.first);
        it->second.second = std::move(fragment);
        return;
    }
    memoOrder.push_front(hash);
    memoMap.emplace(hash, std::make_pair(memoOrder.begin(),
                                         std::move(fragment)));
    while (memoMap.size() > options.memoCapacity) {
        memoMap.erase(memoOrder.back());
        memoOrder.pop_back();
    }
}

void
Coordinator::dropRequestBatches(const Request &request)
{
    for (std::uint64_t batchId : request.batchIds) {
        auto it = batches.find(batchId);
        if (it == batches.end())
            continue;
        const int fd = it->second.assignedFd;
        if (fd >= 0) {
            auto workerIt = workers.find(fd);
            if (workerIt != workers.end()) {
                workerIt->second.inflight.erase(batchId);
                metrics_.set("dynaspam_cluster_worker_inflight",
                             workerLabel(workerIt->second.slot),
                             double(workerIt->second.inflight.size()));
            }
        }
        batches.erase(it);
    }
}

void
Coordinator::sendPings()
{
    // Collect first: queueFrame can drop a worker, mutating the map.
    std::vector<int> fds;
    for (const auto &kv : workers)
        if (kv.second.slot >= 0)
            fds.push_back(kv.first);
    for (int fd : fds) {
        auto it = workers.find(fd);
        if (it == workers.end())
            continue;
        json::Object ping;
        ping.emplace("tick", pingTick);
        queueFrame(it->second, FrameType::Ping,
                   json::Value(std::move(ping)));
    }
    pingTick++;
}

void
Coordinator::checkTimers()
{
    const Clock::time_point now = Clock::now();

    if (now - lastPingSweep >=
        std::chrono::milliseconds(options.pingIntervalMs)) {
        lastPingSweep = now;
        sendPings();

        std::vector<int> stale;
        for (const auto &kv : workers)
            if (kv.second.slot >= 0 &&
                now - kv.second.lastPong >
                    std::chrono::milliseconds(options.pingTimeoutMs))
                stale.push_back(kv.first);
        for (int fd : stale)
            dropWorker(fd, "ping timeout");
    }

    std::vector<std::uint64_t> expired;
    for (const auto &kv : requests)
        if (kv.second.deadline <= now)
            expired.push_back(kv.first);
    for (std::uint64_t id : expired)
        failRequest(id, 503,
                    "request deadline exceeded before all shards "
                    "reported");

    assignPendingBatches();
}

std::size_t
Coordinator::liveWorkerCount() const
{
    std::size_t n = 0;
    for (int fd : slotFd)
        if (fd >= 0)
            n++;
    return n;
}

int
Coordinator::liveWorkerForSlot(unsigned slot) const
{
    // Owner first; on failure scan upward (mod slots) so reassignment
    // is deterministic and spreads across the ring.
    for (unsigned i = 0; i < options.workerSlots; i++) {
        int fd = slotFd[(slot + i) % options.workerSlots];
        if (fd >= 0)
            return fd;
    }
    return -1;
}

void
Coordinator::updateWorkerGauge()
{
    metrics_.set("dynaspam_cluster_workers_connected",
                 double(liveWorkerCount()));
}

serve::HttpResponse
Coordinator::handleMetricsScrape()
{
    double hits = metrics_.value("dynaspam_cache_hits_total");
    double misses = metrics_.value("dynaspam_cache_misses_total");
    double lookups = hits + misses;
    metrics_.set("dynaspam_cache_hit_ratio",
                 lookups > 0 ? hits / lookups : 0.0);

    serve::HttpResponse resp;
    resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = metrics_.render();
    return resp;
}

serve::HttpResponse
Coordinator::errorResponse(int status, const std::string &message)
{
    serve::HttpResponse resp;
    resp.status = status;
    resp.body = json::Value(json::Object{{"error", message}}).dump(2);
    resp.body += '\n';
    if (status == 429)
        resp.extraHeaders.emplace_back("Retry-After", "2");
    return resp;
}

} // namespace dynaspam::cluster
