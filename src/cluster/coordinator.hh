/**
 * @file
 * Cluster coordinator: epoll front end + shard fan-out for sweeps.
 *
 * The coordinator is the client-facing half of the distributed sweep
 * fabric (`dynaspam coordinator`, or `dynaspam serve --cluster`). Where
 * the single-process daemon spends a thread per connection, the
 * coordinator runs ONE event-loop thread multiplexing every socket —
 * the HTTP listener, the worker listener, every client and every worker
 * link — through epoll with non-blocking fds and per-connection
 * in/out buffers. HTTP/1.1 connections are persistent by default
 * (close with `Connection: close`), so a load generator pays the TCP
 * handshake once, not per request.
 *
 * Sharding: each job's FNV-1a content hash — the same hash that keys
 * the on-disk ResultCache — is mapped to one of `--workers` hash-space
 * partitions (cluster::ownerSlot). A sweep request is split into one
 * Batch per owner slot and fanned out over the length-prefixed wire
 * protocol (cluster/wire.hh). Because the partition depends only on the
 * configured slot count, a given job always lands on the same slot, so
 * repeat jobs hit that worker's local memo/disk cache.
 *
 * Merging: workers return fully serialized sweep-report entries; the
 * coordinator splices them back into job order and wraps them with
 * runner::sweepReportJson + sweepRequestStats, producing a combined
 * report byte-identical to what a single process (CLI `dynaspam sweep`
 * or the non-cluster daemon) would emit for the same cache state.
 *
 * Failure handling, so a worker crash never drops an accepted request:
 *  - membership is health-checked (Ping/Pong every pingIntervalMs; a
 *    worker silent past pingTimeoutMs is declared dead);
 *  - a dead worker's inflight batches are reassigned to the next live
 *    slot upward with bounded exponential backoff (retryBackoffMs <<
 *    attempts), up to maxBatchRetries, then the request fails 503;
 *  - deterministic job failures (worker Result carries "error") fail
 *    the request with 500 and are NOT retried — a deterministic
 *    simulator would only reproduce the error;
 *  - requests carry a wall-clock deadline (requestTimeoutMs -> 503).
 *
 * Admission is bounded like the single-process daemon: when the jobs
 * belonging to unfinished requests would exceed queueCapacity, new
 * requests get 429 + Retry-After.
 *
 * POST /explore runs the design-space-exploration engine
 * (explore::Engine) inside the event loop: every engine batch becomes
 * an internal request fanned out through the same shard/batch/retry
 * machinery, and the engine's NDJSON lines stream back to the client as
 * a chunked response while the search progresses. Worker death, batch
 * reassignment, deadlines and drain all behave exactly as for /sweep.
 *
 * Hardening: with --cluster-token set, worker enrollment requires the
 * shared secret in the Hello frame; mismatches are dropped before
 * Welcome and counted (never logged). An optional coordinator-side LRU
 * memo (--coordinator-memo) answers repeat jobs from pre-rendered
 * entry fragments without touching workers.
 */

#ifndef DYNASPAM_CLUSTER_COORDINATOR_HH
#define DYNASPAM_CLUSTER_COORDINATOR_HH

#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/wire.hh"
#include "common/annotations.hh"
#include "common/fd.hh"
#include "common/json.hh"
#include "common/mutex.hh"
#include "explore/engine.hh"
#include "runner/job.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"

namespace dynaspam::cluster
{

/** Configuration for one Coordinator instance. */
struct CoordinatorOptions
{
    std::string bindAddress = "127.0.0.1";
    /** Client-facing HTTP port; 0 binds an ephemeral port. */
    unsigned httpPort = 8080;
    /** Worker-facing wire-protocol port; 0 binds an ephemeral port. */
    unsigned workerPort = 9090;
    /** Hash-space partitions == maximum cluster size. */
    unsigned workerSlots = 4;
    /** Max jobs belonging to unfinished requests before 429. */
    std::size_t queueCapacity = 256;
    /** Per-request wall-clock budget before a 503. */
    std::uint64_t requestTimeoutMs = 120000;
    /** Hard cap on HTTP request size (line + headers + body). */
    std::size_t maxRequestBytes = 1 << 20;
    /** listen(2) backlog for both listeners. */
    int acceptBacklog = 128;
    /** Batch reassignment attempts before the request fails 503. */
    unsigned maxBatchRetries = 3;
    /** Base reassignment backoff; doubles per attempt. */
    std::uint64_t retryBackoffMs = 100;
    /** Worker health-check period. */
    std::uint64_t pingIntervalMs = 2000;
    /** Silence past this declares a worker dead. */
    std::uint64_t pingTimeoutMs = 10000;
    /**
     * Shared enrollment secret. When non-empty, a worker Hello must
     * carry the same token or the connection is dropped before Welcome
     * (counted by dynaspam_cluster_hello_rejects_total). The token is
     * never logged and never appears in /metrics.
     */
    std::string clusterToken;
    /**
     * Coordinator-side result memo: pre-rendered sweep-report entries
     * kept per job hash, so fully repeated sweeps answer without
     * touching a worker. 0 disables the memo (the default: memo-served
     * entries report from_cache=true, which changes repeat-sweep bytes
     * for deployments that run workers cache-less on purpose).
     */
    std::size_t memoCapacity = 0;
    /** Log a line per lifecycle event (suppressed in tests). */
    bool verbose = true;
};

/** The cluster coordinator service. */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions options);

    /** Drains (beginDrain + waitUntilDrained) if still running. */
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Bind both listeners and spawn the event-loop thread.
     * @throws FatalError when a socket cannot be bound
     */
    void start();

    /** @return the actually bound client-facing HTTP port. */
    unsigned httpPort() const { return httpPort_; }
    /** @return the actually bound worker-facing port. */
    unsigned workerPort() const { return workerPort_; }

    /**
     * Stop accepting new connections and finish pending requests.
     * Idempotent, callable from any thread (writes the wake pipe).
     */
    void beginDrain();

    /** Block until the event loop has exited and everything is closed. */
    void waitUntilDrained();

    /**
     * start(), install SIGTERM/SIGINT drain handlers, and block until
     * a signal (or beginDrain) completes the drain. @return 0.
     */
    int serveForever();

    serve::Metrics &metrics() { return metrics_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One client (HTTP) connection's event-loop state. */
    struct ClientConn
    {
        int fd = -1;
        std::string in;
        std::string out;
        /** A /run or /sweep is pending; stop parsing further requests. */
        bool busy = false;
        /** Close once the out buffer drains. */
        bool closeAfterFlush = false;
        /** Request id the pending response belongs to. */
        std::uint64_t requestId = 0;
        /** Explore session streaming on this connection (0 = none). */
        std::uint64_t exploreId = 0;
    };

    /** One worker link's event-loop state. */
    struct WorkerConn
    {
        int fd = -1;
        std::string in;
        std::string out;
        /** Assigned shard slot; -1 until the Hello handshake. */
        int slot = -1;
        /** Close once the out buffer drains (rejected Hello). */
        bool closeAfterFlush = false;
        Clock::time_point lastPong;
        /** Batch ids currently assigned to this worker. */
        std::set<std::uint64_t> inflight;
    };

    /** One accepted /run or /sweep awaiting its shard results. */
    struct Request
    {
        std::uint64_t id = 0;
        int clientFd = -1;
        std::string name;
        bool keepAlive = true;
        std::string endpoint;        ///< metrics label ("/run"/"/sweep")
        std::vector<runner::Job> jobs;
        /** results[] entries, filled in job order as shards report. */
        std::vector<json::Value> entries;
        std::size_t remaining = 0;   ///< entries still missing
        std::size_t hits = 0;        ///< from_cache entries seen
        std::set<std::uint64_t> batchIds;
        Clock::time_point start;
        Clock::time_point deadline;
        /** Owning explore session for an internal batch (0 = client
         *  request: the response goes back over HTTP). */
        std::uint64_t exploreSessionId = 0;
    };

    /**
     * One POST /explore search in flight. The engine is driven from the
     * event loop: each engine batch becomes an internal Request (fanned
     * out through the same shard/batch/retry machinery as a /sweep),
     * and every completed batch feeds the engine, whose emitted NDJSON
     * lines stream to the client as chunks.
     */
    struct ExploreSession
    {
        std::uint64_t id = 0;
        int clientFd = -1;
        std::unique_ptr<explore::Engine> engine;
        /** Internal request in flight (0 = none, about to dispatch). */
        std::uint64_t requestId = 0;
        Clock::time_point deadline;
    };

    /** One per-shard job batch (possibly awaiting reassignment). */
    struct Batch
    {
        std::uint64_t id = 0;
        std::uint64_t requestId = 0;
        unsigned ownerSlot = 0;
        std::vector<std::size_t> jobIndices;
        unsigned attempts = 0;
        /** Worker fd it is assigned to; -1 = awaiting assignment. */
        int assignedFd = -1;
        /** Earliest reassignment time (retry backoff). */
        Clock::time_point notBefore;
    };

    void eventLoop();
    void updateEvents(int fd, bool wantWrite) REQUIRES(loopRole);
    void acceptClients() REQUIRES(loopRole);
    void acceptWorkers() REQUIRES(loopRole);

    void onClientReadable(int fd) REQUIRES(loopRole);
    void onClientWritable(int fd) REQUIRES(loopRole);
    /** Parse+dispatch buffered requests (by fd: handlers may close). */
    void parseClientRequests(int fd) REQUIRES(loopRole);
    void handleHttpRequest(ClientConn &conn, const serve::HttpRequest &req)
        REQUIRES(loopRole);
    void queueResponse(ClientConn &conn, const serve::HttpResponse &resp,
                       bool keep_alive, const std::string &endpoint)
        REQUIRES(loopRole);
    void closeClient(int fd) REQUIRES(loopRole);

    void onWorkerReadable(int fd) REQUIRES(loopRole);
    void onWorkerWritable(int fd) REQUIRES(loopRole);
    void handleWorkerFrame(WorkerConn &conn, const Frame &frame)
        REQUIRES(loopRole);
    void handleResult(WorkerConn &conn, const Frame &frame)
        REQUIRES(loopRole);
    void queueFrame(WorkerConn &conn, FrameType type,
                    const json::Value &payload) REQUIRES(loopRole);
    /** Declare a worker dead and reassign its inflight batches. */
    void dropWorker(int fd, const char *why) REQUIRES(loopRole);

    /** Admit a /run or /sweep: shard, batch, fan out. */
    void admitRequest(ClientConn &conn, const std::string &endpoint,
                      const std::string &name,
                      std::vector<runner::Job> jobs, bool keep_alive)
        REQUIRES(loopRole);

    /** Validate + admit a POST /explore and stream its header. */
    void handleExplore(ClientConn &conn, const serve::HttpRequest &req)
        REQUIRES(loopRole);
    /** Dispatch engine batches until one waits on workers (or done). */
    void driveExplore(std::uint64_t sessionId) REQUIRES(loopRole);
    /**
     * Create the internal Request for the session's pending engine
     * batch. @return true when it completed synchronously (memo served
     * every job) and the drive loop should continue
     */
    bool dispatchExploreBatch(ExploreSession &session) REQUIRES(loopRole);
    /** Decode a finished internal batch, feed the engine, stream. */
    void finishExploreBatch(Request &request) REQUIRES(loopRole);
    /** Stream @p bytes to the session's client. @return false when the
     *  client (and therefore the session) is gone. */
    bool emitExplore(std::uint64_t sessionId, const std::string &bytes)
        REQUIRES(loopRole);
    /** Terminate the stream (last chunk + close) and drop the session. */
    void endExploreStream(std::uint64_t sessionId) REQUIRES(loopRole);
    /** Emit a terminal error line, then end the stream. */
    void failExploreSession(std::uint64_t sessionId, int status,
                            const std::string &message) REQUIRES(loopRole);

    /** Memo lookup; refreshes LRU order. @return nullptr on miss */
    const std::string *memoGet(const std::string &hash)
        REQUIRES(loopRole);
    /** Memo insert/refresh (evicts LRU past memoCapacity). */
    void memoPut(const std::string &hash, std::string fragment)
        REQUIRES(loopRole);
    /** Try to assign every unassigned batch whose backoff has expired. */
    void assignPendingBatches() REQUIRES(loopRole);
    bool assignBatch(Batch &batch) REQUIRES(loopRole);
    /** Fail @p requestId with an error response; drops its batches. */
    void failRequest(std::uint64_t requestId, int status,
                     const std::string &message) REQUIRES(loopRole);
    void finishRequest(Request &request) REQUIRES(loopRole);
    /** Respond to the request's client (if still connected). */
    void respond(const Request &request, const serve::HttpResponse &resp)
        REQUIRES(loopRole);
    void dropRequestBatches(const Request &request) REQUIRES(loopRole);

    void sendPings() REQUIRES(loopRole);
    void checkTimers() REQUIRES(loopRole);
    std::size_t liveWorkerCount() const REQUIRES(loopRole);
    int liveWorkerForSlot(unsigned slot) const REQUIRES(loopRole);
    void updateWorkerGauge() REQUIRES(loopRole);

    serve::HttpResponse handleMetricsScrape() REQUIRES(loopRole);
    static serve::HttpResponse errorResponse(int status,
                                             const std::string &message);

    CoordinatorOptions options;
    serve::Metrics metrics_;

    // Lifecycle plumbing. The listen sockets and the epoll instance are
    // created by start() before the loop thread exists and closed by the
    // loop thread (drain) or the destructor (after join) — never
    // concurrently.
    common::Fd epollFd;
    common::Fd listenHttpFd;
    common::Fd listenWorkerFd;
    common::Pipe wakePipe;
    unsigned httpPort_ = 0;
    unsigned workerPort_ = 0;
    std::thread loopThread;
    bool started = false;
    bool drained = false;

    /**
     * Everything below is thread-confined to the epoll loop: eventLoop()
     * holds loopRole for its whole lifetime, and the analysis rejects
     * any other path into the REQUIRES(loopRole) machinery above. The
     * only cross-thread entry points are beginDrain() (writes the wake
     * pipe) and metrics_ (internally locked).
     */
    common::ThreadRole loopRole;

    bool draining GUARDED_BY(loopRole) = false;

    std::map<int, ClientConn> clients GUARDED_BY(loopRole);
    std::map<int, WorkerConn> workers GUARDED_BY(loopRole);
    /** slot -> worker fd (-1 = vacant). */
    std::vector<int> slotFd GUARDED_BY(loopRole);

    std::map<std::uint64_t, Request> requests GUARDED_BY(loopRole);
    std::map<std::uint64_t, Batch> batches GUARDED_BY(loopRole);
    std::map<std::uint64_t, ExploreSession> exploreSessions
        GUARDED_BY(loopRole);
    std::uint64_t nextRequestId GUARDED_BY(loopRole) = 1;
    std::uint64_t nextBatchId GUARDED_BY(loopRole) = 1;
    std::uint64_t nextExploreId GUARDED_BY(loopRole) = 1;

    /** Coordinator-side LRU result memo: job hash -> pre-rendered
     *  from_cache=true sweep-report entry fragment. */
    std::list<std::string> memoOrder GUARDED_BY(loopRole);
    std::map<std::string,
             std::pair<std::list<std::string>::iterator, std::string>>
        memoMap GUARDED_BY(loopRole);
    /** Lifetime memo hits (mirrored into the memo_hits gauge). */
    std::uint64_t memoHits GUARDED_BY(loopRole) = 0;
    std::uint64_t pingTick GUARDED_BY(loopRole) = 0;
    Clock::time_point lastPingSweep GUARDED_BY(loopRole);
    /** Jobs belonging to unfinished requests (admission gauge). */
    std::size_t outstandingJobs GUARDED_BY(loopRole) = 0;
};

} // namespace dynaspam::cluster

#endif // DYNASPAM_CLUSTER_COORDINATOR_HH
