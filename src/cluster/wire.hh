/**
 * @file
 * Length-prefixed frame protocol between the cluster coordinator and
 * its workers.
 *
 * Every frame is an 8-byte header followed by a JSON payload:
 *
 *     byte 0..1  magic "DS"
 *     byte 2     protocol version (kWireVersion)
 *     byte 3     frame type (FrameType)
 *     byte 4..7  payload length, little-endian u32
 *
 * The byte order is pinned (bits::storeLE32/loadLE32) so the encoding
 * is identical on every platform. Payload length is capped at
 * kMaxFramePayload: a corrupted or hostile length field is rejected as
 * Bad before any allocation, so a garbage frame can neither balloon
 * memory nor crash the peer.
 *
 * Frame flow:
 *
 *     worker -> coordinator   Hello  {"protocol": 1, "token": "..."}
 *     coordinator -> worker   Welcome {"slot": N, "slots": M}
 *
 * The Hello "token" field is optional: a worker sends it when started
 * with --cluster-token, and a coordinator configured with a token
 * requires a matching one before granting a slot (a mismatch drops the
 * connection without a Welcome). The token is never logged on either
 * side and never appears in /metrics.
 *     coordinator -> worker   Batch  {"id": n, "jobs": [jobToJson...]}
 *     worker -> coordinator   ResultRaw (binary, successful batches)
 *     worker -> coordinator   Result {"id": n, "error": "..."}
 *     coordinator -> worker   Ping   {"tick": n}
 *     worker -> coordinator   Pong   {"tick": n, "queued": q,
 *                                     "evictions": e}
 *
 * Successful results use the binary ResultRaw payload (encodeResultRaw)
 * carrying each sweep-report entry as a pre-serialized fragment
 * (runner::sweepEntryJson rendered by json::Value::dumpAt at the
 * report's nesting depth). The coordinator splices the fragments into
 * the merged report via json::Raw without parsing — cache-hot entries
 * are serialized once at the owning worker, then only memcpy'd — and
 * the result is still byte-identical to a single-process report.
 *
 * Decoding is incremental (NeedMore / Ok / Bad) over a caller-owned
 * byte buffer, the same shape as the HTTP parser: both the epoll
 * coordinator and the blocking worker accumulate bytes and decode in a
 * loop, erasing consumed bytes on Ok.
 */

#ifndef DYNASPAM_CLUSTER_WIRE_HH
#define DYNASPAM_CLUSTER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dynaspam::cluster
{

/** Wire protocol version; Hello/Welcome reject mismatches. */
inline constexpr std::uint8_t kWireVersion = 1;

/** Hard cap on one frame's payload (a full sweep report fits easily). */
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/** Frame types (byte 3 of the header). */
enum class FrameType : std::uint8_t
{
    Hello = 1,   ///< worker -> coordinator: join the cluster
    Welcome,     ///< coordinator -> worker: slot assignment
    Batch,       ///< coordinator -> worker: execute a job batch
    Result,      ///< worker -> coordinator: batch error (JSON)
    Ping,        ///< coordinator -> worker: health probe
    Pong,        ///< worker -> coordinator: health reply + gauges
    ResultRaw,   ///< worker -> coordinator: batch entries (binary)
    Goodbye,     ///< coordinator -> worker: orderly shutdown, don't
                 ///< reconnect (a plain EOF means "coordinator lost,
                 ///< retry with backoff")
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::string payload;
};

/** Outcome of one incremental decode attempt. */
enum class DecodeOutcome
{
    NeedMore,  ///< no complete frame in the buffer yet
    Ok,        ///< one frame decoded; @p consumed bytes were used
    Bad,       ///< bad magic/version/type/length -> drop the connection
};

/** Encode one frame (header + payload) into wire bytes. */
std::string encodeFrame(FrameType type, const std::string &payload);

/**
 * Try to decode one frame from the front of @p buf. Does not modify
 * @p buf; on Ok, @p consumed is the frame's total size (the caller
 * erases those bytes). Bad means the stream is unrecoverable — close
 * the connection.
 */
DecodeOutcome decodeFrame(const std::string &buf, Frame &out,
                          std::size_t &consumed);

/**
 * Nesting depth of a sweep-report entry inside the report document
 * (root object -> "results" array -> entry), and the report's indent
 * width. RawEntry fragments must be rendered with
 * json::Value::dumpAt(kReportIndent, kEntryFragmentDepth) so splicing
 * them via json::Raw reproduces a natively serialized report byte for
 * byte.
 */
inline constexpr unsigned kReportIndent = 2;
inline constexpr unsigned kEntryFragmentDepth = 2;

/** One entry of a decoded ResultRaw payload. */
struct RawEntry
{
    bool fromCache = false;
    /** sweepEntryJson bytes, pre-rendered at the report's depth. */
    std::string fragment;
};

/**
 * Encode a ResultRaw payload:
 *
 *     byte 0..7   batch id, little-endian u64
 *     byte 8..11  entry count, little-endian u32
 *     per entry:  u8 from_cache, LE u32 length, fragment bytes
 *
 * @return the payload only; pass it through encodeFrame(ResultRaw).
 */
std::string encodeResultRaw(std::uint64_t id,
                            const std::vector<RawEntry> &entries);

/**
 * Decode a ResultRaw payload produced by encodeResultRaw.
 * @return false when the payload is truncated or inconsistent (the
 * caller should drop the connection, as with DecodeOutcome::Bad)
 */
bool decodeResultRaw(const std::string &payload, std::uint64_t &id,
                     std::vector<RawEntry> &entries);

/**
 * Shard ownership: map a job's FNV-1a @p hash to one of @p slots
 * hash-space partitions (multiply-shift, no modulo bias). Stable for a
 * fixed slot count — the basis of shard-local cache locality.
 * @p slots must be >= 1.
 */
unsigned ownerSlot(std::uint64_t hash, unsigned slots);

/**
 * Clamped exponential backoff: `base_ms << (attempts - 1)`, except the
 * shift exponent is capped so it can never reach the width of the type
 * (a plain shift by >= 64 is undefined behaviour) and the resulting
 * delay saturates at @p cap_ms. attempts == 0 is treated as 1.
 * Used by coordinator batch retries and worker reconnects alike.
 */
std::uint64_t retryBackoffDelayMs(std::uint64_t base_ms,
                                  unsigned attempts,
                                  std::uint64_t cap_ms);

} // namespace dynaspam::cluster

#endif // DYNASPAM_CLUSTER_WIRE_HH
