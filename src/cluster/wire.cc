#include "cluster/wire.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace dynaspam::cluster
{

namespace
{

constexpr std::size_t kHeaderSize = 8;

bool
validType(std::uint8_t type)
{
    return type >= std::uint8_t(FrameType::Hello) &&
           type <= std::uint8_t(FrameType::Goodbye);
}

} // namespace

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        panic("wire: frame payload of ", payload.size(),
              " bytes exceeds the ", kMaxFramePayload, " byte cap");

    std::string out;
    out.reserve(kHeaderSize + payload.size());
    out.push_back('D');
    out.push_back('S');
    out.push_back(char(kWireVersion));
    out.push_back(char(std::uint8_t(type)));
    unsigned char len[4];
    bits::storeLE32(std::uint32_t(payload.size()), len);
    out.append(reinterpret_cast<const char *>(len), 4);
    out.append(payload);
    return out;
}

DecodeOutcome
decodeFrame(const std::string &buf, Frame &out, std::size_t &consumed)
{
    consumed = 0;
    if (buf.size() < kHeaderSize)
        return DecodeOutcome::NeedMore;

    const unsigned char *raw =
        reinterpret_cast<const unsigned char *>(buf.data());
    if (raw[0] != 'D' || raw[1] != 'S')
        return DecodeOutcome::Bad;
    if (raw[2] != kWireVersion)
        return DecodeOutcome::Bad;
    if (!validType(raw[3]))
        return DecodeOutcome::Bad;
    std::uint32_t len = bits::loadLE32(raw + 4);
    if (len > kMaxFramePayload)
        return DecodeOutcome::Bad;

    if (buf.size() < kHeaderSize + len)
        return DecodeOutcome::NeedMore;

    out.type = FrameType(raw[3]);
    out.payload = buf.substr(kHeaderSize, len);
    consumed = kHeaderSize + len;
    return DecodeOutcome::Ok;
}

std::string
encodeResultRaw(std::uint64_t id, const std::vector<RawEntry> &entries)
{
    std::size_t total = 12;
    for (const RawEntry &entry : entries)
        total += 5 + entry.fragment.size();

    std::string out;
    out.reserve(total);
    unsigned char scratch[8];
    bits::storeLE64(id, scratch);
    out.append(reinterpret_cast<const char *>(scratch), 8);
    bits::storeLE32(std::uint32_t(entries.size()), scratch);
    out.append(reinterpret_cast<const char *>(scratch), 4);
    for (const RawEntry &entry : entries) {
        out.push_back(entry.fromCache ? '\1' : '\0');
        bits::storeLE32(std::uint32_t(entry.fragment.size()), scratch);
        out.append(reinterpret_cast<const char *>(scratch), 4);
        out.append(entry.fragment);
    }
    return out;
}

bool
decodeResultRaw(const std::string &payload, std::uint64_t &id,
                std::vector<RawEntry> &entries)
{
    const unsigned char *raw =
        reinterpret_cast<const unsigned char *>(payload.data());
    if (payload.size() < 12)
        return false;
    id = bits::loadLE64(raw);
    const std::uint32_t count = bits::loadLE32(raw + 8);
    // Each entry needs at least its 5-byte header: an implausible count
    // is rejected before the reserve below can balloon memory.
    if (std::size_t(count) * 5 > payload.size())
        return false;

    entries.clear();
    entries.reserve(count);
    std::size_t pos = 12;
    for (std::uint32_t i = 0; i < count; i++) {
        if (payload.size() - pos < 5)
            return false;
        RawEntry entry;
        entry.fromCache = raw[pos] != '\0';
        const std::uint32_t len = bits::loadLE32(raw + pos + 1);
        pos += 5;
        if (payload.size() - pos < len)
            return false;
        entry.fragment = payload.substr(pos, len);
        pos += len;
        entries.push_back(std::move(entry));
    }
    return pos == payload.size();
}

unsigned
ownerSlot(std::uint64_t hash, unsigned slots)
{
    if (slots == 0)
        panic("wire: ownerSlot with zero slots");
    return unsigned((unsigned __int128)(hash)*slots >> 64);
}

std::uint64_t
retryBackoffDelayMs(std::uint64_t base_ms, unsigned attempts,
                    std::uint64_t cap_ms)
{
    if (attempts == 0)
        attempts = 1;
    // 2^63 ms is ~292 million years; any exponent past that is already
    // saturated, and capping it keeps the shift well-defined.
    const unsigned shift = attempts - 1 < 63u ? attempts - 1 : 63u;
    std::uint64_t delay = base_ms;
    // Saturating doubling instead of one big shift: base << shift could
    // itself overflow for large bases even with a legal exponent.
    for (unsigned i = 0; i < shift; i++) {
        if (delay > cap_ms)
            break;
        delay *= 2;
    }
    return delay < cap_ms ? delay : cap_ms;
}

} // namespace dynaspam::cluster
