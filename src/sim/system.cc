/**
 * @file
 * System driver implementation.
 */

#include "sim/system.hh"

#include "common/logging.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

namespace dynaspam::sim
{

const char *
modeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::BaselineOoo:
        return "baseline-ooo";
      case SystemMode::MappingOnly:
        return "mapping-only";
      case SystemMode::AccelNoSpec:
        return "accel-nospec";
      case SystemMode::AccelSpec:
        return "accel-spec";
      case SystemMode::AccelNaive:
        return "accel-naive";
    }
    return "unknown";
}

SystemConfig
SystemConfig::make(SystemMode mode, unsigned trace_length,
                   unsigned num_fabrics)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.dynaspam.traceLength = trace_length;
    cfg.dynaspam.numFabrics = num_fabrics;

    switch (mode) {
      case SystemMode::BaselineOoo:
        break;
      case SystemMode::MappingOnly:
        cfg.dynaspam.enableOffload = false;
        break;
      case SystemMode::AccelNoSpec:
        cfg.dynaspam.fabricParams.memorySpeculation = false;
        break;
      case SystemMode::AccelSpec:
        break;
      case SystemMode::AccelNaive:
        cfg.dynaspam.mapper = core::MapperKind::NaiveOrder;
        break;
    }
    return cfg;
}

System::System(SystemConfig config) : cfg(std::move(config)) {}
System::~System() = default;

RunResult
System::run(const isa::Program &program,
            const mem::FunctionalMemory &initial_memory)
{
    // One-shot runs use a local simulation so the System stays
    // stateless between run() calls.
    Simulation local(cfg, SimInput::make(program, initial_memory));
    local.runToCompletion();
    return local.collectResult();
}

Simulation &
System::start(const isa::Program &program,
              const mem::FunctionalMemory &initial_memory)
{
    return start(SimInput::make(program, initial_memory));
}

Simulation &
System::start(std::shared_ptr<const SimInput> input)
{
    simu = std::make_unique<Simulation>(cfg, std::move(input));
    return *simu;
}

void
System::snapshot(Snapshot &out) const
{
    if (!simu)
        fatal("System::snapshot before start()");
    simu->snapshot(out);
}

void
System::restore(const Snapshot &snap)
{
    if (!simu)
        fatal("System::restore before start()");
    simu->restore(snap);
}

RunResult
System::finish()
{
    if (!simu)
        fatal("System::finish before start()");
    simu->runToCompletion();
    return simu->collectResult();
}

} // namespace dynaspam::sim
