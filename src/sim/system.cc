/**
 * @file
 * System driver implementation.
 */

#include "sim/system.hh"

#include "check/check.hh"
#include "check/verifier.hh"
#include "common/logging.hh"
#include "isa/trace.hh"
#include "trace/trace.hh"

namespace dynaspam::sim
{

const char *
modeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::BaselineOoo:
        return "baseline-ooo";
      case SystemMode::MappingOnly:
        return "mapping-only";
      case SystemMode::AccelNoSpec:
        return "accel-nospec";
      case SystemMode::AccelSpec:
        return "accel-spec";
      case SystemMode::AccelNaive:
        return "accel-naive";
    }
    return "unknown";
}

SystemConfig
SystemConfig::make(SystemMode mode, unsigned trace_length,
                   unsigned num_fabrics)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.dynaspam.traceLength = trace_length;
    cfg.dynaspam.numFabrics = num_fabrics;

    switch (mode) {
      case SystemMode::BaselineOoo:
        break;
      case SystemMode::MappingOnly:
        cfg.dynaspam.enableOffload = false;
        break;
      case SystemMode::AccelNoSpec:
        cfg.dynaspam.fabricParams.memorySpeculation = false;
        break;
      case SystemMode::AccelSpec:
        break;
      case SystemMode::AccelNaive:
        cfg.dynaspam.mapper = core::MapperKind::NaiveOrder;
        break;
    }
    return cfg;
}

RunResult
System::run(const isa::Program &program,
            const mem::FunctionalMemory &initial_memory)
{
    RunResult result;

    // Functional (oracle) pass.
    mem::FunctionalMemory memory = initial_memory;
    isa::DynamicTrace trace(program);
    trace.reserve(1 << 16);
    auto func = isa::Executor::run(program, memory, &trace);
    if (!func.halted)
        fatal("program '", program.name(), "' did not halt");

    // Reference re-execution for a functional cross-check (the timing
    // model is oracle-directed, so this validates the trace itself).
    // The executor appends exactly one trace record per counted
    // instruction, so in unchecked runs the record count stands in for
    // the re-run; checked builds still pay for the full re-execution.
    if (check::enabled()) {
        mem::FunctionalMemory memory2 = initial_memory;
        auto func2 = isa::Executor::run(program, memory2, nullptr);
        result.functionallyCorrect =
            func2.instCount == func.instCount && func2.halted;
    } else {
        result.functionallyCorrect =
            func.halted && func.instCount == trace.size();
    }

    // Timing pass.
    mem::MemoryHierarchy hierarchy(cfg.memory);
    ooo::OooCpu cpu(cfg.ooo, trace, hierarchy);

    std::unique_ptr<core::DynaSpamController> controller;
    if (cfg.mode != SystemMode::BaselineOoo) {
        controller = std::make_unique<core::DynaSpamController>(
            cfg.dynaspam, trace, cpu.branchPredictor(),
            cpu.storeSetPredictor(), hierarchy);
        cpu.setHooks(controller.get());
    }

    if (trace::compiledIn() && cfg.traceSink) {
        cpu.setTraceSink(cfg.traceSink);
        if (controller)
            controller->setTraceSink(cfg.traceSink);
    }

    // Verification layer: golden-model lockstep plus per-cycle
    // invariant audits, opt-in via DYNASPAM_CHECKS (default on in
    // -DDYNASPAM_CHECKS=ON builds).
    check::ViolationSink sink;      // aborts on any violation
    std::unique_ptr<check::Verifier> verifier;
    if (check::enabled()) {
        verifier = std::make_unique<check::Verifier>(
            cpu, trace, initial_memory, controller.get(), sink);
        cpu.setCommitObserver(verifier.get());
    }

    result.cycles = cpu.run();
    result.pipeline = cpu.stats();

    if (verifier) {
        verifier->finish(result.cycles);
        result.commitsChecked =
            verifier->lockstepChecker().commitsChecked();
    }

    if (controller) {
        controller->finalizeStats();
        result.dynaspam = controller->stats();
        controller->exportStats(result.stats);
    }
    cpu.exportStats(result.stats);
    hierarchy.exportStats(result.stats);

    // Instruction accounting for Figure 7.
    result.instsTotal = result.pipeline.committedInsts;
    result.instsMapping = result.pipeline.mappingInstsExecuted;
    result.instsFabric =
        result.pipeline.committedInsts - result.pipeline.committedOnHost;
    result.instsHost =
        result.pipeline.committedOnHost - result.instsMapping;

    // Energy.
    energy::EnergyModel model(cfg.energy);
    auto mem_events = energy::MemoryEvents::fromHierarchy(hierarchy);
    energy::FabricEvents fab_events;
    if (controller) {
        for (const auto &fab : controller->fabrics()) {
            const auto &fs = fab->stats();
            fab_events.peOps += fs.peOps;
            fab_events.hops += fs.datapathHops;
            fab_events.fifoPushes += fs.fifoPushes;
            fab_events.busTransfers += fs.busTransfers;
            fab_events.gatedStripeCycles +=
                fs.activeStripeInvocations;
            fab_events.configCacheAccesses += fs.reconfigurations;
        }
        fab_events.configCacheAccesses +=
            result.dynaspam.tracesConsidered;
        // Each reconfiguration rewrites every PE configuration word.
        fab_events.configuredInsts =
            result.dynaspam.reconfigurations *
            cfg.dynaspam.fabricParams.pesPerStripe();
    }
    result.energy = model.compute(result.pipeline, mem_events, fab_events);

    return result;
}

} // namespace dynaspam::sim
