/**
 * @file
 * Top-level simulation driver.
 *
 * A System wires the functional executor, cache hierarchy, OOO CPU,
 * DynaSpAM controller and energy model together, and runs one program
 * under one of the paper's named configurations:
 *
 *  - BaselineOoo: the 8-issue OOO pipeline of Table 4, no DynaSpAM
 *  - MappingOnly: traces are detected and mapped but never offloaded
 *    (isolates the mapping overhead, Figure 8 "mapping")
 *  - AccelNoSpec: mapping + acceleration, fabric memory ops conservative
 *    (Figure 8 "mapping + acceleration w/o speculation")
 *  - AccelSpec: mapping + acceleration with memory speculation
 *    (Figure 8 "mapping + acceleration w/ speculation")
 *  - AccelNaive: like AccelSpec but with the naive in-order mapper
 *    (ablation of the resource-aware scheduler)
 */

#ifndef DYNASPAM_SIM_SYSTEM_HH
#define DYNASPAM_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "core/controller.hh"
#include "energy/energy.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/cpu.hh"

namespace dynaspam::trace
{
class TraceSink;
} // namespace dynaspam::trace

namespace dynaspam::sim
{

/** Named system configurations from the evaluation. */
enum class SystemMode : std::uint8_t
{
    BaselineOoo,
    MappingOnly,
    AccelNoSpec,
    AccelSpec,
    AccelNaive,
};

/** @return a short display name for @p mode. */
const char *modeName(SystemMode mode);

/** Full system configuration. */
struct SystemConfig
{
    SystemMode mode = SystemMode::BaselineOoo;
    ooo::OooParams ooo;
    core::DynaSpamParams dynaspam;
    energy::EnergyParams energy;
    mem::MemoryHierarchy::Params memory;

    /** Optional event-trace sink (not owned; may be nullptr). Attached
     *  to the pipeline, controller and fabrics for the timing pass. */
    trace::TraceSink *traceSink = nullptr;

    /** Build the canonical configuration for @p mode with the given
     *  trace length and fabric count. */
    static SystemConfig make(SystemMode mode, unsigned trace_length = 32,
                             unsigned num_fabrics = 1);
};

/** Everything a run produces. */
struct RunResult
{
    Cycle cycles = 0;
    ooo::PipelineStats pipeline;
    core::DynaSpamStats dynaspam;
    energy::EnergyBreakdown energy;
    StatRegistry stats;

    std::uint64_t instsTotal = 0;
    std::uint64_t instsMapping = 0;   ///< executed during mapping phases
    std::uint64_t instsFabric = 0;    ///< committed via fabric invocations
    std::uint64_t instsHost = 0;      ///< remaining host-committed

    bool functionallyCorrect = false; ///< final regs match reference run

    /** Commits diffed against the golden model (0 when the
     *  verification layer was not enabled for the run). */
    std::uint64_t commitsChecked = 0;

    /** Sampled-fidelity marker: when set, `cycles` is extrapolated from
     *  a detailed warmup+window prefix and the pipeline/energy stats
     *  cover only that prefix. Full-fidelity results never set this, so
     *  their serialized form is unchanged. */
    bool sampled = false;
    std::uint64_t sampledInsts = 0;     ///< detailed commits simulated
    std::uint64_t sampledCycles = 0;    ///< detailed cycles simulated

    double ipc() const
    {
        return cycles ? double(instsTotal) / double(cycles) : 0.0;
    }
    double energyTotal() const { return energy.total(); }
};

class SimInput;
class Simulation;
struct Snapshot;

/**
 * Simulation driver for one configuration. run() is the classic
 * one-shot interface; start()/snapshot()/restore()/finish() expose the
 * same run as a pausable, forkable state machine (see sim/simulation.hh
 * and sim/snapshot.hh).
 */
class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /**
     * Execute @p program functionally, then simulate it to completion.
     * @param initial_memory pre-initialized data memory (copied)
     */
    RunResult run(const isa::Program &program,
                  const mem::FunctionalMemory &initial_memory);

    /** Convenience overload starting from empty memory. */
    RunResult
    run(const isa::Program &program)
    {
        mem::FunctionalMemory empty;
        return run(program, empty);
    }

    /**
     * Begin a stateful run: functional pass, then construct the paused
     * timing simulation at cycle 0. Replaces any previous simulation.
     */
    Simulation &start(const isa::Program &program,
                      const mem::FunctionalMemory &initial_memory);

    /** Begin a stateful run over an already-built (shared) input. */
    Simulation &start(std::shared_ptr<const SimInput> input);

    /** The active simulation, or nullptr before start(). */
    Simulation *simulation() { return simu.get(); }

    /** Capture the active simulation's state (fatal before start()). */
    void snapshot(Snapshot &out) const;

    /** Restore the active simulation from @p snap (fatal before
     *  start(); see Simulation::restore for the compatibility rules). */
    void restore(const Snapshot &snap);

    /** Run the active simulation to completion and assemble results. */
    RunResult finish();

    const SystemConfig &config() const { return cfg; }

  private:
    SystemConfig cfg;
    std::unique_ptr<Simulation> simu;
};

} // namespace dynaspam::sim

#endif // DYNASPAM_SIM_SYSTEM_HH
