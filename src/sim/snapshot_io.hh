/**
 * @file
 * On-disk (de)serialization of sim::Snapshot.
 *
 * A Snapshot is an in-memory deep copy of a paused simulation; this
 * layer turns it into a platform-stable byte string so a warmed prefix
 * survives process restarts and can ship to cluster workers. Three
 * rules keep the encoding honest:
 *
 *  - Every field is written explicitly little-endian (common/binio.hh);
 *    no struct is ever memcpy'd whole, so padding and ABI never leak in.
 *  - Unordered containers are sorted by key before writing, so the same
 *    state always produces the same bytes.
 *  - Raw pointers inside the saved pipeline state (StaticInst/DynRecord
 *    in DynInst) are not written at all: they are re-derived on load
 *    from the trace index against the SimInput the caller provides,
 *    bounds-checked. An identity hash of the SimInput travels with the
 *    snapshot so a loader never binds state to the wrong input.
 *
 * Deserialization is fail-soft: corrupt, truncated or semantically
 * invalid bytes return false (degrading to a cache miss / re-warm) and
 * never fatal or invoke UB.
 */

#ifndef DYNASPAM_SIM_SNAPSHOT_IO_HH
#define DYNASPAM_SIM_SNAPSHOT_IO_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/snapshot.hh"

namespace dynaspam::sim
{

/** Bump when the snapshot body encoding changes shape. Mismatched
 *  versions are rejected at load time and fall back to re-warming. */
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/**
 * Stable identity hash of a SimInput: program name and code, initial
 * memory contents, the full oracle trace and the functional verdict.
 * Two SimInputs with equal hashes are interchangeable for restore.
 */
std::uint64_t simInputIdentityHash(const SimInput &input);

/** Append the snapshot body (cpu, memory, controller?, verifier?) to
 *  @p out. The SimInput itself is NOT encoded — only state over it. */
void serializeSnapshot(const Snapshot &snap, std::string &out);

/**
 * Decode a snapshot body into @p snap, binding it to @p input (which
 * must be the same logical input the snapshot was captured over —
 * callers compare simInputIdentityHash before calling). Pipeline
 * pointers are re-derived from trace indices against @p input.
 *
 * @return true on success; false on any corruption (snap is then in an
 *         unspecified but safe-to-destroy state, input binding intact)
 */
bool deserializeSnapshot(const std::string &bytes,
                         std::shared_ptr<const SimInput> input,
                         Snapshot &snap);

} // namespace dynaspam::sim

#endif // DYNASPAM_SIM_SNAPSHOT_IO_HH
