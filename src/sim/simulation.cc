/**
 * @file
 * Stateful simulation implementation.
 */

#include "sim/simulation.hh"

#include "common/logging.hh"
#include "energy/energy.hh"
#include "trace/trace.hh"

namespace dynaspam::sim
{

Simulation::Simulation(const SystemConfig &config,
                       std::shared_ptr<const SimInput> in)
    : cfg(config), input(std::move(in)), hierarchy(cfg.memory),
      cpu(cfg.ooo, input->trace(), hierarchy)
{
    if (cfg.mode != SystemMode::BaselineOoo) {
        controller = std::make_unique<core::DynaSpamController>(
            cfg.dynaspam, input->trace(), cpu.branchPredictor(),
            cpu.storeSetPredictor(), hierarchy);
        cpu.setHooks(controller.get());
    }

    if (trace::compiledIn() && cfg.traceSink) {
        cpu.setTraceSink(cfg.traceSink);
        if (controller)
            controller->setTraceSink(cfg.traceSink);
    }

    // Verification layer: golden-model lockstep plus per-cycle
    // invariant audits, opt-in via DYNASPAM_CHECKS (default on in
    // -DDYNASPAM_CHECKS=ON builds).
    if (check::enabled()) {
        verifier = std::make_unique<check::Verifier>(
            cpu, input->trace(), input->initialMemory(),
            controller.get(), sink);
        cpu.setCommitObserver(verifier.get());
    }
}

void
Simulation::snapshot(Snapshot &out) const
{
    out.input = input;
    cpu.save(out.cpu);
    hierarchy.save(out.memory);
    if (controller) {
        if (!out.controller)
            out.controller.emplace();
        controller->save(*out.controller);
    } else {
        out.controller.reset();
    }
    if (verifier) {
        if (!out.verifier)
            out.verifier.emplace();
        verifier->save(*out.verifier);
    } else {
        out.verifier.reset();
    }
}

void
Simulation::restore(const Snapshot &in)
{
    if (in.input.get() != input.get())
        fatal("snapshot restore across different simulation inputs");
    if (in.controller.has_value() != (controller != nullptr))
        fatal("snapshot restore: controller presence mismatch");
    if (in.verifier.has_value() != (verifier != nullptr))
        fatal("snapshot restore: verifier presence mismatch");

    hierarchy.restore(in.memory);
    cpu.restore(in.cpu,
                controller ? controller->mappingPolicy() : nullptr);
    if (controller)
        controller->restore(*in.controller);
    if (verifier)
        verifier->restore(*in.verifier);
}

RunResult
Simulation::collectResult()
{
    RunResult result;
    result.functionallyCorrect = input->functionallyCorrect();
    result.cycles = cpu.now();
    result.pipeline = cpu.stats();

    if (verifier) {
        // The completeness check (every record committed) only applies
        // when the run actually finished; sampled runs stop early.
        if (cpu.done())
            verifier->finish(result.cycles);
        result.commitsChecked =
            verifier->lockstepChecker().commitsChecked();
    }

    if (controller) {
        controller->finalizeStats();
        result.dynaspam = controller->stats();
        controller->exportStats(result.stats);
    }
    cpu.exportStats(result.stats);
    hierarchy.exportStats(result.stats);

    // Instruction accounting for Figure 7.
    result.instsTotal = result.pipeline.committedInsts;
    result.instsMapping = result.pipeline.mappingInstsExecuted;
    result.instsFabric =
        result.pipeline.committedInsts - result.pipeline.committedOnHost;
    result.instsHost =
        result.pipeline.committedOnHost - result.instsMapping;

    // Energy.
    energy::EnergyModel model(cfg.energy);
    auto mem_events = energy::MemoryEvents::fromHierarchy(hierarchy);
    energy::FabricEvents fab_events;
    if (controller) {
        for (const auto &fab : controller->fabrics()) {
            const auto &fs = fab->stats();
            fab_events.peOps += fs.peOps;
            fab_events.hops += fs.datapathHops;
            fab_events.fifoPushes += fs.fifoPushes;
            fab_events.busTransfers += fs.busTransfers;
            fab_events.gatedStripeCycles +=
                fs.activeStripeInvocations;
            fab_events.configCacheAccesses += fs.reconfigurations;
        }
        fab_events.configCacheAccesses +=
            result.dynaspam.tracesConsidered;
        // Each reconfiguration rewrites every PE configuration word.
        fab_events.configuredInsts =
            result.dynaspam.reconfigurations *
            cfg.dynaspam.fabricParams.pesPerStripe();
    }
    result.energy = model.compute(result.pipeline, mem_events, fab_events);

    return result;
}

} // namespace dynaspam::sim
