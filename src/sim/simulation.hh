/**
 * @file
 * Stateful cycle-level simulation over a shared immutable SimInput.
 *
 * Simulation decomposes System::run's timing pass into construct /
 * tick / collect phases so a run can be paused, snapshotted, restored
 * and resumed. A Simulation that is constructed and immediately driven
 * to completion performs the exact same operations in the exact same
 * order as the original monolithic driver, so reports stay
 * byte-identical; snapshot() and restore() are the only additions.
 */

#ifndef DYNASPAM_SIM_SIMULATION_HH
#define DYNASPAM_SIM_SIMULATION_HH

#include <memory>

#include "check/check.hh"
#include "check/verifier.hh"
#include "core/controller.hh"
#include "memory/cache.hh"
#include "ooo/cpu.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"

namespace dynaspam::sim
{

/**
 * One in-progress simulation of a SimInput under a SystemConfig.
 * Non-copyable; share the SimInput, not the Simulation.
 */
class Simulation
{
  public:
    Simulation(const SystemConfig &config,
               std::shared_ptr<const SimInput> input);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Advance one cycle. */
    void tick() { cpu.tick(); }

    /** @return true when every oracle record has committed. */
    bool done() const { return cpu.done(); }

    Cycle now() const { return cpu.now(); }

    /** Program instructions committed so far (fabric blocks included). */
    std::uint64_t
    committedInsts() const
    {
        return cpu.stats().committedInsts;
    }

    const SimInput &simInput() const { return *input; }
    const SystemConfig &config() const { return cfg; }

    /** Attach a forked-sweep warmup divergence guard (needs a DynaSpAM
     *  controller; no-op for baseline configurations). */
    void
    setWarmupGuard(core::WarmupGuard *g)
    {
        if (controller)
            controller->setWarmupGuard(g);
    }

    /** Capture the complete mutable state into @p out (reuses whatever
     *  capacity @p out already holds). */
    void snapshot(Snapshot &out) const;

    /**
     * Restore a snapshot taken by a Simulation over the very same
     * SimInput object with the same structural geometry. The DynaSpAM
     * knobs may differ (forked sweeps); fatal on input mismatch or on a
     * controller/verifier presence mismatch.
     */
    void restore(const Snapshot &in);

    /** Drive the simulation until every record has committed. */
    void
    runToCompletion()
    {
        while (!cpu.done())
            cpu.tick();
    }

    /**
     * Assemble the RunResult from the current state. Call exactly once,
     * at the point the run stops: completion for full-fidelity runs, or
     * the sampling stop point for sampled ones (the golden-model
     * completeness check only runs when the trace fully committed).
     */
    RunResult collectResult();

  private:
    SystemConfig cfg;
    std::shared_ptr<const SimInput> input;

    mem::MemoryHierarchy hierarchy;
    ooo::OooCpu cpu;
    std::unique_ptr<core::DynaSpamController> controller;

    check::ViolationSink sink;      // aborts on any violation
    std::unique_ptr<check::Verifier> verifier;
};

} // namespace dynaspam::sim

#endif // DYNASPAM_SIM_SIMULATION_HH
