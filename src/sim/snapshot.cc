/**
 * @file
 * SimInput construction: the functional (oracle) pass.
 */

#include "sim/snapshot.hh"

#include "check/check.hh"
#include "common/logging.hh"
#include "isa/executor.hh"

namespace dynaspam::sim
{

std::shared_ptr<const SimInput>
SimInput::make(const isa::Program &program,
               const mem::FunctionalMemory &initial_memory)
{
    // The passkey keeps construction confined to make() while letting
    // make_shared heap-pin the program member the trace points at.
    auto input =
        std::make_shared<SimInput>(Key{}, program, initial_memory);

    mem::FunctionalMemory memory = input->initMem;
    input->dynTrace.reserve(1 << 16);
    auto func = isa::Executor::run(input->prog, memory, &input->dynTrace);
    if (!func.halted)
        fatal("program '", input->prog.name(), "' did not halt");

    // Reference re-execution for a functional cross-check (the timing
    // model is oracle-directed, so this validates the trace itself).
    // The executor appends exactly one trace record per counted
    // instruction, so in unchecked runs the record count stands in for
    // the re-run; checked builds still pay for the full re-execution.
    if (check::enabled()) {
        mem::FunctionalMemory memory2 = input->initMem;
        auto func2 = isa::Executor::run(input->prog, memory2, nullptr);
        input->funcCorrect =
            func2.instCount == func.instCount && func2.halted;
    } else {
        input->funcCorrect =
            func.halted && func.instCount == input->dynTrace.size();
    }
    return input;
}

} // namespace dynaspam::sim
