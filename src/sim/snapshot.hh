/**
 * @file
 * Simulator snapshots: the shared immutable input of a simulation and
 * the complete mutable state of a paused one.
 *
 * The timing model is oracle-directed, so everything a simulation reads
 * but never writes — the program, the initial data memory, the resolved
 * dynamic trace — lives in one immutable SimInput that can be shared
 * (and is shared, in forked sweeps) by any number of Simulation
 * instances. A Snapshot is then a structured deep copy of the mutable
 * half only: pipeline, caches, controller and (in checked runs)
 * verifier state. Restoring a Snapshot into a Simulation built over the
 * same SimInput and an equal configuration geometry is byte-identical
 * to never having paused: raw StaticInst/DynRecord pointers inside the
 * saved pipeline state stay valid because both sides reference the very
 * same SimInput object (asserted on restore).
 */

#ifndef DYNASPAM_SIM_SNAPSHOT_HH
#define DYNASPAM_SIM_SNAPSHOT_HH

#include <memory>
#include <optional>

#include "check/verifier.hh"
#include "core/controller.hh"
#include "isa/program.hh"
#include "isa/trace.hh"
#include "memory/cache.hh"
#include "memory/functional_mem.hh"
#include "ooo/cpu.hh"

namespace dynaspam::sim
{

/**
 * The immutable input of a simulation: program, pristine initial data
 * memory, the oracle trace of the functional pass, and the functional
 * cross-check verdict. Built once per (program, memory) and shared —
 * the trace points into the program member, so the object is pinned on
 * the heap behind a shared_ptr and never copied or moved.
 */
class SimInput
{
    /** Passkey: locks the public constructor to make(). */
    struct Key
    {
        explicit Key() = default;
    };

  public:
    /** Constructor for make() only (the Key is private); use make(). */
    SimInput(Key, const isa::Program &program,
             const mem::FunctionalMemory &initial_memory)
        : prog(program), initMem(initial_memory), dynTrace(prog)
    {
    }

    /**
     * Run the functional (oracle) pass and package its products.
     * Fatal when the program does not halt. In checked builds the
     * functional cross-check re-executes the program; otherwise the
     * record count stands in (same rule System::run always applied).
     */
    static std::shared_ptr<const SimInput>
    make(const isa::Program &program,
         const mem::FunctionalMemory &initial_memory);

    SimInput(const SimInput &) = delete;
    SimInput &operator=(const SimInput &) = delete;

    const isa::Program &program() const { return prog; }
    const mem::FunctionalMemory &initialMemory() const { return initMem; }
    const isa::DynamicTrace &trace() const { return dynTrace; }
    bool functionallyCorrect() const { return funcCorrect; }

  private:
    isa::Program prog;
    mem::FunctionalMemory initMem;
    isa::DynamicTrace dynTrace;     ///< points at `prog`
    bool funcCorrect = false;
};

/**
 * Complete mutable state of a paused simulation. Restore requires a
 * Simulation over the same SimInput object with the same structural
 * geometry (cache shapes, pipeline parameters, trace length); the
 * DynaSpAM knobs themselves (offload enable, fabric memory
 * speculation, mapper kind, fabric count) may differ, which is what
 * forked sweeps exploit.
 */
struct Snapshot
{
    /** Identity of the input the state was captured over. */
    std::shared_ptr<const SimInput> input;

    ooo::OooCpu::SavedState cpu;
    mem::MemoryHierarchy::SavedState memory;
    /** Present when the saving simulation had a DynaSpAM controller. */
    std::optional<core::DynaSpamController::SavedState> controller;
    /** Present when the saving simulation ran under DYNASPAM_CHECKS. */
    std::optional<check::Verifier::SavedState> verifier;
};

} // namespace dynaspam::sim

#endif // DYNASPAM_SIM_SNAPSHOT_HH
