/**
 * @file
 * Snapshot body (de)serialization. See snapshot_io.hh for the rules.
 *
 * Private nested pipeline types (OooCpu::FrontEndInst, InvocationState,
 * LockstepChecker::CommitEvent, ...) are handled through templates and
 * deduced references: access control applies to *names*, so external
 * code may freely construct and mutate them via emplace_back() and
 * `auto &` as long as it never spells the type. The few classes with no
 * public field access at all (MappingSession, FunctionalMemory) carry
 * their own member serializers.
 */

#include "sim/snapshot_io.hh"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/binio.hh"

namespace dynaspam::sim
{

namespace
{

using binio::Reader;
using binio::Writer;

/** Sorted keys of an unordered map/set, for deterministic encoding. */
template <typename Container>
std::vector<typename Container::key_type>
sortedKeys(const Container &c)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(c.size());
    for (const auto &entry : c) {
        if constexpr (requires { entry.first; })
            keys.push_back(entry.first);
        else
            keys.push_back(entry);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

// --- small vector helpers -------------------------------------------------

void
writeU8Vec(Writer &out, const std::vector<std::uint8_t> &v)
{
    out.u64(v.size());
    out.raw(v.data(), v.size());
}

bool
readU8Vec(Reader &in, std::vector<std::uint8_t> &v)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 1))
        return false;
    v.assign(count, 0);
    in.raw(v.data(), v.size());
    return in.ok();
}

void
writeRegVec(Writer &out, const std::vector<RegIndex> &v)
{
    out.u64(v.size());
    for (RegIndex r : v)
        out.u32(r);
}

bool
readRegVec(Reader &in, std::vector<RegIndex> &v)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 4))
        return false;
    v.clear();
    v.reserve(count);
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        v.push_back(RegIndex(in.u32()));
    return in.ok();
}

template <typename Vec>   // vector/deque of u64-convertible elements
void
writeU64Seq(Writer &out, const Vec &v)
{
    out.u64(v.size());
    for (const auto &e : v)
        out.u64(std::uint64_t(e));
}

template <typename Vec>
bool
readU64Seq(Reader &in, Vec &v)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    v.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        v.push_back(typename Vec::value_type(in.u64()));
    return in.ok();
}

// --- branch predictor / store sets ---------------------------------------

void
writeBpred(Writer &out, const ooo::BranchPredictor::SavedState &s)
{
    writeU8Vec(out, s.localTable);
    writeU8Vec(out, s.globalTable);
    writeU8Vec(out, s.chooserTable);
    out.u64(s.btb.size());
    for (const auto &e : s.btb) {
        out.u32(e.pc);
        out.u32(e.target);
    }
    writeU64Seq(out, s.ras);
    out.u64(s.rasTop);
    out.u64(s.specHistory);
    out.u64(s.archHistory);
    out.u64(s.lookups);
    out.u64(s.mispredicts);
}

bool
readBpred(Reader &in, ooo::BranchPredictor::SavedState &s)
{
    if (!readU8Vec(in, s.localTable) || !readU8Vec(in, s.globalTable) ||
        !readU8Vec(in, s.chooserTable))
        return false;
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    s.btb.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &e = s.btb.emplace_back();
        e.pc = in.u32();
        e.target = in.u32();
    }
    if (!readU64Seq(in, s.ras))
        return false;
    s.rasTop = in.u64();
    s.specHistory = in.u64();
    s.archHistory = in.u64();
    s.lookups = in.u64();
    s.mispredicts = in.u64();
    return in.ok();
}

void
writeStoreSets(Writer &out, const ooo::StoreSetPredictor::SavedState &s)
{
    writeU64Seq(out, s.ssit);
    out.u64(s.lfst.size());
    for (const auto &e : s.lfst) {
        out.u64(e.storeSeq);
        out.u32(e.storePc);
    }
    out.u32(s.nextId);
    out.u64(s.allocations);
    out.u64(s.violations);
}

bool
readStoreSets(Reader &in, ooo::StoreSetPredictor::SavedState &s)
{
    if (!readU64Seq(in, s.ssit))
        return false;
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 12))
        return false;
    s.lfst.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &e = s.lfst.emplace_back();
        e.storeSeq = in.u64();
        e.storePc = in.u32();
    }
    s.nextId = in.u32();
    s.allocations = in.u64();
    s.violations = in.u64();
    return in.ok();
}

// --- caches ---------------------------------------------------------------

void
writeCache(Writer &out, const mem::Cache::SavedState &s)
{
    out.u64(s.lines.size());
    for (const auto &line : s.lines) {
        out.u64(line.tag);
        out.b(line.valid);
        out.b(line.dirty);
        out.u64(line.lastUse);
    }
    out.u64(s.useClock);
    out.u64(s.hits);
    out.u64(s.misses);
    out.u64(s.writebacks);
    out.u64(s.prefetchFills);
}

bool
readCache(Reader &in, mem::Cache::SavedState &s)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 18))
        return false;
    s.lines.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &line = s.lines.emplace_back();
        line.tag = in.u64();
        line.valid = in.b();
        line.dirty = in.b();
        line.lastUse = in.u64();
    }
    s.useClock = in.u64();
    s.hits = in.u64();
    s.misses = in.u64();
    s.writebacks = in.u64();
    s.prefetchFills = in.u64();
    return in.ok();
}

// --- pipeline -------------------------------------------------------------

void
writeRasCp(Writer &out, const ooo::RasCheckpoint &cp)
{
    out.u64(cp.top);
    out.u32(cp.tos);
}

void
readRasCp(Reader &in, ooo::RasCheckpoint &cp)
{
    cp.top = in.u64();
    cp.tos = in.u32();
}

template <typename FE>   // OooCpu::FrontEndInst (private; deduced)
void
writeFrontEndInst(Writer &out, const FE &fe)
{
    out.u64(fe.traceIdx);
    out.u64(fe.readyAtRename);
    out.b(fe.mispredicted);
    out.b(fe.predictedTaken);
    writeRasCp(out, fe.rasCp);
    out.b(fe.mappingInst);
    out.b(fe.firstMappingInst);
    out.b(fe.lastMappingInst);
    out.b(fe.isInvocation);
    out.u32(fe.numRecords);
    writeRegVec(out, fe.liveIns);
    writeRegVec(out, fe.liveOuts);
    out.b(fe.hasStores);
}

template <typename FE>
bool
readFrontEndInst(Reader &in, FE &fe)
{
    fe.traceIdx = in.u64();
    fe.readyAtRename = in.u64();
    fe.mispredicted = in.b();
    fe.predictedTaken = in.b();
    readRasCp(in, fe.rasCp);
    fe.mappingInst = in.b();
    fe.firstMappingInst = in.b();
    fe.lastMappingInst = in.b();
    fe.isInvocation = in.b();
    fe.numRecords = in.u32();
    return readRegVec(in, fe.liveIns) && readRegVec(in, fe.liveOuts) &&
           ((fe.hasStores = in.b()), in.ok());
}

void
writeDynInst(Writer &out, const ooo::DynInst &di)
{
    // The inst/record pointers are derived state: re-bound on load from
    // traceIdx + kind against the SimInput.
    out.u64(di.seq);
    out.u64(di.traceIdx);
    out.u32(di.pc);
    out.u8(std::uint8_t(di.kind));
    out.u32(di.traceLen);
    out.u32(di.invocationId);
    out.u32(di.destPhys);
    out.u32(di.prevPhys);
    out.u32(di.src1Phys);
    out.u32(di.src2Phys);
    out.u64(di.fetchCycle);
    out.u64(di.dispatchCycle);
    out.u64(di.issueCycle);
    out.u64(di.completeCycle);
    out.b(di.inIq);
    out.u8(di.waitCount);
    out.b(di.issued);
    out.b(di.completed);
    out.b(di.mispredicted);
    out.b(di.predictedTaken);
    writeRasCp(out, di.rasCp);
    out.b(di.addrReady);
    out.u64(di.dependsOnStore);
    out.u64(di.forwardedFromSeq);
    out.b(di.mappingInst);
    out.b(di.lastMappingInst);
}

bool
readDynInst(Reader &in, const isa::DynamicTrace &trace, ooo::DynInst &di)
{
    di.seq = in.u64();
    di.traceIdx = in.u64();
    di.pc = in.u32();
    std::uint8_t kind = in.u8();
    if (kind > std::uint8_t(ooo::RobKind::TraceInvoke)) {
        in.fail();
        return false;
    }
    di.kind = ooo::RobKind(kind);
    di.traceLen = in.u32();
    di.invocationId = in.u32();
    di.destPhys = RegIndex(in.u32());
    di.prevPhys = RegIndex(in.u32());
    di.src1Phys = RegIndex(in.u32());
    di.src2Phys = RegIndex(in.u32());
    di.fetchCycle = in.u64();
    di.dispatchCycle = in.u64();
    di.issueCycle = in.u64();
    di.completeCycle = in.u64();
    di.inIq = in.b();
    di.waitCount = in.u8();
    di.issued = in.b();
    di.completed = in.b();
    di.mispredicted = in.b();
    di.predictedTaken = in.b();
    readRasCp(in, di.rasCp);
    di.addrReady = in.b();
    di.dependsOnStore = in.u64();
    di.forwardedFromSeq = in.u64();
    di.mappingInst = in.b();
    di.lastMappingInst = in.b();
    if (!in.ok())
        return false;

    // Rebind the derived pointers: record always references the oracle
    // trace slot; inst only for real instructions (TraceInvoke pseudo-ops
    // carry no static instruction).
    if (di.traceIdx >= trace.size()) {
        in.fail();
        return false;
    }
    di.record = &trace[di.traceIdx];
    if (di.kind == ooo::RobKind::Inst) {
        if (di.record->pc >= trace.program().size()) {
            in.fail();
            return false;
        }
        di.inst = &trace.program().inst(di.record->pc);
    } else {
        di.inst = nullptr;
    }
    return true;
}

template <typename Res>   // ooo::InvocationResult (public, but keep uniform)
void
writeInvocationResult(Writer &out, const Res &res)
{
    out.b(res.squashed);
    out.u64(res.completeCycle);
    writeU64Seq(out, res.liveOutReady);
    out.u64(res.storeEvents.size());
    for (const auto &[addr, pc] : res.storeEvents) {
        out.u64(addr);
        out.u32(pc);
    }
}

template <typename Res>
bool
readInvocationResult(Reader &in, Res &res)
{
    res.squashed = in.b();
    res.completeCycle = in.u64();
    if (!readU64Seq(in, res.liveOutReady))
        return false;
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 12))
        return false;
    res.storeEvents.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        Addr addr = in.u64();
        InstAddr pc = in.u32();
        res.storeEvents.emplace_back(addr, pc);
    }
    return in.ok();
}

void
writePipelineStats(Writer &out, const ooo::PipelineStats &s)
{
    out.u64(s.cycles);
    out.u64(s.fetchedInsts);
    out.u64(s.renamedInsts);
    out.u64(s.dispatchedInsts);
    out.u64(s.issuedInsts);
    out.u64(s.committedInsts);
    out.u64(s.committedOnHost);
    out.u64(s.squashedInsts);
    out.u64(s.branchMispredicts);
    out.u64(s.memOrderViolations);
    out.u64(s.regReads);
    out.u64(s.regWrites);
    out.u64(s.bypasses);
    out.u64(s.iqWakeups);
    for (unsigned i = 0; i < unsigned(isa::FuType::NUM_FU_TYPES); i++)
        out.u64(s.fuOps[i]);
    out.u64(s.loadForwards);
    out.u64(s.icacheAccesses);
    out.u64(s.dcacheAccesses);
    out.u64(s.robWrites);
    out.u64(s.robReads);
    out.u64(s.invocationsCommitted);
    out.u64(s.invocationsSquashed);
    out.u64(s.mappingInstsExecuted);
}

void
readPipelineStats(Reader &in, ooo::PipelineStats &s)
{
    s.cycles = in.u64();
    s.fetchedInsts = in.u64();
    s.renamedInsts = in.u64();
    s.dispatchedInsts = in.u64();
    s.issuedInsts = in.u64();
    s.committedInsts = in.u64();
    s.committedOnHost = in.u64();
    s.squashedInsts = in.u64();
    s.branchMispredicts = in.u64();
    s.memOrderViolations = in.u64();
    s.regReads = in.u64();
    s.regWrites = in.u64();
    s.bypasses = in.u64();
    s.iqWakeups = in.u64();
    for (unsigned i = 0; i < unsigned(isa::FuType::NUM_FU_TYPES); i++)
        s.fuOps[i] = in.u64();
    s.loadForwards = in.u64();
    s.icacheAccesses = in.u64();
    s.dcacheAccesses = in.u64();
    s.robWrites = in.u64();
    s.robReads = in.u64();
    s.invocationsCommitted = in.u64();
    s.invocationsSquashed = in.u64();
    s.mappingInstsExecuted = in.u64();
}

/** LsqIndex (unordered_map<Addr, vector<SeqNum>>), sorted by line. */
template <typename Map>
void
writeLineIndex(Writer &out, const Map &index)
{
    out.u64(index.size());
    for (Addr line : sortedKeys(index)) {
        out.u64(line);
        writeU64Seq(out, index.at(line));
    }
}

template <typename Map>
bool
readLineIndex(Reader &in, Map &index)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 16))
        return false;
    index.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        Addr line = in.u64();
        if (!readU64Seq(in, index[line]))
            return false;
    }
    return in.ok();
}

void
writeCpu(Writer &out, const ooo::OooCpu::SavedState &s)
{
    writeBpred(out, s.bpred);
    writeStoreSets(out, s.storeSets);
    out.b(s.activeIsDefault);
    out.b(s.pendingIsNull);
    out.u64(s.curCycle);
    out.u64(s.nextSeq);
    out.u64(s.fetchIdx);
    out.u64(s.commitIdx);
    out.u64(s.fetchResumeCycle);
    out.b(s.fetchBlockedOnBranch);
    out.u64(s.lastFetchBlock);

    out.u64(s.frontEnd.size());
    for (const auto &fe : s.frontEnd)
        writeFrontEndInst(out, fe);

    writeRegVec(out, s.rat);
    writeRegVec(out, s.freeList);
    writeU64Seq(out, s.physReadyCycle);

    out.u64(s.rob.size());
    for (const auto &di : s.rob)
        writeDynInst(out, di);
    writeU64Seq(out, s.iq);
    writeU64Seq(out, s.loadQueue);
    writeU64Seq(out, s.storeQueue);

    out.u64(s.invocations.size());
    for (const auto &[seq, inv] : s.invocations) {
        out.u64(seq);
        writeRegVec(out, inv.liveInPhys);
        writeRegVec(out, inv.liveOutArch);
        writeRegVec(out, inv.liveOutPhys);
        writeRegVec(out, inv.liveOutPrevPhys);
        out.b(inv.hasStores);
        out.b(inv.resolved);
        writeInvocationResult(out, inv.result);
    }

    out.u64(s.readyByType.size());
    for (const auto &v : s.readyByType)
        writeU64Seq(out, v);
    out.u64(s.pendingByType.size());
    for (const auto &v : s.pendingByType) {
        out.u64(v.size());
        for (const auto &w : v) {
            out.u64(w.readyCycle);
            out.u64(w.seq);
        }
    }
    out.u64(s.regConsumers.size());
    for (const auto &v : s.regConsumers)
        writeU64Seq(out, v);
    out.u64(s.readyCount);
    out.u64(s.pendingCount);

    writeLineIndex(out, s.storesByLine);
    writeLineIndex(out, s.loadsByLine);
    out.u64(s.sqBoundCycle);
    out.u64(s.sqBound);
    out.u64(s.storeBuffer.size());
    for (const auto &rs : s.storeBuffer) {
        out.u64(rs.addr);
        out.u64(rs.dataReady);
        out.u64(rs.seq);
    }
    out.u64(s.retiredByLine.size());
    for (Addr line : sortedKeys(s.retiredByLine)) {
        out.u64(line);
        const auto &vec = s.retiredByLine.at(line);
        out.u64(vec.size());
        for (const auto &rs : vec) {
            out.u64(rs.addr);
            out.u64(rs.dataReady);
            out.u64(rs.seq);
        }
    }

    out.u64(s.fuBusyUntil.size());
    for (const auto &v : s.fuBusyUntil)
        writeU64Seq(out, v);

    out.b(s.mappingActive);
    out.u64(s.mappingTraceIdx);
    out.u32(s.mappingFetchRemaining);
    out.u32(s.mappingDispatchRemaining);
    out.u32(s.mappingIssueRemaining);
    out.u32(s.mappingCommitRemaining);
    writePipelineStats(out, s.pstats);
}

bool
readCpu(Reader &in, const isa::DynamicTrace &trace,
        ooo::OooCpu::SavedState &s)
{
    if (!readBpred(in, s.bpred) || !readStoreSets(in, s.storeSets))
        return false;
    s.activeIsDefault = in.b();
    s.pendingIsNull = in.b();
    s.curCycle = in.u64();
    s.nextSeq = in.u64();
    s.fetchIdx = in.u64();
    s.commitIdx = in.u64();
    s.fetchResumeCycle = in.u64();
    s.fetchBlockedOnBranch = in.b();
    s.lastFetchBlock = in.u64();

    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 32))
        return false;
    s.frontEnd.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &fe = s.frontEnd.emplace_back();
        if (!readFrontEndInst(in, fe))
            return false;
    }

    if (!readRegVec(in, s.rat) || !readRegVec(in, s.freeList) ||
        !readU64Seq(in, s.physReadyCycle))
        return false;

    count = in.u64();
    if (!in.checkCount(count, 64))
        return false;
    s.rob.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &di = s.rob.emplace_back();
        if (!readDynInst(in, trace, di))
            return false;
    }
    if (!readU64Seq(in, s.iq) || !readU64Seq(in, s.loadQueue) ||
        !readU64Seq(in, s.storeQueue))
        return false;

    count = in.u64();
    if (!in.checkCount(count, 16))
        return false;
    while (!s.invocations.empty())
        s.invocations.erase(s.invocations.begin()->first);
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        SeqNum seq = in.u64();
        s.invocations.emplace(seq, {});
        auto *inv = s.invocations.find(seq);
        if (!readRegVec(in, inv->liveInPhys) ||
            !readRegVec(in, inv->liveOutArch) ||
            !readRegVec(in, inv->liveOutPhys) ||
            !readRegVec(in, inv->liveOutPrevPhys))
            return false;
        inv->hasStores = in.b();
        inv->resolved = in.b();
        if (!readInvocationResult(in, inv->result))
            return false;
    }

    count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    s.readyByType.assign(count, {});
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        if (!readU64Seq(in, s.readyByType[i]))
            return false;
    count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    s.pendingByType.assign(count, {});
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        std::uint64_t inner = in.u64();
        if (!in.checkCount(inner, 16))
            return false;
        for (std::uint64_t j = 0; j < inner && in.ok(); j++) {
            auto &w = s.pendingByType[i].emplace_back();
            w.readyCycle = in.u64();
            w.seq = in.u64();
        }
    }
    count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    s.regConsumers.assign(count, {});
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        if (!readU64Seq(in, s.regConsumers[i]))
            return false;
    s.readyCount = in.u64();
    s.pendingCount = in.u64();

    if (!readLineIndex(in, s.storesByLine) ||
        !readLineIndex(in, s.loadsByLine))
        return false;
    s.sqBoundCycle = in.u64();
    s.sqBound = in.u64();
    count = in.u64();
    if (!in.checkCount(count, 24))
        return false;
    s.storeBuffer.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &rs = s.storeBuffer.emplace_back();
        rs.addr = in.u64();
        rs.dataReady = in.u64();
        rs.seq = in.u64();
    }
    count = in.u64();
    if (!in.checkCount(count, 16))
        return false;
    s.retiredByLine.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        Addr line = in.u64();
        std::uint64_t inner = in.u64();
        if (!in.checkCount(inner, 24))
            return false;
        auto &vec = s.retiredByLine[line];
        for (std::uint64_t j = 0; j < inner && in.ok(); j++) {
            auto &rs = vec.emplace_back();
            rs.addr = in.u64();
            rs.dataReady = in.u64();
            rs.seq = in.u64();
        }
    }

    count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    s.fuBusyUntil.assign(count, {});
    for (std::uint64_t i = 0; i < count && in.ok(); i++)
        if (!readU64Seq(in, s.fuBusyUntil[i]))
            return false;

    s.mappingActive = in.b();
    s.mappingTraceIdx = in.u64();
    s.mappingFetchRemaining = in.u32();
    s.mappingDispatchRemaining = in.u32();
    s.mappingIssueRemaining = in.u32();
    s.mappingCommitRemaining = in.u32();
    readPipelineStats(in, s.pstats);
    return in.ok();
}

// --- fabric configs (deduplicated pool) -----------------------------------

void
writeRoute(Writer &out, const fabric::OperandRoute &route)
{
    out.u8(std::uint8_t(route.kind));
    out.u32(route.producerIdx);
    out.u32(route.liveInIdx);
    out.u32(route.hops);
}

bool
readRoute(Reader &in, fabric::OperandRoute &route)
{
    std::uint8_t kind = in.u8();
    if (kind > std::uint8_t(fabric::OperandRoute::Kind::Routed)) {
        in.fail();
        return false;
    }
    route.kind = fabric::OperandRoute::Kind(kind);
    route.producerIdx = std::uint16_t(in.u32());
    route.liveInIdx = std::uint16_t(in.u32());
    route.hops = std::uint16_t(in.u32());
    return in.ok();
}

void
writeConfigBody(Writer &out, const fabric::FabricConfig &config)
{
    out.u64(config.key);
    out.u64(config.mappedFromIdx);
    out.u32(config.numRecords);
    out.u64(config.insts.size());
    for (const auto &mi : config.insts) {
        out.u32(mi.pc);
        out.u8(std::uint8_t(mi.op));
        out.u8(mi.pe.stripe);
        out.u8(mi.pe.index);
        writeRoute(out, mi.src1);
        writeRoute(out, mi.src2);
        out.u32(mi.destArch);
        out.b(mi.isLoad);
        out.b(mi.isStore);
        out.b(mi.isBranch);
        out.b(mi.expectedTaken);
    }
    writeRegVec(out, config.liveIns);
    out.u64(config.liveOuts.size());
    for (const auto &lo : config.liveOuts) {
        out.u32(lo.arch);
        out.u32(lo.producerIdx);
    }
    out.b(config.hasStores);
    out.u8(config.stripesUsed);
}

bool
readConfigBody(Reader &in, fabric::FabricConfig &config)
{
    config.key = in.u64();
    config.mappedFromIdx = in.u64();
    config.numRecords = in.u32();
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 37))
        return false;
    config.insts.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &mi = config.insts.emplace_back();
        mi.pc = in.u32();
        std::uint8_t op = in.u8();
        if (op >= std::uint8_t(isa::Opcode::NUM_OPCODES)) {
            in.fail();
            return false;
        }
        mi.op = isa::Opcode(op);
        mi.pe.stripe = in.u8();
        mi.pe.index = in.u8();
        if (!readRoute(in, mi.src1) || !readRoute(in, mi.src2))
            return false;
        mi.destArch = RegIndex(in.u32());
        mi.isLoad = in.b();
        mi.isStore = in.b();
        mi.isBranch = in.b();
        mi.expectedTaken = in.b();
    }
    if (!readRegVec(in, config.liveIns))
        return false;
    count = in.u64();
    if (!in.checkCount(count, 8))
        return false;
    config.liveOuts.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &lo = config.liveOuts.emplace_back();
        lo.arch = RegIndex(in.u32());
        lo.producerIdx = std::uint16_t(in.u32());
    }
    config.hasStores = in.b();
    config.stripesUsed = in.u8();
    return in.ok();
}

/**
 * Deduplicating writer for shared FabricConfig pointers. A config
 * referenced from several places (ConfigCache entry, live fabric
 * snapshot, pending invocation) is written once; later references
 * carry only its pool id, and the reader reconstructs the sharing.
 * Id 0 is the null pointer.
 */
class ConfigPoolWriter
{
  public:
    void
    write(Writer &out,
          const std::shared_ptr<const fabric::FabricConfig> &config)
    {
        if (!config) {
            out.u32(0);
            return;
        }
        auto it = ids.find(config.get());
        if (it != ids.end()) {
            out.u32(it->second);
            return;
        }
        std::uint32_t id = std::uint32_t(ids.size()) + 1;
        ids.emplace(config.get(), id);
        out.u32(id);
        writeConfigBody(out, *config);
    }

  private:
    std::map<const fabric::FabricConfig *, std::uint32_t> ids;
};

/** Reader-side pool mirroring ConfigPoolWriter's id assignment. */
class ConfigPoolReader
{
  public:
    bool
    read(Reader &in,
         std::shared_ptr<const fabric::FabricConfig> &config)
    {
        std::uint32_t id = in.u32();
        if (id == 0) {
            config = nullptr;
            return in.ok();
        }
        if (std::size_t(id) <= pool.size()) {
            config = pool[id - 1];
            return true;
        }
        if (std::size_t(id) != pool.size() + 1) {
            in.fail();  // ids are assigned densely in write order
            return false;
        }
        auto fresh = std::make_shared<fabric::FabricConfig>();
        if (!readConfigBody(in, *fresh))
            return false;
        pool.push_back(fresh);
        config = std::move(fresh);
        return true;
    }

  private:
    std::vector<std::shared_ptr<const fabric::FabricConfig>> pool;
};

// --- controller -----------------------------------------------------------

void
writeFabricSnapshot(Writer &out, ConfigPoolWriter &pool,
                    const fabric::Fabric::Snapshot &snap)
{
    pool.write(out, snap.config);
    out.u64(snap.configReadyCycle);
    out.u64(snap.lastUse);
    writeU64Seq(out, snap.prevInstComplete);
    writeU64Seq(out, snap.prevLiveOutInternal);
    out.u64(snap.prevTraceEndIdx);
    writeU64Seq(out, snap.inflightWindow);
    out.u64(snap.recentStores.size());
    for (const auto &rs : snap.recentStores) {
        out.u64(rs.addr);
        out.u64(rs.completeCycle);
        out.u32(rs.pc);
        out.u64(rs.seq);
    }
    out.u64(snap.lastMemCompletePersist);
    out.u64(snap.invocationsOnConfig);
}

bool
readFabricSnapshot(Reader &in, ConfigPoolReader &pool,
                   fabric::Fabric::Snapshot &snap)
{
    if (!pool.read(in, snap.config))
        return false;
    snap.configReadyCycle = in.u64();
    snap.lastUse = in.u64();
    if (!readU64Seq(in, snap.prevInstComplete) ||
        !readU64Seq(in, snap.prevLiveOutInternal))
        return false;
    snap.prevTraceEndIdx = in.u64();
    if (!readU64Seq(in, snap.inflightWindow))
        return false;
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 28))
        return false;
    snap.recentStores.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &rs = snap.recentStores.emplace_back();
        rs.addr = in.u64();
        rs.completeCycle = in.u64();
        rs.pc = in.u32();
        rs.seq = in.u64();
    }
    snap.lastMemCompletePersist = in.u64();
    snap.invocationsOnConfig = in.u64();
    return in.ok();
}

void
writeFabricStats(Writer &out, const fabric::FabricStats &s)
{
    out.u64(s.invocations);
    out.u64(s.squashedInvocations);
    out.u64(s.peOps);
    out.u64(s.datapathHops);
    out.u64(s.fifoPushes);
    out.u64(s.busTransfers);
    out.u64(s.dcacheAccesses);
    out.u64(s.reconfigurations);
    out.u64(s.memViolations);
    out.u64(s.activeStripeInvocations);
}

void
readFabricStats(Reader &in, fabric::FabricStats &s)
{
    s.invocations = in.u64();
    s.squashedInvocations = in.u64();
    s.peOps = in.u64();
    s.datapathHops = in.u64();
    s.fifoPushes = in.u64();
    s.busTransfers = in.u64();
    s.dcacheAccesses = in.u64();
    s.reconfigurations = in.u64();
    s.memViolations = in.u64();
    s.activeStripeInvocations = in.u64();
}

void
writeDynaSpamStats(Writer &out, const core::DynaSpamStats &s)
{
    out.u64(s.tracesConsidered);
    out.u64(s.mappingsStarted);
    out.u64(s.mappingsCompleted);
    out.u64(s.mappingsAborted);
    out.u64(s.mappingsDiscarded);
    out.u64(s.offloadsIssued);
    out.u64(s.invocationsCommitted);
    out.u64(s.invocationsSquashed);
    out.u64(s.invocationsCollateral);
    out.u64(s.hotNotMapped);
    out.u64(s.offloadBelowThreshold);
    out.u64(s.offloadSuppressed);
    out.u64(s.instsOffloaded);
    out.u64(s.reconfigurations);
    out.u64(s.distinctMappedTraces);
    out.u64(s.distinctOffloadedTraces);
    out.u64(s.lifetimeSum);
    out.u64(s.lifetimeCount);
}

void
readDynaSpamStats(Reader &in, core::DynaSpamStats &s)
{
    s.tracesConsidered = in.u64();
    s.mappingsStarted = in.u64();
    s.mappingsCompleted = in.u64();
    s.mappingsAborted = in.u64();
    s.mappingsDiscarded = in.u64();
    s.offloadsIssued = in.u64();
    s.invocationsCommitted = in.u64();
    s.invocationsSquashed = in.u64();
    s.invocationsCollateral = in.u64();
    s.hotNotMapped = in.u64();
    s.offloadBelowThreshold = in.u64();
    s.offloadSuppressed = in.u64();
    s.instsOffloaded = in.u64();
    s.reconfigurations = in.u64();
    s.distinctMappedTraces = in.u64();
    s.distinctOffloadedTraces = in.u64();
    s.lifetimeSum = in.u64();
    s.lifetimeCount = in.u64();
}

void
writeController(Writer &out, ConfigPoolWriter &pool,
                const core::DynaSpamController::SavedState &s)
{
    // T-Cache.
    out.u64(s.tcache.entries.size());
    for (const auto &e : s.tcache.entries) {
        out.u64(e.key);
        out.u32(e.counter);
        out.b(e.hot);
        out.b(e.valid);
    }
    for (const auto &rec : s.tcache.history) {
        out.u32(rec.pc);
        out.b(rec.taken);
    }
    out.u32(s.tcache.historyCount);
    out.u64(s.tcache.commitCount);
    out.u64(s.tcache.trainings);
    out.u64(s.tcache.clears);

    // Config cache.
    out.u64(s.configCache.entries.size());
    for (const auto &e : s.configCache.entries) {
        out.b(e.valid);
        out.u64(e.key);
        out.u32(e.counter);
        pool.write(out, e.config);
    }
    out.u64(s.configCache.lookups);
    out.u64(s.configCache.insertions);
    out.u64(s.configCache.evictions);

    out.u64(s.fabrics.size());
    for (const auto &f : s.fabrics) {
        writeFabricSnapshot(out, pool, f.live);
        out.u64(f.snapshots.size());
        for (const auto &[seq, snap] : f.snapshots) {
            out.u64(seq);
            writeFabricSnapshot(out, pool, snap);
        }
        writeFabricStats(out, f.stats);
    }

    out.b(s.session.has_value());
    if (s.session)
        s.session->serialize(out);

    out.b(s.policy.armed);
    out.u64(s.policy.baseIdx);
    out.u64(s.policy.drainUntil);
    out.u64(s.policy.lastNow);
    out.b(s.policy.advancePending);
    out.b(s.policy.selectedThisCycle);
    out.b(s.policy.vetoedReadyInst);

    out.b(s.mappingInProgress);
    out.u64(s.mappingKey);
    out.u64(s.lastMappingStart);

    out.u64(s.pending.size());
    for (SeqNum seq : sortedKeys(s.pending)) {
        const auto &p = s.pending.at(seq);
        out.u64(seq);
        pool.write(out, p.config);
        out.u64(p.key);
        out.u32(p.numRecords);
        out.i64(p.startedOnIdx);
    }

    writeU64Seq(out, sortedKeys(s.suppressed));
    writeU64Seq(out, sortedKeys(s.mappedKeys));
    writeU64Seq(out, sortedKeys(s.offloadedKeys));
    writeU64Seq(out, sortedKeys(s.failedKeys));

    writeDynaSpamStats(out, s.dstats);
}

bool
readController(Reader &in, ConfigPoolReader &pool,
               core::DynaSpamController::SavedState &s)
{
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 14))
        return false;
    s.tcache.entries.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &e = s.tcache.entries.emplace_back();
        e.key = in.u64();
        e.counter = in.u32();
        e.hot = in.b();
        e.valid = in.b();
    }
    for (auto &rec : s.tcache.history) {
        rec.pc = in.u32();
        rec.taken = in.b();
    }
    s.tcache.historyCount = in.u32();
    s.tcache.commitCount = in.u64();
    s.tcache.trainings = in.u64();
    s.tcache.clears = in.u64();

    count = in.u64();
    if (!in.checkCount(count, 17))
        return false;
    s.configCache.entries.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &e = s.configCache.entries.emplace_back();
        e.valid = in.b();
        e.key = in.u64();
        e.counter = in.u32();
        if (!pool.read(in, e.config))
            return false;
    }
    s.configCache.lookups = in.u64();
    s.configCache.insertions = in.u64();
    s.configCache.evictions = in.u64();

    count = in.u64();
    if (!in.checkCount(count, 64))
        return false;
    s.fabrics.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &f = s.fabrics.emplace_back();
        if (!readFabricSnapshot(in, pool, f.live))
            return false;
        std::uint64_t snaps = in.u64();
        if (!in.checkCount(snaps, 64))
            return false;
        for (std::uint64_t j = 0; j < snaps && in.ok(); j++) {
            SeqNum seq = in.u64();
            if (!readFabricSnapshot(in, pool, f.snapshots[seq]))
                return false;
        }
        readFabricStats(in, f.stats);
    }

    if (in.b()) {
        s.session.emplace(core::MappingSession::deserialize(in));
        if (!in.ok())
            return false;
    } else {
        s.session.reset();
    }

    s.policy.armed = in.b();
    s.policy.baseIdx = in.u64();
    s.policy.drainUntil = in.u64();
    s.policy.lastNow = in.u64();
    s.policy.advancePending = in.b();
    s.policy.selectedThisCycle = in.b();
    s.policy.vetoedReadyInst = in.b();

    s.mappingInProgress = in.b();
    s.mappingKey = in.u64();
    s.lastMappingStart = in.u64();

    count = in.u64();
    if (!in.checkCount(count, 32))
        return false;
    s.pending.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        SeqNum seq = in.u64();
        auto &p = s.pending[seq];
        if (!pool.read(in, p.config))
            return false;
        p.key = in.u64();
        p.numRecords = in.u32();
        std::int64_t started = in.i64();
        if (started < -1 || started > (1 << 20)) {
            in.fail();
            return false;
        }
        p.startedOnIdx = int(started);
    }

    std::vector<std::uint64_t> keys;
    if (!readU64Seq(in, keys))
        return false;
    s.suppressed = {keys.begin(), keys.end()};
    if (!readU64Seq(in, keys))
        return false;
    s.mappedKeys = {keys.begin(), keys.end()};
    if (!readU64Seq(in, keys))
        return false;
    s.offloadedKeys = {keys.begin(), keys.end()};
    if (!readU64Seq(in, keys))
        return false;
    s.failedKeys = {keys.begin(), keys.end()};

    readDynaSpamStats(in, s.dstats);
    return in.ok();
}

// --- verifier -------------------------------------------------------------

void
writeVerifier(Writer &out, const check::Verifier::SavedState &s)
{
    s.lockstep.golden.mem.serialize(out);
    for (std::uint64_t reg : s.lockstep.golden.regs)
        out.u64(reg);
    out.u32(s.lockstep.golden.curPc);
    out.b(s.lockstep.golden.isHalted);
    out.u64(s.lockstep.nextIdx);
    out.u64(s.lockstep.checked);
    out.b(s.lockstep.dead);
    out.u64(s.lockstep.window.size());
    for (const auto &ev : s.lockstep.window) {
        out.u64(ev.idx);
        out.u32(ev.pc);
        out.b(ev.viaFabric);
        out.u64(ev.cycle);
    }
    out.u64(s.auditPasses);
    out.u64(s.structurePasses);
}

bool
readVerifier(Reader &in, check::Verifier::SavedState &s)
{
    s.lockstep.golden.mem.deserialize(in);
    for (std::uint64_t &reg : s.lockstep.golden.regs)
        reg = in.u64();
    s.lockstep.golden.curPc = in.u32();
    s.lockstep.golden.isHalted = in.b();
    s.lockstep.nextIdx = in.u64();
    s.lockstep.checked = in.u64();
    s.lockstep.dead = in.b();
    std::uint64_t count = in.u64();
    if (!in.checkCount(count, 21))
        return false;
    s.lockstep.window.clear();
    for (std::uint64_t i = 0; i < count && in.ok(); i++) {
        auto &ev = s.lockstep.window.emplace_back();
        ev.idx = in.u64();
        ev.pc = in.u32();
        ev.viaFabric = in.b();
        ev.cycle = in.u64();
    }
    s.auditPasses = in.u64();
    s.structurePasses = in.u64();
    return in.ok();
}

} // namespace

std::uint64_t
simInputIdentityHash(const SimInput &input)
{
    std::uint64_t h = bits::FNV1A_OFFSET;
    auto fold64 = [&h](std::uint64_t value) {
        for (unsigned shift = 0; shift < 64; shift += 8)
            h = bits::fnv1aStep(h,
                                std::uint8_t((value >> shift) & 0xff));
    };

    const isa::Program &prog = input.program();
    h = bits::fnv1a(prog.name().data(), prog.name().size(), h);
    fold64(prog.size());
    for (const auto &inst : prog.code()) {
        h = bits::fnv1aStep(h, std::uint8_t(inst.op));
        fold64(inst.dest);
        fold64(inst.src1);
        fold64(inst.src2);
        fold64(std::uint64_t(inst.imm));
    }

    h = input.initialMemory().contentHash(h);

    const isa::DynamicTrace &trace = input.trace();
    fold64(trace.size());
    for (SeqNum i = 0; i < trace.size(); i++) {
        const isa::DynRecord &rec = trace[i];
        fold64(rec.pc);
        fold64(rec.nextPc);
        fold64(rec.effAddr);
        h = bits::fnv1aStep(h, rec.taken ? 1 : 0);
    }

    h = bits::fnv1aStep(h, input.functionallyCorrect() ? 1 : 0);
    return h;
}

void
serializeSnapshot(const Snapshot &snap, std::string &out)
{
    Writer w;
    ConfigPoolWriter pool;
    writeCpu(w, snap.cpu);
    writeCache(w, snap.memory.l2);
    writeCache(w, snap.memory.l1i);
    writeCache(w, snap.memory.l1d);
    w.b(snap.controller.has_value());
    if (snap.controller)
        writeController(w, pool, *snap.controller);
    w.b(snap.verifier.has_value());
    if (snap.verifier)
        writeVerifier(w, *snap.verifier);
    out = w.take();
}

bool
deserializeSnapshot(const std::string &bytes,
                    std::shared_ptr<const SimInput> input,
                    Snapshot &snap)
{
    if (!input)
        return false;
    Reader in(bytes.data(), bytes.size());
    ConfigPoolReader pool;
    snap.input = std::move(input);
    if (!readCpu(in, snap.input->trace(), snap.cpu))
        return false;
    if (!readCache(in, snap.memory.l2) || !readCache(in, snap.memory.l1i) ||
        !readCache(in, snap.memory.l1d))
        return false;
    if (in.b()) {
        snap.controller.emplace();
        if (!readController(in, pool, *snap.controller))
            return false;
    } else {
        snap.controller.reset();
    }
    if (in.b()) {
        snap.verifier.emplace();
        if (!readVerifier(in, *snap.verifier))
            return false;
    } else {
        snap.verifier.reset();
    }
    // The whole body must be consumed: trailing garbage means the file
    // was framed for a different encoding.
    return in.ok() && in.remaining() == 0;
}

} // namespace dynaspam::sim
