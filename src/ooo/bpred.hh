/**
 * @file
 * Tournament branch predictor with BTB and return-address stack,
 * configured per the paper's Table 4 (4K-entry BTB, 16-entry RAS).
 *
 * Direction prediction combines a local 2-bit-counter table with a gshare
 * global predictor through a chooser table. The predictor also exposes its
 * *speculative* view of the next branches along a predicted path, which the
 * DynaSpAM fetch stage uses to build T-Cache indices (Section 3.1).
 */

#ifndef DYNASPAM_OOO_BPRED_HH
#define DYNASPAM_OOO_BPRED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace dynaspam::ooo
{

/** Configuration of the tournament predictor. */
struct BPredParams
{
    std::size_t localEntries = 2048;    ///< local 2-bit counter table
    std::size_t globalEntries = 4096;   ///< gshare table
    std::size_t chooserEntries = 4096;  ///< tournament chooser
    unsigned historyBits = 12;          ///< global history length
    std::size_t btbEntries = 4096;      ///< branch target buffer
    std::size_t rasEntries = 16;        ///< return address stack
};

/**
 * Snapshot of the return-address stack taken before a prediction, so a
 * squash can undo the speculative pushes/pops of the discarded path.
 * Checkpointing only (depth, top value) matches real TOS-checkpoint
 * hardware: a pop-then-repush sequence that rotated entries out through
 * overflow is not fully reversible, which is the accepted approximation
 * (the stack below the top is usually untouched).
 */
struct RasCheckpoint
{
    std::size_t top = 0;    ///< valid-entry count at checkpoint time
    InstAddr tos = 0;       ///< value on top (0 when the stack was empty)

    bool operator==(const RasCheckpoint &) const = default;
};

/** Outcome of a branch prediction. */
struct BPrediction
{
    bool taken = false;             ///< predicted direction
    bool targetKnown = false;       ///< BTB (or RAS) supplied a target
    InstAddr target = 0;            ///< predicted target when targetKnown
};

/**
 * Tournament predictor: local + gshare + chooser, with BTB and RAS.
 *
 * The predictor is consulted at fetch and trained at branch resolution.
 * Unconditional direct jumps/calls predict taken; their target is learned
 * through the BTB like any other branch. RET pops the RAS.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BPredParams &params = BPredParams{});

    /**
     * Predict a control instruction at @p pc.
     * Updates speculative history and the RAS.
     * @param pc static instruction index of the branch
     * @param inst the control instruction
     * @return predicted direction and target
     */
    BPrediction predict(InstAddr pc, const isa::StaticInst &inst);

    /**
     * Pure lookup used by DynaSpAM's fetch stage to peek the predictions
     * for upcoming branches without perturbing any predictor state.
     */
    BPrediction peek(InstAddr pc, const isa::StaticInst &inst) const;

    /**
     * Like peek(), but predicting a conditional branch with an explicit
     * global history, so a trace walker can simulate the history shifts
     * of the branches it passes. RET lookups report no target (the walker
     * cannot track the speculative RAS).
     */
    BPrediction peekWithHistory(InstAddr pc, const isa::StaticInst &inst,
                                std::uint64_t history) const;

    /** Current speculative global history (walker seed). */
    std::uint64_t speculativeHistory() const { return specHistory; }

    /** Snapshot the RAS. The fetch stage captures one per instruction,
     *  *before* predict() runs for it, so a squash at that instruction
     *  can roll the stack back past its own push/pop. */
    RasCheckpoint
    rasCheckpoint() const
    {
        return {rasTop, rasTop ? ras[rasTop - 1] : 0};
    }

    /** Roll the RAS back to @p cp (squash recovery). Restores the depth
     *  and the top entry; see RasCheckpoint for the overflow caveat. */
    void
    restoreRas(const RasCheckpoint &cp)
    {
        rasTop = cp.top;
        if (rasTop)
            ras[rasTop - 1] = cp.tos;
    }

    /**
     * Train the predictor with the resolved outcome.
     * @param pc branch PC
     * @param inst the control instruction
     * @param taken resolved direction
     * @param target resolved target (for BTB fill)
     * @param mispredicted true when the earlier predict() was wrong;
     *                     restores the speculative global history
     */
    void update(InstAddr pc, const isa::StaticInst &inst, bool taken,
                InstAddr target, bool mispredicted);

    /**
     * Replace the most recent speculative-history bit. The fetch stage
     * calls this when it detects (via the oracle) that the direction it
     * just predicted was wrong and stalls — the hardware analog is the
     * history repair performed at branch resolution.
     */
    void
    fixupLastHistoryBit(bool taken)
    {
        specHistory = (specHistory & ~std::uint64_t(1)) | (taken ? 1 : 0);
    }

    std::uint64_t lookups() const { return statLookups; }
    std::uint64_t mispredicts() const { return statMispredicts; }

    struct BtbEntry
    {
        InstAddr pc = INST_ADDR_INVALID;
        InstAddr target = 0;

        bool operator==(const BtbEntry &) const = default;
    };

    /**
     * Complete mutable predictor state: every counter table, the BTB,
     * the RAS, both history registers and the statistics. Table sizes
     * are construction-time parameters; restore() requires a predictor
     * built with the same BPredParams.
     */
    struct SavedState
    {
        std::vector<std::uint8_t> localTable;
        std::vector<std::uint8_t> globalTable;
        std::vector<std::uint8_t> chooserTable;
        std::vector<BtbEntry> btb;
        std::vector<InstAddr> ras;
        std::size_t rasTop = 0;
        std::uint64_t specHistory = 0;
        std::uint64_t archHistory = 0;
        std::uint64_t lookups = 0;
        std::uint64_t mispredicts = 0;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.localTable = localTable;
        out.globalTable = globalTable;
        out.chooserTable = chooserTable;
        out.btb = btb;
        out.ras = ras;
        out.rasTop = rasTop;
        out.specHistory = specHistory;
        out.archHistory = archHistory;
        out.lookups = statLookups;
        out.mispredicts = statMispredicts;
    }

    void
    restore(const SavedState &in)
    {
        localTable = in.localTable;
        globalTable = in.globalTable;
        chooserTable = in.chooserTable;
        btb = in.btb;
        ras = in.ras;
        rasTop = in.rasTop;
        specHistory = in.specHistory;
        archHistory = in.archHistory;
        statLookups = in.lookups;
        statMispredicts = in.mispredicts;
    }

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static std::uint8_t bump(std::uint8_t c, bool up);

    std::size_t localIndex(InstAddr pc) const;
    std::size_t globalIndex(InstAddr pc, std::uint64_t history) const;
    std::size_t chooserIndex(InstAddr pc) const;
    std::size_t btbIndex(InstAddr pc) const;

    bool predictDirection(InstAddr pc, std::uint64_t history) const;

    BPredParams params;

    std::vector<std::uint8_t> localTable;    ///< 2-bit counters
    std::vector<std::uint8_t> globalTable;   ///< 2-bit counters
    std::vector<std::uint8_t> chooserTable;  ///< 2-bit: >=2 prefers global

    std::vector<BtbEntry> btb;

    std::vector<InstAddr> ras;
    std::size_t rasTop = 0;     ///< number of valid entries

    std::uint64_t specHistory = 0;   ///< speculative global history
    std::uint64_t archHistory = 0;   ///< resolved global history

    std::uint64_t statLookups = 0;
    std::uint64_t statMispredicts = 0;
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_BPRED_HH
