/**
 * @file
 * Issue-unit selection policy interface.
 *
 * This is the microarchitectural hook the whole paper hinges on: the issue
 * unit's priority encoder consults a pluggable policy when it selects ready
 * instructions for functional units (Algorithm 1, Lines 7-12). The baseline
 * installs oldest-first; during a DynaSpAM mapping phase the mapping
 * generator installs its resource-aware policy, which scores each
 * (functional unit, instruction) pair and can veto infeasible placements.
 */

#ifndef DYNASPAM_OOO_POLICY_HH
#define DYNASPAM_OOO_POLICY_HH

#include <cstdint>

#include "common/types.hh"
#include "ooo/dyninst.hh"

namespace dynaspam::ooo
{

/**
 * A selection policy scores candidate (FU, instruction) pairs.
 *
 * Scores follow Table 2 of the paper: higher is better; a negative score
 * vetoes the placement. The host's own tie-break (oldest first) is applied
 * among equal-score candidates by the issue unit itself.
 */
class SelectPolicy
{
  public:
    virtual ~SelectPolicy() = default;

    /**
     * Score placing @p inst on functional unit @p fu_index (an index
     * within the FU pool, stable across cycles).
     * @return priority score; < 0 vetoes this pairing
     */
    virtual int score(unsigned fu_index, const DynInst &inst) = 0;

    /**
     * Notification that @p inst was selected for @p fu_index this cycle
     * (Algorithm 1 Line 13: UpdateTables).
     */
    virtual void selected(unsigned fu_index, const DynInst &inst) = 0;

    /**
     * Called once at the start of each scheduling cycle with the set of
     * FU indices participating this cycle. Lets the mapper advance the
     * scheduling frontier (returns false to pause issue, e.g. while
     * long-latency units drain at a frontier boundary).
     */
    virtual bool beginCycle(Cycle now) { (void)now; return true; }

    /**
     * A passive policy has no per-cycle or per-candidate side effects:
     * beginCycle always returns true and score() is pure. The issue
     * unit may then skip scheduling cycles with no ready candidates
     * entirely. Mapping policies are stateful and must return false.
     */
    virtual bool passive() const { return false; }
};

/** Oldest-first policy: the host's default HostPriorityRule. */
class OldestFirstPolicy : public SelectPolicy
{
  public:
    int
    score(unsigned fu_index, const DynInst &inst) override
    {
        (void)fu_index;
        (void)inst;
        return 0;   // all feasible and equal; age tie-break decides
    }

    bool passive() const override { return true; }

    void
    selected(unsigned fu_index, const DynInst &inst) override
    {
        (void)fu_index;
        (void)inst;
    }
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_POLICY_HH
