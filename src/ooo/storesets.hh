/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer style).
 *
 * Used both by the host OOO load/store queue and by the DynaSpAM fabric's
 * LDST units (Section 3.2, "Intra- and Inter-Trace Memory Ordering").
 * A Store Set ID Table (SSIT) maps instruction PCs to store-set IDs; a
 * Last Fetched Store Table (LFST) tracks the most recent in-flight store
 * of each set. A load predicted to depend on a store must wait for it.
 */

#ifndef DYNASPAM_OOO_STORESETS_HH
#define DYNASPAM_OOO_STORESETS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dynaspam::ooo
{

/** Configuration for the store-set predictor. */
struct StoreSetParams
{
    std::size_t ssitEntries = 1024;
    std::size_t lfstEntries = 128;
    /** Clear the tables every this many allocations (paper-style aging). */
    std::uint64_t clearInterval = 250000;
};

/** Identifier of a store set. */
using StoreSetId = std::uint32_t;
inline constexpr StoreSetId STORE_SET_INVALID = ~StoreSetId(0);

/**
 * The predictor is shared between the host pipeline and the fabric's
 * LDST units, but they number stores differently: the host registers
 * ROB sequence numbers, the fabric trace-index-derived pseudo-sequence
 * numbers. This flag keeps the two domains disjoint so a consumer can
 * tell whose registration a dependence points at — the host must not
 * interpret a fabric pseudo-seq as a ROB seq (host/fabric memory
 * ordering is enforced via mem_safe and invocation store events, not
 * through the LFST).
 */
inline constexpr SeqNum FABRIC_SEQ_FLAG = SeqNum(1) << 63;

/**
 * Store-set predictor. PC-indexed; orthogonal to the structures that track
 * in-flight stores, which the caller owns (it supplies/queries sequence
 * numbers of the last fetched store per set).
 */
class StoreSetPredictor
{
  public:
    explicit StoreSetPredictor(const StoreSetParams &p = StoreSetParams{});

    /**
     * Called when a memory-order violation is detected between @p load_pc
     * and @p store_pc: allocate/merge their store sets so the pair
     * synchronizes in the future.
     */
    void recordViolation(InstAddr load_pc, InstAddr store_pc);

    /**
     * A store is being dispatched: register it as the last fetched store
     * of its set (if it has one).
     * @return the store's set id, or STORE_SET_INVALID
     */
    StoreSetId dispatchStore(InstAddr store_pc, SeqNum seq);

    /**
     * A load is being dispatched: look up the store it should wait for.
     * @return sequence number of the producing store, or 0 if none
     */
    SeqNum lookupDependence(InstAddr load_pc) const;

    /** A store completed or was squashed: clear it from the LFST. */
    void retireStore(InstAddr store_pc, SeqNum seq);

    /** @return true if @p pc currently belongs to some store set. */
    bool hasSet(InstAddr pc) const;

    std::uint64_t violations() const { return statViolations; }

    struct LfstEntry
    {
        SeqNum storeSeq = 0;    ///< 0 means "no in-flight store"
        InstAddr storePc = INST_ADDR_INVALID;

        bool operator==(const LfstEntry &) const = default;
    };

    /** Complete mutable predictor state (table sizes are parameters). */
    struct SavedState
    {
        std::vector<StoreSetId> ssit;
        std::vector<LfstEntry> lfst;
        StoreSetId nextId = 0;
        std::uint64_t allocations = 0;
        std::uint64_t violations = 0;

        bool operator==(const SavedState &) const = default;
    };

    void
    save(SavedState &out) const
    {
        out.ssit = ssit;
        out.lfst = lfst;
        out.nextId = nextId;
        out.allocations = allocations;
        out.violations = statViolations;
    }

    void
    restore(const SavedState &in)
    {
        ssit = in.ssit;
        lfst = in.lfst;
        nextId = in.nextId;
        allocations = in.allocations;
        statViolations = in.violations;
    }

  private:
    std::size_t ssitIndex(InstAddr pc) const { return pc % ssit.size(); }

    void maybeClear();

    StoreSetParams params;
    std::vector<StoreSetId> ssit;
    std::vector<LfstEntry> lfst;

    StoreSetId nextId = 0;
    std::uint64_t allocations = 0;
    std::uint64_t statViolations = 0;
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_STORESETS_HH
