/**
 * @file
 * Out-of-order CPU timing model implementation.
 *
 * Stages run in reverse pipeline order each tick (commit, execute, issue,
 * rename/dispatch, fetch), which naturally models same-cycle structural
 * hazards conservatively.
 */

#include "ooo/cpu.hh"

#include <algorithm>

#include "check/check.hh"
#include "common/logging.hh"
#include "isa/opcodes.hh"
#include "trace/trace.hh"

namespace dynaspam::ooo
{

unsigned
FuPoolParams::count(isa::FuType type) const
{
    switch (type) {
      case isa::FuType::IntAlu:
        return intAlu;
      case isa::FuType::IntMulDiv:
        return intMulDiv;
      case isa::FuType::FpAlu:
        return fpAlu;
      case isa::FuType::FpMulDiv:
        return fpMulDiv;
      case isa::FuType::Ldst:
        return ldst;
      default:
        return 0;
    }
}

namespace
{

/** Front-end (fetch + decode) depth in cycles before rename. */
constexpr Cycle frontEndLatency = 2;

/** Global FU index = typeOffset(type) + unit index within the type. */
unsigned
fuTypeOffset(const FuPoolParams &pool, isa::FuType type)
{
    unsigned off = 0;
    for (unsigned t = 0; t < unsigned(isa::FuType::NUM_FU_TYPES); t++) {
        if (isa::FuType(t) == type)
            return off;
        off += pool.count(isa::FuType(t));
    }
    return off;
}

/** Remove the oldest entry (@p seq) from its line bucket. */
void
lsqIndexEraseOldest(std::unordered_map<Addr, std::vector<SeqNum>> &index,
                    Addr line, SeqNum seq)
{
    auto it = index.find(line);
    if (it == index.end())
        return;
    auto &bucket = it->second;
    if (!bucket.empty() && bucket.front() == seq)
        bucket.erase(bucket.begin());
    else
        std::erase(bucket, seq);
    if (bucket.empty())
        index.erase(it);
}

/** Remove the youngest entry (@p seq) from its line bucket. */
void
lsqIndexEraseYoungest(std::unordered_map<Addr, std::vector<SeqNum>> &index,
                      Addr line, SeqNum seq)
{
    auto it = index.find(line);
    if (it == index.end())
        return;
    auto &bucket = it->second;
    if (!bucket.empty() && bucket.back() == seq)
        bucket.pop_back();
    else
        std::erase(bucket, seq);
    if (bucket.empty())
        index.erase(it);
}

/** Trace-sink record for a ROB entry leaving the pipeline at @p now. */
trace::InstEvent
traceEventOf(const DynInst &d, Cycle now)
{
    trace::InstEvent ev;
    ev.traceIdx = d.traceIdx;
    ev.pc = d.pc;
    ev.fetch = d.fetchCycle;
    ev.dispatch = d.dispatchCycle;
    ev.issue = d.issueCycle;
    ev.complete = d.completeCycle;
    ev.retire = now;
    ev.mispredicted = d.mispredicted;
    if (d.kind == RobKind::TraceInvoke) {
        ev.op = "invoke";
        ev.fabric = true;
        ev.traceLen = d.traceLen;
    } else {
        ev.op = isa::opcodeName(d.inst->op).data();
        ev.fu = std::uint8_t(d.inst->fuType());
    }
    return ev;
}

} // namespace

OooCpu::OooCpu(const OooParams &p, const isa::DynamicTrace &t,
               mem::MemoryHierarchy &h)
    : params(p), trace(t), hierarchy(h), bpred(p.bpred),
      storeSets(p.storeSets), activePolicy(&defaultPolicy),
      frontEndCap(4 * p.fetchWidth),
      rat(isa::NUM_ARCH_REGS, REG_INVALID),
      physReadyCycle(p.numPhysRegs, 0)
{
    if (p.numPhysRegs < isa::NUM_ARCH_REGS + p.renameWidth)
        fatal("too few physical registers (", p.numPhysRegs, ")");

    // Initial mapping: arch reg i -> phys reg i, all ready (value 0).
    for (RegIndex i = 0; i < isa::NUM_ARCH_REGS; i++)
        rat[i] = i;
    for (RegIndex i = isa::NUM_ARCH_REGS; i < p.numPhysRegs; i++)
        freeList.push_back(i);

    fuBusyUntil.resize(unsigned(isa::FuType::NUM_FU_TYPES));
    for (unsigned fu = 0; fu < fuBusyUntil.size(); fu++)
        fuBusyUntil[fu].assign(params.fuPool.count(isa::FuType(fu)), 0);

    readyByType.resize(unsigned(isa::FuType::NUM_FU_TYPES));
    pendingByType.resize(unsigned(isa::FuType::NUM_FU_TYPES));
    regConsumers.resize(p.numPhysRegs);
    for (unsigned fu = 0; fu < unsigned(isa::FuType::NUM_FU_TYPES); fu++)
        fuTypeOffsets[fu] = fuTypeOffset(params.fuPool, isa::FuType(fu));
}

OooCpu::~OooCpu() = default;

Cycle
OooCpu::physReady(RegIndex phys) const
{
    return phys == REG_INVALID ? 0 : physReadyCycle[phys];
}

DynInst &
OooCpu::robAt(SeqNum seq)
{
    if (rob.empty() || seq < rob.front().seq ||
        seq > rob.back().seq) {
        panic("robAt(", seq, ") out of range");
    }
    return rob[std::size_t(seq - rob.front().seq)];
}

const DynInst *
OooCpu::robFind(SeqNum seq) const
{
    if (rob.empty() || seq < rob.front().seq || seq > rob.back().seq)
        return nullptr;
    return &rob[std::size_t(seq - rob.front().seq)];
}

Cycle
OooCpu::run()
{
    while (!done())
        tick();
    return curCycle;
}

void
OooCpu::tick()
{
    commitStage();
    executeStage();
    issueStage();
    renameStage();
    fetchStage();
    if (observer)
        observer->onCycleEnd(curCycle);
    curCycle++;
    pstats.cycles = curCycle;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
OooCpu::fetchStage()
{
    if (fetchBlockedOnBranch || curCycle < fetchResumeCycle)
        return;

    unsigned fetched = 0;
    while (fetched < params.fetchWidth && frontEnd.size() < frontEndCap &&
           fetchIdx < trace.size()) {
        // Consult the DynaSpAM controller unless we are in the middle of
        // marking an already-directed trace.
        if (traceHooks && mappingFetchRemaining == 0) {
            FetchDirective dir = traceHooks->beforeFetch(fetchIdx, curCycle);
            if (dir.kind == FetchDirective::Kind::Offload) {
                FrontEndInst fe;
                fe.traceIdx = fetchIdx;
                fe.readyAtRename = curCycle + frontEndLatency;
                fe.rasCp = bpred.rasCheckpoint();
                fe.isInvocation = true;
                fe.numRecords = dir.numRecords;
                fe.liveIns = std::move(dir.liveIns);
                fe.liveOuts = std::move(dir.liveOuts);
                fe.hasStores = dir.hasStores;
                frontEnd.push_back(std::move(fe));
                fetchIdx += dir.numRecords;
                fetched++;
                continue;
            }
            if (dir.kind == FetchDirective::Kind::BeginMapping &&
                dir.numRecords > 0) {
                mappingFetchRemaining = dir.numRecords;
                mappingDispatchRemaining = dir.numRecords;
                pendingMappingPolicy = dir.policy;
                mappingTraceIdx = fetchIdx;
            }
        }

        const isa::DynRecord &rec = trace[fetchIdx];
        const isa::StaticInst &inst = trace.program().inst(rec.pc);

        // Instruction cache: charge an access per new block touched.
        Addr block = (Addr(rec.pc) * params.instBytes) / 64;
        if (block != lastFetchBlock) {
            pstats.icacheAccesses++;
            auto access = hierarchy.fetchAccess(Addr(rec.pc) *
                                                params.instBytes);
            lastFetchBlock = block;
            if (!access.hit) {
                fetchResumeCycle = curCycle + access.latency;
                return;
            }
        }

        FrontEndInst fe;
        fe.traceIdx = fetchIdx;
        fe.readyAtRename = curCycle + frontEndLatency;
        // Snapshot the RAS before predict() can push/pop it, so a squash
        // at this instruction rolls the stack back past its own update.
        fe.rasCp = bpred.rasCheckpoint();

        if (mappingFetchRemaining > 0) {
            fe.mappingInst = true;
            fe.firstMappingInst = (fetchIdx == mappingTraceIdx);
            mappingFetchRemaining--;
            fe.lastMappingInst = (mappingFetchRemaining == 0);
        }

        bool stop_after = false;
        if (inst.isControl()) {
            BPrediction pred = bpred.predict(rec.pc, inst);
            fe.predictedTaken = pred.taken;

            bool direction_wrong =
                inst.isCondBranch() && pred.taken != rec.taken;
            bool target_needed = rec.taken;
            bool target_wrong =
                target_needed && !direction_wrong &&
                (!pred.targetKnown || pred.target != rec.nextPc);

            if (direction_wrong || target_wrong) {
                fe.mispredicted = true;
                fetchBlockedOnBranch = true;
                stop_after = true;
                if (inst.isCondBranch())
                    bpred.fixupLastHistoryBit(rec.taken);

                // A mispredicted branch inside the trace being mapped
                // aborts the mapping (Section 3.1): the remaining records
                // no longer follow the mapped path, and the issue unit
                // must not keep waiting for them.
                if (fe.mappingInst)
                    abortActiveMapping();
            }
        }

        // A fetch group ends at a taken branch: the front end cannot
        // fetch across a redirect within one cycle. (Offloaded traces
        // bypass this limit entirely — one of the front-end costs
        // DynaSpAM removes.)
        const bool taken_branch = inst.isControl() && rec.taken;

        frontEnd.push_back(std::move(fe));
        fetchIdx++;
        fetched++;
        pstats.fetchedInsts++;

        if (stop_after)
            return;
        if (taken_branch)
            break;
    }
}

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
OooCpu::renameStage()
{
    unsigned renamed = 0;
    while (renamed < params.renameWidth && !frontEnd.empty()) {
        FrontEndInst &fe = frontEnd.front();
        if (fe.readyAtRename > curCycle)
            break;

        // The first trace instruction holds in dispatch until all
        // on-the-fly instructions drain through the back-end (Section 3.1).
        if (fe.firstMappingInst && !rob.empty())
            break;

        if (rob.size() >= params.robEntries)
            break;

        if (fe.isInvocation) {
            if (freeList.size() < fe.liveOuts.size())
                break;

            DynInst d;
            d.seq = nextSeq++;
            d.traceIdx = fe.traceIdx;
            d.kind = RobKind::TraceInvoke;
            d.traceLen = fe.numRecords;
            d.record = &trace[fe.traceIdx];
            d.pc = d.record->pc;
            d.fetchCycle = fe.readyAtRename - frontEndLatency;
            d.dispatchCycle = curCycle;
            d.rasCp = fe.rasCp;

            InvocationState inv;
            inv.hasStores = fe.hasStores;
            inv.liveOutArch = fe.liveOuts;
            for (RegIndex arch : fe.liveIns)
                inv.liveInPhys.push_back(rat[arch]);
            for (RegIndex arch : fe.liveOuts) {
                RegIndex phys = freeList.back();
                freeList.pop_back();
                inv.liveOutPrevPhys.push_back(rat[arch]);
                inv.liveOutPhys.push_back(phys);
                rat[arch] = phys;
                physReadyCycle[phys] = CYCLE_INVALID;
            }
            invocations.emplace(d.seq, std::move(inv));
            rob.push_back(d);
            pstats.robWrites++;
            pstats.renamedInsts++;
            pstats.dispatchedInsts++;
            frontEnd.pop_front();
            renamed++;
            continue;
        }

        const isa::DynRecord &rec = trace[fe.traceIdx];
        const isa::StaticInst &inst = trace.program().inst(rec.pc);

        if (inst.hasDest() && freeList.empty())
            break;
        if (iq.size() >= params.iqEntries)
            break;
        if (inst.isLoad() && loadQueue.size() >= params.lqEntries)
            break;
        if (inst.isStore() && storeQueue.size() >= params.sqEntries)
            break;

        DynInst d;
        d.seq = nextSeq++;
        d.traceIdx = fe.traceIdx;
        d.pc = rec.pc;
        d.inst = &inst;
        d.record = &rec;
        d.fetchCycle = fe.readyAtRename - frontEndLatency;
        d.dispatchCycle = curCycle;
        d.mispredicted = fe.mispredicted;
        d.predictedTaken = fe.predictedTaken;
        d.rasCp = fe.rasCp;
        d.mappingInst = fe.mappingInst;
        d.lastMappingInst = fe.lastMappingInst;

        d.src1Phys = inst.src1 == REG_INVALID ? REG_INVALID : rat[inst.src1];
        d.src2Phys = inst.src2 == REG_INVALID ? REG_INVALID : rat[inst.src2];
        if (inst.hasDest()) {
            d.prevPhys = rat[inst.dest];
            d.destPhys = freeList.back();
            freeList.pop_back();
            rat[inst.dest] = d.destPhys;
            physReadyCycle[d.destPhys] = CYCLE_INVALID;
        }

        if (inst.isLoad()) {
            if (params.memorySpeculation) {
                // A dependence on a fabric-registered store is not a ROB
                // seq; ordering against invocations is enforced through
                // mem_safe and invocation store events instead.
                const SeqNum dep = storeSets.lookupDependence(rec.pc);
                d.dependsOnStore = (dep & FABRIC_SEQ_FLAG) ? 0 : dep;
            }
            loadQueue.push_back(d.seq);
            loadsByLine[lsqLine(rec.effAddr)].push_back(d.seq);
        } else if (inst.isStore()) {
            if (params.memorySpeculation)
                storeSets.dispatchStore(rec.pc, d.seq);
            storeQueue.push_back(d.seq);
            storesByLine[lsqLine(rec.effAddr)].push_back(d.seq);
        }

        if (fe.firstMappingInst && pendingMappingPolicy) {
            activePolicy = pendingMappingPolicy;
            mappingActive = true;
            mappingIssueRemaining = 0;
            mappingCommitRemaining = 0;
            if (traceHooks)
                traceHooks->mappingStarted(fe.traceIdx, curCycle);
        }
        if (fe.mappingInst && mappingActive) {
            mappingIssueRemaining++;
            mappingCommitRemaining++;
            if (mappingDispatchRemaining > 0)
                mappingDispatchRemaining--;
        }

        d.inIq = true;
        iq.push_back(d.seq);
        rob.push_back(d);
        scheduleAtDispatch(rob.back());
        pstats.robWrites++;
        pstats.renamedInsts++;
        pstats.dispatchedInsts++;
        frontEnd.pop_front();
        renamed++;
    }
}

// ---------------------------------------------------------------------
// Issue (wakeup + select)
// ---------------------------------------------------------------------

bool
OooCpu::olderStoresAllComplete(const DynInst &load) const
{
    for (SeqNum seq : storeQueue) {
        if (seq >= load.seq)
            break;
        const DynInst *store = robFind(seq);
        if (store &&
            (!store->issued || store->completeCycle > curCycle)) {
            return false;
        }
    }
    return true;
}

/** Reference readiness rule: the wakeup scheduler must agree with this
 *  full recomputation for every candidate it offers (cross-checked
 *  under DYNASPAM_CHECKS in issueStage). */
bool
OooCpu::isInstReady(const DynInst &d) const
{
    if (!d.inIq || d.issued)
        return false;

    Cycle r1 = physReady(d.src1Phys);
    Cycle r2 = physReady(d.src2Phys);
    if (r1 == CYCLE_INVALID || r1 > curCycle)
        return false;
    if (r2 == CYCLE_INVALID || r2 > curCycle)
        return false;

    if (d.isLoad()) {
        if (!params.memorySpeculation) {
            if (!olderStoresAllComplete(d))
                return false;
        } else if (d.dependsOnStore != 0) {
            // Store-set predicted dependence: wait for the store.
            const DynInst *store = robFind(d.dependsOnStore);
            if (store && store->seq < d.seq &&
                (!store->issued || store->completeCycle > curCycle)) {
                return false;
            }
        }
        // Loads proceed speculatively past older in-flight invocations;
        // startReadyInvocations() checks for bypassed invocation stores
        // when the invocation resolves, and squashes violators.
    }
    return true;
}

void
OooCpu::scheduleAtDispatch(DynInst &d)
{
    unsigned waits = 0;
    Cycle ready_at = 0;
    for (RegIndex src : {d.src1Phys, d.src2Phys}) {
        if (src == REG_INVALID)
            continue;
        const Cycle r = physReadyCycle[src];
        if (r == CYCLE_INVALID) {
            regConsumers[src].push_back(d.seq);
            waits++;
        } else {
            ready_at = std::max(ready_at, r);
        }
    }
    d.waitCount = std::uint8_t(waits);
    if (waits == 0) {
        pendingByType[unsigned(d.inst->fuType())].push_back(
            {ready_at, d.seq});
        pendingCount++;
    }
}

void
OooCpu::wakeConsumers(RegIndex phys)
{
    auto &consumers = regConsumers[phys];
    if (consumers.empty())
        return;
    for (SeqNum seq : consumers) {
        DynInst &d = robAt(seq);
        if (--d.waitCount != 0)
            continue;
        Cycle ready_at = 0;
        for (RegIndex src : {d.src1Phys, d.src2Phys}) {
            if (src != REG_INVALID)
                ready_at = std::max(ready_at, physReadyCycle[src]);
        }
        pendingByType[unsigned(d.inst->fuType())].push_back(
            {ready_at, seq});
        pendingCount++;
    }
    consumers.clear();
}

void
OooCpu::drainPendingWakeups()
{
    if (pendingCount == 0)
        return;
    for (unsigned t = 0; t < pendingByType.size(); t++) {
        auto &pending = pendingByType[t];
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].readyCycle <= curCycle) {
                readyByType[t].push_back(pending[i].seq);
                readyCount++;
                pending[i] = pending.back();
                pending.pop_back();
                pendingCount--;
            } else {
                i++;
            }
        }
    }
}

void
OooCpu::scrubSchedulerForSquash(SeqNum bound)
{
    for (auto &ready : readyByType) {
        for (std::size_t i = 0; i < ready.size();) {
            if (ready[i] >= bound) {
                ready[i] = ready.back();
                ready.pop_back();
                readyCount--;
            } else {
                i++;
            }
        }
    }
    for (auto &pending : pendingByType) {
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].seq >= bound) {
                pending[i] = pending.back();
                pending.pop_back();
                pendingCount--;
            } else {
                i++;
            }
        }
    }
    for (auto &consumers : regConsumers)
        std::erase_if(consumers,
                      [bound](SeqNum s) { return s >= bound; });
    sqBoundCycle = CYCLE_INVALID;
}

SeqNum
OooCpu::incompleteStoreBound()
{
    if (sqBoundCycle == curCycle)
        return sqBound;
    sqBoundCycle = curCycle;
    sqBound = ~SeqNum(0);
    for (SeqNum seq : storeQueue) {
        const DynInst *store = robFind(seq);
        if (store &&
            (!store->issued || store->completeCycle > curCycle)) {
            sqBound = seq;
            break;
        }
    }
    return sqBound;
}

/** Memory-side readiness of a register-ready load. Register readiness
 *  is event-driven; this residual condition depends on store progress
 *  and is polled at select time: O(1) per probe against the per-cycle
 *  store-completion watermark or the predicted producer store. */
bool
OooCpu::loadMemoryReady(const DynInst &load)
{
    if (!params.memorySpeculation) {
        const bool ok = incompleteStoreBound() >= load.seq;
        DYNASPAM_CHECK(ok == olderStoresAllComplete(load),
                       "store-completion watermark diverges from the "
                       "store-queue walk for load seq ", load.seq);
        return ok;
    }
    if (load.dependsOnStore != 0) {
        // Store-set predicted dependence: wait for the store.
        const DynInst *store = robFind(load.dependsOnStore);
        if (store && store->seq < load.seq &&
            (!store->issued || store->completeCycle > curCycle)) {
            return false;
        }
    }
    return true;
}

void
OooCpu::issueLoad(DynInst &load)
{
    const Addr addr = load.record->effAddr;
    load.addrReady = true;

    // Store-to-load forwarding: youngest older store with a matching
    // address whose address is known. Only stores on the same cache
    // line are probed (age-ordered index bucket); entries elsewhere on
    // the line — partial overlaps in line terms — neither forward nor
    // end the search, and the walk bails out at the first full-width
    // (exact-address) match even when such a partial overlap was seen
    // first.
    const DynInst *src_store = nullptr;
    if (auto it = storesByLine.find(lsqLine(addr));
        it != storesByLine.end()) {
        const auto &bucket = it->second;
        for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
            if (*rit >= load.seq)
                continue;
            const DynInst *store = robFind(*rit);
            if (store && store->issued && store->record->effAddr == addr) {
                src_store = store;
                break;
            }
        }
    }

    const Cycle agu_done = curCycle + 1 + params.loadIssueToExecuteExtra;

    if (src_store) {
        Cycle data_ready = std::max(agu_done, src_store->completeCycle);
        load.completeCycle = data_ready + params.forwardLatency;
        load.forwardedFromSeq = src_store->seq;
        pstats.loadForwards++;
        return;
    }

    // No match in flight: try the post-commit store buffer (all entries
    // are architecturally older than any in-flight load). Youngest
    // same-line entry with the exact address wins, as in the in-flight
    // case.
    if (auto it = retiredByLine.find(lsqLine(addr));
        it != retiredByLine.end()) {
        const auto &bucket = it->second;
        for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
            if (rit->addr == addr) {
                Cycle data_ready = std::max(agu_done, rit->dataReady);
                load.completeCycle = data_ready + params.forwardLatency;
                load.forwardedFromSeq = rit->seq;
                pstats.loadForwards++;
                return;
            }
        }
    }

    {
        pstats.dcacheAccesses++;
        auto access = hierarchy.dataAccess(addr, false);
        load.completeCycle = agu_done + access.latency;
        load.forwardedFromSeq = 0;
    }
}

void
OooCpu::issueStore(DynInst &store)
{
    store.addrReady = true;
    store.completeCycle = curCycle + 1;
    checkViolations(store);
}

void
OooCpu::checkViolations(const DynInst &store)
{
    // A younger load that already read a value not produced by this store
    // (from cache or from an older store) violated the memory order.
    // Same-line loads are probed in age order, so the first qualifying
    // entry is the oldest violator.
    const Addr addr = store.record->effAddr;
    SeqNum victim = 0;
    if (auto it = loadsByLine.find(lsqLine(addr));
        it != loadsByLine.end()) {
        for (SeqNum seq : it->second) {
            if (seq <= store.seq)
                continue;
            const DynInst *load = robFind(seq);
            if (load && load->issued && load->record->effAddr == addr &&
                load->forwardedFromSeq < store.seq) {
                victim = seq;
                break;
            }
        }
    }
    if (!victim)
        return;

    DynInst &load = robAt(victim);
    pstats.memOrderViolations++;
    storeSets.recordViolation(load.pc, store.pc);
    squashFrom(victim, load.traceIdx,
               curCycle + 1 + params.squashPenalty);
}

void
OooCpu::issueStage()
{
    // During a mapping phase, scheduling begins only once the whole
    // trace sits in the reservation station — the large-window scope
    // that lets the resource-aware scheduler see all trace instructions
    // at once (Section 4.1). The back end is drained at this point, so
    // the pause costs at most a few cycles.
    if (mappingActive && mappingDispatchRemaining > 0)
        return;

    // Move instructions whose last source value arrived onto the ready
    // lists. Producers complete no earlier than the cycle after they
    // issue (opLatency >= 1) and invocations resolve before this stage
    // runs, so draining once here sees every instruction the reference
    // readiness rule would accept this cycle.
    drainPendingWakeups();

    // Nothing can issue and the policy has no per-cycle side effects:
    // skip the stage entirely.
    if (readyCount == 0 && activePolicy->passive())
        return;

    if (!activePolicy->beginCycle(curCycle))
        return;

    unsigned issued_total = 0;

    for (unsigned t = 0; t < unsigned(isa::FuType::NUM_FU_TYPES) &&
                         issued_total < params.issueWidth;
         t++) {
        auto &ready = readyByType[t];
        if (ready.empty())
            continue;
        auto &units = fuBusyUntil[t];
        const unsigned type_offset = fuTypeOffsets[t];

        for (unsigned u = 0;
             u < units.size() && issued_total < params.issueWidth; u++) {
            if (units[u] > curCycle)
                continue;
            if (ready.empty())
                break;

            // Select: score every ready candidate of this FU type
            // (Algorithm 1, lines 7-12). Ties break oldest-first; the
            // explicit seq comparison makes the ready-list order
            // irrelevant, so selections match the former full-IQ scan
            // exactly.
            std::size_t best_slot = ready.size();
            int best_score = -1;
            SeqNum best_seq = 0;
            for (std::size_t slot = 0; slot < ready.size(); slot++) {
                DynInst &d = robAt(ready[slot]);
                if (d.isLoad() && !loadMemoryReady(d))
                    continue;
                DYNASPAM_CHECK(isInstReady(d),
                               "ready list offers seq ", d.seq,
                               " which the reference readiness rule "
                               "rejects");
                int score = activePolicy->score(type_offset + u, d);
                if (score < 0)
                    continue;
                if (best_slot == ready.size() || score > best_score ||
                    (score == best_score && d.seq < best_seq)) {
                    best_slot = slot;
                    best_score = score;
                    best_seq = d.seq;
                }
            }
            if (best_slot == ready.size())
                continue;

            DynInst &d = robAt(ready[best_slot]);
            d.issued = true;
            d.inIq = false;
            d.issueCycle = curCycle;
            ready[best_slot] = ready.back();
            ready.pop_back();
            readyCount--;
            auto iq_it = std::find(iq.begin(), iq.end(), d.seq);
            *iq_it = iq.back();
            iq.pop_back();

            const isa::OpClass cls = d.inst->opClass();
            const unsigned lat = isa::opLatency(cls);

            if (d.isLoad()) {
                issueLoad(d);
            } else if (d.isStore()) {
                issueStore(d);
                // A violation squash may have emptied everything younger,
                // including entries this loop still references: stop.
                if (rob.empty() || rob.back().seq < d.seq)
                    return;
            } else {
                d.completeCycle = curCycle + lat;
            }

            // Unpipelined dividers occupy their unit for the full
            // latency; everything else accepts a new op next cycle.
            const bool unpipelined = cls == isa::OpClass::IntDiv ||
                                     cls == isa::OpClass::FloatDiv;
            units[u] = unpipelined ? d.completeCycle : curCycle + 1;

            // Algorithm 1 line 13: UpdateTables — notify the policy so
            // the mapping generator records the placement.
            activePolicy->selected(type_offset + u, d);

            if (d.inst->hasDest()) {
                physReadyCycle[d.destPhys] = d.completeCycle;
                wakeConsumers(d.destPhys);
            }
            d.completed = true;   // completion time is now determined

            // Statistics: register reads, bypass detection, wakeups.
            pstats.issuedInsts++;
            pstats.fuOps[t]++;
            pstats.iqWakeups += iq.size();
            for (RegIndex src : {d.src1Phys, d.src2Phys}) {
                if (src == REG_INVALID)
                    continue;
                pstats.regReads++;
                if (physReadyCycle[src] == curCycle)
                    pstats.bypasses++;
            }
            if (d.inst->hasDest())
                pstats.regWrites++;

            if (d.mappingInst && mappingActive) {
                if (mappingIssueRemaining > 0)
                    mappingIssueRemaining--;
                if (mappingIssueRemaining == 0) {
                    // Whole trace issued: restore the host priority rule.
                    activePolicy = &defaultPolicy;
                }
            }

            // Branch resolution: schedule the front-end redirect.
            if (d.mispredicted) {
                pstats.branchMispredicts++;
                fetchBlockedOnBranch = false;
                fetchResumeCycle = std::max(
                    fetchResumeCycle,
                    d.completeCycle + params.branchMispredictPenalty);
            }

            issued_total++;
        }
    }
}

// ---------------------------------------------------------------------
// Execute (invocation launch)
// ---------------------------------------------------------------------

void
OooCpu::startReadyInvocations()
{
    for (auto &[seq, inv] : invocations) {
        if (inv.resolved)
            continue;

        // All live-in arrival times must be known.
        bool ready = true;
        Cycle live_in_max = curCycle;
        std::vector<Cycle> &arrivals = arrivalScratch;
        arrivals.clear();
        arrivals.reserve(inv.liveInPhys.size());
        for (RegIndex phys : inv.liveInPhys) {
            Cycle r = physReadyCycle[phys];
            if (r == CYCLE_INVALID) {
                ready = false;
                break;
            }
            arrivals.push_back(std::max(r, curCycle));
            live_in_max = std::max(live_in_max, r);
        }
        if (!ready)
            continue;

        // All older host stores must have issued so the memory-safe
        // cycle is known. Ordering against older *invocations* is the
        // fabric's job: its store-set predictor and recent-store buffer
        // detect cross-invocation aliasing, and without memory
        // speculation it serializes memory operations itself.
        Cycle mem_safe = curCycle;
        for (SeqNum sq : storeQueue) {
            if (sq >= seq)
                break;
            const DynInst *store = robFind(sq);
            if (store) {
                if (!store->issued) {
                    ready = false;
                    break;
                }
                mem_safe = std::max(mem_safe, store->completeCycle);
            }
        }
        if (!ready)
            continue;

        DynInst &d = robAt(seq);
        inv.result = traceHooks->offloadStart(d.traceIdx, d.traceLen,
                                              curCycle, arrivals, mem_safe);
        inv.resolved = true;
        d.completed = true;
        d.completeCycle = inv.result.completeCycle;

        if (inv.result.squashed) {
            // Early resolution: the fabric reported a branch off the
            // mapped path or a memory-order violation. Redirect fetch
            // now instead of waiting for the entry to reach the ROB
            // head — exactly as an ordinary branch mispredict resolves —
            // so the machine stops piling up doomed younger work.
            pstats.invocationsSquashed++;
            const SeqNum resume = d.traceIdx;
            const Cycle restart =
                std::max(curCycle, inv.result.completeCycle) +
                params.squashPenalty;
            if (traceHooks)
                traceHooks->invocationSquashed(d.traceIdx, curCycle, true);
            squashFrom(seq, resume, restart);
            return;     // invocation map changed under us
        }

        {
            if (inv.result.liveOutReady.size() != inv.liveOutPhys.size())
                panic("offload engine live-out count mismatch");
            for (std::size_t i = 0; i < inv.liveOutPhys.size(); i++) {
                physReadyCycle[inv.liveOutPhys[i]] =
                    inv.result.liveOutReady[i];
                wakeConsumers(inv.liveOutPhys[i]);
            }

            // Younger host loads issued speculatively past this
            // invocation: any that read a location the invocation
            // stores to must replay (same discipline as store-set
            // violation handling between host instructions). Probe
            // only same-line loads per store event; buckets are
            // age-ordered, so the first qualifying entry per event is
            // that event's oldest victim, and the strict < keeps the
            // earliest event's store PC when several events hit the
            // same load.
            SeqNum victim = 0;
            InstAddr victim_store_pc = 0;
            for (const auto &[addr, store_pc] : inv.result.storeEvents) {
                auto it = loadsByLine.find(lsqLine(addr));
                if (it == loadsByLine.end())
                    continue;
                for (SeqNum lq_seq : it->second) {
                    if (lq_seq <= seq)
                        continue;
                    if (victim && lq_seq >= victim)
                        break;      // age order: no older hit follows
                    const DynInst *load = robFind(lq_seq);
                    if (!load || !load->issued ||
                        load->forwardedFromSeq > seq) {
                        continue;
                    }
                    if (load->record->effAddr == addr) {
                        victim = lq_seq;
                        victim_store_pc = store_pc;
                        break;
                    }
                }
            }
            if (victim) {
                DynInst &load = robAt(victim);
                pstats.memOrderViolations++;
                if (params.memorySpeculation)
                    storeSets.recordViolation(load.pc, victim_store_pc);
                squashFrom(victim, load.traceIdx,
                           curCycle + 1 + params.squashPenalty);
                return;     // invocation map iterator invalidated
            }
        }
    }
}

void
OooCpu::executeStage()
{
    if (traceHooks && !invocations.empty())
        startReadyInvocations();
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
OooCpu::commitStage()
{
    unsigned committed = 0;
    while (committed < params.commitWidth && !rob.empty()) {
        DynInst &head = rob.front();

        if (head.kind == RobKind::TraceInvoke) {
            InvocationState *found = invocations.find(head.seq);
            if (!found)
                panic("invocation state missing for seq ", head.seq);
            InvocationState &inv = *found;
            if (!inv.resolved || inv.result.completeCycle > curCycle)
                break;

            if (inv.result.squashed) {
                pstats.invocationsSquashed++;
                if (traceHooks)
                    traceHooks->invocationSquashed(head.traceIdx, curCycle,
                                                   true);
                // Squash this entry and everything younger; the host
                // pipeline re-executes the trace records.
                squashFrom(head.seq, head.traceIdx,
                           curCycle + params.squashPenalty);
                return;
            }

            DYNASPAM_CHECK(head.traceIdx == commitIdx,
                           "invocation commits record ", head.traceIdx,
                           " but next to commit is ", commitIdx);
            pstats.invocationsCommitted++;
            pstats.committedInsts += head.traceLen;
            pstats.robReads++;
            commitIdx = head.traceIdx + head.traceLen;
            for (RegIndex prev : inv.liveOutPrevPhys)
                freeList.push_back(prev);
            if (traceHooks)
                traceHooks->invocationCommitted(head.traceIdx, curCycle);
            if (observer) {
                observer->onCommit(head.traceIdx, head.traceLen, true,
                                   curCycle);
            }
            if (trace::compiledIn() && tsink)
                tsink->instRetired(traceEventOf(head, curCycle));
            invocations.erase(head.seq);
            rob.pop_front();
            committed++;
            continue;
        }

        if (!head.completed || head.completeCycle > curCycle)
            break;

        // Stores write the data cache at commit and stay visible for
        // forwarding in the post-commit store buffer while draining.
        if (head.isStore()) {
            pstats.dcacheAccesses++;
            hierarchy.dataAccess(head.record->effAddr, true);
            if (params.memorySpeculation)
                storeSets.retireStore(head.pc, head.seq);
            storeBuffer.push_back(
                {head.record->effAddr, head.completeCycle, head.seq});
            retiredByLine[lsqLine(head.record->effAddr)].push_back(
                storeBuffer.back());
            if (storeBuffer.size() > storeBufferEntries) {
                const RetiredStore &oldest = storeBuffer.front();
                auto it = retiredByLine.find(lsqLine(oldest.addr));
                if (it != retiredByLine.end()) {
                    auto &bucket = it->second;
                    if (!bucket.empty() &&
                        bucket.front().seq == oldest.seq) {
                        bucket.erase(bucket.begin());
                    }
                    if (bucket.empty())
                        retiredByLine.erase(it);
                }
                storeBuffer.pop_front();
            }
        }

        if (head.isControl()) {
            bpred.update(head.pc, *head.inst, head.record->taken,
                         head.record->nextPc, head.mispredicted);
            if (traceHooks) {
                traceHooks->onCommitControl(head.pc, head.record->taken,
                                            head.traceIdx, curCycle);
            }
        }

        if (head.inst->hasDest() && head.prevPhys != REG_INVALID)
            freeList.push_back(head.prevPhys);

        if (head.mappingInst && mappingActive) {
            if (mappingCommitRemaining > 0)
                mappingCommitRemaining--;
            if (mappingCommitRemaining == 0) {
                mappingActive = false;
                pendingMappingPolicy = nullptr;
                activePolicy = &defaultPolicy;
                if (traceHooks)
                    traceHooks->mappingFinished(mappingTraceIdx, curCycle);
            }
        }

        if (head.isLoad()) {
            if (!loadQueue.empty() && loadQueue.front() == head.seq) {
                loadQueue.pop_front();
                lsqIndexEraseOldest(loadsByLine,
                                    lsqLine(head.record->effAddr),
                                    head.seq);
            }
        } else if (head.isStore()) {
            if (!storeQueue.empty() && storeQueue.front() == head.seq) {
                storeQueue.pop_front();
                lsqIndexEraseOldest(storesByLine,
                                    lsqLine(head.record->effAddr),
                                    head.seq);
            }
        }

        DYNASPAM_CHECK(head.traceIdx == commitIdx, "host commit of record ",
                       head.traceIdx, " but next to commit is ", commitIdx);
        pstats.robReads++;
        pstats.committedInsts++;
        pstats.committedOnHost++;
        if (head.mappingInst)
            pstats.mappingInstsExecuted++;
        commitIdx = head.traceIdx + 1;
        if (observer)
            observer->onCommit(head.traceIdx, 1, false, curCycle);
        if (trace::compiledIn() && tsink)
            tsink->instRetired(traceEventOf(head, curCycle));
        rob.pop_front();
        committed++;
    }
}

// ---------------------------------------------------------------------
// Squash
// ---------------------------------------------------------------------

void
OooCpu::abortActiveMapping()
{
    if (traceHooks && (mappingActive || mappingFetchRemaining > 0))
        traceHooks->mappingAborted(mappingTraceIdx, curCycle);
    mappingActive = false;
    pendingMappingPolicy = nullptr;
    activePolicy = &defaultPolicy;
    mappingFetchRemaining = 0;
    mappingDispatchRemaining = 0;
    mappingIssueRemaining = 0;
    mappingCommitRemaining = 0;
}

void
OooCpu::squashFrom(SeqNum seq, SeqNum resume_trace_idx, Cycle restart)
{
    bool mapping_killed = false;
    bool squashed_any = false;
    RasCheckpoint ras_cp;

    while (!rob.empty() && rob.back().seq >= seq) {
        DynInst &d = rob.back();
        pstats.squashedInsts++;
        // The loop pops youngest-first, so the last value left here is
        // the oldest squashed entry's pre-fetch RAS snapshot.
        ras_cp = d.rasCp;
        squashed_any = true;
        if (trace::compiledIn() && tsink)
            tsink->instFlushed(traceEventOf(d, curCycle));

        if (d.kind == RobKind::TraceInvoke) {
            InvocationState *inv = invocations.find(d.seq);
            if (inv) {
                // Restore live-out mappings youngest-first.
                for (std::size_t i = inv->liveOutPhys.size(); i-- > 0;) {
                    rat[inv->liveOutArch[i]] = inv->liveOutPrevPhys[i];
                    freeList.push_back(inv->liveOutPhys[i]);
                }
                if (traceHooks && !(inv->resolved && inv->result.squashed))
                    traceHooks->invocationSquashed(d.traceIdx, curCycle,
                                                   false);
                invocations.erase(d.seq);
            }
        } else {
            if (d.inst->hasDest()) {
                rat[d.inst->dest] = d.prevPhys;
                freeList.push_back(d.destPhys);
            }
            if (d.isStore() && params.memorySpeculation)
                storeSets.retireStore(d.pc, d.seq);
            // The popped instruction is the youngest in flight, so it
            // sits at the young end of its line bucket.
            if (d.isLoad()) {
                lsqIndexEraseYoungest(loadsByLine,
                                      lsqLine(d.record->effAddr), d.seq);
            } else if (d.isStore()) {
                lsqIndexEraseYoungest(storesByLine,
                                      lsqLine(d.record->effAddr), d.seq);
            }
            if (d.mappingInst)
                mapping_killed = true;
        }
        rob.pop_back();
    }

    const SeqNum bound = seq;
    std::erase_if(iq, [bound](SeqNum s) { return s >= bound; });
    while (!loadQueue.empty() && loadQueue.back() >= bound)
        loadQueue.pop_back();
    while (!storeQueue.empty() && storeQueue.back() >= bound)
        storeQueue.pop_back();
    scrubSchedulerForSquash(bound);

    frontEnd.clear();
    if (mappingFetchRemaining > 0)
        mapping_killed = true;

    // Undo the speculative RAS pushes/pops of the squashed path (both
    // the popped ROB entries and anything still in the front end, which
    // is younger). The refetched path re-executes its CALLs and RETs, so
    // without this rollback every squash leaks phantom entries onto the
    // stack and later RET predictions go wrong.
    if (squashed_any)
        bpred.restoreRas(ras_cp);

    if (mapping_killed || mappingActive)
        abortActiveMapping();

    // Keep ROB sequence numbers contiguous: robAt() indexes the deque by
    // (seq - head seq), so renames after a squash must continue exactly
    // where the surviving tail ends. Squashed sequence numbers were
    // scrubbed from every side structure above, so reuse is safe.
    if (!rob.empty())
        nextSeq = rob.back().seq + 1;

    fetchIdx = resume_trace_idx;
    fetchBlockedOnBranch = false;
    fetchResumeCycle = restart;
    lastFetchBlock = ~Addr(0);
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

void
OooCpu::dumpState(std::ostream &os) const
{
    os << "cycle=" << curCycle << " fetchIdx=" << fetchIdx
       << " commitIdx=" << commitIdx << " rob=" << rob.size()
       << " iq=" << iq.size() << " lq=" << loadQueue.size()
       << " sq=" << storeQueue.size() << " frontEnd=" << frontEnd.size()
       << " freeRegs=" << freeList.size() << " ready=" << readyCount
       << " pending=" << pendingCount << "\n";
    os << "fetchResume=" << fetchResumeCycle << " blockedOnBranch="
       << fetchBlockedOnBranch << " mappingActive=" << mappingActive
       << " mapFetchRem=" << mappingFetchRemaining << " mapDispRem="
       << mappingDispatchRemaining << " mapIssueRem="
       << mappingIssueRemaining << " mapCommitRem="
       << mappingCommitRemaining << " invocations=" << invocations.size()
       << "\n";
    if (!rob.empty()) {
        const DynInst &head = rob.front();
        os << "robHead seq=" << head.seq << " traceIdx=" << head.traceIdx
           << " kind=" << int(head.kind) << " issued=" << head.issued
           << " completed=" << head.completed << " completeCycle="
           << head.completeCycle << " inIq=" << head.inIq << "\n";
    }
}

void
OooCpu::exportStats(StatRegistry &reg) const
{
    reg.counter("ooo.cycles").inc(pstats.cycles);
    reg.counter("ooo.fetchedInsts").inc(pstats.fetchedInsts);
    reg.counter("ooo.renamedInsts").inc(pstats.renamedInsts);
    reg.counter("ooo.dispatchedInsts").inc(pstats.dispatchedInsts);
    reg.counter("ooo.issuedInsts").inc(pstats.issuedInsts);
    reg.counter("ooo.committedInsts").inc(pstats.committedInsts);
    reg.counter("ooo.committedOnHost").inc(pstats.committedOnHost);
    reg.counter("ooo.squashedInsts").inc(pstats.squashedInsts);
    reg.counter("ooo.branchMispredicts").inc(pstats.branchMispredicts);
    reg.counter("ooo.memOrderViolations").inc(pstats.memOrderViolations);
    reg.counter("ooo.regReads").inc(pstats.regReads);
    reg.counter("ooo.regWrites").inc(pstats.regWrites);
    reg.counter("ooo.bypasses").inc(pstats.bypasses);
    reg.counter("ooo.iqWakeups").inc(pstats.iqWakeups);
    reg.counter("ooo.loadForwards").inc(pstats.loadForwards);
    reg.counter("ooo.icacheAccesses").inc(pstats.icacheAccesses);
    reg.counter("ooo.dcacheAccesses").inc(pstats.dcacheAccesses);
    reg.counter("ooo.robWrites").inc(pstats.robWrites);
    reg.counter("ooo.robReads").inc(pstats.robReads);
    reg.counter("ooo.invocationsCommitted").inc(pstats.invocationsCommitted);
    reg.counter("ooo.invocationsSquashed").inc(pstats.invocationsSquashed);
    reg.counter("ooo.mappingInstsExecuted").inc(pstats.mappingInstsExecuted);
    reg.counter("ooo.bpredLookups").inc(bpred.lookups());
    reg.counter("ooo.bpredMispredicts").inc(bpred.mispredicts());
    reg.counter("ooo.storeSetViolations").inc(storeSets.violations());
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

void
OooCpu::save(SavedState &out) const
{
    bpred.save(out.bpred);
    storeSets.save(out.storeSets);
    out.activeIsDefault = activePolicy == &defaultPolicy;
    out.pendingIsNull = pendingMappingPolicy == nullptr;

    out.curCycle = curCycle;
    out.nextSeq = nextSeq;
    out.fetchIdx = fetchIdx;
    out.commitIdx = commitIdx;
    out.fetchResumeCycle = fetchResumeCycle;
    out.fetchBlockedOnBranch = fetchBlockedOnBranch;
    out.lastFetchBlock = lastFetchBlock;
    out.frontEnd = frontEnd;

    out.rat = rat;
    out.freeList = freeList;
    out.physReadyCycle = physReadyCycle;

    out.rob = rob;
    out.iq = iq;
    out.loadQueue = loadQueue;
    out.storeQueue = storeQueue;
    out.invocations = invocations;

    out.readyByType = readyByType;
    out.pendingByType = pendingByType;
    out.regConsumers = regConsumers;
    out.readyCount = readyCount;
    out.pendingCount = pendingCount;

    out.storesByLine = storesByLine;
    out.loadsByLine = loadsByLine;
    out.sqBoundCycle = sqBoundCycle;
    out.sqBound = sqBound;
    out.storeBuffer = storeBuffer;
    out.retiredByLine = retiredByLine;

    out.fuBusyUntil = fuBusyUntil;

    out.mappingActive = mappingActive;
    out.mappingTraceIdx = mappingTraceIdx;
    out.mappingFetchRemaining = mappingFetchRemaining;
    out.mappingDispatchRemaining = mappingDispatchRemaining;
    out.mappingIssueRemaining = mappingIssueRemaining;
    out.mappingCommitRemaining = mappingCommitRemaining;

    out.pstats = pstats;
}

void
OooCpu::restore(const SavedState &in, SelectPolicy *mapping_policy)
{
    if ((!in.activeIsDefault || !in.pendingIsNull) && !mapping_policy)
        panic("restore: saved state has an armed policy but none given");

    bpred.restore(in.bpred);
    storeSets.restore(in.storeSets);
    activePolicy = in.activeIsDefault ? &defaultPolicy : mapping_policy;
    pendingMappingPolicy = in.pendingIsNull ? nullptr : mapping_policy;

    curCycle = in.curCycle;
    nextSeq = in.nextSeq;
    fetchIdx = in.fetchIdx;
    commitIdx = in.commitIdx;
    fetchResumeCycle = in.fetchResumeCycle;
    fetchBlockedOnBranch = in.fetchBlockedOnBranch;
    lastFetchBlock = in.lastFetchBlock;
    frontEnd = in.frontEnd;

    rat = in.rat;
    freeList = in.freeList;
    physReadyCycle = in.physReadyCycle;

    rob = in.rob;
    iq = in.iq;
    loadQueue = in.loadQueue;
    storeQueue = in.storeQueue;
    invocations = in.invocations;

    readyByType = in.readyByType;
    pendingByType = in.pendingByType;
    regConsumers = in.regConsumers;
    readyCount = in.readyCount;
    pendingCount = in.pendingCount;

    storesByLine = in.storesByLine;
    loadsByLine = in.loadsByLine;
    sqBoundCycle = in.sqBoundCycle;
    sqBound = in.sqBound;
    storeBuffer = in.storeBuffer;
    retiredByLine = in.retiredByLine;

    fuBusyUntil = in.fuBusyUntil;

    mappingActive = in.mappingActive;
    mappingTraceIdx = in.mappingTraceIdx;
    mappingFetchRemaining = in.mappingFetchRemaining;
    mappingDispatchRemaining = in.mappingDispatchRemaining;
    mappingIssueRemaining = in.mappingIssueRemaining;
    mappingCommitRemaining = in.mappingCommitRemaining;

    pstats = in.pstats;

    // Scratch is rebuilt from scratch by its user; leave no stale state.
    arrivalScratch.clear();
}

} // namespace dynaspam::ooo
