/**
 * @file
 * Store-set predictor implementation.
 */

#include "ooo/storesets.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dynaspam::ooo
{

StoreSetPredictor::StoreSetPredictor(const StoreSetParams &p)
    : params(p), ssit(p.ssitEntries, STORE_SET_INVALID),
      lfst(p.lfstEntries)
{
    if (!p.ssitEntries || !p.lfstEntries)
        fatal("store-set tables must be non-empty");
}

void
StoreSetPredictor::maybeClear()
{
    if (params.clearInterval && allocations >= params.clearInterval) {
        std::fill(ssit.begin(), ssit.end(), STORE_SET_INVALID);
        for (auto &entry : lfst)
            entry = LfstEntry{};
        allocations = 0;
    }
}

void
StoreSetPredictor::recordViolation(InstAddr load_pc, InstAddr store_pc)
{
    statViolations++;
    maybeClear();
    allocations++;

    StoreSetId &load_set = ssit[ssitIndex(load_pc)];
    StoreSetId &store_set = ssit[ssitIndex(store_pc)];

    if (load_set == STORE_SET_INVALID && store_set == STORE_SET_INVALID) {
        load_set = store_set = nextId++ % StoreSetId(lfst.size());
    } else if (load_set == STORE_SET_INVALID) {
        load_set = store_set;
    } else if (store_set == STORE_SET_INVALID) {
        store_set = load_set;
    } else {
        // Both assigned: merge into the smaller id (declining preference
        // rule from the original store-sets paper).
        StoreSetId winner = std::min(load_set, store_set);
        load_set = store_set = winner;
    }
}

StoreSetId
StoreSetPredictor::dispatchStore(InstAddr store_pc, SeqNum seq)
{
    StoreSetId set = ssit[ssitIndex(store_pc)];
    if (set == STORE_SET_INVALID)
        return STORE_SET_INVALID;
    LfstEntry &entry = lfst[set % lfst.size()];
    entry.storeSeq = seq;
    entry.storePc = store_pc;
    return set;
}

SeqNum
StoreSetPredictor::lookupDependence(InstAddr load_pc) const
{
    StoreSetId set = ssit[ssitIndex(load_pc)];
    if (set == STORE_SET_INVALID)
        return 0;
    return lfst[set % lfst.size()].storeSeq;
}

void
StoreSetPredictor::retireStore(InstAddr store_pc, SeqNum seq)
{
    StoreSetId set = ssit[ssitIndex(store_pc)];
    if (set == STORE_SET_INVALID)
        return;
    LfstEntry &entry = lfst[set % lfst.size()];
    // Only the youngest registered store clears the entry; an older
    // store retiring must not erase a younger one's registration.
    if (entry.storeSeq == seq)
        entry = LfstEntry{};
}

bool
StoreSetPredictor::hasSet(InstAddr pc) const
{
    return ssit[ssitIndex(pc)] != STORE_SET_INVALID;
}

} // namespace dynaspam::ooo
