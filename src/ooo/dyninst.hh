/**
 * @file
 * In-flight dynamic instruction state shared by the pipeline stages.
 */

#ifndef DYNASPAM_OOO_DYNINST_HH
#define DYNASPAM_OOO_DYNINST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/inst.hh"
#include "isa/trace.hh"
#include "ooo/bpred.hh"

namespace dynaspam::ooo
{

/** Kind of a reorder-buffer entry. */
enum class RobKind : std::uint8_t
{
    Inst,           ///< ordinary dynamic instruction
    TraceInvoke,    ///< DynaSpAM fat atomic trace invocation (uses ROB')
};

/**
 * One in-flight dynamic instruction (a ROB entry). Identified by a unique
 * sequence number; carries the trace index it was fetched from so squash
 * and replay can re-fetch the same oracle records.
 */
struct DynInst
{
    SeqNum seq = 0;             ///< unique per in-flight instance
    SeqNum traceIdx = 0;        ///< index into the oracle DynamicTrace
    InstAddr pc = 0;
    const isa::StaticInst *inst = nullptr;
    const isa::DynRecord *record = nullptr;

    RobKind kind = RobKind::Inst;
    /** For TraceInvoke entries: how many oracle records this covers. */
    std::uint32_t traceLen = 0;
    /** For TraceInvoke entries: handle into the offload engine. */
    std::uint32_t invocationId = 0;

    // Rename state.
    RegIndex destPhys = REG_INVALID;
    RegIndex prevPhys = REG_INVALID;    ///< previous mapping of dest
    RegIndex src1Phys = REG_INVALID;
    RegIndex src2Phys = REG_INVALID;

    // Pipeline timestamps.
    Cycle fetchCycle = CYCLE_INVALID;
    Cycle dispatchCycle = CYCLE_INVALID;
    Cycle issueCycle = CYCLE_INVALID;
    Cycle completeCycle = CYCLE_INVALID;

    // Status flags.
    bool inIq = false;          ///< waiting in the issue queue
    /** Source registers whose values are still unknown. While non-zero
     *  the instruction sits on the producers' consumer lists; the last
     *  producer to issue moves it onto the scheduler's pending queue. */
    std::uint8_t waitCount = 0;
    bool issued = false;
    bool completed = false;
    bool mispredicted = false;  ///< branch direction/target mispredicted
    bool predictedTaken = false;
    /** RAS state before this instruction was fetched; a squash restores
     *  the stack to the oldest squashed entry's checkpoint. */
    RasCheckpoint rasCp;

    // Memory state.
    bool addrReady = false;     ///< effective address computed
    SeqNum dependsOnStore = 0;  ///< store-set predicted producer (seq)
    /** Store that forwarded this load's value (0 = value from cache). */
    SeqNum forwardedFromSeq = 0;

    // Mapping-phase state.
    bool mappingInst = false;       ///< trace instruction being mapped
    bool lastMappingInst = false;   ///< last instruction of the trace

    bool isLoad() const { return inst && inst->isLoad(); }
    bool isStore() const { return inst && inst->isStore(); }
    bool isControl() const { return inst && inst->isControl(); }

    /** Pointer members compare by identity, which is value equality for
     *  snapshot purposes: both sides of a snapshot diff reference the
     *  same immutable Program/DynamicTrace instance. */
    bool operator==(const DynInst &) const = default;
};

} // namespace dynaspam::ooo

#endif // DYNASPAM_OOO_DYNINST_HH
